//! A journal written through a torn stream must be refused loudly.
//!
//! `dq_fault`'s `FaultWrite` with a `truncate` fault is the exact
//! adversary the journal checksum exists for: the writer *believes*
//! every byte landed (the torn write reports success), but only a
//! prefix reached the file — the one failure mode the stage + fsync +
//! rename protocol cannot see from inside the process. Whatever prefix
//! survives, parsing must produce a typed `Torn` refusal: never a
//! panic, never a shorter-but-plausible journal that would silently
//! restart part of the stream.

use dq_fault::{FaultPlan, FaultWrite};
use dq_job::{JobError, Journal, Watermark};
use std::io::Write;

fn fixture() -> Journal {
    let mut j = Journal::new("pollute", 0x1111_2222_3333_4444, 0x5555_6666_7777_8888);
    j.cursor_rows = 81_920;
    j.rng = Some([9, 8, 7, 6]);
    j.set_counter("dirty_rows", 82_001);
    j.set_output("dirty.csv", Watermark::Bytes(2_400_000));
    j.set_output("log.csv", Watermark::Bytes(31_000));
    j
}

#[test]
fn every_torn_write_prefix_is_refused_never_misparsed() {
    let text = fixture().render();
    for tear_at in 0..text.len() as u64 {
        let plan = FaultPlan::parse(&format!("dq-fault v1\ntruncate byte {tear_at}")).unwrap();
        let mut w = FaultWrite::new(Vec::new(), &plan);
        // The torn write acknowledges the full journal...
        w.write_all(text.as_bytes()).unwrap();
        w.flush().unwrap();
        let persisted = w.into_inner();
        // ...but only a prefix persisted.
        assert_eq!(persisted.len() as u64, tear_at);
        let on_disk = String::from_utf8(persisted).unwrap();
        match Journal::parse(&on_disk, "job.dqj") {
            Err(JobError::Torn { path, .. }) => assert_eq!(path, "job.dqj"),
            other => panic!("tear at {tear_at} must be Torn, got {other:?}"),
        }
    }
}

#[test]
fn untorn_write_still_round_trips() {
    let j = fixture();
    let mut w = FaultWrite::new(Vec::new(), &FaultPlan::none());
    w.write_all(j.render().as_bytes()).unwrap();
    let text = String::from_utf8(w.into_inner()).unwrap();
    assert_eq!(Journal::parse(&text, "job.dqj").unwrap(), j);
}
