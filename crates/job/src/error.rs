//! Typed errors of the checkpoint/resume layer.

use std::fmt;

/// Everything that can go wrong loading, saving, or validating a
/// checkpoint. The variants are deliberately loud about *which* safety
/// property failed: a torn journal, a mutated config, an output file
/// shorter than its committed watermark — each names its evidence, and
/// none of them ever degrades into a silent restart-from-zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// An underlying I/O failure (message carries the path).
    Io(String),
    /// The journal file exists but is not a well-formed, checksummed
    /// `dq-job v1` document — truncated, bit-flipped, or written by a
    /// torn commit.
    Torn {
        /// Path of the offending journal.
        path: String,
        /// What exactly failed (checksum mismatch, bad line, …).
        detail: String,
    },
    /// `--resume` was asked for but no journal exists at the path.
    Missing(String),
    /// The journaled config or schema fingerprint disagrees with the
    /// resuming invocation's — the flags, seed, or schema were mutated
    /// between incarnations.
    Mismatch {
        /// Which fingerprint disagreed (`config` or `schema`).
        what: &'static str,
        /// Fingerprint derived by the resuming invocation.
        expected: u64,
        /// Fingerprint recorded in the journal.
        got: u64,
    },
    /// The journal belongs to a different subcommand (e.g. resuming a
    /// `generate` checkpoint with `dq detect`).
    KindMismatch {
        /// Kind the resuming invocation runs.
        expected: String,
        /// Kind recorded in the journal.
        got: String,
    },
    /// An output file is shorter than the watermark the journal
    /// committed — the journal and the data cannot both be right, so
    /// resuming would splice onto missing bytes.
    OutputTruncated {
        /// Path of the too-short output.
        path: String,
        /// Its on-disk length.
        len: u64,
        /// The journaled committed length.
        watermark: u64,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Io(msg) => write!(f, "io error: {msg}"),
            JobError::Torn { path, detail } => write!(
                f,
                "journal `{path}` is torn or corrupt ({detail}); refusing to resume — \
                 delete the checkpoint directory to restart from scratch"
            ),
            JobError::Missing(path) => {
                write!(f, "no journal at `{path}` — nothing to resume")
            }
            JobError::Mismatch { what, expected, got } => write!(
                f,
                "{what} fingerprint mismatch: this invocation derives {expected:016x}, \
                 the journal recorded {got:016x} — the {what} changed between incarnations; \
                 refusing to resume"
            ),
            JobError::KindMismatch { expected, got } => {
                write!(f, "journal belongs to a `{got}` job, cannot resume it as `{expected}`")
            }
            JobError::OutputTruncated { path, len, watermark } => write!(
                f,
                "output `{path}` is {len} bytes but the journal committed {watermark} — \
                 the output was truncated behind the journal's back; refusing to resume"
            ),
        }
    }
}

impl std::error::Error for JobError {}

impl From<std::io::Error> for JobError {
    fn from(e: std::io::Error) -> Self {
        JobError::Io(e.to_string())
    }
}
