//! The checkpoint directory: atomic journal commits, deterministic
//! crash knobs, and resumable-output plumbing.
//!
//! # Commit protocol
//!
//! A checkpointed job alternates data writes with journal commits:
//!
//! 1. flush every output writer (their bytes reach the page cache —
//!    under the `kill -9` crash model that is durable enough, since
//!    the kernel survives the process);
//! 2. [`CheckpointDir::save`] the journal: staged to `job.dqj.tmp`,
//!    fsynced, atomically renamed over `job.dqj`, directory entry
//!    fsynced.
//!
//! A crash between (1) and (2) loses nothing: the journal still points
//! at the previous commit, and everything written since is beyond some
//! watermark and gets truncated or pruned on resume. A crash *during*
//! (2) leaves either the old journal or the new one — never a torn
//! mix — because the rename is atomic. The journal's trailing checksum
//! catches the remaining case (a filesystem that tears the staged
//! write *and* loses the rename ordering) as a typed refusal.
//!
//! # Crash knobs
//!
//! Two environment variables turn any checkpointed run into a
//! deterministic crash victim, giving the chaos suite exact kill
//! points with true `kill -9` semantics ([`std::process::abort`] — no
//! destructors, no buffer flushes):
//!
//! * `DQ_CRASH_BEFORE_COMMIT=k` — abort immediately before the `k`-th
//!   (1-based) journal save of the process: data flushed, journal
//!   stale;
//! * `DQ_CRASH_AFTER_COMMITS=k` — abort immediately after the `k`-th
//!   save commits: journal new, later data lost.

use crate::error::JobError;
use crate::journal::Journal;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File name of the journal inside a checkpoint directory.
pub const JOURNAL: &str = "job.dqj";
/// Staging name during [`CheckpointDir::save`].
const JOURNAL_TMP: &str = "job.dqj.tmp";

fn located(path: &Path, e: impl std::fmt::Display) -> JobError {
    JobError::Io(format!("{}: {e}", path.display()))
}

/// Fsync a directory so a just-renamed entry survives power loss
/// (unix only; elsewhere the rename alone is the best ordering
/// available).
fn sync_dir(dir: &Path) -> Result<(), JobError> {
    #[cfg(unix)]
    {
        let handle = File::open(dir).map_err(|e| located(dir, e))?;
        handle.sync_all().map_err(|e| located(dir, e))?;
    }
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// A directory holding one job's checkpoint state (the `job.dqj`
/// journal, plus whatever sidecar files the job keeps there). See the
/// module docs for the commit protocol and crash knobs.
#[derive(Debug)]
pub struct CheckpointDir {
    dir: PathBuf,
    /// Journal saves performed by this instance (1-based after the
    /// first), driving the crash knobs.
    saves: u64,
    crash_before: Option<u64>,
    crash_after: Option<u64>,
}

fn crash_knob(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse::<u64>().ok())
}

impl CheckpointDir {
    /// Open (creating if needed) a checkpoint directory and read the
    /// crash knobs from the environment.
    pub fn create(dir: impl Into<PathBuf>) -> Result<Self, JobError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| located(&dir, e))?;
        Ok(CheckpointDir {
            dir,
            saves: 0,
            crash_before: crash_knob("DQ_CRASH_BEFORE_COMMIT"),
            crash_after: crash_knob("DQ_CRASH_AFTER_COMMITS"),
        })
    }

    /// The directory itself (for sidecar files).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the journal file.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join(JOURNAL)
    }

    /// Does a journal exist here (committed; the staged temp does not
    /// count)?
    pub fn has_journal(&self) -> bool {
        self.journal_path().is_file()
    }

    /// Load and checksum-verify the journal. [`JobError::Missing`] if
    /// none exists, [`JobError::Torn`] if it fails verification.
    pub fn load(&self) -> Result<Journal, JobError> {
        let path = self.journal_path();
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(JobError::Missing(path.display().to_string()));
            }
            Err(e) => return Err(located(&path, e)),
        };
        Journal::parse(&text, &path.display().to_string())
    }

    /// Atomically commit `journal` (stage + fsync + rename + dir
    /// fsync), honouring the crash knobs. The caller must have flushed
    /// its data writers first — the journal vouches only for bytes
    /// that reached the kernel before this call.
    pub fn save(&mut self, journal: &Journal) -> Result<(), JobError> {
        self.saves += 1;
        if self.crash_before == Some(self.saves) {
            // Data is flushed, the journal is stale: the resume point
            // is the *previous* commit.
            std::process::abort();
        }
        let path = self.journal_path();
        let tmp = self.dir.join(JOURNAL_TMP);
        let mut staged = File::create(&tmp).map_err(|e| located(&tmp, e))?;
        staged.write_all(journal.render().as_bytes()).map_err(|e| located(&tmp, e))?;
        staged.sync_all().map_err(|e| located(&tmp, e))?;
        drop(staged);
        std::fs::rename(&tmp, &path).map_err(|e| located(&path, e))?;
        sync_dir(&self.dir)?;
        if self.crash_after == Some(self.saves) {
            // The journal committed; everything the job does next is
            // beyond the watermarks and must be reproduced on resume.
            std::process::abort();
        }
        Ok(())
    }
}

/// Reopen a flat output file for appending at its journaled watermark:
/// verify it holds at least `watermark` bytes (shorter means the
/// output was truncated behind the journal's back — a loud refusal),
/// truncate whatever an interrupted incarnation wrote past the
/// watermark, and position at the end.
pub fn resume_file(path: &Path, watermark: u64) -> Result<File, JobError> {
    let mut file =
        OpenOptions::new().read(true).write(true).open(path).map_err(|e| located(path, e))?;
    let len = file.metadata().map_err(|e| located(path, e))?.len();
    if len < watermark {
        return Err(JobError::OutputTruncated { path: path.display().to_string(), len, watermark });
    }
    file.set_len(watermark).map_err(|e| located(path, e))?;
    file.seek(SeekFrom::End(0)).map_err(|e| located(path, e))?;
    Ok(file)
}

/// A [`Write`] adapter counting the bytes that reached the inner
/// writer — the byte-watermark source for journaled CSV outputs. On
/// resume, construct it with `start` equal to the journaled watermark
/// so the count stays the file's true committed length.
#[derive(Debug)]
pub struct CountingWriter<W> {
    inner: W,
    count: u64,
}

impl<W: Write> CountingWriter<W> {
    /// Wrap `inner`, starting the count at `start` (0 for a fresh
    /// file, the journaled watermark on resume).
    pub fn new(inner: W, start: u64) -> Self {
        CountingWriter { inner, count: start }
    }

    /// Bytes written through this adapter plus the starting offset —
    /// after a flush, the file's committed length.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The wrapped writer.
    pub fn get_ref(&self) -> &W {
        &self.inner
    }
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.count += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Watermark;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dq-job-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_load_round_trip_and_missing() {
        let d = dir("rt");
        let mut ckpt = CheckpointDir::create(&d).unwrap();
        assert!(!ckpt.has_journal());
        assert!(matches!(ckpt.load(), Err(JobError::Missing(_))));

        let mut j = Journal::new("generate", 1, 2);
        j.cursor_rows = 99;
        j.set_output("clean.csv", Watermark::Bytes(1234));
        ckpt.save(&j).unwrap();
        assert!(ckpt.has_journal());
        assert_eq!(ckpt.load().unwrap(), j);

        // A second save replaces atomically.
        j.cursor_rows = 200;
        ckpt.save(&j).unwrap();
        assert_eq!(ckpt.load().unwrap().cursor_rows, 200);
        assert!(!d.join(JOURNAL_TMP).exists(), "staging file must not linger");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn on_disk_corruption_is_torn_never_a_fresh_start() {
        let d = dir("torn");
        let mut ckpt = CheckpointDir::create(&d).unwrap();
        ckpt.save(&Journal::new("detect", 7, 8)).unwrap();
        let path = ckpt.journal_path();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        let err = ckpt.load().unwrap_err();
        assert!(matches!(err, JobError::Torn { .. }), "got {err:?}");
        assert!(err.to_string().contains("refusing to resume"), "{err}");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn resume_file_truncates_to_the_watermark() {
        let d = dir("resume-file");
        std::fs::create_dir_all(&d).unwrap();
        let path = d.join("out.csv");
        std::fs::write(&path, b"committed bytes|uncommitted tail").unwrap();

        let mut f = resume_file(&path, 15).unwrap();
        f.write_all(b"+resumed").unwrap();
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"committed bytes+resumed");

        // Shorter than the watermark: loud typed refusal.
        let err = resume_file(&path, 10_000).unwrap_err();
        assert!(matches!(err, JobError::OutputTruncated { watermark: 10_000, .. }), "{err:?}");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn counting_writer_tracks_committed_length() {
        let mut w = CountingWriter::new(Vec::new(), 100);
        w.write_all(b"hello").unwrap();
        w.flush().unwrap();
        assert_eq!(w.count(), 105);
        assert_eq!(w.get_ref(), b"hello");
    }
}
