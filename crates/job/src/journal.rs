//! The `dq-job v1` journal: the single commit record of a
//! checkpointed job.
//!
//! A journal is a small text file describing exactly how far a
//! streaming job got, written atomically at chunk-commit boundaries
//! (see [`crate::CheckpointDir`]). Grammar, line by line, in order:
//!
//! ```text
//! dq-job v1
//! kind <generate|pollute|detect>
//! config <hex16>                     FNV-1a of the canonical config text
//! schema <hex16>                     schema fingerprint
//! state <running|done>
//! cursor rows <n>                    rows consumed from the primary stream
//! rng <hex16> <hex16> <hex16> <hex16>  optional: xoshiro256++ state words
//! counter <name> <n>                 zero or more named counters
//! output <name> bytes <n>            zero or more committed watermarks:
//! output <name> pages <n>              bytes for CSV files, pages for
//!                                      paged directories
//! checksum <hex16>                   FNV-1a over every preceding byte
//! ```
//!
//! `<hex16>` is sixteen lowercase hex digits. The trailing `checksum`
//! line covers every byte before it, so a journal torn mid-write —
//! truncated, or with a stale tail — parses to a typed
//! [`JobError::Torn`], never to a silently wrong resume point. The
//! `config` and `schema` fingerprints are the mutation guard: a resume
//! attempt with different flags, seed, or schema is refused with
//! [`JobError::Mismatch`] instead of splicing two different streams
//! into one output file.

use crate::error::JobError;

/// FNV-1a 64-bit — the workspace's canonical content fingerprint (the
/// same fold `Schema::fingerprint` uses), applied here to journal
/// bytes and canonical config text.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A committed watermark of one output: how much of it the journal
/// vouches for. Anything beyond the watermark was written by a crashed
/// incarnation after its last commit and is truncated (bytes) or
/// pruned (pages) on resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Watermark {
    /// Committed length of a flat file (a CSV output), in bytes.
    Bytes(u64),
    /// Committed count of sealed pages of a paged directory.
    Pages(u64),
}

/// One parsed (or about-to-be-saved) `dq-job v1` journal. See the
/// module docs for the grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Journal {
    /// Which pipeline stage this job runs (`generate`, `pollute`,
    /// `detect`).
    pub kind: String,
    /// FNV-1a fingerprint of the canonical config text (flags, seed,
    /// paths — everything that shapes the output bytes).
    pub config: u64,
    /// Fingerprint of the relation schema the job runs over.
    pub schema: u64,
    /// `true` once the job has fully committed its outputs; resuming a
    /// done job is a no-op.
    pub done: bool,
    /// Rows consumed from the primary stream at the last commit (clean
    /// rows for generate/pollute, input rows for detect).
    pub cursor_rows: u64,
    /// Serialized pollution-RNG state at the cursor, when the job owns
    /// a sequential RNG (pollute stages).
    pub rng: Option<[u64; 4]>,
    /// Named counters in save order (dirty rows, log cells written,
    /// findings committed, …).
    pub counters: Vec<(String, u64)>,
    /// Per-output committed watermarks in save order.
    pub outputs: Vec<(String, Watermark)>,
}

impl Journal {
    /// A fresh `running` journal at cursor zero.
    pub fn new(kind: &str, config: u64, schema: u64) -> Self {
        Journal {
            kind: kind.to_string(),
            config,
            schema,
            done: false,
            cursor_rows: 0,
            rng: None,
            counters: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Look up a named counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Set (or add) a named counter.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some(entry) => entry.1 = value,
            None => self.counters.push((name.to_string(), value)),
        }
    }

    /// Look up an output watermark.
    pub fn output(&self, name: &str) -> Option<Watermark> {
        self.outputs.iter().find(|(n, _)| n == name).map(|&(_, w)| w)
    }

    /// Set (or add) an output watermark.
    pub fn set_output(&mut self, name: &str, watermark: Watermark) {
        match self.outputs.iter_mut().find(|(n, _)| n == name) {
            Some(entry) => entry.1 = watermark,
            None => self.outputs.push((name.to_string(), watermark)),
        }
    }

    /// Refuse to resume under a mutated identity: the journaled kind,
    /// config fingerprint, and schema fingerprint must all match what
    /// the resuming invocation derived from its own flags.
    pub fn validate(&self, kind: &str, config: u64, schema: u64) -> Result<(), JobError> {
        if self.kind != kind {
            return Err(JobError::KindMismatch {
                expected: kind.to_string(),
                got: self.kind.clone(),
            });
        }
        if self.config != config {
            return Err(JobError::Mismatch { what: "config", expected: config, got: self.config });
        }
        if self.schema != schema {
            return Err(JobError::Mismatch { what: "schema", expected: schema, got: self.schema });
        }
        Ok(())
    }

    /// Render the journal as `dq-job v1` text, checksum line included.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("dq-job v1\n");
        let _ = writeln!(out, "kind {}", self.kind);
        let _ = writeln!(out, "config {:016x}", self.config);
        let _ = writeln!(out, "schema {:016x}", self.schema);
        let _ = writeln!(out, "state {}", if self.done { "done" } else { "running" });
        let _ = writeln!(out, "cursor rows {}", self.cursor_rows);
        if let Some(s) = self.rng {
            let _ = writeln!(out, "rng {:016x} {:016x} {:016x} {:016x}", s[0], s[1], s[2], s[3]);
        }
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter {name} {value}");
        }
        for (name, watermark) in &self.outputs {
            match watermark {
                Watermark::Bytes(n) => {
                    let _ = writeln!(out, "output {name} bytes {n}");
                }
                Watermark::Pages(n) => {
                    let _ = writeln!(out, "output {name} pages {n}");
                }
            }
        }
        let _ = writeln!(out, "checksum {:016x}", fnv1a(out.as_bytes()));
        out
    }

    /// Parse `dq-job v1` text. The checksum is verified **first**: a
    /// journal whose trailing checksum line is absent, malformed, or
    /// disagrees with the preceding bytes is [`JobError::Torn`] — the
    /// loud refusal that keeps a torn commit from ever looking like a
    /// smaller (or zero) resume point. `path` only labels errors.
    pub fn parse(text: &str, path: &str) -> Result<Self, JobError> {
        let torn = |detail: String| JobError::Torn { path: path.to_string(), detail };

        if !text.ends_with('\n') {
            return Err(torn("missing trailing newline".into()));
        }
        // Checksum gate: the last line must be `checksum <hex16>` and
        // must cover everything before it.
        let body_end = text
            .rfind("checksum ")
            .filter(|&at| at == 0 || text.as_bytes()[at - 1] == b'\n')
            .ok_or_else(|| torn("no trailing checksum line".into()))?;
        let checksum_line = text[body_end..].trim_end_matches('\n');
        if text[body_end..].matches('\n').count() > 1 {
            return Err(torn("bytes after the checksum line".into()));
        }
        let declared = checksum_line
            .strip_prefix("checksum ")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| torn(format!("malformed checksum line `{checksum_line}`")))?;
        let actual = fnv1a(&text.as_bytes()[..body_end]);
        if declared != actual {
            return Err(torn(format!(
                "checksum mismatch: declared {declared:016x}, content hashes to {actual:016x}"
            )));
        }

        let mut lines = text[..body_end].lines();
        if lines.next() != Some("dq-job v1") {
            return Err(torn("missing `dq-job v1` header".into()));
        }
        let mut field = |name: &str| -> Result<String, JobError> {
            let line = lines.next().unwrap_or("");
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| torn(format!("line `{line}` is not `{name} …`")))
        };
        let kind = field("kind")?;
        let hex = |v: String, what: &str| {
            u64::from_str_radix(&v, 16)
                .map_err(|e| torn(format!("bad {what} fingerprint `{v}`: {e}")))
        };
        let config = hex(field("config")?, "config")?;
        let schema = hex(field("schema")?, "schema")?;
        let done = match field("state")?.as_str() {
            "running" => false,
            "done" => true,
            other => return Err(torn(format!("unknown state `{other}`"))),
        };
        let cursor_rows =
            field("cursor rows")?.parse::<u64>().map_err(|e| torn(format!("bad cursor: {e}")))?;

        let mut rng = None;
        let mut counters = Vec::new();
        let mut outputs = Vec::new();
        for line in lines {
            if let Some(words) = line.strip_prefix("rng ") {
                let parts: Vec<u64> = words
                    .split(' ')
                    .map(|w| u64::from_str_radix(w, 16))
                    .collect::<Result<_, _>>()
                    .map_err(|e| torn(format!("bad rng word in `{line}`: {e}")))?;
                let s: [u64; 4] = parts
                    .try_into()
                    .map_err(|_| torn(format!("rng line needs 4 words: `{line}`")))?;
                rng = Some(s);
            } else if let Some(rest) = line.strip_prefix("counter ") {
                let (name, value) = rest
                    .rsplit_once(' ')
                    .ok_or_else(|| torn(format!("malformed counter line `{line}`")))?;
                let value = value.parse::<u64>().map_err(|e| torn(format!("bad counter: {e}")))?;
                counters.push((name.to_string(), value));
            } else if let Some(rest) = line.strip_prefix("output ") {
                let mut words = rest.rsplitn(3, ' ');
                let value = words.next().unwrap_or("");
                let unit = words.next().unwrap_or("");
                let name = words.next().unwrap_or("");
                let value =
                    value.parse::<u64>().map_err(|e| torn(format!("bad watermark: {e}")))?;
                let watermark = match unit {
                    "bytes" => Watermark::Bytes(value),
                    "pages" => Watermark::Pages(value),
                    other => return Err(torn(format!("unknown watermark unit `{other}`"))),
                };
                if name.is_empty() {
                    return Err(torn(format!("malformed output line `{line}`")));
                }
                outputs.push((name.to_string(), watermark));
            } else {
                return Err(torn(format!("unrecognized journal line `{line}`")));
            }
        }
        Ok(Journal { kind, config, schema, done, cursor_rows, rng, counters, outputs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Journal {
        let mut j = Journal::new("generate", 0xdead_beef_0123_4567, 0x0123_4567_89ab_cdef);
        j.cursor_rows = 123_456;
        j.rng = Some([1, 2, u64::MAX, 0xabc]);
        j.set_counter("dirty_rows", 123_700);
        j.set_counter("log_cells", 991);
        j.set_output("clean.csv", Watermark::Bytes(4_200_000));
        j.set_output("dirty.csv", Watermark::Bytes(4_210_333));
        j.set_output("paged", Watermark::Pages(30));
        j
    }

    #[test]
    fn render_parse_round_trip() {
        let j = fixture();
        let text = j.render();
        assert!(text.starts_with("dq-job v1\n"), "{text}");
        let back = Journal::parse(&text, "job.dqj").unwrap();
        assert_eq!(back, j);

        // Done state and absent rng round-trip too.
        let mut j = fixture();
        j.done = true;
        j.rng = None;
        assert_eq!(Journal::parse(&j.render(), "job.dqj").unwrap(), j);
    }

    #[test]
    fn accessors_update_in_place() {
        let mut j = fixture();
        assert_eq!(j.counter("dirty_rows"), Some(123_700));
        assert_eq!(j.counter("absent"), None);
        j.set_counter("dirty_rows", 5);
        assert_eq!(j.counter("dirty_rows"), Some(5));
        assert_eq!(j.output("paged"), Some(Watermark::Pages(30)));
        j.set_output("paged", Watermark::Pages(31));
        assert_eq!(j.output("paged"), Some(Watermark::Pages(31)));
        assert_eq!(j.counters.len(), 2, "set replaces, never duplicates");
        assert_eq!(j.outputs.len(), 3);
    }

    #[test]
    fn every_truncation_is_torn_never_a_smaller_journal() {
        let text = fixture().render();
        for cut in 0..text.len() {
            let err = Journal::parse(&text[..cut], "job.dqj").unwrap_err();
            assert!(matches!(err, JobError::Torn { .. }), "cut at {cut} must be Torn, got {err:?}");
        }
    }

    #[test]
    fn flipped_bytes_are_torn() {
        let text = fixture().render();
        // Flip one character somewhere in the body.
        let mut bad = text.clone().into_bytes();
        bad[20] = bad[20].wrapping_add(1);
        let bad = String::from_utf8(bad).unwrap();
        assert!(matches!(Journal::parse(&bad, "j"), Err(JobError::Torn { .. })));
        // Appending after the checksum is torn too.
        let appended = format!("{text}output x bytes 1\n");
        assert!(matches!(Journal::parse(&appended, "j"), Err(JobError::Torn { .. })));
    }

    #[test]
    fn validate_refuses_mutated_identity() {
        let j = fixture();
        j.validate("generate", j.config, j.schema).unwrap();
        assert!(matches!(
            j.validate("detect", j.config, j.schema),
            Err(JobError::KindMismatch { .. })
        ));
        assert!(matches!(
            j.validate("generate", j.config ^ 1, j.schema),
            Err(JobError::Mismatch { what: "config", .. })
        ));
        assert!(matches!(
            j.validate("generate", j.config, j.schema ^ 1),
            Err(JobError::Mismatch { what: "schema", .. })
        ));
    }

    #[test]
    fn fnv1a_matches_known_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
