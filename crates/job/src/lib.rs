//! Checkpoint/resume for streaming pipeline jobs.
//!
//! Every stage of this workspace's pipeline — streamed generation
//! (`dq_tdg`), pollution (`dq_pollute`), deviation detection
//! (`dq_core`) — is deterministic and chunk-seeded: its output bytes
//! are a pure function of config, seed, and schema, at every chunking
//! and thread count. This crate adds the one ingredient that turns
//! that determinism into crash recovery: a tiny, atomically committed
//! **journal** recording how far a job got, so a process killed at any
//! point (`kill -9` included) can resume and produce output files
//! **byte-identical** to an uninterrupted run.
//!
//! The pieces:
//!
//! * [`Journal`] — the `dq-job v1` commit record: job kind, config +
//!   schema fingerprints, stream cursor, optional RNG state, named
//!   counters, and per-output committed watermarks, closed by a
//!   checksum line (see [`journal`] for the full grammar);
//! * [`CheckpointDir`] — atomic journal commits (stage + fsync +
//!   rename + directory fsync) plus the `DQ_CRASH_BEFORE_COMMIT` /
//!   `DQ_CRASH_AFTER_COMMITS` knobs the chaos suite uses to die at
//!   exact commit points;
//! * [`resume_file`] / [`CountingWriter`] — reopen a flat output at
//!   its journaled byte watermark (truncating any uncommitted tail)
//!   and keep an exact committed-length count while writing.
//!
//! What this crate deliberately does **not** contain: the per-stage
//! resume logic (seeking a generator, restoring a pollution RNG,
//! merging partial audit reports) lives with each stage —
//! `GenerateStream::seek_to_row`, `PolluteStream::resume`,
//! `PagedWriter::resume`, `AuditEngine::scan_batch` — and the `dq`
//! CLI wires them to this journal. Failure is always loud and typed
//! ([`JobError`]): a torn journal, a mutated config, or an output
//! shorter than its watermark each refuse to resume rather than risk
//! splicing two different streams into one file.

mod checkpoint;
mod error;
pub mod journal;

pub use checkpoint::{resume_file, CheckpointDir, CountingWriter, JOURNAL};
pub use error::JobError;
pub use journal::{fnv1a, Journal, Watermark};
