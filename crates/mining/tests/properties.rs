//! Property-based checks of the mining substrate: tree predictions,
//! rule extraction and association mining must uphold their structural
//! contracts on arbitrary tables.

use dq_mining::{
    Apriori, AprioriConfig, C45Config, C45Inducer, Classifier, InducerKind, Pruning, TrainingSet,
};
use dq_table::{Schema, SchemaBuilder, Table, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    SchemaBuilder::new()
        .nominal("a", ["p", "q", "r"])
        .nominal("b", ["p", "q", "r", "s"])
        .numeric("x", 0.0, 10.0)
        .nominal("y", ["k0", "k1", "k2"])
        .build()
        .unwrap()
}

fn cell(attr: usize) -> BoxedStrategy<Value> {
    match attr {
        0 => prop_oneof![Just(Value::Null), (0u32..3).prop_map(Value::Nominal)].boxed(),
        1 => prop_oneof![Just(Value::Null), (0u32..4).prop_map(Value::Nominal)].boxed(),
        2 => prop_oneof![Just(Value::Null), (0.0f64..10.0).prop_map(Value::Number)].boxed(),
        _ => prop_oneof![Just(Value::Null), (0u32..3).prop_map(Value::Nominal)].boxed(),
    }
}

fn record() -> impl Strategy<Value = Vec<Value>> {
    (cell(0), cell(1), cell(2), cell(3)).prop_map(|(a, b, x, y)| vec![a, b, x, y])
}

/// Tables with at least a handful of labelled rows.
fn table_strategy() -> impl Strategy<Value = Table> {
    proptest::collection::vec(record(), 20..120).prop_map(|rows| {
        let mut t = Table::new(schema());
        for (i, mut r) in rows.into_iter().enumerate() {
            if r[3].is_null() && i % 2 == 0 {
                r[3] = Value::Nominal((i % 3) as u32); // guarantee some classes
            }
            t.push_row(&r).unwrap();
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Tree predictions are structurally sound on arbitrary records:
    /// non-negative counts, support bounded by the training weight,
    /// and deterministic.
    #[test]
    fn tree_prediction_contract(t in table_strategy(), probe in record()) {
        let ts = TrainingSet::full(&t, 3, 4).unwrap();
        let n_train = ts.rows.len() as f64;
        let tree = C45Inducer::default().induce_tree(&ts).unwrap();
        let p = tree.predict(&probe);
        prop_assert_eq!(p.counts.len(), ts.class_card() as usize);
        prop_assert!(p.counts.iter().all(|&c| c >= 0.0 && c.is_finite()));
        prop_assert!(p.support <= n_train + 1e-6, "support {} > {}", p.support, n_train);
        let again = tree.predict(&probe);
        prop_assert_eq!(p.counts, again.counts);
    }

    /// Full-tree rule extraction partitions the NULL-free record space:
    /// every NULL-free record matches exactly one enabled rule.
    #[test]
    fn rules_partition_nullfree_space(t in table_strategy(), probe in record()) {
        prop_assume!(probe.iter().all(|v| !v.is_null()));
        let ts = TrainingSet::full(&t, 3, 4).unwrap();
        let cfg = C45Config { pruning: Pruning::None, ..C45Config::default() };
        let tree = C45Inducer::new(cfg).induce_tree(&ts).unwrap();
        let rules = tree.to_rules();
        let matches = rules
            .iter()
            .filter(|r| r.premise_matches(&probe) == Some(true))
            .count();
        prop_assert!(matches <= 1, "{matches} rules match one record");
        // If no rule matches, the record fell into an all-NULL-trained
        // branch (empty leaf) — acceptable; but rule supports must
        // still sum to the training weight.
        let total: f64 = rules.iter().map(|r| r.support).sum();
        prop_assert!((total - ts.rows.len() as f64).abs() < 1e-6);
    }

    /// Every inducer family produces a working classifier on arbitrary
    /// data.
    #[test]
    fn all_inducers_produce_classifiers(t in table_strategy(), probe in record()) {
        let ts = TrainingSet::full(&t, 3, 4).unwrap();
        for kind in [
            InducerKind::default(),
            InducerKind::NaiveBayes,
            InducerKind::Knn { k: 3 },
            InducerKind::OneR,
            InducerKind::ZeroR,
        ] {
            let clf = kind.build().induce(&ts).unwrap();
            let p = clf.predict(&probe);
            prop_assert_eq!(p.counts.len(), ts.class_card() as usize);
            prop_assert!(p.counts.iter().all(|&c| c >= 0.0 && c.is_finite()));
        }
    }

    /// Apriori contracts: rule confidences within (0, 1], supports at
    /// least the minimum, violated rules' antecedents actually hold on
    /// the record.
    #[test]
    fn apriori_contract(t in table_strategy()) {
        let cfg = AprioriConfig { min_support: 0.1, min_confidence: 0.7, ..AprioriConfig::default() };
        let min_count = (0.1 * t.n_rows() as f64).max(1.0);
        let ap = Apriori::mine(&t, cfg).unwrap();
        for r in ap.rules() {
            prop_assert!(r.confidence > 0.0 && r.confidence <= 1.0 + 1e-12);
            prop_assert!(r.support + 1e-9 >= min_count);
        }
        for row in 0..t.n_rows().min(20) {
            let coded = ap.code_record(&t.row(row));
            for v in ap.violated(&coded) {
                // The consequent attribute must disagree, non-NULL.
                prop_assert!(coded[v.attr].is_some());
            }
            // Hipp score bounds: sum of violated confidences.
            let sum: f64 = ap.violated(&coded).map(|r| r.confidence).sum();
            prop_assert!((ap.hipp_score(&coded) - sum).abs() < 1e-9);
            prop_assert!(ap.max_violated_confidence(&coded) <= sum + 1e-9);
        }
    }

    /// Pruned trees never grow beyond unpruned ones, and disabling
    /// weak leaves never increases the enabled count.
    #[test]
    fn pruning_monotonicity(t in table_strategy()) {
        let ts = TrainingSet::full(&t, 3, 4).unwrap();
        let unpruned = C45Inducer::new(C45Config { pruning: Pruning::None, ..C45Config::default() })
            .induce_tree(&ts)
            .unwrap();
        let pruned = C45Inducer::default().induce_tree(&ts).unwrap();
        prop_assert!(pruned.n_leaves() <= unpruned.n_leaves());
        let mut tree = unpruned;
        let before = tree.n_enabled_leaves();
        let disabled = tree.disable_undetecting_leaves(0.8);
        prop_assert_eq!(tree.n_enabled_leaves() + disabled, before);
    }
}
