//! k-nearest-neighbour classification — the "instance based
//! classifiers" family the paper evaluated for the QUIS domain
//! (sec. 5).
//!
//! The distance is a per-attribute mix suited to mostly-nominal
//! schemas (the related-work section notes that distance functions
//! over nominal attributes are exactly what makes classic outlier
//! detection hard there):
//!
//! * nominal: 0 on equality, 1 on mismatch (overlap metric);
//! * numeric/date: `|x − y|` normalized by the declared domain extent;
//! * NULL on either side: 1 (maximally uninformative).
//!
//! Prediction = class counts of the k nearest training instances, so
//! the support the error confidence sees is `k`.

use crate::classifier::{Classifier, Inducer, Prediction};
use crate::dataset::TrainingSet;
use crate::error::MiningError;
use dq_table::{AttrIdx, AttrType, Value};

/// The k-NN "induction" algorithm (it memorizes the training rows).
#[derive(Debug, Clone, Copy)]
pub struct KnnInducer {
    k: usize,
}

impl KnnInducer {
    /// Create a k-NN inducer with neighbourhood size `k`.
    pub fn new(k: usize) -> Self {
        KnnInducer { k }
    }
}

#[derive(Debug, Clone)]
struct KnnModel {
    /// Stored training instances: base values plus class code.
    instances: Vec<(Vec<Value>, u32)>,
    base_attrs: Vec<AttrIdx>,
    /// Domain extent per base attribute (None for nominal).
    extents: Vec<Option<f64>>,
    card: u32,
    k: usize,
}

impl Inducer for KnnInducer {
    fn induce(&self, train: &TrainingSet<'_>) -> Result<Box<dyn Classifier>, MiningError> {
        if self.k == 0 {
            return Err(MiningError::BadConfig("k must be at least 1".into()));
        }
        let extents: Vec<Option<f64>> = train
            .base_attrs
            .iter()
            .map(|&a| match &train.table.schema().attr(a).ty {
                AttrType::Nominal { .. } => None,
                AttrType::Numeric { min, max, .. } => Some((max - min).max(f64::MIN_POSITIVE)),
                AttrType::Date { min, max } => Some(((max - min) as f64).max(1.0)),
            })
            .collect();
        let mut instances = Vec::with_capacity(train.rows.len());
        for &r in &train.rows {
            let values: Vec<Value> =
                train.base_attrs.iter().map(|&a| train.table.get(r, a)).collect();
            instances.push((values, train.class_codes[r].expect("training row has a class")));
        }
        Ok(Box::new(KnnModel {
            instances,
            base_attrs: train.base_attrs.clone(),
            extents,
            card: train.class_card(),
            k: self.k,
        }))
    }

    fn name(&self) -> &'static str {
        "knn"
    }
}

impl KnnModel {
    fn distance(&self, probe: &[Value], stored: &[Value]) -> f64 {
        let mut d = 0.0;
        for (i, s) in stored.iter().enumerate() {
            let p = &probe[self.base_attrs[i]];
            d += match (self.extents[i], p, s) {
                (_, Value::Null, _) | (_, _, Value::Null) => 1.0,
                (None, a, b) => f64::from(a.as_nominal() != b.as_nominal()),
                (Some(extent), a, b) => match (a.as_numeric(), b.as_numeric()) {
                    (Some(x), Some(y)) => ((x - y).abs() / extent).min(1.0),
                    _ => 1.0,
                },
            };
        }
        d
    }
}

impl Classifier for KnnModel {
    fn predict(&self, record: &[Value]) -> Prediction {
        // Partial selection of the k smallest distances: a bounded
        // insertion buffer beats sorting the whole table for small k.
        let k = self.k.min(self.instances.len());
        if k == 0 {
            return Prediction::empty(self.card);
        }
        let mut best: Vec<(f64, u32)> = Vec::with_capacity(k + 1);
        for (values, class) in &self.instances {
            let d = self.distance(record, values);
            if best.len() < k || d < best[best.len() - 1].0 {
                let pos = best.partition_point(|&(bd, _)| bd <= d);
                best.insert(pos, (d, *class));
                if best.len() > k {
                    best.pop();
                }
            }
        }
        let mut counts = vec![0.0; self.card as usize];
        for &(_, class) in &best {
            counts[class as usize] += 1.0;
        }
        Prediction::from_counts(counts)
    }

    fn describe(&self) -> String {
        format!("{}-nn over {} instances", self.k, self.instances.len())
    }

    fn class_card(&self) -> u32 {
        self.card
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_table::{SchemaBuilder, Table};

    fn clustered_table() -> Table {
        let schema = SchemaBuilder::new()
            .numeric("x", 0.0, 100.0)
            .nominal("tag", ["p", "q"])
            .nominal("y", ["low", "high"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..30 {
            // Cluster A near x=10 with tag p → low, cluster B near x=90
            // with tag q → high.
            let (x, tag, y) = if i % 2 == 0 {
                (10.0 + (i % 5) as f64, 0, 0)
            } else {
                (90.0 - (i % 5) as f64, 1, 1)
            };
            t.push_row(&[Value::Number(x), Value::Nominal(tag), Value::Nominal(y)]).unwrap();
        }
        t
    }

    #[test]
    fn classifies_by_neighbourhood() {
        let t = clustered_table();
        let ts = TrainingSet::full(&t, 2, 4).unwrap();
        let clf = KnnInducer::new(5).induce(&ts).unwrap();
        let p = clf.predict(&[Value::Number(12.0), Value::Nominal(0), Value::Null]);
        assert_eq!(p.predicted_class(), 0);
        assert_eq!(p.support, 5.0);
        let p = clf.predict(&[Value::Number(88.0), Value::Nominal(1), Value::Null]);
        assert_eq!(p.predicted_class(), 1);
    }

    #[test]
    fn k_larger_than_training_set_is_clamped() {
        let t = clustered_table();
        let ts = TrainingSet::full(&t, 2, 4).unwrap();
        let clf = KnnInducer::new(1000).induce(&ts).unwrap();
        let p = clf.predict(&[Value::Number(50.0), Value::Null, Value::Null]);
        assert_eq!(p.support, 30.0);
    }

    #[test]
    fn nulls_are_maximally_distant() {
        let t = clustered_table();
        let ts = TrainingSet::full(&t, 2, 4).unwrap();
        let clf = KnnInducer::new(3).induce(&ts).unwrap();
        // All-null probe: every instance is equidistant; prediction
        // still works (deterministic tie handling) with support 3.
        let p = clf.predict(&[Value::Null, Value::Null, Value::Null]);
        assert_eq!(p.support, 3.0);
    }

    #[test]
    fn mixed_distance_respects_domain_extent() {
        let t = clustered_table();
        let ts = TrainingSet::full(&t, 2, 4).unwrap();
        let clf = KnnInducer::new(1).induce(&ts).unwrap();
        // Same tag, tiny numeric offset → nearest neighbour is the
        // matching cluster even with 1 neighbour.
        let p = clf.predict(&[Value::Number(11.0), Value::Nominal(0), Value::Null]);
        assert_eq!(p.predicted_class(), 0);
        assert_eq!(p.support, 1.0);
    }

    #[test]
    fn rejects_zero_k() {
        let t = clustered_table();
        let ts = TrainingSet::full(&t, 2, 4).unwrap();
        assert!(KnnInducer::new(0).induce(&ts).is_err());
        assert_eq!(KnnInducer::new(3).name(), "knn");
    }
}
