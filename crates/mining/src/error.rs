//! Error type for induction failures.

use std::fmt;

/// Errors raised while preparing training data or inducing models.
#[derive(Debug, Clone, PartialEq)]
pub enum MiningError {
    /// The class attribute index is out of range.
    UnknownAttribute(usize),
    /// The class attribute appears among the base attributes.
    ClassInBaseSet,
    /// No training rows with a non-NULL class value.
    EmptyTrainingSet,
    /// A configuration parameter is out of its valid range.
    BadConfig(String),
}

impl fmt::Display for MiningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiningError::UnknownAttribute(i) => write!(f, "attribute index {i} out of range"),
            MiningError::ClassInBaseSet => {
                write!(f, "class attribute listed among base attributes")
            }
            MiningError::EmptyTrainingSet => {
                write!(f, "no training rows with a non-NULL class value")
            }
            MiningError::BadConfig(m) => write!(f, "bad configuration: {m}"),
        }
    }
}

impl std::error::Error for MiningError {}
