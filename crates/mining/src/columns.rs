//! Dense columnar view of a [`TrainingSet`] — the induction hot path's
//! data layout.
//!
//! The paper's premise that "only data mining algorithms that scale
//! well with the size of training sets can be employed" (sec. 5) makes
//! the inner loops of C4.5 induction the single hottest code in the
//! workspace. The row-at-a-time [`dq_table::Table::get`] path
//! constructs a [`dq_table::Value`] enum per cell access; over the
//! `O(attributes × rows × depth)` accesses of a tree induction that
//! dominates the runtime. [`ColumnarTraining`] is built **once** per
//! training set and replaces every cell access with a dense typed
//! array read:
//!
//! * nominal base attributes become a `Vec<u32>` of codes
//!   ([`NULL_CODE`] marks NULL — out-of-domain codes keep their value,
//!   since the induction treats any code past the label list exactly
//!   like a missing value);
//! * ordered (numeric/date) base attributes become a `Vec<f64>` of
//!   widened payloads plus a `Vec<bool>` null mask, and a **presorted
//!   row index** (rows with known values, stably sorted by value) that
//!   the SLIQ/SPRINT-style induction threads down the recursion
//!   instead of re-sorting at every node;
//! * the class column becomes dense pre-validated `u32` codes, so the
//!   recursion never re-unwraps `Option<u32>` per instance.
//!
//! Row indices are stored as `u32` (half the footprint of `usize` on
//! 64-bit targets, and the arrays here are what the induction streams
//! through); tables beyond `u32::MAX` rows are rejected at build time.

use crate::dataset::TrainingSet;
use dq_table::AttrType;
use std::sync::Arc;

/// Sentinel code marking a NULL nominal cell (never a valid label code:
/// label lists are bounded far below `u32::MAX`, and every consumer
/// checks `code < card` before use).
pub const NULL_CODE: u32 = u32::MAX;

/// One base attribute's dense column.
#[derive(Debug, Clone)]
pub enum BaseColumn {
    /// A nominal attribute: raw codes, [`NULL_CODE`] for NULL.
    Nominal {
        /// Per-row codes (dense over the whole table).
        codes: Vec<u32>,
        /// Number of declared labels; codes at or past it (including
        /// [`NULL_CODE`]) are treated as missing by the induction.
        card: usize,
    },
    /// An ordered (numeric or date) attribute, widened to `f64` like
    /// [`dq_table::Value::as_numeric`] widens it. The payload arrays
    /// are behind `Arc` so a shared [`TableCache`] hands the same
    /// allocation to every per-class-attribute induction.
    Ordered {
        /// Per-row payloads (dense; entries under a `false` mask bit
        /// are never read).
        values: Arc<Vec<f64>>,
        /// `known[r]` is `true` iff row `r` carries a non-NULL value.
        known: Arc<Vec<bool>>,
        /// The training rows with known values, sorted by
        /// `(value, row)` — the one-off presort that replaces the
        /// per-node `sort_by` of the legacy induction.
        sorted_rows: Vec<u32>,
    },
}

/// One ordered attribute's table-level data, shared by every
/// per-class-attribute induction over the same table.
#[derive(Debug, Clone)]
struct OrderedCache {
    values: Arc<Vec<f64>>,
    known: Arc<Vec<bool>>,
    /// All rows with known values, sorted by `(value, row)`.
    sorted_all: Vec<u32>,
}

/// A table-level column cache: the widened payloads, null masks and
/// full-table presort of every ordered attribute. The multiple
/// classification / regression auditor induces one tree per attribute
/// over the *same* table — with this cache the expensive per-attribute
/// sorts run once per table instead of once per class attribute
/// (each [`ColumnarTraining::build_with`] then derives its
/// training-row presort by a stable filter, which preserves the
/// byte-exact order a direct stable sort would produce).
#[derive(Debug, Clone, Default)]
pub struct TableCache {
    /// Per table attribute; `None` for nominal attributes.
    ordered: Vec<Option<OrderedCache>>,
}

impl TableCache {
    /// Build the cache: one pass plus one stable sort per ordered
    /// attribute of `table`.
    pub fn build(table: &dq_table::Table) -> TableCache {
        let n_rows = table.n_rows();
        assert!(
            u32::try_from(n_rows).is_ok(),
            "columnar induction supports at most u32::MAX rows, got {n_rows}"
        );
        let ordered = (0..table.n_cols())
            .map(|a| match &table.schema().attr(a).ty {
                AttrType::Nominal { .. } => None,
                AttrType::Numeric { .. } | AttrType::Date { .. } => {
                    let (values, known) = widen_ordered(table, a);
                    let mut sorted_all: Vec<u32> =
                        (0..n_rows as u32).filter(|&r| known[r as usize]).collect();
                    sorted_all.sort_by(|&x, &y| values[x as usize].total_cmp(&values[y as usize]));
                    Some(OrderedCache {
                        values: Arc::new(values),
                        known: Arc::new(known),
                        sorted_all,
                    })
                }
            })
            .collect();
        TableCache { ordered }
    }
}

/// Widen one ordered column to dense `f64` payloads plus a null mask.
fn widen_ordered(table: &dq_table::Table, attr: usize) -> (Vec<f64>, Vec<bool>) {
    let n_rows = table.n_rows();
    let column = table.column(attr);
    let mut values = vec![0.0f64; n_rows];
    let mut known = vec![false; n_rows];
    match (column.as_number(), column.as_date()) {
        (Some(xs), _) => {
            for (r, x) in xs.iter().enumerate() {
                if let Some(x) = x {
                    values[r] = *x;
                    known[r] = true;
                }
            }
        }
        (_, Some(ds)) => {
            for (r, d) in ds.iter().enumerate() {
                if let Some(d) = d {
                    values[r] = *d as f64;
                    known[r] = true;
                }
            }
        }
        _ => unreachable!("ordered attribute, ordered column"),
    }
    (values, known)
}

/// The dense columnar cache of one [`TrainingSet`].
#[derive(Debug, Clone)]
pub struct ColumnarTraining {
    /// Class code per table row; [`NULL_CODE`] for rows with a NULL
    /// class (those never appear in the training instance set).
    pub class_codes: Vec<u32>,
    /// One dense column per base attribute, parallel to
    /// `TrainingSet::base_attrs`.
    pub attrs: Vec<BaseColumn>,
}

impl ColumnarTraining {
    /// Materialize the cache: one pass per base attribute plus one
    /// stable sort per ordered attribute. After this, induction never
    /// touches `Table::get` or `Value` again.
    pub fn build(train: &TrainingSet<'_>) -> ColumnarTraining {
        Self::build_with(train, None)
    }

    /// [`ColumnarTraining::build`] with an optional shared
    /// [`TableCache`]: ordered payloads are copied from the cache and
    /// the training-row presort is derived by a **stable filter** of
    /// the cached full-table sort — a subsequence of a stably sorted
    /// sequence is exactly the stable sort of the subset, so the
    /// resulting order (and every downstream float) is identical to
    /// the sort the uncached path performs.
    pub fn build_with(train: &TrainingSet<'_>, cache: Option<&TableCache>) -> ColumnarTraining {
        let n_rows = train.table.n_rows();
        assert!(
            u32::try_from(n_rows).is_ok(),
            "columnar induction supports at most u32::MAX rows, got {n_rows}"
        );
        let mut class_codes = vec![NULL_CODE; n_rows];
        for (&r, &c) in train.rows.iter().zip(&train.codes) {
            class_codes[r] = c;
        }
        let attrs = train
            .base_attrs
            .iter()
            .map(|&a| {
                let column = train.table.column(a);
                match &train.table.schema().attr(a).ty {
                    AttrType::Nominal { labels } => {
                        let src = column.as_nominal().expect("nominal attribute, nominal column");
                        BaseColumn::Nominal {
                            codes: src.iter().map(|c| c.unwrap_or(NULL_CODE)).collect(),
                            card: labels.len(),
                        }
                    }
                    AttrType::Numeric { .. } | AttrType::Date { .. } => {
                        if let Some(cached) = cache.and_then(|c| c.ordered[a].as_ref()) {
                            let sorted_rows = cached
                                .sorted_all
                                .iter()
                                .copied()
                                .filter(|&r| class_codes[r as usize] != NULL_CODE)
                                .collect();
                            return BaseColumn::Ordered {
                                values: Arc::clone(&cached.values),
                                known: Arc::clone(&cached.known),
                                sorted_rows,
                            };
                        }
                        let (values, known) = widen_ordered(train.table, a);
                        // Stable sort of the known training rows by value:
                        // equal values keep row order, exactly like the
                        // legacy per-node `sort_by(total_cmp)` did.
                        let mut sorted_rows: Vec<u32> =
                            train.rows.iter().filter(|&&r| known[r]).map(|&r| r as u32).collect();
                        sorted_rows
                            .sort_by(|&a, &b| values[a as usize].total_cmp(&values[b as usize]));
                        BaseColumn::Ordered {
                            values: Arc::new(values),
                            known: Arc::new(known),
                            sorted_rows,
                        }
                    }
                }
            })
            .collect();
        ColumnarTraining { class_codes, attrs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_table::{SchemaBuilder, Table, Value};

    fn table() -> Table {
        let schema = SchemaBuilder::new()
            .nominal("c", ["a", "b"])
            .nominal("n", ["x", "y", "z"])
            .numeric("v", 0.0, 100.0)
            .date_ymd("d", (2000, 1, 1), (2010, 1, 1))
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        let rows = [
            [Value::Nominal(0), Value::Nominal(2), Value::Number(5.0), Value::Date(11000)],
            [Value::Nominal(1), Value::Null, Value::Number(5.0), Value::Null],
            [Value::Null, Value::Nominal(0), Value::Null, Value::Date(11500)],
            [Value::Nominal(0), Value::Nominal(1), Value::Number(2.0), Value::Date(10950)],
        ];
        for r in rows {
            t.push_row_lenient(&r).unwrap();
        }
        t
    }

    #[test]
    fn dense_codes_and_masks_mirror_the_table() {
        let t = table();
        let train = TrainingSet::full(&t, 0, 4).unwrap();
        let cols = ColumnarTraining::build(&train);
        // Class codes: row 2 has a NULL class.
        assert_eq!(cols.class_codes, vec![0, 1, NULL_CODE, 0]);
        // Nominal base attribute `n`.
        match &cols.attrs[0] {
            BaseColumn::Nominal { codes, card } => {
                assert_eq!(*card, 3);
                assert_eq!(codes, &vec![2, NULL_CODE, 0, 1]);
            }
            other => panic!("expected nominal column, got {other:?}"),
        }
        // Ordered base attribute `v`: training rows are 0, 1, 3 (row 2
        // has a NULL class); row 2's value is NULL anyway.
        match &cols.attrs[1] {
            BaseColumn::Ordered { values, known, sorted_rows } => {
                assert_eq!(known.as_slice(), &[true, true, false, true]);
                assert_eq!(values[0], 5.0);
                // (2.0, row 3) < (5.0, row 0) < (5.0, row 1): stable on ties.
                assert_eq!(sorted_rows, &vec![3, 0, 1]);
            }
            other => panic!("expected ordered column, got {other:?}"),
        }
        // Date attribute widens to day numbers.
        match &cols.attrs[2] {
            BaseColumn::Ordered { values, known, sorted_rows } => {
                assert_eq!(values[0], 11000.0);
                assert!(!known[1]);
                assert_eq!(sorted_rows, &vec![3, 0]); // row 2 not a training row
            }
            other => panic!("expected ordered column, got {other:?}"),
        }
    }

    #[test]
    fn out_of_domain_codes_survive_verbatim() {
        let t = table();
        let mut t = t;
        t.set(0, 1, Value::Nominal(99)).unwrap(); // past the 3-label list
        let train = TrainingSet::full(&t, 0, 4).unwrap();
        let cols = ColumnarTraining::build(&train);
        match &cols.attrs[0] {
            BaseColumn::Nominal { codes, card } => {
                assert_eq!(codes[0], 99);
                assert!(codes[0] as usize >= *card, "treated as missing by `< card` checks");
            }
            other => panic!("expected nominal column, got {other:?}"),
        }
    }
}
