//! The classifier abstraction of the multiple classification /
//! regression approach.
//!
//! "The error confidence measure can be used with each classifier that
//! both outputs a predicted class distribution and the number of
//! training instances this prediction is based on. This independence
//! from C4.5 makes it usable in data auditing tools for domains that
//! require different data mining algorithms." (sec. 5.2)

use crate::dataset::TrainingSet;
use crate::error::MiningError;
use dq_stats::argmax;
use dq_table::Value;

/// A class-distribution prediction with its evidential support.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Weighted class counts (not normalized — callers that need
    /// probabilities divide by [`Prediction::support`]). Keeping raw
    /// counts preserves the sample size the confidence bounds need.
    pub counts: Vec<f64>,
    /// Number of training instances the prediction is based on
    /// (fractional under C4.5's missing-value weighting).
    pub support: f64,
}

impl Prediction {
    /// A prediction carrying no evidence (empty leaf / untrained
    /// region). Its error confidence is always 0.
    pub fn empty(card: u32) -> Self {
        Prediction { counts: vec![0.0; card as usize], support: 0.0 }
    }

    /// Build from counts, computing the support as their sum.
    pub fn from_counts(counts: Vec<f64>) -> Self {
        let support = counts.iter().sum();
        Prediction { counts, support }
    }

    /// The predicted (majority) class code.
    pub fn predicted_class(&self) -> u32 {
        argmax(&self.counts) as u32
    }

    /// Normalized probability of class `c` (0 when support is 0).
    pub fn probability(&self, c: u32) -> f64 {
        if self.support <= 0.0 {
            0.0
        } else {
            self.counts.get(c as usize).copied().unwrap_or(0.0) / self.support
        }
    }

    /// Error confidence of observing class `c` against this prediction
    /// (Def. 7), at two-sided confidence `level`.
    pub fn error_confidence(&self, observed: u32, level: f64) -> f64 {
        dq_stats::error_confidence(&self.counts, observed as usize, level)
    }
}

/// A trained model predicting the class distribution of a record.
///
/// Records are full rows of the audited table (indexed by attribute,
/// like [`dq_table::Table::row`] produces); implementations only look
/// at their base attributes.
pub trait Classifier: Send + Sync {
    /// Predict the class distribution for a record.
    fn predict(&self, record: &[Value]) -> Prediction;

    /// A short human-readable description (family, size).
    fn describe(&self) -> String;

    /// Number of class codes this classifier distinguishes.
    fn class_card(&self) -> u32;

    /// Downcast to a C4.5 decision tree, if that is what this is.
    /// Structure-model persistence serializes trees exactly; other
    /// classifier families return `None` (and cannot be persisted).
    fn as_c45(&self) -> Option<&crate::tree::DecisionTree> {
        None
    }
}

/// An induction algorithm producing [`Classifier`]s.
pub trait Inducer {
    /// Induce a classifier from a training set.
    fn induce(&self, train: &TrainingSet<'_>) -> Result<Box<dyn Classifier>, MiningError>;

    /// The family name (for reports).
    fn name(&self) -> &'static str;
}

/// The classifier families evaluated in the paper, as a configuration
/// enum ("instance based classifiers, naive Bayes classifiers,
/// classification rule inducers, and decision trees").
#[derive(Debug, Clone, PartialEq)]
pub enum InducerKind {
    /// C4.5 decision trees with the data-auditing adjustments.
    C45(crate::tree::C45Config),
    /// Naive Bayes with Laplace smoothing.
    NaiveBayes,
    /// k-nearest-neighbour instance-based classification.
    Knn {
        /// Neighbourhood size.
        k: usize,
    },
    /// OneR single-attribute rules.
    OneR,
    /// Majority-class baseline.
    ZeroR,
}

impl InducerKind {
    /// Materialize the inducer.
    pub fn build(&self) -> Box<dyn Inducer> {
        match self {
            InducerKind::C45(cfg) => Box::new(crate::tree::C45Inducer::new(cfg.clone())),
            InducerKind::NaiveBayes => Box::new(crate::naive_bayes::NaiveBayesInducer::default()),
            InducerKind::Knn { k } => Box::new(crate::knn::KnnInducer::new(*k)),
            InducerKind::OneR => Box::new(crate::oner::OneRInducer),
            InducerKind::ZeroR => Box::new(crate::zeror::ZeroRInducer),
        }
    }

    /// The family name.
    pub fn name(&self) -> &'static str {
        match self {
            InducerKind::C45(_) => "c4.5",
            InducerKind::NaiveBayes => "naive-bayes",
            InducerKind::Knn { .. } => "knn",
            InducerKind::OneR => "oner",
            InducerKind::ZeroR => "zeror",
        }
    }
}

impl Default for InducerKind {
    fn default() -> Self {
        InducerKind::C45(crate::tree::C45Config::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_accessors() {
        let p = Prediction::from_counts(vec![6.0, 2.0, 0.0]);
        assert_eq!(p.support, 8.0);
        assert_eq!(p.predicted_class(), 0);
        assert_eq!(p.probability(0), 0.75);
        assert_eq!(p.probability(9), 0.0);
        assert_eq!(p.error_confidence(0, 0.95), 0.0);
        assert!(p.error_confidence(2, 0.95) >= 0.0);
    }

    #[test]
    fn empty_prediction_is_inert() {
        let p = Prediction::empty(4);
        assert_eq!(p.support, 0.0);
        assert_eq!(p.probability(1), 0.0);
        assert_eq!(p.error_confidence(1, 0.95), 0.0);
    }

    #[test]
    fn kind_names_and_default() {
        assert_eq!(InducerKind::default().name(), "c4.5");
        assert_eq!(InducerKind::NaiveBayes.name(), "naive-bayes");
        assert_eq!((InducerKind::Knn { k: 3 }).name(), "knn");
        assert_eq!(InducerKind::OneR.name(), "oner");
        assert_eq!(InducerKind::ZeroR.name(), "zeror");
    }
}
