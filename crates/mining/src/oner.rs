//! OneR: single-attribute classification rules (Holte 1993) — the
//! "classification rule inducers" family the paper evaluated for the
//! QUIS domain (sec. 5).
//!
//! OneR picks the one base attribute whose value → majority-class table
//! misclassifies the fewest training instances. Ordered attributes are
//! discretized into equal-frequency bins first. The model keeps full
//! per-value class counts, so predictions carry the class distribution
//! and support the error confidence needs.

use crate::classifier::{Classifier, Inducer, Prediction};
use crate::dataset::{ClassSpec, TrainingSet};
use crate::error::MiningError;
use dq_table::{AttrIdx, Value};

/// The OneR induction algorithm.
#[derive(Debug, Clone, Copy)]
pub struct OneRInducer;

impl OneRInducer {
    /// Bins used for ordered attributes.
    const BINS: usize = 8;
}

#[derive(Debug, Clone)]
struct OneRModel {
    /// The selected base attribute.
    attr: AttrIdx,
    /// The selected attribute's code mapping.
    coder: ClassSpec,
    /// Per attribute code: class counts.
    tables: Vec<Vec<f64>>,
    /// Fallback for NULL / out-of-range values: overall class counts.
    fallback: Vec<f64>,
}

impl Inducer for OneRInducer {
    fn induce(&self, train: &TrainingSet<'_>) -> Result<Box<dyn Classifier>, MiningError> {
        if train.base_attrs.is_empty() {
            return Err(MiningError::BadConfig("OneR needs at least one base attribute".into()));
        }
        let card = train.class_card() as usize;
        let coders = train.base_coders(Self::BINS);
        let fallback = train.class_counts();

        let mut best: Option<(f64, usize, Vec<Vec<f64>>)> = None;
        for (i, coder) in coders.iter().enumerate() {
            let a = train.base_attrs[i];
            let mut tables = vec![vec![0.0; card]; coder.card() as usize];
            for &r in &train.rows {
                if let Some(code) = coder.code_of(&train.table.get(r, a)) {
                    let idx = (code as usize).min(tables.len() - 1);
                    tables[idx][train.class_codes[r].expect("class") as usize] += 1.0;
                }
            }
            // Training accuracy of "value → its majority class".
            let correct: f64 = tables.iter().map(|t| t.iter().cloned().fold(0.0, f64::max)).sum();
            if best.as_ref().is_none_or(|(bc, _, _)| correct > *bc) {
                best = Some((correct, i, tables));
            }
        }
        let (_, i, tables) = best.expect("at least one base attribute");
        Ok(Box::new(OneRModel {
            attr: train.base_attrs[i],
            coder: coders[i].clone(),
            tables,
            fallback,
        }))
    }

    fn name(&self) -> &'static str {
        "oner"
    }
}

impl Classifier for OneRModel {
    fn predict(&self, record: &[Value]) -> Prediction {
        match self.coder.code_of(&record[self.attr]) {
            Some(code) => {
                let idx = (code as usize).min(self.tables.len() - 1);
                Prediction::from_counts(self.tables[idx].clone())
            }
            None => Prediction::from_counts(self.fallback.clone()),
        }
    }

    fn describe(&self) -> String {
        format!("oner on attr {} with {} rule values", self.attr, self.tables.len())
    }

    fn class_card(&self) -> u32 {
        self.fallback.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_table::{SchemaBuilder, Table};

    /// `y` is a function of `a`; `b` is pure noise.
    fn one_attribute_table() -> Table {
        let schema = SchemaBuilder::new()
            .nominal("a", ["k0", "k1", "k2"])
            .nominal("b", ["n0", "n1"])
            .nominal("y", ["c0", "c1", "c2"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..90 {
            let a = (i % 3) as u32;
            t.push_row(&[Value::Nominal(a), Value::Nominal((i % 2) as u32), Value::Nominal(a)])
                .unwrap();
        }
        t
    }

    #[test]
    fn picks_the_predictive_attribute() {
        let t = one_attribute_table();
        let ts = TrainingSet::full(&t, 2, 4).unwrap();
        let clf = OneRInducer.induce(&ts).unwrap();
        for a in 0..3u32 {
            let p = clf.predict(&[Value::Nominal(a), Value::Nominal(0), Value::Null]);
            assert_eq!(p.predicted_class(), a);
            assert_eq!(p.support, 30.0);
        }
        assert!(clf.describe().contains("attr 0"));
    }

    #[test]
    fn null_selected_value_falls_back_to_prior() {
        let t = one_attribute_table();
        let ts = TrainingSet::full(&t, 2, 4).unwrap();
        let clf = OneRInducer.induce(&ts).unwrap();
        let p = clf.predict(&[Value::Null, Value::Nominal(0), Value::Null]);
        assert_eq!(p.support, 90.0);
    }

    #[test]
    fn numeric_attribute_rules_via_bins() {
        let schema = SchemaBuilder::new()
            .numeric("x", 0.0, 100.0)
            .nominal("y", ["lo", "hi"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..100 {
            let x = i as f64;
            t.push_row(&[Value::Number(x), Value::Nominal(u32::from(x >= 50.0))]).unwrap();
        }
        let ts = TrainingSet::full(&t, 1, 4).unwrap();
        let clf = OneRInducer.induce(&ts).unwrap();
        assert_eq!(clf.predict(&[Value::Number(5.0), Value::Null]).predicted_class(), 0);
        assert_eq!(clf.predict(&[Value::Number(95.0), Value::Null]).predicted_class(), 1);
    }

    #[test]
    fn rejects_empty_base_set() {
        let t = one_attribute_table();
        let ts = TrainingSet::new(&t, 2, vec![], 4).unwrap();
        assert!(OneRInducer.induce(&ts).is_err());
        assert_eq!(OneRInducer.name(), "oner");
    }
}
