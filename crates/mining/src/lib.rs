//! # dq-mining — classifier substrate for data auditing
//!
//! The multiple classification / regression approach of the paper
//! (sec. 5) induces, for each attribute of the audited relation, a
//! classifier predicting that attribute from the others. "Inside this
//! framework, it is possible to choose different algorithms to induce
//! dependency models between the base and class attributes." This
//! crate provides the framework and the algorithms:
//!
//! * [`dataset`] — [`TrainingSet`]: a class-attribute view over a
//!   table, including the equal-frequency binning of numeric class
//!   attributes;
//! * [`classifier`] — the [`Classifier`]/[`Inducer`] traits. Every
//!   classifier predicts a full **class distribution plus the number
//!   of training instances it is based on** — exactly the two inputs
//!   the paper's error confidence needs, which "makes it usable in
//!   data auditing tools for domains that require different data
//!   mining algorithms";
//! * [`tree`] — C4.5 decision trees (gain ratio, binary numeric
//!   splits, fractional instances for missing values, pessimistic-
//!   error pruning) with the paper's data-auditing adjustments
//!   (minInst pre-pruning, integrated expected-error-confidence
//!   pruning, tree→rule-set transformation);
//! * [`columns`] — the dense columnar cache of a training set (typed
//!   arrays, null masks, dense class codes, one-off presorted ordered
//!   attributes) that the C4.5 induction recursion runs on;
//! * [`flat`] — the contiguous array-of-structs compilation of an
//!   induced tree that deviation detection classifies through,
//!   byte-identical to the boxed tree but allocation- and
//!   pointer-chase-free;
//! * [`naive_bayes`], [`knn`], [`oner`], [`zeror`] — the alternative
//!   inducer families the paper evaluated for the QUIS domain
//!   ("instance based classifiers, naive Bayes classifiers,
//!   classification rule inducers, and decision trees");
//! * [`apriori`] — association rules, the substrate of the Hipp et
//!   al. related-work comparator.

pub mod apriori;
pub mod classifier;
pub mod columns;
pub mod dataset;
pub mod error;
pub mod flat;
pub mod knn;
pub mod naive_bayes;
pub mod oner;
pub mod tree;
pub mod zeror;

pub use apriori::{Apriori, AprioriConfig, AssociationRule};
pub use classifier::{Classifier, Inducer, InducerKind, Prediction};
pub use columns::{BaseColumn, ColumnarTraining, TableCache};
pub use dataset::{ClassSpec, TrainingSet};
pub use error::MiningError;
pub use flat::FlatTree;
pub use knn::KnnInducer;
pub use naive_bayes::NaiveBayesInducer;
pub use oner::OneRInducer;
pub use tree::{
    C45Config, C45Inducer, Condition, ConditionTest, DecisionTree, Node, Pruning, SplitCriterion,
    SplitKind, TreeRule,
};
pub use zeror::ZeroRInducer;
