//! Flattened decision-tree evaluation — the detection hot path's code
//! layout.
//!
//! Deviation detection classifies every record against every
//! attribute's tree ("new data can be checked for deviations and
//! loaded quickly", sec. 5), so the tree walk is executed `rows ×
//! attributes` times. The pointer-chasing [`Node`] representation
//! (`Vec<Node>` children behind separate heap allocations, three
//! `Vec<f64>` payloads per split) is fine for induction and
//! serialization but wasteful to *evaluate*. [`FlatTree`] compiles a
//! [`DecisionTree`] once — at model induction or load time — into:
//!
//! * a contiguous node arena (`Vec<FlatNode>`, children of one split
//!   stored adjacently and addressed by index, no `Box`es);
//! * one shared leaf-count arena and one shared fraction arena
//!   (`Vec<f64>` each), indexed by offset.
//!
//! Evaluation reads cells straight off a table's typed columns
//! ([`dq_table::Column::nominal_at`] / [`dq_table::Column::numeric_at`])
//! — no per-row `Vec<Value>` materialization — and performs **exactly
//! the floating-point operations, in exactly the order**, of
//! [`Node`]-tree classification, so audit reports stay byte-identical
//! at every chunk size and thread count.

use crate::classifier::Classifier;
use crate::tree::{DecisionTree, Node, SplitKind, MIN_WEIGHT};
use dq_table::{RowIdx, Table, TypedCell, Value};

/// One node of the flattened tree. Children of a split occupy the
/// arena slots `children_at .. children_at + n_children` in branch
/// order; a split's missing-value routing fractions occupy the
/// fraction arena at `frac_at` with the same layout.
#[derive(Debug, Clone, Copy)]
enum FlatNode {
    /// An enabled leaf: its class counts live at `counts_at` in the
    /// count arena.
    Leaf {
        /// Offset into the count arena.
        counts_at: u32,
    },
    /// A leaf deleted from the structure model — contributes nothing.
    DisabledLeaf,
    /// `attr`'s nominal code selects among `n_children` children.
    NominalSplit {
        /// Tested base attribute.
        attr: u32,
        /// Number of children (= the attribute's label count at
        /// induction time).
        n_children: u32,
        /// Arena offset of the first child.
        children_at: u32,
        /// Fraction-arena offset of this split's routing fractions.
        frac_at: u32,
    },
    /// `attr <= threshold` selects child 0, `> threshold` child 1.
    ThresholdSplit {
        /// Tested base attribute.
        attr: u32,
        /// The split threshold.
        threshold: f64,
        /// Arena offset of the low child (the high child follows it).
        children_at: u32,
        /// Fraction-arena offset of this split's routing fractions.
        frac_at: u32,
    },
}

/// A [`DecisionTree`] compiled into contiguous arenas for fast
/// record classification. Built by [`FlatTree::from_tree`]; immutable
/// afterwards.
#[derive(Debug, Clone)]
pub struct FlatTree {
    nodes: Vec<FlatNode>,
    counts: Vec<f64>,
    fractions: Vec<f64>,
    class_card: u32,
}

impl FlatTree {
    /// Compile `tree` into its flat form. O(tree size); the result
    /// evaluates bit-identically to the source tree.
    pub fn from_tree(tree: &DecisionTree) -> FlatTree {
        let mut flat = FlatTree {
            nodes: vec![FlatNode::DisabledLeaf],
            counts: Vec::new(),
            fractions: Vec::new(),
            class_card: tree.class_card(),
        };
        flat.fill(tree.root(), 0);
        flat
    }

    fn fill(&mut self, node: &Node, at: usize) {
        match node {
            Node::Leaf { counts, enabled } => {
                self.nodes[at] = if *enabled {
                    let counts_at = self.counts.len() as u32;
                    self.counts.extend_from_slice(counts);
                    FlatNode::Leaf { counts_at }
                } else {
                    FlatNode::DisabledLeaf
                };
            }
            Node::Split { attr, kind, children, fractions, .. } => {
                let children_at = self.nodes.len() as u32;
                for _ in children {
                    self.nodes.push(FlatNode::DisabledLeaf);
                }
                let frac_at = self.fractions.len() as u32;
                self.fractions.extend_from_slice(fractions);
                self.nodes[at] = match kind {
                    SplitKind::Nominal => FlatNode::NominalSplit {
                        attr: *attr as u32,
                        n_children: children.len() as u32,
                        children_at,
                        frac_at,
                    },
                    SplitKind::Threshold(t) => FlatNode::ThresholdSplit {
                        attr: *attr as u32,
                        threshold: *t,
                        children_at,
                        frac_at,
                    },
                };
                for (i, child) in children.iter().enumerate() {
                    self.fill(child, children_at as usize + i);
                }
            }
        }
    }

    /// Number of class codes the tree distinguishes.
    pub fn class_card(&self) -> u32 {
        self.class_card
    }

    /// Number of arena nodes (diagnostics).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Classify row `row` of `table` straight off its columns: `acc`
    /// (length [`FlatTree::class_card`]) is zeroed, then filled with
    /// the weighted class counts the boxed tree's classification would
    /// produce — byte-identical, allocation-free.
    pub fn classify_into(&self, table: &Table, row: RowIdx, acc: &mut [f64]) {
        debug_assert_eq!(acc.len(), self.class_card as usize);
        acc.fill(0.0);
        self.accumulate_columnar(0, table, row, 1.0, acc);
    }

    fn accumulate_columnar(
        &self,
        at: u32,
        table: &Table,
        row: RowIdx,
        weight: f64,
        acc: &mut [f64],
    ) {
        if weight < MIN_WEIGHT {
            return;
        }
        match self.nodes[at as usize] {
            FlatNode::DisabledLeaf => {}
            FlatNode::Leaf { counts_at } => {
                let from = counts_at as usize;
                let counts = &self.counts[from..from + acc.len()];
                for (a, &c) in acc.iter_mut().zip(counts) {
                    *a += weight * c;
                }
            }
            FlatNode::NominalSplit { attr, n_children, children_at, frac_at } => {
                match table.column(attr as usize).nominal_at(row) {
                    Some(code) if code < n_children => {
                        self.accumulate_columnar(children_at + code, table, row, weight, acc);
                    }
                    // NULL (or unseen) test value: distribute over all
                    // branches with the training fractions.
                    _ => self.distribute(children_at, n_children, frac_at, table, row, weight, acc),
                }
            }
            FlatNode::ThresholdSplit { attr, threshold, children_at, frac_at } => {
                match table.column(attr as usize).numeric_at(row) {
                    Some(x) => {
                        let child = children_at + u32::from(x > threshold);
                        self.accumulate_columnar(child, table, row, weight, acc);
                    }
                    None => self.distribute(children_at, 2, frac_at, table, row, weight, acc),
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // private split-shared helper
    fn distribute(
        &self,
        children_at: u32,
        n_children: u32,
        frac_at: u32,
        table: &Table,
        row: RowIdx,
        weight: f64,
        acc: &mut [f64],
    ) {
        for b in 0..n_children {
            let f = self.fractions[(frac_at + b) as usize];
            self.accumulate_columnar(children_at + b, table, row, weight * f, acc);
        }
    }

    /// Classify one row given as [`TypedCell`]s (see
    /// [`dq_table::Table::typed_row_into`]) — the detection scan's
    /// entry point. The cells are fetched once per row and shared by
    /// every attribute's tree, so a chain of splits on one attribute
    /// costs one array read per node instead of one column dispatch.
    ///
    /// The common no-missing-value descent runs as a loop and returns
    /// the reached leaf's count slice **straight out of the arena**:
    /// at weight 1.0 the boxed tree's accumulation into a zeroed
    /// buffer produces exactly those bytes (`0.0 + 1.0 · c = c`), so
    /// nothing is copied (a disabled leaf yields the empty slice, the
    /// same zero support a zeroed buffer carries). Only NULL (or
    /// unseen) test values fall back to the recursive fractional
    /// distribution into `acc`. Arithmetic and traversal order are
    /// exactly those of the boxed tree, so the returned counts are
    /// bit-identical.
    pub fn classify_cells<'a>(&'a self, cells: &[TypedCell], acc: &'a mut [f64]) -> &'a [f64] {
        debug_assert_eq!(acc.len(), self.class_card as usize);
        let mut at = 0u32;
        loop {
            match self.nodes[at as usize] {
                FlatNode::DisabledLeaf => return &[],
                FlatNode::Leaf { counts_at } => {
                    let from = counts_at as usize;
                    return &self.counts[from..from + self.class_card as usize];
                }
                FlatNode::NominalSplit { attr, n_children, children_at, frac_at } => {
                    match cells[attr as usize].as_nominal() {
                        Some(code) if code < n_children => at = children_at + code,
                        _ => {
                            acc.fill(0.0);
                            self.distribute_cells(
                                children_at,
                                n_children,
                                frac_at,
                                cells,
                                1.0,
                                acc,
                            );
                            return acc;
                        }
                    }
                }
                FlatNode::ThresholdSplit { attr, threshold, children_at, frac_at } => {
                    match cells[attr as usize].as_numeric() {
                        Some(x) => at = children_at + u32::from(x > threshold),
                        None => {
                            acc.fill(0.0);
                            self.distribute_cells(children_at, 2, frac_at, cells, 1.0, acc);
                            return acc;
                        }
                    }
                }
            }
        }
    }

    /// Buffer-filling variant of [`FlatTree::classify_cells`] (used by
    /// the equivalence tests): `acc` always ends up holding the full
    /// class-count vector.
    pub fn classify_cells_into(&self, cells: &[TypedCell], acc: &mut [f64]) {
        debug_assert_eq!(acc.len(), self.class_card as usize);
        acc.fill(0.0);
        self.accumulate_cells(0, cells, 1.0, acc);
    }

    fn accumulate_cells(&self, at: u32, cells: &[TypedCell], weight: f64, acc: &mut [f64]) {
        if weight < MIN_WEIGHT {
            return;
        }
        match self.nodes[at as usize] {
            FlatNode::DisabledLeaf => {}
            FlatNode::Leaf { counts_at } => {
                let from = counts_at as usize;
                let counts = &self.counts[from..from + acc.len()];
                for (a, &c) in acc.iter_mut().zip(counts) {
                    *a += weight * c;
                }
            }
            FlatNode::NominalSplit { attr, n_children, children_at, frac_at } => {
                match cells[attr as usize].as_nominal() {
                    Some(code) if code < n_children => {
                        self.accumulate_cells(children_at + code, cells, weight, acc);
                    }
                    _ => {
                        self.distribute_cells(children_at, n_children, frac_at, cells, weight, acc)
                    }
                }
            }
            FlatNode::ThresholdSplit { attr, threshold, children_at, frac_at } => {
                match cells[attr as usize].as_numeric() {
                    Some(x) => {
                        let child = children_at + u32::from(x > threshold);
                        self.accumulate_cells(child, cells, weight, acc);
                    }
                    None => self.distribute_cells(children_at, 2, frac_at, cells, weight, acc),
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // private split-shared helper
    fn distribute_cells(
        &self,
        children_at: u32,
        n_children: u32,
        frac_at: u32,
        cells: &[TypedCell],
        weight: f64,
        acc: &mut [f64],
    ) {
        for b in 0..n_children {
            let f = self.fractions[(frac_at + b) as usize];
            self.accumulate_cells(children_at + b, cells, weight * f, acc);
        }
    }

    /// Record-slice variant of [`FlatTree::classify_into`], for callers
    /// that already hold a materialized row (same arithmetic; used by
    /// the equivalence tests to separate layout effects from access
    /// effects).
    pub fn classify_record_into(&self, record: &[Value], acc: &mut [f64]) {
        debug_assert_eq!(acc.len(), self.class_card as usize);
        acc.fill(0.0);
        self.accumulate_record(0, record, 1.0, acc);
    }

    fn accumulate_record(&self, at: u32, record: &[Value], weight: f64, acc: &mut [f64]) {
        if weight < MIN_WEIGHT {
            return;
        }
        match self.nodes[at as usize] {
            FlatNode::DisabledLeaf => {}
            FlatNode::Leaf { counts_at } => {
                let from = counts_at as usize;
                let counts = &self.counts[from..from + acc.len()];
                for (a, &c) in acc.iter_mut().zip(counts) {
                    *a += weight * c;
                }
            }
            FlatNode::NominalSplit { attr, n_children, children_at, frac_at } => {
                match record[attr as usize].as_nominal() {
                    Some(code) if code < n_children => {
                        self.accumulate_record(children_at + code, record, weight, acc);
                    }
                    _ => {
                        for b in 0..n_children {
                            let f = self.fractions[(frac_at + b) as usize];
                            self.accumulate_record(children_at + b, record, weight * f, acc);
                        }
                    }
                }
            }
            FlatNode::ThresholdSplit { attr, threshold, children_at, frac_at } => {
                match record[attr as usize].as_numeric() {
                    Some(x) => {
                        let child = children_at + u32::from(x > threshold);
                        self.accumulate_record(child, record, weight, acc);
                    }
                    None => {
                        for b in 0..2 {
                            let f = self.fractions[(frac_at + b) as usize];
                            self.accumulate_record(children_at + b, record, weight * f, acc);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::Classifier;
    use crate::dataset::TrainingSet;
    use crate::tree::{C45Config, C45Inducer, Pruning};
    use dq_table::{SchemaBuilder, Value};

    /// A mixed-type table with NULLs, out-of-domain codes and ties.
    fn mixed_table() -> Table {
        let schema = SchemaBuilder::new()
            .nominal("a", ["p", "q", "r"])
            .numeric("x", 0.0, 100.0)
            .date_ymd("d", (2000, 1, 1), (2010, 1, 1))
            .nominal("y", ["lo", "hi"])
            .build()
            .unwrap();
        let base = dq_table::date::days_from_civil(2001, 1, 1);
        let mut t = Table::new(schema);
        for i in 0..300 {
            let a = if i % 11 == 0 { Value::Null } else { Value::Nominal((i % 3) as u32) };
            let x = if i % 7 == 0 { Value::Null } else { Value::Number((i % 40) as f64) };
            let d = Value::Date(base + (i % 25) as i64);
            let y = Value::Nominal(u32::from(i % 40 >= 20));
            t.push_row(&[a, x, d, y]).unwrap();
        }
        t.push_row_lenient(&[
            Value::Nominal(9),
            Value::Number(5.0),
            Value::Null,
            Value::Nominal(0),
        ])
        .unwrap();
        t
    }

    #[test]
    fn flat_classification_is_bit_identical_to_the_boxed_tree() {
        let t = mixed_table();
        let ts = TrainingSet::full(&t, 3, 4).unwrap();
        for pruning in [Pruning::None, Pruning::ExpectedErrorConfidence] {
            let cfg = C45Config { pruning, ..C45Config::default() };
            let mut tree = C45Inducer::new(cfg).induce_tree(&ts).unwrap();
            tree.disable_undetecting_leaves(0.8);
            let flat = FlatTree::from_tree(&tree);
            assert_eq!(flat.class_card(), tree.class_card());
            let mut acc = vec![0.0; flat.class_card() as usize];
            let mut cells = Vec::new();
            for r in 0..t.n_rows() {
                let record = t.row(r);
                let boxed = tree.predict(&record);
                flat.classify_into(&t, r, &mut acc);
                for (k, (&a, &b)) in acc.iter().zip(&boxed.counts).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "row {r}, class {k}");
                }
                flat.classify_record_into(&record, &mut acc);
                for (&a, &b) in acc.iter().zip(&boxed.counts) {
                    assert_eq!(a.to_bits(), b.to_bits(), "record variant, row {r}");
                }
                t.typed_row_into(r, &mut cells);
                flat.classify_cells_into(&cells, &mut acc);
                for (&a, &b) in acc.iter().zip(&boxed.counts) {
                    assert_eq!(a.to_bits(), b.to_bits(), "cells variant, row {r}");
                }
                let direct = flat.classify_cells(&cells, &mut acc);
                if direct.is_empty() {
                    // Disabled-leaf shorthand: stands for an all-zero
                    // count vector.
                    assert!(boxed.counts.iter().all(|&c| c == 0.0), "row {r}");
                } else {
                    for (&a, &b) in direct.iter().zip(&boxed.counts) {
                        assert_eq!(a.to_bits(), b.to_bits(), "arena-direct, row {r}");
                    }
                }
            }
        }
    }

    #[test]
    fn arena_is_contiguous_and_boxed_free() {
        let t = mixed_table();
        let ts = TrainingSet::full(&t, 0, 4).unwrap();
        let cfg = C45Config { pruning: Pruning::None, ..C45Config::default() };
        let tree = C45Inducer::new(cfg).induce_tree(&ts).unwrap();
        let flat = FlatTree::from_tree(&tree);
        // Exactly one arena slot per tree node.
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { children, .. } => 1 + children.iter().map(count).sum::<usize>(),
            }
        }
        assert_eq!(flat.n_nodes(), count(tree.root()));
    }
}
