//! Naive Bayes with Laplace smoothing — one of the classifier families
//! the paper evaluated for the QUIS domain (sec. 5).
//!
//! Ordered base attributes are discretized into equal-frequency bins at
//! induction time, so likelihood tables stay small and the classifier
//! handles the mixed nominal/numeric/date schemas of the domain. NULL
//! base values simply drop out of the likelihood product (the standard
//! naive Bayes treatment of missing data).

use crate::classifier::{Classifier, Inducer, Prediction};
use crate::dataset::{ClassSpec, TrainingSet};
use crate::error::MiningError;
use dq_table::{AttrIdx, Value};

/// The naive Bayes induction algorithm.
#[derive(Debug, Clone)]
pub struct NaiveBayesInducer {
    /// Equal-frequency bins for ordered base attributes.
    pub bins: usize,
    /// Laplace smoothing pseudo-count.
    pub alpha: f64,
}

impl Default for NaiveBayesInducer {
    fn default() -> Self {
        NaiveBayesInducer { bins: 10, alpha: 1.0 }
    }
}

#[derive(Debug, Clone)]
struct NaiveBayesModel {
    /// Prior class counts.
    priors: Vec<f64>,
    /// `likelihoods[a][class][code]` — per base attribute, per class,
    /// the count of each attribute code.
    likelihoods: Vec<Vec<Vec<f64>>>,
    base_attrs: Vec<AttrIdx>,
    coders: Vec<ClassSpec>,
    alpha: f64,
    n_train: f64,
}

impl Inducer for NaiveBayesInducer {
    fn induce(&self, train: &TrainingSet<'_>) -> Result<Box<dyn Classifier>, MiningError> {
        if self.bins < 2 {
            return Err(MiningError::BadConfig("naive Bayes needs at least 2 bins".into()));
        }
        if self.alpha < 0.0 {
            return Err(MiningError::BadConfig("negative smoothing pseudo-count".into()));
        }
        let card = train.class_card() as usize;
        let coders = train.base_coders(self.bins);
        let mut likelihoods: Vec<Vec<Vec<f64>>> =
            coders.iter().map(|c| vec![vec![0.0; c.card() as usize]; card]).collect();
        let mut priors = vec![0.0; card];
        for &r in &train.rows {
            let class = train.class_codes[r].expect("training row has a class") as usize;
            priors[class] += 1.0;
            for (i, &a) in train.base_attrs.iter().enumerate() {
                if let Some(code) = coders[i].code_of(&train.table.get(r, a)) {
                    let row = &mut likelihoods[i][class];
                    // Clamp pollution-born out-of-range codes into the
                    // last cell so they stay countable.
                    let idx = (code as usize).min(row.len() - 1);
                    row[idx] += 1.0;
                }
            }
        }
        Ok(Box::new(NaiveBayesModel {
            priors,
            likelihoods,
            base_attrs: train.base_attrs.clone(),
            coders,
            alpha: self.alpha,
            n_train: train.rows.len() as f64,
        }))
    }

    fn name(&self) -> &'static str {
        "naive-bayes"
    }
}

impl Classifier for NaiveBayesModel {
    fn predict(&self, record: &[Value]) -> Prediction {
        let card = self.priors.len();
        let n: f64 = self.priors.iter().sum();
        if n <= 0.0 {
            return Prediction::empty(card as u32);
        }
        // Work in log space; start from the smoothed priors.
        let mut log_post: Vec<f64> = self
            .priors
            .iter()
            .map(|&p| ((p + self.alpha) / (n + self.alpha * card as f64)).ln())
            .collect();
        for (i, &a) in self.base_attrs.iter().enumerate() {
            let Some(code) = self.coders[i].code_of(&record[a]) else {
                continue; // NULL: drop the factor
            };
            let attr_card = self.coders[i].card() as usize;
            let idx = (code as usize).min(attr_card - 1);
            for (c, lp) in log_post.iter_mut().enumerate() {
                let class_total = self.priors[c];
                let cnt = self.likelihoods[i][c][idx];
                *lp += ((cnt + self.alpha) / (class_total + self.alpha * attr_card as f64)).ln();
            }
        }
        // Normalize back to probabilities, then scale to counts with the
        // full training support — the "number of training instances this
        // prediction is based on" for a global model is the training set.
        let max = log_post.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut probs: Vec<f64> = log_post.iter().map(|&lp| (lp - max).exp()).collect();
        let z: f64 = probs.iter().sum();
        for p in &mut probs {
            *p = *p / z * self.n_train;
        }
        Prediction::from_counts(probs)
    }

    fn describe(&self) -> String {
        format!(
            "naive bayes: {} base attributes, {} classes, {} instances",
            self.base_attrs.len(),
            self.priors.len(),
            self.n_train
        )
    }

    fn class_card(&self) -> u32 {
        self.priors.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_table::{SchemaBuilder, Table};

    /// `y` follows `x` deterministically; `z` is noise.
    fn dependent_table(n: usize) -> Table {
        let schema = SchemaBuilder::new()
            .nominal("x", ["a", "b"])
            .numeric("z", 0.0, 1000.0)
            .nominal("y", ["u", "v"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..n {
            let x = (i % 2) as u32;
            t.push_row(&[
                Value::Nominal(x),
                Value::Number(((i * 37) % 1000) as f64),
                Value::Nominal(x),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn learns_simple_dependency() {
        let t = dependent_table(200);
        let ts = TrainingSet::full(&t, 2, 4).unwrap();
        let clf = NaiveBayesInducer::default().induce(&ts).unwrap();
        for x in 0..2u32 {
            let p = clf.predict(&[Value::Nominal(x), Value::Number(500.0), Value::Null]);
            assert_eq!(p.predicted_class(), x);
            assert!(p.probability(x) > 0.9);
        }
        assert_eq!(clf.class_card(), 2);
    }

    #[test]
    fn missing_base_values_fall_back_to_prior() {
        let t = dependent_table(200);
        let ts = TrainingSet::full(&t, 2, 4).unwrap();
        let clf = NaiveBayesInducer::default().induce(&ts).unwrap();
        let p = clf.predict(&[Value::Null, Value::Null, Value::Null]);
        // Balanced prior: nothing near certainty.
        assert!((p.probability(0) - 0.5).abs() < 0.05, "{:?}", p);
        assert!((p.support - 200.0).abs() < 1e-9);
    }

    #[test]
    fn numeric_base_attributes_are_binned() {
        // y depends on z only: z < 500 → u, else v.
        let schema = SchemaBuilder::new()
            .numeric("z", 0.0, 1000.0)
            .nominal("y", ["u", "v"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..400 {
            let z = i as f64 * 2.5; // covers [0, 997.5]
            t.push_row(&[Value::Number(z), Value::Nominal(u32::from(z >= 500.0))]).unwrap();
        }
        let ts = TrainingSet::full(&t, 1, 4).unwrap();
        let clf = NaiveBayesInducer::default().induce(&ts).unwrap();
        assert_eq!(clf.predict(&[Value::Number(100.0), Value::Null]).predicted_class(), 0);
        assert_eq!(clf.predict(&[Value::Number(900.0), Value::Null]).predicted_class(), 1);
    }

    #[test]
    fn smoothing_keeps_unseen_codes_finite() {
        let t = dependent_table(20);
        let ts = TrainingSet::full(&t, 2, 4).unwrap();
        let clf = NaiveBayesInducer::default().induce(&ts).unwrap();
        // An out-of-domain code clamps into the coder's last cell and
        // must not produce NaN or zero-probability explosions.
        let p = clf.predict(&[Value::Nominal(88), Value::Number(0.0), Value::Null]);
        assert!(p.counts.iter().all(|c| c.is_finite()));
        assert!(p.support > 0.0);
    }

    #[test]
    fn config_validation() {
        let t = dependent_table(20);
        let ts = TrainingSet::full(&t, 2, 4).unwrap();
        assert!(NaiveBayesInducer { bins: 1, alpha: 1.0 }.induce(&ts).is_err());
        assert!(NaiveBayesInducer { bins: 5, alpha: -0.5 }.induce(&ts).is_err());
        assert_eq!(NaiveBayesInducer::default().name(), "naive-bayes");
    }
}
