//! Apriori association-rule mining over single-relation records.
//!
//! Substrate for the Hipp et al. related-work comparator ("use scalable
//! algorithms for association rule induction and define a scoring that
//! rates deviations from these rules based on the confidence of the
//! violated rules", sec. 7). Items are `(attribute, code)` pairs over a
//! fully discretized view of the table — which also demonstrates the
//! limitation the paper points out: "association rules cannot directly
//! model dependencies between numerical attributes"; ordered attributes
//! only enter through equal-frequency bins.
//!
//! Rules have a **single-item consequent** — exactly the shape a data
//! auditor needs, because each violated rule then prescribes a value
//! for one attribute of the record.

use crate::dataset::ClassSpec;
use crate::error::MiningError;
use dq_table::{discretize_equal_frequency, AttrIdx, AttrType, Table, Value};
use std::collections::HashMap;

/// An item: one attribute carrying one code. Packed for cheap hashing.
pub type Item = u64;

/// Pack an `(attribute, code)` pair into an [`Item`].
#[inline]
fn item(attr: AttrIdx, code: u32) -> Item {
    ((attr as u64) << 32) | code as u64
}

/// Unpack an [`Item`] into its `(attribute, code)` pair.
#[inline]
pub fn item_parts(it: Item) -> (AttrIdx, u32) {
    ((it >> 32) as AttrIdx, (it & 0xFFFF_FFFF) as u32)
}

/// Configuration of the Apriori miner.
#[derive(Debug, Clone, PartialEq)]
pub struct AprioriConfig {
    /// Minimum itemset support as a fraction of the row count.
    pub min_support: f64,
    /// Minimum rule confidence.
    pub min_confidence: f64,
    /// Maximum itemset length (antecedent length + 1).
    pub max_len: usize,
    /// Equal-frequency bins for ordered attributes.
    pub bins: usize,
}

impl Default for AprioriConfig {
    fn default() -> Self {
        AprioriConfig { min_support: 0.05, min_confidence: 0.9, max_len: 4, bins: 8 }
    }
}

/// An association rule `antecedent → (attr = code)` with its support
/// count and confidence.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationRule {
    /// Antecedent items, sorted.
    pub antecedent: Vec<Item>,
    /// Consequent attribute.
    pub attr: AttrIdx,
    /// Consequent code under the miner's coding.
    pub code: u32,
    /// Support count of the full itemset.
    pub support: f64,
    /// Rule confidence `supp(X ∪ {y}) / supp(X)`.
    pub confidence: f64,
}

/// The Apriori miner plus the attribute coding it used (needed to code
/// probe records consistently at audit time).
#[derive(Debug, Clone)]
pub struct Apriori {
    config: AprioriConfig,
    coders: Vec<ClassSpec>,
    rules: Vec<AssociationRule>,
    n_rows: usize,
}

impl Apriori {
    /// Mine association rules from `table`.
    pub fn mine(table: &Table, config: AprioriConfig) -> Result<Self, MiningError> {
        if !(0.0..=1.0).contains(&config.min_support) {
            return Err(MiningError::BadConfig("min_support must be in [0, 1]".into()));
        }
        if !(0.0..=1.0).contains(&config.min_confidence) {
            return Err(MiningError::BadConfig("min_confidence must be in [0, 1]".into()));
        }
        if config.max_len < 2 {
            return Err(MiningError::BadConfig("max_len must be at least 2".into()));
        }
        let coders: Vec<ClassSpec> = (0..table.n_cols())
            .map(|a| match &table.schema().attr(a).ty {
                AttrType::Nominal { labels } => ClassSpec::Nominal { card: labels.len() as u32 },
                _ => {
                    ClassSpec::Binned { binning: discretize_equal_frequency(table, a, config.bins) }
                }
            })
            .collect();

        // Code every row once: `transactions[r][a]` is the item of
        // attribute `a` in row `r`, or None for NULL.
        let n_rows = table.n_rows();
        let mut transactions: Vec<Vec<Option<Item>>> = Vec::with_capacity(n_rows);
        for r in 0..n_rows {
            let row: Vec<Option<Item>> = (0..table.n_cols())
                .map(|a| coders[a].code_of(&table.get(r, a)).map(|c| item(a, c)))
                .collect();
            transactions.push(row);
        }

        let min_count = (config.min_support * n_rows as f64).max(1.0);

        // Level 1.
        let mut counts: HashMap<Item, f64> = HashMap::new();
        for t in &transactions {
            for it in t.iter().flatten() {
                *counts.entry(*it).or_insert(0.0) += 1.0;
            }
        }
        let mut supports: HashMap<Vec<Item>, f64> = HashMap::new();
        let mut level: Vec<Vec<Item>> = Vec::new();
        for (it, c) in counts {
            if c >= min_count {
                supports.insert(vec![it], c);
                level.push(vec![it]);
            }
        }
        level.sort();

        // Levelwise expansion.
        let mut all_frequent: Vec<Vec<Item>> = level.clone();
        let mut k = 1;
        while !level.is_empty() && k < config.max_len {
            let candidates = join_level(&level);
            if candidates.is_empty() {
                break;
            }
            let mut cand_counts: Vec<f64> = vec![0.0; candidates.len()];
            for t in &transactions {
                for (i, cand) in candidates.iter().enumerate() {
                    if contains_all(t, cand) {
                        cand_counts[i] += 1.0;
                    }
                }
            }
            let mut next = Vec::new();
            for (cand, c) in candidates.into_iter().zip(cand_counts) {
                if c >= min_count {
                    supports.insert(cand.clone(), c);
                    next.push(cand);
                }
            }
            next.sort();
            all_frequent.extend(next.iter().cloned());
            level = next;
            k += 1;
        }

        // Rule generation: single-item consequents.
        let mut rules = Vec::new();
        for itemset in &all_frequent {
            if itemset.len() < 2 {
                continue;
            }
            let supp = supports[itemset];
            for (i, &consequent) in itemset.iter().enumerate() {
                let mut antecedent: Vec<Item> = itemset.clone();
                antecedent.remove(i);
                let Some(&ant_supp) = supports.get(&antecedent) else {
                    continue;
                };
                let confidence = supp / ant_supp;
                if confidence >= config.min_confidence {
                    let (attr, code) = item_parts(consequent);
                    rules.push(AssociationRule {
                        antecedent,
                        attr,
                        code,
                        support: supp,
                        confidence,
                    });
                }
            }
        }
        rules.sort_by(|a, b| {
            b.confidence.total_cmp(&a.confidence).then(b.support.total_cmp(&a.support))
        });
        Ok(Apriori { config, coders, rules, n_rows })
    }

    /// The mined rules, sorted by descending confidence.
    pub fn rules(&self) -> &[AssociationRule] {
        &self.rules
    }

    /// The configuration the rules were mined with.
    pub fn config(&self) -> &AprioriConfig {
        &self.config
    }

    /// Number of rows the rules were mined from.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Code a record under the miner's attribute coding.
    pub fn code_record(&self, record: &[Value]) -> Vec<Option<Item>> {
        let mut coded = Vec::with_capacity(record.len());
        self.code_record_into(record, &mut coded);
        coded
    }

    /// [`Apriori::code_record`] into a caller-provided buffer — the
    /// association auditor codes every row of the audited table, so
    /// its scan reuses one buffer instead of allocating per record.
    pub fn code_record_into(&self, record: &[Value], coded: &mut Vec<Option<Item>>) {
        coded.clear();
        coded.extend(
            record.iter().enumerate().map(|(a, v)| self.coders[a].code_of(v).map(|c| item(a, c))),
        );
    }

    /// Hipp-style deviation score: the **sum of the confidences of all
    /// violated rules** (a rule is violated when its antecedent holds
    /// but the consequent attribute carries a different, non-NULL
    /// value). The paper criticizes exactly this addition — "strictly
    /// speaking only valid if all rules predict values for the same
    /// attributes" — which is why the main tool takes the maximum
    /// instead; both live here for the comparison experiment.
    pub fn hipp_score(&self, coded: &[Option<Item>]) -> f64 {
        self.violated(coded).map(|r| r.confidence).sum()
    }

    /// Maximum confidence among violated rules — the paper's
    /// combination rule applied to the association auditor.
    pub fn max_violated_confidence(&self, coded: &[Option<Item>]) -> f64 {
        self.violated(coded).map(|r| r.confidence).fold(0.0, f64::max)
    }

    /// Iterate over the rules the coded record violates.
    pub fn violated<'a>(
        &'a self,
        coded: &'a [Option<Item>],
    ) -> impl Iterator<Item = &'a AssociationRule> {
        self.rules.iter().filter(move |r| {
            contains_all(coded, &r.antecedent)
                && match coded[r.attr] {
                    Some(observed) => item_parts(observed).1 != r.code,
                    None => false,
                }
        })
    }
}

/// Does the coded transaction contain every item of `set`?
#[inline]
fn contains_all(transaction: &[Option<Item>], set: &[Item]) -> bool {
    set.iter().all(|&it| {
        let (attr, _) = item_parts(it);
        transaction[attr] == Some(it)
    })
}

/// Apriori candidate generation: join sorted k-itemsets sharing their
/// first k−1 items; keep joins whose items come from distinct
/// attributes (one record can never hold two values of one attribute).
fn join_level(level: &[Vec<Item>]) -> Vec<Vec<Item>> {
    let mut out = Vec::new();
    for i in 0..level.len() {
        for j in (i + 1)..level.len() {
            let (a, b) = (&level[i], &level[j]);
            if a[..a.len() - 1] != b[..b.len() - 1] {
                break; // sorted: once prefixes diverge, later ones do too
            }
            let last_a = *a.last().expect("non-empty itemset");
            let last_b = *b.last().expect("non-empty itemset");
            if item_parts(last_a).0 == item_parts(last_b).0 {
                continue; // same attribute twice
            }
            let mut cand = a.clone();
            cand.push(last_b);
            cand.sort_unstable();
            // Prune: all (k)-subsets must be frequent. The two parents
            // are; checking the rest needs a lookup structure — the
            // level is sorted, so binary search suffices.
            let all_subsets_frequent = (0..cand.len() - 2).all(|drop| {
                let mut sub = cand.clone();
                sub.remove(drop);
                level.binary_search(&sub).is_ok()
            });
            if all_subsets_frequent {
                out.push(cand);
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_table::{SchemaBuilder, Table};

    /// BRV=404 always co-occurs with GBM=901 (one violation), plus an
    /// independent noise attribute.
    fn quis_like_table() -> Table {
        let schema = SchemaBuilder::new()
            .nominal("brv", ["404", "501"])
            .nominal("gbm", ["901", "911"])
            .nominal("noise", ["a", "b", "c"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..200 {
            let brv = (i % 2) as u32;
            let gbm = brv; // 404↔901, 501↔911
            t.push_row(&[Value::Nominal(brv), Value::Nominal(gbm), Value::Nominal((i % 3) as u32)])
                .unwrap();
        }
        // One record violating BRV=404 → GBM=901.
        t.push_row(&[Value::Nominal(0), Value::Nominal(1), Value::Nominal(0)]).unwrap();
        t
    }

    #[test]
    fn mines_the_dependency() {
        let t = quis_like_table();
        let ap = Apriori::mine(&t, AprioriConfig::default()).unwrap();
        let found = ap
            .rules()
            .iter()
            .any(|r| r.antecedent == vec![item(0, 0)] && r.attr == 1 && r.code == 0);
        assert!(found, "BRV=404 → GBM=901 must be mined; got {:?}", ap.rules());
    }

    #[test]
    fn violation_scoring() {
        let t = quis_like_table();
        let ap = Apriori::mine(&t, AprioriConfig::default()).unwrap();
        let clean = ap.code_record(&t.row(0));
        assert_eq!(ap.hipp_score(&clean), 0.0);
        assert_eq!(ap.max_violated_confidence(&clean), 0.0);
        // The deviating last record violates the rule.
        let dirty = ap.code_record(&t.row(t.n_rows() - 1));
        assert!(ap.hipp_score(&dirty) > 0.9);
        let max = ap.max_violated_confidence(&dirty);
        assert!(max > 0.9 && max <= 1.0);
        // Hipp's sum can exceed the max when several rules fire.
        assert!(ap.hipp_score(&dirty) >= max);
    }

    #[test]
    fn nulls_do_not_violate() {
        let t = quis_like_table();
        let ap = Apriori::mine(&t, AprioriConfig::default()).unwrap();
        let coded = ap.code_record(&[Value::Nominal(0), Value::Null, Value::Null]);
        assert_eq!(ap.hipp_score(&coded), 0.0);
    }

    #[test]
    fn min_support_filters_rare_itemsets() {
        let t = quis_like_table();
        let strict =
            Apriori::mine(&t, AprioriConfig { min_support: 0.9, ..AprioriConfig::default() })
                .unwrap();
        // No single value covers 90% of this table.
        assert!(strict.rules().is_empty());
        let lax = Apriori::mine(&t, AprioriConfig::default()).unwrap();
        assert!(!lax.rules().is_empty());
    }

    #[test]
    fn numeric_attributes_enter_via_bins() {
        let schema =
            SchemaBuilder::new().nominal("c", ["x", "y"]).numeric("n", 0.0, 100.0).build().unwrap();
        let mut t = Table::new(schema);
        for i in 0..100 {
            // c = x ⟺ n < 50.
            let c = (i % 2) as u32;
            let n = if c == 0 { (i % 50) as f64 } else { 50.0 + (i % 50) as f64 };
            t.push_row(&[Value::Nominal(c), Value::Number(n)]).unwrap();
        }
        let ap = Apriori::mine(
            &t,
            AprioriConfig { bins: 2, min_confidence: 0.8, ..AprioriConfig::default() },
        )
        .unwrap();
        assert!(
            ap.rules().iter().any(|r| r.attr == 0 || item_parts(r.antecedent[0]).0 == 0),
            "expected rules across the nominal/binned boundary"
        );
    }

    #[test]
    fn rules_sorted_by_confidence() {
        let t = quis_like_table();
        let ap =
            Apriori::mine(&t, AprioriConfig { min_confidence: 0.5, ..AprioriConfig::default() })
                .unwrap();
        for w in ap.rules().windows(2) {
            assert!(w[0].confidence >= w[1].confidence);
        }
    }

    #[test]
    fn config_validation() {
        let t = quis_like_table();
        for bad in [
            AprioriConfig { min_support: -0.1, ..AprioriConfig::default() },
            AprioriConfig { min_confidence: 1.5, ..AprioriConfig::default() },
            AprioriConfig { max_len: 1, ..AprioriConfig::default() },
        ] {
            assert!(Apriori::mine(&t, bad).is_err());
        }
    }

    #[test]
    fn item_packing_round_trips() {
        let it = item(7, 42);
        assert_eq!(item_parts(it), (7, 42));
        let it = item(0, u32::MAX);
        assert_eq!(item_parts(it), (0, u32::MAX));
    }
}
