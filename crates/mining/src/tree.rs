//! C4.5 decision trees, adjusted for data auditing (secs. 5.1 & 5.4).
//!
//! The induction follows Quinlan's C4.5 as the paper describes it:
//!
//! * split selection by **information gain** (ID3) or **gain ratio**
//!   (C4.5's correction for many-valued attributes), with Quinlan's
//!   heuristic of maximizing gain ratio only among splits of at least
//!   average gain;
//! * **numeric/date base attributes** split by binary thresholds
//!   "taken from the set of all occurring values";
//! * **missing values** handled by fractional instance weights: an
//!   instance with a NULL split value is distributed over all branches
//!   proportionally to the known instances, both in training and in
//!   classification;
//! * **pruning** in three selectable flavours — none, C4.5's
//!   pessimistic-error subtree replacement, and the paper's *integrated
//!   expected-error-confidence* pruning (sec. 5.4), which collapses a
//!   subtree during construction whenever the collapsed leaf has a
//!   higher expected error confidence (Def. 9);
//! * **minInst pre-pruning** (sec. 5.4): a node is not partitioned
//!   further unless some partition keeps at least `min_inst` instances
//!   of one class;
//! * **tree → rule set** transformation with per-rule expected and
//!   maximum-achievable error confidences, so the auditor can "delete
//!   all rules that are not useful for error detection".

use crate::classifier::{Classifier, Inducer, Prediction};
use crate::columns::{BaseColumn, ColumnarTraining, TableCache};
use crate::dataset::TrainingSet;
use crate::error::MiningError;
use dq_exec::WorkerPool;
use dq_stats::{argmax, expected_error_confidence, max_error_confidence};
use dq_table::{AttrIdx, AttrType, Schema, Value};

/// Instances lighter than this are dropped when partitioning; repeated
/// fractional distribution otherwise produces dust that costs time and
/// adds nothing to any count.
pub(crate) const MIN_WEIGHT: f64 = 1e-6;

/// Nodes with fewer instances than this run their split search
/// serially even when an intra-node worker pool is attached: below it
/// the per-call thread handoff costs more than the scan itself, and
/// deep-tree nodes are small. Results are identical either way.
const PARALLEL_MIN_INSTANCES: usize = 4096;

/// Pruning strategy.
///
/// ## Interpreting the paper's Def. 9 pruning
///
/// The paper replaces a subtree by a leaf "whenever this transformation
/// leads to a higher value for expErrorConf". Read with *raw* Def. 9
/// values, that rule contradicts the paper's own flagship result: for
/// the QUIS table behind `BRV = 404 → GBM = 901` (16117+1 vs 2000
/// records) the unsplit root scores `expErrorConf ≈ 0.085` (it softly
/// flags all 2000 `GBM = 911` records at ≈ 77% — *below* the 80%
/// minimal confidence the experiments fix) while the perfect split
/// scores `≈ 5.5 × 10⁻⁵`; raw maximization would prune the very split
/// that detects the deviation the paper reports at 99.95%. Sec. 5.4
/// resolves part of this: "low error confidence values are mostly not
/// useful in reality" — the user's minimal confidence bounds what
/// counts as detection, so all quantities below are **threshold-aware**
/// (contributions under [`C45Config::min_detect_conf`] are zeroed).
///
/// [`Pruning::ExpectedErrorConfidence`] keeps a subtree iff the
/// partition either *explains away* would-be flags (lower
/// above-threshold expected error confidence: minority mass that looks
/// erroneous at the parent is legitimate structure in a child — this
/// is what protects correct outliers, cf. sec. 2.2 "outliers can be
/// correct") or *enables new detections* (higher above-threshold
/// detection capability — this is what keeps the QUIS split alive).
/// Everything else "does not increase the error detection capability"
/// and is collapsed — in particular the noise trees of the sec. 5.4
/// motivation, whose leaves can neither fire nor explain. The raw
/// literal rule is retained as
/// [`Pruning::ExpectedErrorConfidenceRaw`] for the ablation
/// experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pruning {
    /// Grow the full tree (bounded only by the stopping rules).
    None,
    /// C4.5's subtree replacement by pessimistic classification error
    /// (sec. 5.1.2): post-prune after construction.
    PessimisticError,
    /// The paper's integrated pruning (sec. 5.4), threshold-aware (see
    /// the enum-level discussion): during construction, a subtree is
    /// replaced by a leaf unless it either lowers the expected
    /// above-threshold error confidence or adds detection capability.
    #[default]
    ExpectedErrorConfidence,
    /// Def. 9 exactly as worded, on raw values: replace whenever the
    /// collapsed leaf's expected error confidence is higher. Collapses
    /// high-support impure nodes (see discussion); ablation only.
    ExpectedErrorConfidenceRaw,
}

/// Split selection criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitCriterion {
    /// ID3's information gain (systematically favours many-valued
    /// attributes — kept for ablation).
    InfoGain,
    /// C4.5's gain ratio over splits of at least average gain.
    #[default]
    GainRatio,
}

/// Configuration of the C4.5 inducer.
#[derive(Debug, Clone, PartialEq)]
pub struct C45Config {
    /// Split selection criterion.
    pub criterion: SplitCriterion,
    /// Pruning strategy.
    pub pruning: Pruning,
    /// Two-sided confidence level for all interval bounds (pessimistic
    /// error, expected error confidence).
    pub level: f64,
    /// minInst pre-pruning (sec. 5.4): a split is admissible only if at
    /// least one partition retains `min_inst` instances of one class,
    /// and a node whose best class count is already below `min_inst`
    /// becomes a leaf immediately. `0` disables the rule.
    pub min_inst: f64,
    /// Minimum total instance weight required to attempt a split
    /// (C4.5's default of 2: splitting fewer cannot generalize).
    pub min_split: f64,
    /// Minimum instance weight per branch: a split is admissible only
    /// if at least two branches carry this much weight (C4.5's MINOBJS
    /// rule, slightly strengthened). Without it the tree *carves every
    /// training error into its own singleton leaf* — the corrupted
    /// record then premise-matches its private pure leaf and is
    /// invisible to deviation detection.
    pub min_branch: f64,
    /// Hard depth bound (safety net on degenerate data).
    pub max_depth: usize,
    /// The user's minimal error confidence for detections; error-
    /// confidence contributions below it are ignored by the
    /// threshold-aware [`Pruning::ExpectedErrorConfidence`] criterion
    /// (see the [`Pruning`] discussion). The auditor sets this to its
    /// own minimal confidence.
    pub min_detect_conf: f64,
}

impl Default for C45Config {
    fn default() -> Self {
        C45Config {
            criterion: SplitCriterion::GainRatio,
            pruning: Pruning::ExpectedErrorConfidence,
            level: 0.95,
            min_inst: 0.0,
            min_split: 2.0,
            min_branch: 4.0,
            max_depth: 64,
            min_detect_conf: 0.8,
        }
    }
}

impl C45Config {
    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), MiningError> {
        if !(self.level > 0.0 && self.level < 1.0) {
            return Err(MiningError::BadConfig(format!(
                "confidence level must be in (0, 1), got {}",
                self.level
            )));
        }
        if self.min_inst < 0.0 || self.min_split < 0.0 || self.min_branch < 0.0 {
            return Err(MiningError::BadConfig(
                "min_inst, min_split and min_branch must be non-negative".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.min_detect_conf) {
            return Err(MiningError::BadConfig(format!(
                "min_detect_conf must be in [0, 1], got {}",
                self.min_detect_conf
            )));
        }
        if self.max_depth == 0 {
            return Err(MiningError::BadConfig("max_depth must be at least 1".into()));
        }
        Ok(())
    }
}

/// How an inner node routes records.
#[derive(Debug, Clone, PartialEq)]
pub enum SplitKind {
    /// One child per nominal code of the attribute.
    Nominal,
    /// Two children: `value <= threshold` (child 0) and
    /// `value > threshold` (child 1).
    Threshold(f64),
}

/// A node of the induced tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A leaf predicting its class-count distribution. Disabled leaves
    /// (`enabled == false`) have been deleted from the structure model
    /// (sec. 5.4 rule deletion) and predict nothing.
    Leaf {
        /// Weighted class counts of the training instances at the leaf.
        counts: Vec<f64>,
        /// Whether the leaf still takes part in deviation detection.
        enabled: bool,
    },
    /// An inner test node.
    Split {
        /// The tested base attribute.
        attr: AttrIdx,
        /// The routing kind.
        kind: SplitKind,
        /// One node per branch.
        children: Vec<Node>,
        /// Fraction of (known) training weight that went to each child —
        /// the distribution used for records with a NULL test value.
        fractions: Vec<f64>,
        /// Class counts at this node (kept for diagnostics).
        counts: Vec<f64>,
    },
}

impl Node {
    fn counts(&self) -> &[f64] {
        match self {
            Node::Leaf { counts, .. } | Node::Split { counts, .. } => counts,
        }
    }

    fn weight(&self) -> f64 {
        self.counts().iter().sum()
    }

    /// Expected error confidence of the subtree (Def. 9): leaves use
    /// the class-frequency-weighted average of their own instances'
    /// error confidences; inner nodes the weight-share-weighted average
    /// of their children.
    pub fn expected_error_confidence(&self, level: f64) -> f64 {
        match self {
            Node::Leaf { counts, .. } => expected_error_confidence(counts, level),
            Node::Split { children, .. } => {
                let total: f64 = children.iter().map(Node::weight).sum();
                if total <= 0.0 {
                    return 0.0;
                }
                children
                    .iter()
                    .map(|c| c.weight() / total * c.expected_error_confidence(level))
                    .sum()
            }
        }
    }

    /// Weight of training instances the subtree *flags*: instances
    /// whose asymptotic error confidence (`max(0, P(ĉ) − P(c))`,
    /// sec. 5.2) under their leaf reaches `min_conf` ("low error
    /// confidence values are mostly not useful in reality", sec. 5.4).
    /// The count is binary per instance and **hiding-aware**:
    ///
    /// * binary, because a flag only counts as *explained* when a
    ///   partition pushes the instance's confidence below the user's
    ///   threshold (its observed class is ordinary in the new region);
    ///   mere confidence decay from shrinking proportions would
    ///   otherwise make every minority-concentrating split look like
    ///   an explanation;
    /// * hiding-aware, because instances in leaves lighter than
    ///   `min_inst` keep the flag they would receive under
    ///   `decision_counts` (the node where pruning is decided): a
    ///   sub-minInst leaf is unusable for detection, so moving a
    ///   suspicious instance into one *hides* it rather than explaining
    ///   it. Without this rule the greedy splitter carves every
    ///   training error into a tiny pure leaf — gain rewards exactly
    ///   that — and deviation detection goes blind.
    fn flagged_weight(&self, min_conf: f64, min_inst: f64, decision_counts: &[f64]) -> f64 {
        match self {
            Node::Leaf { counts, .. } => {
                let w: f64 = counts.iter().sum();
                if w <= 0.0 {
                    return 0.0;
                }
                let reference = if w >= min_inst { counts } else { decision_counts };
                let mut acc = 0.0;
                for (c, &cnt) in counts.iter().enumerate() {
                    if cnt > 0.0 && dq_stats::asymptotic_error_confidence(reference, c) >= min_conf
                    {
                        acc += cnt;
                    }
                }
                acc
            }
            Node::Split { children, .. } => {
                children.iter().map(|c| c.flagged_weight(min_conf, min_inst, decision_counts)).sum()
            }
        }
    }

    /// Detection capability at or above `min_conf`: the weight-share
    /// average of each leaf's maximum achievable error confidence,
    /// counting only leaves that can fire at the threshold. Breaks the
    /// 0-vs-0 ties of the threshold-aware pruning comparison: a pure
    /// high-support split flags nothing *in training* but can flag
    /// future deviations; a noise split can flag nothing at all.
    pub fn detection_capability(&self, level: f64, min_conf: f64) -> f64 {
        match self {
            Node::Leaf { counts, .. } => {
                let m = max_error_confidence(counts, level);
                if m >= min_conf {
                    m
                } else {
                    0.0
                }
            }
            Node::Split { children, .. } => {
                let total: f64 = children.iter().map(Node::weight).sum();
                if total <= 0.0 {
                    return 0.0;
                }
                children
                    .iter()
                    .map(|c| c.weight() / total * c.detection_capability(level, min_conf))
                    .sum()
            }
        }
    }

    /// Pessimistic classification error of the subtree (sec. 5.1.2):
    /// `rightBound(observed error rate, |S|)` at leaves, weight-share
    /// average at inner nodes.
    pub fn pessimistic_error(&self, level: f64) -> f64 {
        match self {
            Node::Leaf { counts, .. } => pessimistic_leaf_error(counts, level),
            Node::Split { children, .. } => {
                let total: f64 = children.iter().map(Node::weight).sum();
                if total <= 0.0 {
                    return 0.0;
                }
                children.iter().map(|c| c.weight() / total * c.pessimistic_error(level)).sum()
            }
        }
    }

    fn n_leaves(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { children, .. } => children.iter().map(Node::n_leaves).sum(),
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { children, .. } => 1 + children.iter().map(Node::depth).max().unwrap_or(0),
        }
    }
}

fn pessimistic_leaf_error(counts: &[f64], level: f64) -> f64 {
    let n: f64 = counts.iter().sum();
    if n <= 0.0 {
        return 0.0;
    }
    let majority = counts[argmax(counts)];
    dq_stats::right_bound(1.0 - majority / n, n, level)
}

/// A trained C4.5 decision tree for one class attribute.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    class_card: u32,
    class_attr: AttrIdx,
    level: f64,
}

impl DecisionTree {
    /// Reassemble a tree from its parts — the inverse of structural
    /// serialization (`dq_core`'s model persistence). The caller is
    /// responsible for the parts' internal consistency (counts
    /// cardinality `class_card`, one fraction per child); predictions
    /// over inconsistent parts are unspecified but memory-safe.
    pub fn from_parts(root: Node, class_card: u32, class_attr: AttrIdx, level: f64) -> Self {
        DecisionTree { root, class_card, class_attr, level }
    }

    /// The class attribute this tree predicts.
    pub fn class_attr(&self) -> AttrIdx {
        self.class_attr
    }

    /// The root node (read access for inspection / rendering).
    pub fn root(&self) -> &Node {
        &self.root
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.root.n_leaves()
    }

    /// Tree depth (a lone leaf has depth 1).
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// The confidence level the tree was induced with.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Disable every leaf whose *maximum achievable* error confidence
    /// falls below `min_conf` — the paper's rule deletion (sec. 5.4):
    /// such leaves "cannot contribute to an error detection" at the
    /// user's minimal confidence, so they are removed from the
    /// structure model. Returns the number of leaves disabled.
    pub fn disable_undetecting_leaves(&mut self, min_conf: f64) -> usize {
        fn walk(node: &mut Node, min_conf: f64, level: f64) -> usize {
            match node {
                Node::Leaf { counts, enabled } => {
                    if *enabled && max_error_confidence(counts, level) < min_conf {
                        *enabled = false;
                        1
                    } else {
                        0
                    }
                }
                Node::Split { children, .. } => {
                    children.iter_mut().map(|c| walk(c, min_conf, level)).sum()
                }
            }
        }
        walk(&mut self.root, min_conf, self.level)
    }

    /// Number of enabled leaves (rules in the structure model).
    pub fn n_enabled_leaves(&self) -> usize {
        fn walk(node: &Node) -> usize {
            match node {
                Node::Leaf { enabled, .. } => usize::from(*enabled),
                Node::Split { children, .. } => children.iter().map(walk).sum(),
            }
        }
        walk(&self.root)
    }

    /// Transform the tree into its equivalent rule set ("It is
    /// straightforward to represent an induced decision tree as a set
    /// of rules from the root to its leaves", sec. 5.4). Disabled
    /// leaves are skipped.
    pub fn to_rules(&self) -> Vec<TreeRule> {
        let mut rules = Vec::with_capacity(self.n_leaves());
        let mut path: Vec<Condition> = Vec::new();
        collect_rules(&self.root, &mut path, self.level, &mut rules);
        rules
    }
}

fn collect_rules(node: &Node, path: &mut Vec<Condition>, level: f64, out: &mut Vec<TreeRule>) {
    match node {
        Node::Leaf { counts, enabled } => {
            if *enabled && counts.iter().sum::<f64>() > 0.0 {
                out.push(TreeRule {
                    conditions: merge_conditions(path),
                    predicted: argmax(counts) as u32,
                    counts: counts.clone(),
                    support: counts.iter().sum(),
                    expected_error_confidence: expected_error_confidence(counts, level),
                    max_error_confidence: max_error_confidence(counts, level),
                });
            }
        }
        Node::Split { attr, kind, children, .. } => {
            for (i, child) in children.iter().enumerate() {
                let test = match kind {
                    SplitKind::Nominal => ConditionTest::Eq(i as u32),
                    SplitKind::Threshold(t) => {
                        if i == 0 {
                            ConditionTest::LessEq(*t)
                        } else {
                            ConditionTest::Greater(*t)
                        }
                    }
                };
                path.push(Condition { attr: *attr, test });
                collect_rules(child, path, level, out);
                path.pop();
            }
        }
    }
}

/// Collapse repeated threshold tests on the same attribute along a path
/// (`x <= 7` then `x <= 3` becomes `x <= 3`).
fn merge_conditions(path: &[Condition]) -> Vec<Condition> {
    let mut out: Vec<Condition> = Vec::with_capacity(path.len());
    for c in path {
        if let Some(prev) = out.iter_mut().find(|p| p.attr == c.attr && p.test.same_kind(&c.test)) {
            prev.test = prev.test.tighten(&c.test);
        } else {
            out.push(c.clone());
        }
    }
    out
}

/// One test of a [`TreeRule`] premise.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    /// The tested base attribute.
    pub attr: AttrIdx,
    /// The test applied to it.
    pub test: ConditionTest,
}

/// The test kinds a decision-tree path can impose.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConditionTest {
    /// Nominal equality with a code.
    Eq(u32),
    /// Ordered `value <= threshold`.
    LessEq(f64),
    /// Ordered `value > threshold`.
    Greater(f64),
}

impl ConditionTest {
    fn same_kind(&self, other: &ConditionTest) -> bool {
        matches!(
            (self, other),
            (ConditionTest::Eq(_), ConditionTest::Eq(_))
                | (ConditionTest::LessEq(_), ConditionTest::LessEq(_))
                | (ConditionTest::Greater(_), ConditionTest::Greater(_))
        )
    }

    fn tighten(&self, other: &ConditionTest) -> ConditionTest {
        match (self, other) {
            (ConditionTest::LessEq(a), ConditionTest::LessEq(b)) => {
                ConditionTest::LessEq(a.min(*b))
            }
            (ConditionTest::Greater(a), ConditionTest::Greater(b)) => {
                ConditionTest::Greater(a.max(*b))
            }
            // Equal-kind nominal tests on one path can only repeat the
            // same code (everything else has an empty instance set).
            _ => *other,
        }
    }

    /// Three-valued evaluation against a cell (`None` for NULL).
    pub fn matches(&self, v: &Value) -> Option<bool> {
        if v.is_null() {
            return None;
        }
        match self {
            ConditionTest::Eq(code) => Some(v.as_nominal() == Some(*code)),
            ConditionTest::LessEq(t) => v.as_numeric().map(|x| x <= *t),
            ConditionTest::Greater(t) => v.as_numeric().map(|x| x > *t),
        }
    }
}

/// A root-to-leaf rule of the structure model: "in database terminology
/// it can be seen as a set of integrity constraints that must hold with
/// a given probability" (sec. 5.4).
#[derive(Debug, Clone, PartialEq)]
pub struct TreeRule {
    /// Premise: conjunction of base-attribute tests.
    pub conditions: Vec<Condition>,
    /// The predicted (majority) class code.
    pub predicted: u32,
    /// Weighted class counts at the leaf.
    pub counts: Vec<f64>,
    /// Number of training instances the rule is based on.
    pub support: f64,
    /// Expected error confidence of the leaf (Def. 9).
    pub expected_error_confidence: f64,
    /// Highest error confidence an observation could score against the
    /// rule — its detection capability.
    pub max_error_confidence: f64,
}

impl TreeRule {
    /// `Some(true)` when the record satisfies every condition,
    /// `Some(false)` when some condition is violated, `None` when a
    /// NULL makes the premise undecidable.
    pub fn premise_matches(&self, record: &[Value]) -> Option<bool> {
        let mut all = true;
        for c in &self.conditions {
            match c.test.matches(&record[c.attr]) {
                Some(true) => {}
                Some(false) => return Some(false),
                None => all = false,
            }
        }
        if all {
            Some(true)
        } else {
            None
        }
    }

    /// Render the rule as text using the schema's attribute names and
    /// labels, e.g. `BRV = 404 ∧ KBM = 01 → GBM = 901 [n=16118]`.
    pub fn render(&self, schema: &Schema, class_attr: AttrIdx, class_label: &str) -> String {
        let mut premise = String::new();
        if self.conditions.is_empty() {
            premise.push_str("true");
        }
        for (i, c) in self.conditions.iter().enumerate() {
            if i > 0 {
                premise.push_str(" ∧ ");
            }
            let name = &schema.attr(c.attr).name;
            match c.test {
                ConditionTest::Eq(code) => {
                    let label = schema
                        .attr(c.attr)
                        .label(code)
                        .map(str::to_string)
                        .unwrap_or_else(|| format!("#{code}"));
                    premise.push_str(&format!("{name} = {label}"));
                }
                ConditionTest::LessEq(t) => premise.push_str(&format!("{name} <= {t}")),
                ConditionTest::Greater(t) => premise.push_str(&format!("{name} > {t}")),
            }
        }
        format!(
            "{premise} → {} = {} [n={:.0}]",
            schema.attr(class_attr).name,
            class_label,
            self.support
        )
    }
}

// ---------------------------------------------------------------------------
// Induction
// ---------------------------------------------------------------------------

/// The C4.5 induction algorithm as an [`Inducer`].
#[derive(Debug, Clone, Default)]
pub struct C45Inducer {
    config: C45Config,
}

impl C45Inducer {
    /// Create an inducer with the given configuration.
    pub fn new(config: C45Config) -> Self {
        C45Inducer { config }
    }

    /// Induce a typed [`DecisionTree`] (the trait method boxes it).
    ///
    /// This is the **columnar presorted** induction: a
    /// [`ColumnarTraining`] cache is built once, every ordered base
    /// attribute is sorted once, and the recursion threads stably
    /// partitioned sorted index slices downwards (SLIQ/SPRINT style),
    /// so the per-node threshold search is O(n) instead of
    /// O(n log n). The induced tree is **byte-identical** to
    /// [`C45Inducer::induce_tree_reference`] — every float is produced
    /// by the same operations in the same order; only the data layout
    /// changed.
    pub fn induce_tree(&self, train: &TrainingSet<'_>) -> Result<DecisionTree, MiningError> {
        self.induce_tree_impl(train, None)
    }

    /// [`C45Inducer::induce_tree`] against a shared [`TableCache`] —
    /// the multiple classification / regression auditor induces one
    /// tree per attribute of one table, and the cache lets the
    /// per-attribute inductions share the table-level column widening
    /// and presorts instead of redoing them per class attribute. The
    /// induced tree is identical either way.
    pub fn induce_tree_cached(
        &self,
        train: &TrainingSet<'_>,
        cache: &TableCache,
    ) -> Result<DecisionTree, MiningError> {
        self.induce_tree_impl(train, Some(cache))
    }

    fn induce_tree_impl(
        &self,
        train: &TrainingSet<'_>,
        cache: Option<&TableCache>,
    ) -> Result<DecisionTree, MiningError> {
        self.config.validate()?;
        let ctx = InductionContext::new(train, &self.config, cache);
        let root_set = NodeSet::root(&ctx);
        let mut scratch = Scratch::new(ctx.card);
        let root = grow(&ctx, &mut scratch, root_set, 0);
        Ok(self.finish_tree(train, root))
    }

    /// [`C45Inducer::induce_tree`] with SPRINT-style **intra-node**
    /// parallelism: large nodes shard their nominal count accumulation
    /// across base attributes and their threshold/boundary-cut scans
    /// across contiguous cut segments on `pool`, so induction speedup
    /// is no longer capped at the attribute count. Every partial is
    /// produced by the same float operations in the same per-cell /
    /// per-cut order as the serial sweep, so the induced tree is
    /// **byte-identical** at every thread count (and to
    /// [`C45Inducer::induce_tree`] / the reference path).
    pub fn induce_tree_parallel(
        &self,
        train: &TrainingSet<'_>,
        cache: Option<&TableCache>,
        pool: &WorkerPool,
    ) -> Result<DecisionTree, MiningError> {
        self.config.validate()?;
        let mut ctx = InductionContext::new(train, &self.config, cache);
        if !pool.is_serial() {
            ctx.pool = Some(pool);
        }
        let root_set = NodeSet::root(&ctx);
        let mut scratch = Scratch::new(ctx.card);
        let root = grow(&ctx, &mut scratch, root_set, 0);
        Ok(self.finish_tree(train, root))
    }

    /// Reference implementation: the pre-columnar row-at-a-time
    /// induction, which re-sorts every ordered attribute at every tree
    /// node and reads cells through [`dq_table::Table::get`]. Kept —
    /// unoptimized on purpose — as the ground truth the equivalence
    /// property suite pins [`C45Inducer::induce_tree`] against, and as
    /// the "before" side of the `induction/presort` benchmarks.
    pub fn induce_tree_reference(
        &self,
        train: &TrainingSet<'_>,
    ) -> Result<DecisionTree, MiningError> {
        self.config.validate()?;
        let ctx = InductionContext::reference(train, &self.config);
        let mut instances: Vec<(usize, f64)> = Vec::with_capacity(train.rows.len());
        for &r in &train.rows {
            instances.push((r, 1.0));
        }
        let root = grow_reference(&ctx, instances, 0);
        Ok(self.finish_tree(train, root))
    }

    /// Shared post-construction steps (tree assembly, post-pruning).
    fn finish_tree(&self, train: &TrainingSet<'_>, root: Node) -> DecisionTree {
        let mut tree = DecisionTree {
            root,
            class_card: train.class_card(),
            class_attr: train.class_attr,
            level: self.config.level,
        };
        if self.config.pruning == Pruning::PessimisticError {
            prune_pessimistic(&mut tree.root, self.config.level);
        }
        tree
    }
}

impl Inducer for C45Inducer {
    fn induce(&self, train: &TrainingSet<'_>) -> Result<Box<dyn Classifier>, MiningError> {
        self.induce_tree(train).map(|t| Box::new(t) as Box<dyn Classifier>)
    }

    fn name(&self) -> &'static str {
        "c4.5"
    }
}

struct InductionContext<'a, 'b> {
    train: &'a TrainingSet<'b>,
    card: usize,
    cfg: &'a C45Config,
    /// Types of the base attributes, parallel to `train.base_attrs`.
    attr_types: Vec<AttrType>,
    /// The dense columnar cache (class codes, typed base columns,
    /// presorted ordered-attribute row indices).
    cols: ColumnarTraining,
    /// For each base attribute position: its index into the per-node
    /// sorted lists (`None` for nominal attributes, which need none).
    ordered_idx: Vec<Option<usize>>,
    /// `(attr_pos, card_attr, offset)` of every nominal base attribute:
    /// the layout of the node-level single-pass count accumulation
    /// (offsets into one flat `Σ card_attr × card` scratch matrix).
    nominal_layout: Vec<(usize, usize, usize)>,
    /// Total length of that flat matrix.
    nominal_len: usize,
    /// Intra-node worker pool (SPRINT-style): when attached, large
    /// nodes shard their count accumulation across attributes and
    /// their threshold scans across cut segments. `None` (the
    /// default) is the exact serial path; the grown tree is
    /// byte-identical either way.
    pool: Option<&'a WorkerPool>,
}

impl<'a, 'b> InductionContext<'a, 'b> {
    fn new(train: &'a TrainingSet<'b>, cfg: &'a C45Config, cache: Option<&TableCache>) -> Self {
        let cols = ColumnarTraining::build_with(train, cache);
        let mut next_ordered = 0usize;
        let ordered_idx = cols
            .attrs
            .iter()
            .map(|c| match c {
                BaseColumn::Ordered { .. } => {
                    next_ordered += 1;
                    Some(next_ordered - 1)
                }
                BaseColumn::Nominal { .. } => None,
            })
            .collect();
        let card = train.class_card() as usize;
        let mut nominal_layout = Vec::new();
        let mut nominal_len = 0usize;
        for (pos, col) in cols.attrs.iter().enumerate() {
            if let BaseColumn::Nominal { card: card_attr, .. } = col {
                nominal_layout.push((pos, *card_attr, nominal_len));
                nominal_len += card_attr * card;
            }
        }
        InductionContext {
            train,
            card,
            cfg,
            attr_types: train
                .base_attrs
                .iter()
                .map(|&a| train.table.schema().attr(a).ty.clone())
                .collect(),
            cols,
            ordered_idx,
            nominal_layout,
            nominal_len,
            pool: None,
        }
    }

    /// Context for the row-at-a-time reference recursion: only the
    /// dense class codes are materialized — the reference path reads
    /// cells through [`dq_table::Table::get`], so building the typed
    /// columns and presorts here would charge the columnar setup cost
    /// to the "before" side of the presort benchmarks.
    fn reference(train: &'a TrainingSet<'b>, cfg: &'a C45Config) -> Self {
        let n_rows = train.table.n_rows();
        let mut class_codes = vec![crate::columns::NULL_CODE; n_rows];
        for (&r, &c) in train.rows.iter().zip(&train.codes) {
            class_codes[r] = c;
        }
        InductionContext {
            train,
            card: train.class_card() as usize,
            cfg,
            attr_types: train
                .base_attrs
                .iter()
                .map(|&a| train.table.schema().attr(a).ty.clone())
                .collect(),
            cols: ColumnarTraining { class_codes, attrs: Vec::new() },
            ordered_idx: Vec::new(),
            nominal_layout: Vec::new(),
            nominal_len: 0,
            pool: None,
        }
    }

    /// Class code of a training row — dense, pre-validated, no
    /// per-access unwrap.
    #[inline]
    fn class_of(&self, row: usize) -> u32 {
        self.cols.class_codes[row]
    }

    /// Cell access through the table (reference path only; the
    /// columnar path reads `self.cols` instead).
    fn value(&self, row: usize, attr: AttrIdx) -> Value {
        self.train.table.get(row, attr)
    }
}

fn class_counts(ctx: &InductionContext, instances: &[(usize, f64)]) -> Vec<f64> {
    let mut counts = vec![0.0; ctx.card];
    for &(row, w) in instances {
        counts[ctx.class_of(row) as usize] += w;
    }
    counts
}

/// A candidate split of one node.
struct CandidateSplit {
    /// Index into `base_attrs` / `attr_types`.
    attr_pos: usize,
    kind: SplitKind,
    gain: f64,
    gain_ratio: f64,
    /// Total known instance weight per branch (the per-branch sums of
    /// the class counts the candidate was scored on — all a chosen
    /// split still needs, for its missing-value routing fractions).
    branch_sizes: Vec<f64>,
}

/// Shared stopping rules: `Some(leaf)` when the node must not be
/// partitioned further.
fn stop_as_leaf(ctx: &InductionContext, counts: &[f64], depth: usize) -> bool {
    let total: f64 = counts.iter().sum();
    let max_class = counts.iter().cloned().fold(0.0, f64::max);
    // Pure node, too small to split, depth bound, or minInst
    // pre-pruning (no partition can keep min_inst instances of one
    // class if this node already has fewer).
    let pure = counts.iter().filter(|&&c| c > 0.0).count() <= 1;
    pure || total < ctx.cfg.min_split
        || depth + 1 >= ctx.cfg.max_depth
        || (ctx.cfg.min_inst > 0.0 && max_class < ctx.cfg.min_inst)
}

/// Missing-value routing fractions over the known branch weights.
fn branch_fractions(branch_sizes: &[f64]) -> Vec<f64> {
    let known: f64 = branch_sizes.iter().sum();
    if known > 0.0 {
        branch_sizes.iter().map(|w| w / known).collect()
    } else {
        vec![1.0 / branch_sizes.len() as f64; branch_sizes.len()]
    }
}

/// Integrated pruning (sec. 5.4), applied to a freshly built subtree —
/// see the [`Pruning`] discussion for why the default compares
/// threshold-aware values. Shared verbatim by the columnar and the
/// reference recursion, so their trees cannot drift apart here.
fn integrated_prune(ctx: &InductionContext, node: Node, counts: Vec<f64>) -> Node {
    match ctx.cfg.pruning {
        Pruning::ExpectedErrorConfidence => {
            let leaf = Node::Leaf { counts: counts.clone(), enabled: true };
            let (level, min_conf) = (ctx.cfg.level, ctx.cfg.min_detect_conf);
            // Keep the subtree iff the partition either *explains away*
            // would-be flags (lower above-threshold expected error
            // confidence: minority mass that looked like errors at the
            // parent is legitimate structure in a child) or *enables
            // new detections* (higher above-threshold capability).
            // Anything else "does not increase the error detection
            // capability" (sec. 5.4) and is collapsed.
            let leaf_mass = leaf.flagged_weight(min_conf, ctx.cfg.min_inst, &counts);
            let sub_mass = node.flagged_weight(min_conf, ctx.cfg.min_inst, &counts);
            let explains = sub_mass < leaf_mass - 1e-9 * leaf_mass.max(1.0);
            let enables = node.detection_capability(level, min_conf)
                > leaf.detection_capability(level, min_conf) + 1e-12;
            if !explains && !enables {
                return leaf;
            }
            node
        }
        Pruning::ExpectedErrorConfidenceRaw => {
            let leaf_eec = expected_error_confidence(&counts, ctx.cfg.level);
            if leaf_eec > node.expected_error_confidence(ctx.cfg.level) {
                return Node::Leaf { counts, enabled: true };
            }
            node
        }
        Pruning::None | Pruning::PessimisticError => node,
    }
}

// ---------------------------------------------------------------------------
// Columnar presorted induction (the hot path)
// ---------------------------------------------------------------------------

/// One node's instance view in the presorted recursion.
struct NodeSet {
    /// `(row, weight)` in ascending row order — the same order the
    /// reference recursion's instance vectors carry.
    instances: Vec<(u32, f64)>,
    /// Per ordered base attribute (indexed through
    /// `InductionContext::ordered_idx`): this node's known-value
    /// instances, sorted by `(value, row)`. Maintained by stable
    /// partition, never re-sorted.
    sorted: Vec<SortedCol>,
    /// Bitmask (by base-attribute position, first 64 only) of nominal
    /// attributes this node can no longer usefully split on: an
    /// ancestor split on the attribute and routed *no* missing-value
    /// instances into this branch, so every instance here carries that
    /// branch's single code — the candidate would land its whole mass
    /// in one branch and always fail the two-heavy-branches rule.
    /// Skipping it produces exactly the `None` the evaluation would.
    exhausted: u64,
}

/// One ordered attribute's node-local instances in presorted order,
/// struct-of-arrays so the threshold scan streams sequentially instead
/// of gathering `(value, class, weight)` through three random-access
/// indirections per step.
struct SortedCol {
    /// Global row indices (kept for the membership filter at splits).
    rows: Vec<u32>,
    /// Attribute values, parallel to `rows`.
    values: Vec<f64>,
    /// Class codes, parallel to `rows`.
    classes: Vec<u32>,
    /// Instance weights *in this node*, parallel to `rows`.
    weights: Vec<f64>,
}

impl NodeSet {
    fn root(ctx: &InductionContext) -> NodeSet {
        let instances = ctx.train.rows.iter().map(|&r| (r as u32, 1.0)).collect();
        let sorted = ctx
            .cols
            .attrs
            .iter()
            .filter_map(|c| match c {
                BaseColumn::Ordered { values, sorted_rows, .. } => Some(SortedCol {
                    rows: sorted_rows.clone(),
                    values: sorted_rows.iter().map(|&r| values[r as usize]).collect(),
                    classes: sorted_rows
                        .iter()
                        .map(|&r| ctx.cols.class_codes[r as usize])
                        .collect(),
                    weights: vec![1.0; sorted_rows.len()],
                }),
                BaseColumn::Nominal { .. } => None,
            })
            .collect();
        NodeSet { instances, sorted, exhausted: 0 }
    }
}

/// Reusable per-induction scratch state: small class-indexed buffers
/// that spare the candidate search one heap allocation per node ×
/// attribute.
struct Scratch {
    /// Low-side class counts of the threshold scan (length `card`).
    low: Vec<f64>,
    /// Node class counts over known instances (length `card`).
    all: Vec<f64>,
    /// Ascending list of class codes present in `all` (non-zero count).
    present: Vec<u32>,
    /// Flat count matrix holding every nominal attribute's
    /// `branch × class` counts for one node (see
    /// `InductionContext::nominal_layout`).
    counts: Vec<f64>,
    /// Per-nominal-attribute missing weight, parallel to the layout.
    nominal_missing: Vec<f64>,
    /// Per-ordered-attribute missing (NULL) weight, indexed like the
    /// per-node sorted columns.
    ordered_missing: Vec<f64>,
    /// Flat `2 × class` branch counts of a chosen threshold cut.
    threshold_counts: Vec<f64>,
    /// Low-side snapshot of the best cut seen so far (length `card`).
    best_low: Vec<f64>,
    /// Low-side snapshot of a pending run-interior cut (length `card`).
    pending_low: Vec<f64>,
}

impl Scratch {
    fn new(card: usize) -> Scratch {
        Scratch {
            low: vec![0.0; card],
            all: vec![0.0; card],
            present: Vec::with_capacity(card),
            counts: Vec::new(),
            nominal_missing: Vec::new(),
            ordered_missing: Vec::new(),
            threshold_counts: Vec::new(),
            best_low: vec![0.0; card],
            pending_low: vec![0.0; card],
        }
    }
}

fn grow(ctx: &InductionContext, scratch: &mut Scratch, node_set: NodeSet, depth: usize) -> Node {
    let counts = class_counts_columnar(ctx, &node_set.instances);
    if stop_as_leaf(ctx, &counts, depth) {
        return Node::Leaf { counts, enabled: true };
    }
    let (best, dead_mask) = select_split_columnar(ctx, scratch, &node_set, &counts);
    let Some(best) = best else {
        return Node::Leaf { counts, enabled: true };
    };

    let attr = ctx.train.base_attrs[best.attr_pos];
    let n_branches = best.branch_sizes.len();
    let fractions = branch_fractions(&best.branch_sizes);

    // Partition the instances; NULLs go to every branch with their
    // weight scaled by the branch fraction.
    let mut parts: Vec<Vec<(u32, f64)>> = (0..n_branches)
        .map(|i| Vec::with_capacity((node_set.instances.len() as f64 * fractions[i]) as usize + 1))
        .collect();
    let col = &ctx.cols.attrs[best.attr_pos];
    let mut distributed = false;
    for &(row, w) in &node_set.instances {
        match branch_of_columnar(col, &best.kind, row, n_branches) {
            Some(b) => parts[b].push((row, w)),
            None => {
                distributed = true;
                for (b, part) in parts.iter_mut().enumerate() {
                    let wf = w * fractions[b];
                    if wf >= MIN_WEIGHT {
                        part.push((row, wf));
                    }
                }
            }
        }
    }
    let child_exhausted = node_set.exhausted
        | dead_mask
        | if !distributed && matches!(best.kind, SplitKind::Nominal) && best.attr_pos < 64 {
            1u64 << best.attr_pos
        } else {
            0
        };

    // Thread the presorted columns down: stable partitioning of the
    // parent's columns yields each child's columns already sorted —
    // this is what replaces the per-node re-sort. The split
    // attribute's own column partitions *contiguously* at the
    // threshold (its elements are sorted by exactly the tested value),
    // so it is split by bulk copy; every other column re-derives each
    // element's branch from the split column, carrying parent weights
    // for routed rows and fraction-scaled weights for distributed
    // (NULL-test) rows — the same decisions, weights and relative
    // order the instance partition above produced.
    let split_oi = match best.kind {
        SplitKind::Threshold(_) => ctx.ordered_idx[best.attr_pos],
        SplitKind::Nominal => None,
    };
    let part_lens: Vec<usize> = parts.iter().map(Vec::len).collect();
    let mut child_cols: Vec<Vec<SortedCol>> =
        (0..n_branches).map(|_| Vec::with_capacity(node_set.sorted.len())).collect();
    for (oi, parent) in node_set.sorted.iter().enumerate() {
        // The split attribute's own column partitions *contiguously* at
        // the threshold (its elements are sorted by exactly the tested
        // value), so it splits by bulk copy. NaN payloads sort to the
        // ends under total_cmp but route like ordinary values
        // (`x > t` is false), breaking contiguity — they fall through
        // to the general filter.
        if split_oi == Some(oi) {
            if let SplitKind::Threshold(t) = best.kind {
                let no_nan = parent.values.first().is_none_or(|v| !v.is_nan())
                    && parent.values.last().is_none_or(|v| !v.is_nan());
                if no_nan {
                    let cut = parent.values.partition_point(|&v| v <= t);
                    for (b, cols) in child_cols.iter_mut().enumerate() {
                        let range = if b == 0 { 0..cut } else { cut..parent.rows.len() };
                        cols.push(SortedCol {
                            rows: parent.rows[range.clone()].to_vec(),
                            values: parent.values[range.clone()].to_vec(),
                            classes: parent.classes[range.clone()].to_vec(),
                            weights: parent.weights[range].to_vec(),
                        });
                    }
                    continue;
                }
            }
        }
        // One pass over the parent column routes every element to its
        // child column(s): routed rows keep their parent weight,
        // distributed (NULL-test) rows get the fraction-scaled weight —
        // the same decisions, weights and relative order the instance
        // partition above produced.
        let mut outs: Vec<SortedCol> = part_lens
            .iter()
            .map(|&len| {
                let cap = len.min(parent.rows.len());
                SortedCol {
                    rows: Vec::with_capacity(cap),
                    values: Vec::with_capacity(cap),
                    classes: Vec::with_capacity(cap),
                    weights: Vec::with_capacity(cap),
                }
            })
            .collect();
        for (i, &row) in parent.rows.iter().enumerate() {
            match branch_of_columnar(col, &best.kind, row, n_branches) {
                Some(rb) => {
                    let out = &mut outs[rb];
                    out.rows.push(row);
                    out.values.push(parent.values[i]);
                    out.classes.push(parent.classes[i]);
                    out.weights.push(parent.weights[i]);
                }
                None => {
                    for (b, out) in outs.iter_mut().enumerate() {
                        let wf = parent.weights[i] * fractions[b];
                        if wf >= MIN_WEIGHT {
                            out.rows.push(row);
                            out.values.push(parent.values[i]);
                            out.classes.push(parent.classes[i]);
                            out.weights.push(wf);
                        }
                    }
                }
            }
        }
        for (cols, out) in child_cols.iter_mut().zip(outs) {
            cols.push(out);
        }
    }
    let child_sets: Vec<NodeSet> = parts
        .into_iter()
        .zip(child_cols)
        .map(|(part, sorted)| NodeSet { instances: part, sorted, exhausted: child_exhausted })
        .collect();
    drop(node_set);

    let children: Vec<Node> =
        child_sets.into_iter().map(|s| grow(ctx, scratch, s, depth + 1)).collect();
    let node = Node::Split { attr, kind: best.kind, children, fractions, counts: counts.clone() };
    integrated_prune(ctx, node, counts)
}

fn class_counts_columnar(ctx: &InductionContext, instances: &[(u32, f64)]) -> Vec<f64> {
    let mut counts = vec![0.0; ctx.card];
    for &(row, w) in instances {
        counts[ctx.cols.class_codes[row as usize] as usize] += w;
    }
    counts
}

/// Which branch a row falls into under the columnar cache; `None` for
/// NULL or out-of-domain nominal codes (treated like missing, as C4.5
/// treats unseen values). Mirrors [`branch_of`] exactly.
#[inline]
fn branch_of_columnar(
    col: &BaseColumn,
    kind: &SplitKind,
    row: u32,
    n_branches: usize,
) -> Option<usize> {
    match (kind, col) {
        (SplitKind::Nominal, BaseColumn::Nominal { codes, .. }) => {
            let code = codes[row as usize] as usize;
            if code < n_branches {
                Some(code)
            } else {
                None
            }
        }
        (SplitKind::Threshold(t), BaseColumn::Ordered { values, known, .. }) => {
            if known[row as usize] {
                Some(usize::from(values[row as usize] > *t))
            } else {
                None
            }
        }
        // A split kind never disagrees with its own attribute's column
        // kind (both derive from the schema).
        _ => unreachable!("split kind matches the attribute's column kind"),
    }
}

/// Split selection over the columnar node view. Besides the winning
/// candidate, returns a bitmask of nominal attributes whose count
/// matrix has *no* cell reaching `min_inst`: their candidates are
/// `None` here and — because a child's cells are float-monotone
/// subset sums of the parent's (fewer addends, each at most its
/// original) — provably `None` in every descendant too, so the
/// recursion stops accumulating them.
fn select_split_columnar(
    ctx: &InductionContext,
    scratch: &mut Scratch,
    node_set: &NodeSet,
    parent_counts: &[f64],
) -> (Option<CandidateSplit>, u64) {
    let total: f64 = parent_counts.iter().sum();

    // One shared pass over the instances accumulates *every* nominal
    // attribute's branch × class matrix (and missing weight) at once —
    // the row, weight and class of each instance are loaded once
    // instead of once per attribute. Per matrix, cells receive exactly
    // the per-instance additions of the one-attribute loop, in the
    // same instance order, so every count is bit-identical.
    let card = ctx.card;
    scratch.counts.clear();
    scratch.counts.resize(ctx.nominal_len, 0.0);
    scratch.nominal_missing.clear();
    scratch.nominal_missing.resize(ctx.nominal_layout.len(), 0.0);
    let exhausted = |pos: usize| pos < 64 && node_set.exhausted & (1u64 << pos) != 0;
    {
        let nominal_cols: Vec<(&[u32], usize, usize, usize)> = ctx
            .nominal_layout
            .iter()
            .enumerate()
            .filter(|&(_, &(pos, _, _))| !exhausted(pos))
            .map(|(layout_i, &(pos, card_attr, offset))| {
                let BaseColumn::Nominal { codes, .. } = &ctx.cols.attrs[pos] else {
                    unreachable!("nominal layout points at a nominal column");
                };
                (codes.as_slice(), card_attr, offset, layout_i)
            })
            .collect();
        // Ordered attributes ride the same pass: their per-attribute
        // NULL weights accumulate in the same instance order the
        // reference path's per-attribute gathering loop used.
        let ordered_known: Vec<&[bool]> = ctx
            .cols
            .attrs
            .iter()
            .filter_map(|c| match c {
                BaseColumn::Ordered { known, .. } => Some(known.as_slice()),
                BaseColumn::Nominal { .. } => None,
            })
            .collect();
        scratch.ordered_missing.clear();
        scratch.ordered_missing.resize(ordered_known.len(), 0.0);
        let flat = &mut scratch.counts;
        let missing = &mut scratch.nominal_missing;
        let ordered_missing = &mut scratch.ordered_missing;
        let use_pool = ctx.pool.filter(|_| {
            node_set.instances.len() >= PARALLEL_MIN_INSTANCES
                && nominal_cols.len() + ordered_known.len() >= 2
        });
        if let Some(pool) = use_pool {
            // SPRINT-style attribute sharding: one accumulation unit
            // per base attribute, fanned across the pool. Each unit
            // touches a disjoint slice of the flat matrix and adds its
            // per-instance weights in the exact instance order of the
            // serial pass, so every cell is bit-identical.
            enum Unit<'c> {
                Nominal { codes: &'c [u32], card_attr: usize, offset: usize, layout_i: usize },
                Ordered { known: &'c [bool], oi: usize },
            }
            enum UnitCounts {
                Nominal { offset: usize, layout_i: usize, seg: Vec<f64>, missing: f64 },
                Ordered { oi: usize, missing: f64 },
            }
            let units: Vec<Unit> = nominal_cols
                .iter()
                .map(|&(codes, card_attr, offset, layout_i)| Unit::Nominal {
                    codes,
                    card_attr,
                    offset,
                    layout_i,
                })
                .chain(
                    ordered_known
                        .iter()
                        .enumerate()
                        .map(|(oi, &known)| Unit::Ordered { known, oi }),
                )
                .collect();
            let instances = &node_set.instances;
            let class_codes = &ctx.cols.class_codes;
            let results = pool.map_indexed(&units, |_, unit| match *unit {
                Unit::Nominal { codes, card_attr, offset, layout_i } => {
                    let mut seg = vec![0.0; card_attr * card];
                    let mut miss = 0.0;
                    for &(row, w) in instances {
                        let class = class_codes[row as usize] as usize;
                        let code = codes[row as usize] as usize;
                        if code < card_attr {
                            seg[code * card + class] += w;
                        } else {
                            miss += w;
                        }
                    }
                    UnitCounts::Nominal { offset, layout_i, seg, missing: miss }
                }
                Unit::Ordered { known, oi } => {
                    let mut miss = 0.0;
                    for &(row, w) in instances {
                        if !known[row as usize] {
                            miss += w;
                        }
                    }
                    UnitCounts::Ordered { oi, missing: miss }
                }
            });
            for r in results {
                match r {
                    UnitCounts::Nominal { offset, layout_i, seg, missing: m } => {
                        flat[offset..offset + seg.len()].copy_from_slice(&seg);
                        missing[layout_i] = m;
                    }
                    UnitCounts::Ordered { oi, missing: m } => ordered_missing[oi] = m,
                }
            }
        } else {
            for &(row, w) in &node_set.instances {
                let class = ctx.cols.class_codes[row as usize] as usize;
                for &(codes, card_attr, offset, layout_i) in &nominal_cols {
                    let code = codes[row as usize] as usize;
                    if code < card_attr {
                        flat[offset + code * card + class] += w;
                    } else {
                        missing[layout_i] += w;
                    }
                }
                for (oi, known) in ordered_known.iter().enumerate() {
                    if !known[row as usize] {
                        ordered_missing[oi] += w;
                    }
                }
            }
        }
    }

    // Candidates are collected in base-attribute order — `max_by`
    // breaks ties towards the *last* maximum, so the order is part of
    // the pinned selection semantics.
    let mut dead_mask = 0u64;
    let mut candidates: Vec<CandidateSplit> = Vec::new();
    let mut nominal_i = 0usize;
    for (pos, col) in ctx.cols.attrs.iter().enumerate() {
        let cand = match col {
            BaseColumn::Nominal { .. } => {
                let (_, card_attr, offset) = ctx.nominal_layout[nominal_i];
                let missing = scratch.nominal_missing[nominal_i];
                nominal_i += 1;
                if exhausted(pos) {
                    // An ancestor's split left a single code here; the
                    // candidate would put all mass in one branch and be
                    // rejected by the two-heavy-branches rule — skip
                    // the accumulation, the outcome is exactly `None`.
                    None
                } else {
                    let flat = &scratch.counts[offset..offset + card_attr * card];
                    if ctx.cfg.min_inst > 0.0
                        && pos < 64
                        && !flat.iter().any(|&x| x >= ctx.cfg.min_inst)
                    {
                        dead_mask |= 1u64 << pos;
                    }
                    finish_candidate_flat(
                        ctx,
                        pos,
                        SplitKind::Nominal,
                        flat,
                        card_attr,
                        missing,
                        total,
                    )
                }
            }
            BaseColumn::Ordered { .. } => {
                threshold_candidate_presorted(ctx, scratch, node_set, pos, total)
            }
        };
        if let Some(c) = cand {
            candidates.push(c);
        }
    }
    (pick_candidate(ctx, candidates), dead_mask)
}

/// The presorted threshold search: the node's known instances arrive
/// already sorted by `(value, row)` in contiguous arrays, so one
/// sequential sweep finds the best cut — no per-node sort, no random
/// access. Every accumulation runs in the same order as
/// [`threshold_candidate_reference`], so the selected threshold, gain
/// and branch counts are bit-identical. The per-cut entropy loop
/// iterates only the classes present in the node (absent classes have
/// zero counts on both sides and contribute nothing in either
/// implementation).
fn threshold_candidate_presorted(
    ctx: &InductionContext,
    scratch: &mut Scratch,
    node_set: &NodeSet,
    attr_pos: usize,
    total: f64,
) -> Option<CandidateSplit> {
    let oi = ctx.ordered_idx[attr_pos].expect("ordered attribute");
    let sorted = &node_set.sorted[oi];
    // Missing (NULL) weight, pre-accumulated in instance order by the
    // node-level shared pass.
    let missing = scratch.ordered_missing[oi];
    let n = sorted.rows.len();
    if n < 2 {
        return None;
    }

    // Scan all cuts between distinct adjacent values, maintaining
    // incremental low-side class counts; the threshold is the lower
    // value itself ("split points taken from the set of all occurring
    // values").
    let card = ctx.card;
    let (values, classes, weights) = (&sorted.values, &sorted.classes, &sorted.weights);
    let Scratch { low, all, present, best_low, pending_low, threshold_counts, .. } = scratch;
    let all = &mut all[..card];
    all.fill(0.0);
    for i in 0..n {
        all[classes[i] as usize] += weights[i];
    }
    present.clear();
    for (k, &a) in all.iter().enumerate() {
        if a > 0.0 {
            present.push(k as u32);
        }
    }
    let known_weight: f64 = all.iter().sum();
    let parent_entropy = dq_stats::entropy(all);
    let min_side = ctx.cfg.min_branch.max(f64::MIN_POSITIVE);
    let guard = 1e-6 * (known_weight + 1.0);

    // Value groups of IEEE-equal values (exactly the cuts the
    // exhaustive scan's `values[i + 1] <= x` test suppresses; NaN
    // never equals and so forms singleton, never-pure groups): start
    // index plus the group's pure class, if any. Cut `g` (for
    // `g ≥ 1`) separates groups `g-1` and `g`.
    let mut groups: Vec<(u32, Option<u32>)> = Vec::new();
    let mut i = 0usize;
    while i < n {
        let v0 = values[i];
        let mut j = i;
        let mut pure = if v0.is_nan() { None } else { Some(classes[i]) };
        while j + 1 < n && values[j + 1] == v0 {
            j += 1;
            if pure.is_some_and(|c| c != classes[j]) {
                pure = None;
            }
        }
        groups.push((i as u32, pure));
        i = j + 1;
    }
    let n_groups = groups.len();

    let params = CutScanParams {
        values,
        classes,
        weights,
        all,
        present,
        groups: &groups,
        known_weight,
        parent_entropy,
        min_side,
        guard,
    };
    let best_low = &mut best_low[..card];
    let best = match ctx.pool {
        Some(pool) if n >= PARALLEL_MIN_INSTANCES && n_groups > 2 * pool.threads() => {
            // SPRINT-style segmented scan: contiguous cut ranges, one
            // per worker. Each worker replays its prefix (the cheap
            // additive state only — no entropy evaluations), then
            // evaluates exactly the cuts of its range; merging worker
            // bests in range order under the same strict-greater test
            // replays the serial sweep's ascending first-maximum
            // selection bit for bit.
            let k = pool.threads();
            let n_cuts = n_groups - 1;
            let ranges: Vec<(usize, usize)> = (0..k)
                .map(|w| (1 + n_cuts * w / k, 1 + n_cuts * (w + 1) / k))
                .filter(|(from, to)| from < to)
                .collect();
            let partials = pool.map_indexed(&ranges, |_, &(from, to)| {
                let mut low = vec![0.0; card];
                let mut pending_low = vec![0.0; card];
                let mut seg_best_low = vec![0.0; card];
                let b = scan_cut_range(
                    &params,
                    from,
                    to,
                    &mut low,
                    &mut pending_low,
                    &mut seg_best_low,
                );
                (b, seg_best_low)
            });
            let mut best: Option<(f64, f64, usize)> = None;
            for (seg, seg_low) in &partials {
                if let Some((g, x, pos)) = *seg {
                    if best.is_none_or(|(bg, _, _)| g > bg) {
                        best = Some((g, x, pos));
                        best_low.copy_from_slice(&seg_low[..card]);
                    }
                }
            }
            best
        }
        _ => scan_cut_range(
            &params,
            1,
            n_groups,
            &mut low[..card],
            &mut pending_low[..card],
            best_low,
        ),
    };
    let (_, threshold, cut_end) = best?;
    threshold_counts.clear();
    threshold_counts.resize(2 * card, 0.0);
    let flat = threshold_counts;
    let nan_free =
        values.first().is_none_or(|v| !v.is_nan()) && values.last().is_none_or(|v| !v.is_nan());
    if nan_free {
        // NaN-free columns route exactly by sorted position: the low
        // side is the prefix through `cut_end`, whose class counts the
        // winning cut already accumulated (same additions, same
        // order); only the high suffix needs a pass.
        flat[..card].copy_from_slice(best_low);
        for t in cut_end + 1..n {
            flat[card + classes[t] as usize] += weights[t];
        }
    } else {
        // NaN payloads sort to the ends but compare false against any
        // threshold — keep the exhaustive routing for them.
        for i in 0..n {
            flat[usize::from(values[i] > threshold) * card + classes[i] as usize] += weights[i];
        }
    }
    finish_candidate_flat(ctx, attr_pos, SplitKind::Threshold(threshold), flat, 2, missing, total)
}

/// Read-only inputs of one threshold-cut scan, shared by every
/// segment of a SPRINT-parallel sweep.
struct CutScanParams<'s> {
    values: &'s [f64],
    classes: &'s [u32],
    weights: &'s [f64],
    /// Node class counts over known instances.
    all: &'s [f64],
    /// Ascending class codes with non-zero count in `all`.
    present: &'s [u32],
    /// Value groups: `(start index, pure class)` per IEEE-equal run.
    groups: &'s [(u32, Option<u32>)],
    known_weight: f64,
    parent_entropy: f64,
    min_side: f64,
    guard: f64,
}

/// The boundary-thinned cut sweep over cut indices
/// `[eval_from, eval_to)` (cut `g` separates value groups `g-1` and
/// `g`). Cuts before `eval_from` are **replayed**: their additive state
/// (low-side counts, running weight, feasibility window, pending
/// snapshot) is reconstructed with the exact float operations of the
/// full sweep, but no entropy is evaluated — the sweep's control flow
/// never depends on the best-so-far, so the replayed state at
/// `eval_from` is bit-identical to a full serial sweep's. The scan-end
/// pending flush belongs to the range containing the end
/// (`eval_to == n_groups`).
///
/// The evaluated-cut set is thinned with the Fayyad-Irani boundary
/// theorem (Fayyad & Irani 1992): the information-gain optimum of a
/// binary split never lies strictly inside a run of same-class
/// instances, so a cut whose two adjacent value groups are both pure
/// with the same class cannot win and its (expensive) entropy
/// evaluation is skipped. Two refinements keep the *selection* exactly
/// legacy-equivalent:
///
/// * the min-branch feasibility window clips runs — the gain is convex
///   within a run, so its maximum over the feasible part of a run sits
///   at the first or last *feasible* cut, which are evaluated even
///   when run-interior (the last one retroactively, from a saved
///   low-side snapshot, preserving the ascending first-maximum tie
///   order);
/// * every evaluated cut computes `low_w` and its entropies with the
///   same float operations in the same order as the exhaustive scan,
///   so the winning `(gain, threshold)` is bit-identical.
///
/// Returns `(gain, threshold, end index of the cut's low side)` of the
/// range's best cut; its low-side class counts are left in `best_low`
/// so the final branch-count pass only has to re-accumulate the high
/// side.
fn scan_cut_range(
    p: &CutScanParams<'_>,
    eval_from: usize,
    eval_to: usize,
    low: &mut [f64],
    pending_low: &mut [f64],
    best_low: &mut [f64],
) -> Option<(f64, f64, usize)> {
    let CutScanParams {
        values,
        classes,
        weights,
        all,
        present,
        groups,
        known_weight,
        parent_entropy,
        min_side,
        guard,
    } = *p;
    let n = values.len();
    let n_groups = groups.len();
    low.fill(0.0);
    // Entropy evaluation of one cut from its low-side class counts.
    let evaluate = |low: &[f64], low_w: f64, high_w: f64| {
        let mut high_entropy = 0.0;
        let mut low_entropy = 0.0;
        for &k in present {
            let l = low[k as usize];
            if l > 0.0 {
                let p = l / low_w;
                low_entropy -= p * p.log2();
            }
            let h = all[k as usize] - l;
            if h > 0.0 {
                let p = h / high_w;
                high_entropy -= p * p.log2();
            }
        }
        parent_entropy - low_w / known_weight * low_entropy - high_w / known_weight * high_entropy
    };
    // Feasibility is checked exactly (fresh `low_w` sum) at evaluated
    // cuts and near the window edges; far from the edges a running
    // surrogate decides. The surrogate's drift is bounded by ~n·ε
    // relative error, orders of magnitude inside the guard band, so
    // its verdicts agree with the exact check everywhere it is used.
    let fresh_low_w = |low: &[f64]| {
        let mut low_w = 0.0;
        for &k in present {
            low_w += low[k as usize];
        }
        low_w
    };
    let mut best: Option<(f64, f64, usize)> = None;
    // Pending skipped-but-feasible cut: its threshold and low-side end
    // index, with its low-side snapshot in `pending_low`. If the
    // feasibility window closes before another cut is evaluated, this
    // was the last feasible cut and is evaluated retroactively (its
    // exact `low_w` is re-derived from the snapshot by the same
    // present-class sum).
    let mut pending: Option<(f64, usize)> = None;
    let mut run_low = 0.0f64;
    let mut was_feasible = false;
    for g in 0..n_groups {
        let start = groups[g].0 as usize;
        // The cut between group g-1 and group g.
        if g >= 1 {
            if g >= eval_to {
                break;
            }
            let run_high = known_weight - run_low;
            let feasible =
                if (run_low - min_side).abs() > guard && (run_high - min_side).abs() > guard {
                    // Far from both window edges: the surrogate's verdict
                    // is certain.
                    run_low > min_side && run_high > min_side
                } else {
                    let low_w = fresh_low_w(low);
                    !(low_w < min_side || known_weight - low_w < min_side)
                };
            if feasible {
                let boundary = !(groups[g - 1].1.is_some() && groups[g - 1].1 == groups[g].1);
                if boundary || !was_feasible {
                    // Run boundary, or the first feasible cut of a
                    // clipped run: evaluate exactly (replay-only cuts
                    // skip the evaluation; the state updates are
                    // identical either way).
                    if g >= eval_from {
                        let low_w = fresh_low_w(low);
                        let high_w = known_weight - low_w;
                        let gain = evaluate(low, low_w, high_w);
                        if best.is_none_or(|(bg, _, _)| gain > bg) {
                            best = Some((gain, values[start - 1], start - 1));
                            best_low.copy_from_slice(low);
                        }
                    }
                    pending = None;
                } else {
                    // Run-interior and feasible: remember it in case it
                    // turns out to be the last feasible cut.
                    pending_low.copy_from_slice(low);
                    pending = Some((values[start - 1], start - 1));
                }
            } else if was_feasible {
                // The window just closed; the most recent feasible cut
                // was the clipped run's last feasible position.
                if let Some((px, ppos)) = pending.take() {
                    if g >= eval_from {
                        let plw = fresh_low_w(pending_low);
                        let gain = evaluate(pending_low, plw, known_weight - plw);
                        if best.is_none_or(|(bg, _, _)| gain > bg) {
                            best = Some((gain, px, ppos));
                            best_low.copy_from_slice(pending_low);
                        }
                    }
                }
            }
            was_feasible = feasible;
        }
        let end = if g + 1 < n_groups { groups[g + 1].0 as usize } else { n };
        for t in start..end {
            low[classes[t] as usize] += weights[t];
            run_low += weights[t];
        }
    }
    if eval_to >= n_groups {
        if let Some((px, ppos)) = pending.take() {
            // Scan ended while the window was still open: the
            // remembered cut was the last feasible one.
            let plw = fresh_low_w(pending_low);
            let gain = evaluate(pending_low, plw, known_weight - plw);
            if best.is_none_or(|(bg, _, _)| gain > bg) {
                best = Some((gain, px, ppos));
                best_low.copy_from_slice(pending_low);
            }
        }
    }
    best
}

// ---------------------------------------------------------------------------
// Reference induction (row-at-a-time; equivalence ground truth)
// ---------------------------------------------------------------------------

fn grow_reference(ctx: &InductionContext, instances: Vec<(usize, f64)>, depth: usize) -> Node {
    let counts = class_counts(ctx, &instances);
    if stop_as_leaf(ctx, &counts, depth) {
        return Node::Leaf { counts, enabled: true };
    }

    let Some(best) = select_split_reference(ctx, &instances, &counts) else {
        return Node::Leaf { counts, enabled: true };
    };

    let attr = ctx.train.base_attrs[best.attr_pos];
    let n_branches = best.branch_sizes.len();
    let fractions = branch_fractions(&best.branch_sizes);

    // Partition the instances; NULLs go to every branch with their
    // weight scaled by the branch fraction.
    let mut parts: Vec<Vec<(usize, f64)>> = (0..n_branches)
        .map(|i| Vec::with_capacity((instances.len() as f64 * fractions[i]) as usize + 1))
        .collect();
    for &(row, w) in &instances {
        match branch_of(&best.kind, &ctx.value(row, attr), n_branches) {
            Some(b) => parts[b].push((row, w)),
            None => {
                for (b, part) in parts.iter_mut().enumerate() {
                    let wf = w * fractions[b];
                    if wf >= MIN_WEIGHT {
                        part.push((row, wf));
                    }
                }
            }
        }
    }
    drop(instances);

    let children: Vec<Node> =
        parts.into_iter().map(|p| grow_reference(ctx, p, depth + 1)).collect();
    let node = Node::Split { attr, kind: best.kind, children, fractions, counts: counts.clone() };
    integrated_prune(ctx, node, counts)
}

/// Which branch a value falls into; `None` for NULL or out-of-domain
/// nominal codes (treated like missing, as C4.5 treats unseen values).
fn branch_of(kind: &SplitKind, v: &Value, n_branches: usize) -> Option<usize> {
    match kind {
        SplitKind::Nominal => match v.as_nominal() {
            Some(code) if (code as usize) < n_branches => Some(code as usize),
            _ => None,
        },
        SplitKind::Threshold(t) => v.as_numeric().map(|x| usize::from(x > *t)),
    }
}

fn select_split_reference(
    ctx: &InductionContext,
    instances: &[(usize, f64)],
    parent_counts: &[f64],
) -> Option<CandidateSplit> {
    let total: f64 = parent_counts.iter().sum();
    let mut candidates: Vec<CandidateSplit> = Vec::new();
    for (pos, ty) in ctx.attr_types.iter().enumerate() {
        let attr = ctx.train.base_attrs[pos];
        let cand = match ty {
            AttrType::Nominal { labels } => {
                nominal_candidate_reference(ctx, instances, attr, pos, labels.len(), total)
            }
            AttrType::Numeric { .. } | AttrType::Date { .. } => {
                threshold_candidate_reference(ctx, instances, attr, pos, total)
            }
        };
        if let Some(c) = cand {
            candidates.push(c);
        }
    }
    pick_candidate(ctx, candidates)
}

/// The split-selection criterion applied to a node's candidate list —
/// shared by the columnar and reference paths.
fn pick_candidate(
    ctx: &InductionContext,
    candidates: Vec<CandidateSplit>,
) -> Option<CandidateSplit> {
    if candidates.is_empty() {
        return None;
    }
    match ctx.cfg.criterion {
        SplitCriterion::InfoGain => candidates.into_iter().max_by(|a, b| a.gain.total_cmp(&b.gain)),
        SplitCriterion::GainRatio => {
            // Quinlan's heuristic: best gain ratio among candidates with
            // at least average gain (avoids the ratio exploding on
            // near-zero-gain splits with tiny split info).
            let avg_gain: f64 =
                candidates.iter().map(|c| c.gain).sum::<f64>() / candidates.len() as f64;
            candidates
                .into_iter()
                .filter(|c| c.gain >= avg_gain - 1e-9)
                .max_by(|a, b| a.gain_ratio.total_cmp(&b.gain_ratio))
        }
    }
}

/// Shared post-processing: gain scaled by the known-value fraction
/// (C4.5's missing-value discount), split info including the missing
/// pseudo-branch, minInst admissibility.
/// Shared post-processing on a flat `branch × class` count matrix:
/// gain scaled by the known-value fraction (C4.5's missing-value
/// discount), split info including the missing pseudo-branch, minInst
/// admissibility. Every intermediate float (per-branch sums, known
/// total, entropies, gain, gain ratio) is produced by the same
/// operations in the same order as the historical nested-`Vec`
/// formulation, so candidate scores never drift between the columnar
/// and reference paths.
fn finish_candidate_flat(
    ctx: &InductionContext,
    attr_pos: usize,
    kind: SplitKind,
    flat: &[f64],
    n_branches: usize,
    missing_weight: f64,
    total: f64,
) -> Option<CandidateSplit> {
    let card = ctx.card;
    debug_assert_eq!(flat.len(), n_branches * card);
    // Per-branch known weights, then their total (same nested-sum
    // order as `branch_counts.iter().map(sum).sum()`).
    let branch_sizes: Vec<f64> =
        (0..n_branches).map(|b| flat[b * card..(b + 1) * card].iter().sum::<f64>()).collect();
    let known: f64 = branch_sizes.iter().sum();
    if known <= 0.0 {
        return None;
    }
    // minInst admissibility: some partition must retain min_inst
    // instances of one class.
    if ctx.cfg.min_inst > 0.0 && !flat.iter().any(|&x| x >= ctx.cfg.min_inst) {
        return None;
    }
    // At least two sufficiently heavy branches, otherwise nothing is
    // separated — or worse, a training error gets carved into its own
    // singleton leaf where detection can never see it again.
    let heavy =
        branch_sizes.iter().filter(|&&s| s >= ctx.cfg.min_branch.max(f64::MIN_POSITIVE)).count();
    if heavy < 2 {
        return None;
    }
    // Known-instance class counts (the parent restricted to known).
    let mut known_counts = vec![0.0; card];
    for b in 0..n_branches {
        for (k, &c) in flat[b * card..(b + 1) * card].iter().enumerate() {
            known_counts[k] += c;
        }
    }
    // `info_gain` inlined over the flat rows: identical entropy calls
    // and weighted-remainder accumulation order as the slice-of-vecs
    // version in `dq_stats`. The remainder divisor is the *class-major*
    // total exactly as `info_gain` computes it (summing `known_counts`,
    // not the branch sizes — with fractional weights the two orders can
    // differ in the last ulp, and pre-refactor gains used this one).
    let class_total: f64 = known_counts.iter().sum();
    let raw_gain = if class_total <= 0.0 {
        0.0
    } else {
        let mut remainder = 0.0;
        for b in 0..n_branches {
            let size = branch_sizes[b];
            if size > 0.0 {
                remainder +=
                    size / class_total * dq_stats::entropy(&flat[b * card..(b + 1) * card]);
            }
        }
        dq_stats::entropy(&known_counts) - remainder
    };
    let gain = raw_gain * (known / total);
    if gain <= 1e-9 {
        return None;
    }
    // Split info over the real branches plus the missing pseudo-branch
    // (the entropy of the partition *sizes*; the per-branch sums are
    // exactly `branch_sizes`, the missing pseudo-branch sums to
    // `missing_weight`).
    let mut sizes_for_si = branch_sizes.clone();
    if missing_weight > 0.0 {
        sizes_for_si.push(missing_weight);
    }
    let si = dq_stats::entropy(&sizes_for_si);
    let gain_ratio = if si <= 1e-12 { 0.0 } else { gain / si };
    Some(CandidateSplit { attr_pos, kind, gain, gain_ratio, branch_sizes })
}

/// Nested-`Vec` adapter for the reference candidates: flattens the
/// historical `branch_counts` layout (copying preserves every float)
/// and delegates to [`finish_candidate_flat`].
fn finish_candidate(
    ctx: &InductionContext,
    attr_pos: usize,
    kind: SplitKind,
    branch_counts: Vec<Vec<f64>>,
    missing_weight: f64,
    total: f64,
) -> Option<CandidateSplit> {
    let card = ctx.card;
    let mut flat = vec![0.0; branch_counts.len() * card];
    for (b, bc) in branch_counts.iter().enumerate() {
        flat[b * card..(b + 1) * card].copy_from_slice(bc);
    }
    finish_candidate_flat(ctx, attr_pos, kind, &flat, branch_counts.len(), missing_weight, total)
}

fn nominal_candidate_reference(
    ctx: &InductionContext,
    instances: &[(usize, f64)],
    attr: AttrIdx,
    attr_pos: usize,
    card_attr: usize,
    total: f64,
) -> Option<CandidateSplit> {
    let mut branch_counts = vec![vec![0.0; ctx.card]; card_attr];
    let mut missing = 0.0;
    for &(row, w) in instances {
        match ctx.value(row, attr).as_nominal() {
            Some(code) if (code as usize) < card_attr => {
                branch_counts[code as usize][ctx.class_of(row) as usize] += w;
            }
            _ => missing += w,
        }
    }
    finish_candidate(ctx, attr_pos, SplitKind::Nominal, branch_counts, missing, total)
}

fn threshold_candidate_reference(
    ctx: &InductionContext,
    instances: &[(usize, f64)],
    attr: AttrIdx,
    attr_pos: usize,
    total: f64,
) -> Option<CandidateSplit> {
    // Gather known (value, class, weight), sorted by value.
    let mut known: Vec<(f64, u32, f64)> = Vec::with_capacity(instances.len());
    let mut missing = 0.0;
    for &(row, w) in instances {
        match ctx.value(row, attr).as_numeric() {
            Some(x) => known.push((x, ctx.class_of(row), w)),
            None => missing += w,
        }
    }
    if known.len() < 2 {
        return None;
    }
    known.sort_by(|a, b| a.0.total_cmp(&b.0));

    // Scan all cuts between distinct adjacent values, maintaining
    // incremental low-side class counts; the threshold is the lower
    // value itself ("split points taken from the set of all occurring
    // values").
    let card = ctx.card;
    let mut low = vec![0.0; card];
    let mut all = vec![0.0; card];
    for &(_, c, w) in &known {
        all[c as usize] += w;
    }
    let known_weight: f64 = all.iter().sum();
    let parent_entropy = dq_stats::entropy(&all);
    let mut best: Option<(f64, f64)> = None; // (gain_known, threshold)
    for i in 0..known.len() - 1 {
        let (x, c, w) = known[i];
        low[c as usize] += w;
        if known[i + 1].0 <= x {
            continue; // not a cut between distinct values
        }
        // info_gain specialized for the binary partition, computed
        // incrementally to keep the scan O(n · card).
        let low_w: f64 = low.iter().sum();
        let high_w = known_weight - low_w;
        let min_side = ctx.cfg.min_branch.max(f64::MIN_POSITIVE);
        if low_w < min_side || high_w < min_side {
            continue;
        }
        let mut high_entropy_counts = 0.0;
        let mut low_entropy = 0.0;
        for k in 0..card {
            let l = low[k];
            if l > 0.0 {
                let p = l / low_w;
                low_entropy -= p * p.log2();
            }
            let h = all[k] - l;
            if h > 0.0 {
                let p = h / high_w;
                high_entropy_counts -= p * p.log2();
            }
        }
        let g = parent_entropy
            - low_w / known_weight * low_entropy
            - high_w / known_weight * high_entropy_counts;
        if best.is_none_or(|(bg, _)| g > bg) {
            best = Some((g, x));
        }
    }
    let (_, threshold) = best?;
    let mut branch_counts = vec![vec![0.0; card]; 2];
    for &(x, c, w) in &known {
        branch_counts[usize::from(x > threshold)][c as usize] += w;
    }
    finish_candidate(ctx, attr_pos, SplitKind::Threshold(threshold), branch_counts, missing, total)
}

/// C4.5 post-pruning by pessimistic classification error: bottom-up
/// subtree replacement whenever the collapsed leaf's pessimistic error
/// does not exceed the subtree's.
fn prune_pessimistic(node: &mut Node, level: f64) {
    if let Node::Split { children, counts, .. } = node {
        for c in children.iter_mut() {
            prune_pessimistic(c, level);
        }
        let leaf_err = pessimistic_leaf_error(counts, level);
        let subtree_err = node.pessimistic_error(level);
        if leaf_err <= subtree_err + 1e-12 {
            *node = Node::Leaf { counts: node.counts().to_vec(), enabled: true };
        }
    }
}

// ---------------------------------------------------------------------------
// Classification
// ---------------------------------------------------------------------------

impl Classifier for DecisionTree {
    fn predict(&self, record: &[Value]) -> Prediction {
        let mut acc = vec![0.0; self.class_card as usize];
        accumulate(&self.root, record, 1.0, &mut acc);
        Prediction::from_counts(acc)
    }

    fn describe(&self) -> String {
        format!(
            "c4.5 tree for attr {}: {} leaves ({} enabled), depth {}",
            self.class_attr,
            self.n_leaves(),
            self.n_enabled_leaves(),
            self.depth()
        )
    }

    fn class_card(&self) -> u32 {
        self.class_card
    }

    fn as_c45(&self) -> Option<&DecisionTree> {
        Some(self)
    }
}

fn accumulate(node: &Node, record: &[Value], weight: f64, acc: &mut [f64]) {
    if weight < MIN_WEIGHT {
        return;
    }
    match node {
        Node::Leaf { counts, enabled } => {
            if *enabled {
                for (a, &c) in acc.iter_mut().zip(counts) {
                    *a += weight * c;
                }
            }
        }
        Node::Split { attr, kind, children, fractions, .. } => {
            match branch_of(kind, &record[*attr], children.len()) {
                Some(b) => accumulate(&children[b], record, weight, acc),
                None => {
                    // NULL (or unseen) test value: distribute over all
                    // branches with the training fractions — the paper's
                    // "possibility to 'distribute' a training instance
                    // over several branches", applied at audit time.
                    for (child, &f) in children.iter().zip(fractions) {
                        accumulate(child, record, weight * f, acc);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_table::{SchemaBuilder, Table};

    /// A table where `y = x0 XOR x1` plus an irrelevant attribute.
    fn xor_table(n: usize) -> Table {
        let schema = SchemaBuilder::new()
            .nominal("x0", ["f", "t"])
            .nominal("x1", ["f", "t"])
            .nominal("noise", ["a", "b", "c"])
            .nominal("y", ["f", "t"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..n {
            let a = (i % 2) as u32;
            let b = ((i / 2) % 2) as u32;
            let noise = (i % 3) as u32;
            t.push_row(&[
                Value::Nominal(a),
                Value::Nominal(b),
                Value::Nominal(noise),
                Value::Nominal(a ^ b),
            ])
            .unwrap();
        }
        t
    }

    /// A table where `y = x0 AND x1` — greedy-learnable to purity
    /// (unlike XOR, every split has positive marginal gain).
    fn and_table(n: usize) -> Table {
        let schema = SchemaBuilder::new()
            .nominal("x0", ["f", "t"])
            .nominal("x1", ["f", "t"])
            .nominal("noise", ["a", "b", "c"])
            .nominal("y", ["f", "t"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..n {
            let a = (i % 2) as u32;
            let b = ((i / 2) % 2) as u32;
            t.push_row(&[
                Value::Nominal(a),
                Value::Nominal(b),
                Value::Nominal((i % 3) as u32),
                Value::Nominal(a & b),
            ])
            .unwrap();
        }
        t
    }

    fn grown_config() -> C45Config {
        C45Config { pruning: Pruning::None, ..C45Config::default() }
    }

    #[test]
    fn learns_xor_exactly() {
        let t = xor_table(80);
        let ts = TrainingSet::full(&t, 3, 4).unwrap();
        let tree = C45Inducer::new(grown_config()).induce_tree(&ts).unwrap();
        for (a, b) in [(0u32, 0u32), (0, 1), (1, 0), (1, 1)] {
            let rec = vec![Value::Nominal(a), Value::Nominal(b), Value::Nominal(0), Value::Null];
            let p = tree.predict(&rec);
            assert_eq!(p.predicted_class(), a ^ b, "xor({a},{b})");
            assert!(p.support > 0.0);
        }
    }

    #[test]
    fn pure_class_yields_single_leaf() {
        let schema = SchemaBuilder::new()
            .nominal("x", ["p", "q"])
            .nominal("y", ["only", "never"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..10 {
            t.push_row(&[Value::Nominal((i % 2) as u32), Value::Nominal(0)]).unwrap();
        }
        let ts = TrainingSet::full(&t, 1, 4).unwrap();
        let tree = C45Inducer::default().induce_tree(&ts).unwrap();
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.depth(), 1);
        let p = tree.predict(&[Value::Nominal(0), Value::Null]);
        assert_eq!(p.predicted_class(), 0);
        assert_eq!(p.support, 10.0);
    }

    #[test]
    fn numeric_threshold_split() {
        let schema = SchemaBuilder::new()
            .numeric("x", 0.0, 100.0)
            .nominal("y", ["lo", "hi"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..40 {
            let x = i as f64;
            let y = u32::from(x >= 20.0);
            t.push_row(&[Value::Number(x), Value::Nominal(y)]).unwrap();
        }
        let ts = TrainingSet::full(&t, 1, 4).unwrap();
        let tree = C45Inducer::new(grown_config()).induce_tree(&ts).unwrap();
        assert_eq!(tree.predict(&[Value::Number(3.0), Value::Null]).predicted_class(), 0);
        assert_eq!(tree.predict(&[Value::Number(77.0), Value::Null]).predicted_class(), 1);
        // The threshold must be an occurring value in [19, 20).
        let rules = tree.to_rules();
        assert_eq!(rules.len(), 2);
        match rules[0].conditions[0].test {
            ConditionTest::LessEq(t) => assert_eq!(t, 19.0),
            ref other => panic!("expected LessEq, got {other:?}"),
        }
    }

    #[test]
    fn date_attributes_split_like_numbers() {
        let schema = SchemaBuilder::new()
            .date_ymd("d", (2000, 1, 1), (2020, 1, 1))
            .nominal("y", ["old", "new"])
            .build()
            .unwrap();
        let base = dq_table::date::days_from_civil(2000, 1, 1);
        let mut t = Table::new(schema);
        for i in 0..30 {
            t.push_row(&[Value::Date(base + i * 100), Value::Nominal(u32::from(i >= 15))]).unwrap();
        }
        let ts = TrainingSet::full(&t, 1, 4).unwrap();
        let tree = C45Inducer::new(grown_config()).induce_tree(&ts).unwrap();
        assert_eq!(tree.predict(&[Value::Date(base), Value::Null]).predicted_class(), 0);
        assert_eq!(tree.predict(&[Value::Date(base + 2900), Value::Null]).predicted_class(), 1);
    }

    #[test]
    fn missing_values_are_distributed() {
        let t = and_table(80);
        let ts = TrainingSet::full(&t, 3, 4).unwrap();
        let tree = C45Inducer::new(grown_config()).induce_tree(&ts).unwrap();
        // With x0 missing and x1 = t, the record straddles the x0
        // branches: both classes keep positive probability and the
        // prediction rests on a proper subset of the training weight.
        let p = tree.predict(&[Value::Null, Value::Nominal(1), Value::Nominal(0), Value::Null]);
        assert!(p.support > 0.0 && p.support < 80.0, "support {}", p.support);
        assert!(p.probability(0) > 0.0 && p.probability(1) > 0.0, "{p:?}");
        // With both known the prediction is certain.
        let q =
            tree.predict(&[Value::Nominal(1), Value::Nominal(1), Value::Nominal(0), Value::Null]);
        assert_eq!(q.predicted_class(), 1);
        assert_eq!(q.probability(1), 1.0);
    }

    #[test]
    fn nulls_in_training_do_not_break_induction() {
        let schema =
            SchemaBuilder::new().nominal("x", ["p", "q"]).nominal("y", ["a", "b"]).build().unwrap();
        let mut t = Table::new(schema);
        for i in 0..40 {
            let x = if i % 5 == 0 { Value::Null } else { Value::Nominal((i % 2) as u32) };
            t.push_row(&[x, Value::Nominal((i % 2) as u32)]).unwrap();
        }
        let ts = TrainingSet::full(&t, 1, 4).unwrap();
        let tree = C45Inducer::new(grown_config()).induce_tree(&ts).unwrap();
        let p = tree.predict(&[Value::Nominal(1), Value::Null]);
        assert_eq!(p.predicted_class(), 1);
    }

    #[test]
    fn out_of_domain_codes_classify_as_missing() {
        let t = xor_table(80);
        let ts = TrainingSet::full(&t, 3, 4).unwrap();
        let tree = C45Inducer::new(grown_config()).induce_tree(&ts).unwrap();
        let p =
            tree.predict(&[Value::Nominal(99), Value::Nominal(0), Value::Nominal(0), Value::Null]);
        assert!(p.support > 0.0);
    }

    #[test]
    fn min_inst_prepruning_stops_growth() {
        let t = xor_table(16); // 4 instances per XOR cell
        let ts = TrainingSet::full(&t, 3, 4).unwrap();
        let big = C45Config { min_inst: 100.0, pruning: Pruning::None, ..C45Config::default() };
        let tree = C45Inducer::new(big).induce_tree(&ts).unwrap();
        assert_eq!(tree.n_leaves(), 1, "minInst must freeze the root");
        let ok = C45Config { min_inst: 2.0, pruning: Pruning::None, ..C45Config::default() };
        let tree = C45Inducer::new(ok).induce_tree(&ts).unwrap();
        assert!(tree.n_leaves() > 1);
    }

    #[test]
    fn expected_error_confidence_pruning_collapses_uninformative_splits() {
        // Class barely depends on x (51/49 in both branches): splitting
        // cannot raise the expected error confidence, so the integrated
        // pruning keeps a single node; unpruned induction splits happily
        // on noise given enough attributes.
        let schema = SchemaBuilder::new()
            .nominal("x", ["p", "q"])
            .nominal("z", ["u", "v", "w"])
            .nominal("y", ["a", "b"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        // Deterministic near-noise pattern.
        for i in 0..400 {
            let x = (i % 2) as u32;
            let z = (i % 3) as u32;
            let y = u32::from((i * 7 + 3) % 10 < 5);
            t.push_row(&[Value::Nominal(x), Value::Nominal(z), Value::Nominal(y)]).unwrap();
        }
        let ts = TrainingSet::full(&t, 2, 4).unwrap();
        let pruned = C45Inducer::default().induce_tree(&ts).unwrap();
        let unpruned = C45Inducer::new(grown_config()).induce_tree(&ts).unwrap();
        assert!(pruned.n_leaves() <= unpruned.n_leaves());
    }

    /// The QUIS anecdote shape: BRV=404 ⇒ GBM=901 (16117 + 1
    /// deviation), BRV=501 ⇒ GBM=911 (2000 records).
    fn quis_anecdote_training() -> Table {
        let schema = SchemaBuilder::new()
            .nominal("brv", ["404", "501"])
            .nominal("gbm", ["901", "911"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for _ in 0..16_117 {
            t.push_row(&[Value::Nominal(0), Value::Nominal(0)]).unwrap();
        }
        for _ in 0..2000 {
            t.push_row(&[Value::Nominal(1), Value::Nominal(1)]).unwrap();
        }
        t.push_row(&[Value::Nominal(0), Value::Nominal(1)]).unwrap();
        t
    }

    #[test]
    fn threshold_aware_pruning_keeps_the_quis_split() {
        let t = quis_anecdote_training();
        let ts = TrainingSet::full(&t, 1, 4).unwrap();
        let tree = C45Inducer::default().induce_tree(&ts).unwrap();
        assert!(tree.n_leaves() >= 2, "the BRV split must survive pruning");
        // The deviating record is flagged at the paper's confidence.
        let p = tree.predict(&[Value::Nominal(0), Value::Null]);
        assert!(p.error_confidence(1, 0.95) > 0.999);
    }

    #[test]
    fn raw_def9_pruning_collapses_the_quis_split() {
        // Documented failure mode of the literal Def. 9 reading: the
        // impure root leaf's raw expected error confidence (soft flags
        // at ~77%, below the 80% threshold) beats the split's, so the
        // split is pruned and the 99.95% detection is lost.
        let t = quis_anecdote_training();
        let ts = TrainingSet::full(&t, 1, 4).unwrap();
        let cfg =
            C45Config { pruning: Pruning::ExpectedErrorConfidenceRaw, ..C45Config::default() };
        let tree = C45Inducer::new(cfg).induce_tree(&ts).unwrap();
        assert_eq!(tree.n_leaves(), 1);
    }

    #[test]
    fn pessimistic_pruning_shrinks_noisy_trees() {
        let schema = SchemaBuilder::new()
            .nominal("x", ["p", "q"])
            .nominal("z", ["u", "v", "w"])
            .nominal("y", ["a", "b"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..300 {
            let y = u32::from((i * 13 + 5) % 7 < 3);
            t.push_row(&[
                Value::Nominal((i % 2) as u32),
                Value::Nominal((i % 3) as u32),
                Value::Nominal(y),
            ])
            .unwrap();
        }
        let ts = TrainingSet::full(&t, 2, 4).unwrap();
        let cfg = C45Config { pruning: Pruning::PessimisticError, ..C45Config::default() };
        let pruned = C45Inducer::new(cfg).induce_tree(&ts).unwrap();
        let unpruned = C45Inducer::new(grown_config()).induce_tree(&ts).unwrap();
        assert!(pruned.n_leaves() <= unpruned.n_leaves());
    }

    #[test]
    fn rules_round_trip_the_tree() {
        let t = and_table(80);
        let ts = TrainingSet::full(&t, 3, 4).unwrap();
        let tree = C45Inducer::new(grown_config()).induce_tree(&ts).unwrap();
        let rules = tree.to_rules();
        assert_eq!(rules.len(), tree.n_enabled_leaves());
        // Every training record matches exactly one rule, and the rule
        // predicts its class (XOR is noise-free).
        for r in 0..t.n_rows() {
            let rec = t.row(r);
            let matching: Vec<&TreeRule> =
                rules.iter().filter(|rule| rule.premise_matches(&rec) == Some(true)).collect();
            assert_eq!(matching.len(), 1, "row {r}");
            assert_eq!(
                Value::Nominal(matching[0].predicted),
                rec[3],
                "rule must predict the observed class"
            );
        }
        // Supports sum to the table size.
        let total: f64 = rules.iter().map(|r| r.support).sum();
        assert!((total - 80.0).abs() < 1e-9);
    }

    #[test]
    fn rule_rendering_uses_labels() {
        let t = xor_table(80);
        let ts = TrainingSet::full(&t, 3, 4).unwrap();
        let tree = C45Inducer::new(grown_config()).induce_tree(&ts).unwrap();
        let rules = tree.to_rules();
        let text = rules[0].render(t.schema(), 3, "f");
        assert!(text.contains("→ y = f"), "got {text}");
        assert!(text.contains("x0 = ") || text.contains("x1 = "), "got {text}");
    }

    #[test]
    fn disabling_weak_leaves_reduces_structure_model() {
        let t = xor_table(12); // tiny: 3 instances per leaf
        let ts = TrainingSet::full(&t, 3, 4).unwrap();
        let mut tree = C45Inducer::new(grown_config()).induce_tree(&ts).unwrap();
        let before = tree.n_enabled_leaves();
        let disabled = tree.disable_undetecting_leaves(0.8);
        assert_eq!(tree.n_enabled_leaves() + disabled, before);
        assert!(disabled > 0, "3-instance leaves cannot reach 80% confidence");
        // Disabled leaves predict nothing.
        let p =
            tree.predict(&[Value::Nominal(0), Value::Nominal(0), Value::Nominal(0), Value::Null]);
        assert_eq!(p.support, 0.0);
    }

    #[test]
    fn large_pure_rule_reaches_paper_confidence() {
        // The QUIS anecdote: a rule based on 16118 instances flags a
        // single deviation with 99.95% error confidence.
        let schema = SchemaBuilder::new()
            .nominal("brv", ["404", "501"])
            .nominal("gbm", ["901", "911"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for _ in 0..16_117 {
            t.push_row(&[Value::Nominal(0), Value::Nominal(0)]).unwrap();
        }
        t.push_row(&[Value::Nominal(0), Value::Nominal(1)]).unwrap();
        let ts = TrainingSet::full(&t, 1, 4).unwrap();
        let tree = C45Inducer::default().induce_tree(&ts).unwrap();
        let p = tree.predict(&[Value::Nominal(0), Value::Null]);
        assert_eq!(p.predicted_class(), 0);
        let conf = p.error_confidence(1, 0.95);
        assert!(conf > 0.99, "got {conf}");
    }

    #[test]
    fn config_validation() {
        assert!(C45Config { level: 1.5, ..C45Config::default() }.validate().is_err());
        assert!(C45Config { min_inst: -1.0, ..C45Config::default() }.validate().is_err());
        assert!(C45Config { max_depth: 0, ..C45Config::default() }.validate().is_err());
        assert!(C45Config::default().validate().is_ok());
        let ts_table = xor_table(8);
        let ts = TrainingSet::full(&ts_table, 3, 4).unwrap();
        let bad = C45Inducer::new(C45Config { level: 0.0, ..C45Config::default() });
        assert!(bad.induce_tree(&ts).is_err());
    }

    #[test]
    fn inducer_trait_boxes_classifier() {
        let t = xor_table(40);
        let ts = TrainingSet::full(&t, 3, 4).unwrap();
        let inducer = C45Inducer::default();
        assert_eq!(inducer.name(), "c4.5");
        let clf = inducer.induce(&ts).unwrap();
        assert_eq!(clf.class_card(), 2);
        assert!(clf.describe().contains("c4.5"));
    }

    #[test]
    fn depth_bound_is_respected() {
        let t = xor_table(80);
        let ts = TrainingSet::full(&t, 3, 4).unwrap();
        let cfg = C45Config { max_depth: 2, pruning: Pruning::None, ..C45Config::default() };
        let tree = C45Inducer::new(cfg).induce_tree(&ts).unwrap();
        assert!(tree.depth() <= 2);
    }

    #[test]
    fn from_parts_rebuilds_an_identical_tree() {
        let t = xor_table(80);
        let ts = TrainingSet::full(&t, 3, 4).unwrap();
        let tree = C45Inducer::new(grown_config()).induce_tree(&ts).unwrap();
        let clf: &dyn Classifier = &tree;
        let original = clf.as_c45().expect("a decision tree downcasts to itself");
        let rebuilt = DecisionTree::from_parts(
            original.root().clone(),
            original.class_card(),
            original.class_attr(),
            original.level(),
        );
        assert_eq!(rebuilt.to_rules(), tree.to_rules());
        for r in 0..t.n_rows() {
            assert_eq!(rebuilt.predict(&t.row(r)), tree.predict(&t.row(r)), "row {r}");
        }
    }

    /// A messy mixed table: NULLs, value ties, a numeric and a date
    /// attribute, out-of-domain codes — everything the presorted path
    /// must agree with the reference path on.
    fn messy_table(n: usize) -> Table {
        let schema = SchemaBuilder::new()
            .nominal("a", ["p", "q", "r"])
            .numeric("x", 0.0, 100.0)
            .date_ymd("d", (2000, 1, 1), (2010, 1, 1))
            .nominal("y", ["lo", "mid", "hi"])
            .build()
            .unwrap();
        let base = dq_table::date::days_from_civil(2001, 1, 1);
        let mut t = Table::new(schema);
        for i in 0..n {
            let a = if i % 11 == 0 { Value::Null } else { Value::Nominal((i % 3) as u32) };
            let x = if i % 7 == 0 { Value::Null } else { Value::Number((i % 13) as f64) };
            let d = if i % 5 == 0 { Value::Null } else { Value::Date(base + (i % 9) as i64) };
            let y = Value::Nominal(((i % 13) / 5).min(2) as u32);
            t.push_row(&[a, x, d, y]).unwrap();
        }
        // Out-of-domain nominal code (pollution can write those).
        t.push_row_lenient(&[
            Value::Nominal(9),
            Value::Number(3.0),
            Value::Null,
            Value::Nominal(1),
        ])
        .unwrap();
        t
    }

    #[test]
    fn presorted_induction_is_byte_identical_to_reference() {
        let t = messy_table(400);
        for class_attr in 0..t.n_cols() {
            let ts = TrainingSet::full(&t, class_attr, 4).unwrap();
            for pruning in [
                Pruning::None,
                Pruning::ExpectedErrorConfidence,
                Pruning::ExpectedErrorConfidenceRaw,
                Pruning::PessimisticError,
            ] {
                for criterion in [SplitCriterion::GainRatio, SplitCriterion::InfoGain] {
                    let cfg = C45Config { pruning, criterion, ..C45Config::default() };
                    let inducer = C45Inducer::new(cfg);
                    let fast = inducer.induce_tree(&ts).unwrap();
                    let reference = inducer.induce_tree_reference(&ts).unwrap();
                    assert_eq!(
                        fast.root(),
                        reference.root(),
                        "class {class_attr}, {pruning:?}, {criterion:?}"
                    );
                    // Equality above is structural; also pin the floats.
                    for r in 0..t.n_rows() {
                        let rec = t.row(r);
                        let (pf, pr) = (fast.predict(&rec), reference.predict(&rec));
                        for (a, b) in pf.counts.iter().zip(&pr.counts) {
                            assert_eq!(a.to_bits(), b.to_bits(), "row {r}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_induction_is_byte_identical_at_every_thread_count() {
        // Large enough that the root node crosses
        // PARALLEL_MIN_INSTANCES and the intra-node sharding engages.
        let t = messy_table(2 * PARALLEL_MIN_INSTANCES);
        for class_attr in [0, 3] {
            let ts = TrainingSet::full(&t, class_attr, 4).unwrap();
            let inducer = C45Inducer::new(grown_config());
            let serial = inducer.induce_tree(&ts).unwrap();
            let cache = TableCache::build(&t);
            for threads in [1, 2, 4] {
                let pool = WorkerPool::new(threads);
                for cached in [None, Some(&cache)] {
                    let par = inducer.induce_tree_parallel(&ts, cached, &pool).unwrap();
                    assert_eq!(
                        par.root(),
                        serial.root(),
                        "class {class_attr}, {threads} threads, cached {}",
                        cached.is_some()
                    );
                    for r in 0..t.n_rows() {
                        let rec = t.row(r);
                        let (pp, ps) = (par.predict(&rec), serial.predict(&rec));
                        for (a, b) in pp.counts.iter().zip(&ps.counts) {
                            assert_eq!(a.to_bits(), b.to_bits(), "row {r}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn merge_conditions_tightens_thresholds() {
        let path = vec![
            Condition { attr: 0, test: ConditionTest::LessEq(9.0) },
            Condition { attr: 1, test: ConditionTest::Greater(2.0) },
            Condition { attr: 0, test: ConditionTest::LessEq(4.0) },
            Condition { attr: 1, test: ConditionTest::Greater(5.0) },
        ];
        let merged = merge_conditions(&path);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].test, ConditionTest::LessEq(4.0));
        assert_eq!(merged[1].test, ConditionTest::Greater(5.0));
    }
}
