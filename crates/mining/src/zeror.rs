//! ZeroR: the majority-class baseline.
//!
//! Predicts the overall training class distribution for every record.
//! Useless as a classifier, but the natural floor for the classifier
//! comparison experiment — and a sanity check for the auditing
//! framework: ZeroR can only flag globally rare class values.

use crate::classifier::{Classifier, Inducer, Prediction};
use crate::dataset::TrainingSet;
use crate::error::MiningError;
use dq_table::Value;

/// The ZeroR induction algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroRInducer;

#[derive(Debug, Clone)]
struct ZeroRModel {
    counts: Vec<f64>,
}

impl Inducer for ZeroRInducer {
    fn induce(&self, train: &TrainingSet<'_>) -> Result<Box<dyn Classifier>, MiningError> {
        Ok(Box::new(ZeroRModel { counts: train.class_counts() }))
    }

    fn name(&self) -> &'static str {
        "zeror"
    }
}

impl Classifier for ZeroRModel {
    fn predict(&self, _record: &[Value]) -> Prediction {
        Prediction::from_counts(self.counts.clone())
    }

    fn describe(&self) -> String {
        format!("zeror over {} instances", self.counts.iter().sum::<f64>())
    }

    fn class_card(&self) -> u32 {
        self.counts.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_table::{SchemaBuilder, Table};

    fn skewed_table() -> Table {
        let schema = SchemaBuilder::new()
            .nominal("x", ["p", "q"])
            .nominal("y", ["common", "rare"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..100 {
            let y = u32::from(i >= 95);
            t.push_row(&[Value::Nominal((i % 2) as u32), Value::Nominal(y)]).unwrap();
        }
        t
    }

    #[test]
    fn predicts_majority_everywhere() {
        let t = skewed_table();
        let ts = TrainingSet::full(&t, 1, 4).unwrap();
        let clf = ZeroRInducer.induce(&ts).unwrap();
        for x in 0..2 {
            let p = clf.predict(&[Value::Nominal(x), Value::Null]);
            assert_eq!(p.predicted_class(), 0);
            assert_eq!(p.support, 100.0);
        }
        assert_eq!(clf.class_card(), 2);
        assert!(clf.describe().contains("zeror"));
    }

    #[test]
    fn rare_class_scores_error_confidence() {
        let t = skewed_table();
        let ts = TrainingSet::full(&t, 1, 4).unwrap();
        let clf = ZeroRInducer.induce(&ts).unwrap();
        let p = clf.predict(&[Value::Nominal(0), Value::Null]);
        // 95:5 over 100 instances — observing the rare class yields a
        // moderate error confidence, the only signal ZeroR can give.
        let conf = p.error_confidence(1, 0.95);
        assert!(conf > 0.5 && conf < 1.0, "got {conf}");
    }

    #[test]
    fn inducer_name() {
        assert_eq!(ZeroRInducer.name(), "zeror");
    }
}
