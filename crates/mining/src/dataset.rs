//! Training-set views: one class attribute against base attributes.
//!
//! "For each attribute in the relation to be audited, a classifier is
//! induced that describes the dependency of this class attribute from
//! the other attributes (called base attributes)" (sec. 5). Numeric
//! and date class attributes are "discretized into equal frequency
//! bins before the induction process" — [`ClassSpec`] carries that
//! binning so predictions can be mapped back to value ranges.

use crate::error::MiningError;
use dq_table::{discretize_equal_frequency, AttrIdx, AttrType, Binning, RowIdx, Table, Value};

/// How the class attribute's codes relate to its raw values.
#[derive(Debug, Clone, PartialEq)]
pub enum ClassSpec {
    /// Nominal class: codes are the attribute's own label codes.
    Nominal {
        /// Number of labels.
        card: u32,
    },
    /// Ordered (numeric/date) class: codes are equal-frequency bins.
    Binned {
        /// The fitted binning.
        binning: Binning,
    },
}

impl ClassSpec {
    /// Number of class codes.
    pub fn card(&self) -> u32 {
        match self {
            ClassSpec::Nominal { card } => *card,
            ClassSpec::Binned { binning } => binning.n_bins as u32,
        }
    }

    /// Class code of a raw cell value (`None` for NULL).
    pub fn code_of(&self, v: &Value) -> Option<u32> {
        match self {
            ClassSpec::Nominal { card } => match v {
                Value::Nominal(c) if c < card => Some(*c),
                // Out-of-domain codes (possible after pollution) are
                // clamped into the last class so they stay visible to
                // deviation detection rather than vanishing.
                Value::Nominal(_) => Some(card.saturating_sub(1)),
                _ => None,
            },
            ClassSpec::Binned { binning } => v.as_numeric().map(|x| binning.bin_of(x)),
        }
    }

    /// Class code of a typed cell — exactly [`ClassSpec::code_of`] on
    /// the cell's `Value`, minus the enum round-trip (the detection
    /// scan codes the observed class straight off a cached typed row).
    #[inline]
    pub fn code_of_cell(&self, cell: dq_table::TypedCell) -> Option<u32> {
        match self {
            ClassSpec::Nominal { card } => match cell.as_nominal() {
                Some(c) if c < *card => Some(c),
                // Out-of-domain codes are clamped into the last class,
                // like `code_of` clamps them.
                Some(_) => Some(card.saturating_sub(1)),
                None => None,
            },
            ClassSpec::Binned { binning } => cell.as_numeric().map(|x| binning.bin_of(x)),
        }
    }

    /// Human-readable label of a class code under `schema`.
    pub fn label_of(&self, schema: &dq_table::Schema, attr: AttrIdx, code: u32) -> String {
        match self {
            ClassSpec::Nominal { .. } => schema
                .attr(attr)
                .label(code)
                .map(str::to_string)
                .unwrap_or_else(|| format!("#{code}")),
            ClassSpec::Binned { binning } => binning.label_of(code),
        }
    }
}

/// A classifier's view of a table: the class column coded as `u32`
/// class codes, plus the base attribute list.
#[derive(Debug, Clone)]
pub struct TrainingSet<'a> {
    /// The underlying table.
    pub table: &'a Table,
    /// The class attribute.
    pub class_attr: AttrIdx,
    /// The base attributes (never contains `class_attr`).
    pub base_attrs: Vec<AttrIdx>,
    /// Class-code mapping.
    pub spec: ClassSpec,
    /// Per-row class codes (`None` = NULL class, excluded from
    /// training).
    pub class_codes: Vec<Option<u32>>,
    /// Rows usable for training (non-NULL class).
    pub rows: Vec<RowIdx>,
    /// Dense, pre-validated class codes, parallel to [`TrainingSet::rows`]
    /// — `codes[i]` is the class code of `rows[i]`. Hot loops index this
    /// instead of re-unwrapping [`TrainingSet::class_codes`].
    pub codes: Vec<u32>,
}

impl<'a> TrainingSet<'a> {
    /// Build a training set for `class_attr` with all other attributes
    /// as base attributes.
    pub fn full(table: &'a Table, class_attr: AttrIdx, bins: usize) -> Result<Self, MiningError> {
        let base: Vec<AttrIdx> = (0..table.n_cols()).filter(|&a| a != class_attr).collect();
        Self::new(table, class_attr, base, bins)
    }

    /// Build a training set with an explicit base attribute list —
    /// the hook for domain knowledge: "if it is known that an
    /// attribute does not influence the value of a class attribute, it
    /// can be removed from the set of base attributes".
    pub fn new(
        table: &'a Table,
        class_attr: AttrIdx,
        base_attrs: Vec<AttrIdx>,
        bins: usize,
    ) -> Result<Self, MiningError> {
        if class_attr >= table.n_cols() {
            return Err(MiningError::UnknownAttribute(class_attr));
        }
        for &a in &base_attrs {
            if a >= table.n_cols() {
                return Err(MiningError::UnknownAttribute(a));
            }
            if a == class_attr {
                return Err(MiningError::ClassInBaseSet);
            }
        }
        let spec = match &table.schema().attr(class_attr).ty {
            AttrType::Nominal { labels } => ClassSpec::Nominal { card: labels.len() as u32 },
            _ => ClassSpec::Binned { binning: discretize_equal_frequency(table, class_attr, bins) },
        };
        let mut class_codes = Vec::with_capacity(table.n_rows());
        let mut rows = Vec::new();
        let mut codes = Vec::new();
        for r in 0..table.n_rows() {
            let code = spec.code_of(&table.get(r, class_attr));
            if let Some(c) = code {
                rows.push(r);
                codes.push(c);
            }
            class_codes.push(code);
        }
        if rows.is_empty() {
            return Err(MiningError::EmptyTrainingSet);
        }
        Ok(TrainingSet { table, class_attr, base_attrs, spec, class_codes, rows, codes })
    }

    /// Number of class codes.
    pub fn class_card(&self) -> u32 {
        self.spec.card()
    }

    /// Class counts over the training rows (weighted 1 each).
    pub fn class_counts(&self) -> Vec<f64> {
        let mut counts = vec![0.0; self.class_card() as usize];
        for &c in &self.codes {
            counts[c as usize] += 1.0;
        }
        counts
    }

    /// Code mappings for all base attributes (nominal attributes keep
    /// their label codes, ordered ones get `bins` equal-frequency bins).
    /// Used by the inducers that need a fully discrete view (naive
    /// Bayes, OneR, Apriori).
    pub fn base_coders(&self, bins: usize) -> Vec<ClassSpec> {
        self.base_attrs
            .iter()
            .map(|&a| match &self.table.schema().attr(a).ty {
                AttrType::Nominal { labels } => ClassSpec::Nominal { card: labels.len() as u32 },
                _ => ClassSpec::Binned { binning: discretize_equal_frequency(self.table, a, bins) },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_table::SchemaBuilder;

    fn table() -> Table {
        let schema = SchemaBuilder::new()
            .nominal("c", ["a", "b", "z"])
            .numeric("x", 0.0, 100.0)
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..12 {
            let c = if i % 3 == 0 { Value::Null } else { Value::Nominal((i % 2) as u32) };
            t.push_row(&[c, Value::Number(i as f64)]).unwrap();
        }
        t
    }

    #[test]
    fn nominal_class_excludes_nulls() {
        let t = table();
        let ts = TrainingSet::full(&t, 0, 4).unwrap();
        assert_eq!(ts.class_card(), 3);
        assert_eq!(ts.rows.len(), 8); // 12 minus 4 NULLs
        assert_eq!(ts.base_attrs, vec![1]);
        let counts = ts.class_counts();
        assert_eq!(counts.iter().sum::<f64>(), 8.0);
    }

    #[test]
    fn numeric_class_is_binned() {
        let t = table();
        let ts = TrainingSet::full(&t, 1, 3).unwrap();
        match &ts.spec {
            ClassSpec::Binned { binning } => assert_eq!(binning.n_bins, 3),
            other => panic!("expected binned class, got {other:?}"),
        }
        assert_eq!(ts.class_card(), 3);
        assert_eq!(ts.rows.len(), 12);
        // Codes are monotone in the raw value.
        assert!(ts.class_codes[0].unwrap() <= ts.class_codes[11].unwrap());
    }

    #[test]
    fn dense_codes_parallel_the_training_rows() {
        let t = table();
        let ts = TrainingSet::full(&t, 0, 4).unwrap();
        assert_eq!(ts.codes.len(), ts.rows.len());
        for (&r, &c) in ts.rows.iter().zip(&ts.codes) {
            assert_eq!(ts.class_codes[r], Some(c));
        }
    }

    #[test]
    fn out_of_domain_nominal_codes_are_clamped() {
        let spec = ClassSpec::Nominal { card: 3 };
        assert_eq!(spec.code_of(&Value::Nominal(1)), Some(1));
        assert_eq!(spec.code_of(&Value::Nominal(9)), Some(2));
        assert_eq!(spec.code_of(&Value::Null), None);
    }

    #[test]
    fn cell_coding_matches_value_coding() {
        let t = table();
        for class_attr in [0usize, 1] {
            let ts = TrainingSet::full(&t, class_attr, 3).unwrap();
            let mut cells = Vec::new();
            for r in 0..t.n_rows() {
                t.typed_row_into(r, &mut cells);
                assert_eq!(
                    ts.spec.code_of_cell(cells[class_attr]),
                    ts.spec.code_of(&t.get(r, class_attr)),
                    "row {r}, class {class_attr}"
                );
            }
        }
        // Clamping applies to cells too.
        let spec = ClassSpec::Nominal { card: 3 };
        assert_eq!(spec.code_of_cell(dq_table::TypedCell::Nominal(Some(9))), Some(2));
        assert_eq!(spec.code_of_cell(dq_table::TypedCell::Nominal(None)), None);
    }

    #[test]
    fn rejects_bad_configurations() {
        let t = table();
        assert!(matches!(TrainingSet::full(&t, 9, 4), Err(MiningError::UnknownAttribute(9))));
        assert!(matches!(TrainingSet::new(&t, 0, vec![0], 4), Err(MiningError::ClassInBaseSet)));
        assert!(matches!(
            TrainingSet::new(&t, 0, vec![7], 4),
            Err(MiningError::UnknownAttribute(7))
        ));
        // All-NULL class column.
        let schema = SchemaBuilder::new().nominal("c", ["a"]).nominal("d", ["x"]).build().unwrap();
        let mut empty = Table::new(schema);
        empty.push_row(&[Value::Null, Value::Nominal(0)]).unwrap();
        assert!(matches!(TrainingSet::full(&empty, 0, 4), Err(MiningError::EmptyTrainingSet)));
    }

    #[test]
    fn class_labels() {
        let t = table();
        let ts = TrainingSet::full(&t, 0, 4).unwrap();
        assert_eq!(ts.spec.label_of(t.schema(), 0, 1), "b");
        let ts = TrainingSet::full(&t, 1, 3).unwrap();
        let label = ts.spec.label_of(t.schema(), 1, 0);
        assert!(label.starts_with("(-inf"), "got {label}");
    }
}
