//! # dq-exec — a scoped worker pool with deterministic result ordering
//!
//! The audit pipeline is embarrassingly parallel in two places: one
//! classifier is induced *per attribute* (structure induction) and every
//! record is checked *independently* against the structure model
//! (deviation detection). Both demand the same execution contract: fan a
//! fixed list of jobs out over a bounded number of OS threads and get
//! the results back **in input order**, bit-identical to a serial run —
//! the paper's evaluation scores detections against a ground-truth
//! pollution log, so any nondeterminism in result order would corrupt
//! the figures.
//!
//! This crate is std-only (the build environment has no crates.io): a
//! [`WorkerPool`] built on [`std::thread::scope`], where
//! [`WorkerPool::map_indexed`] borrows the caller's data without `Arc`
//! or cloning, steals work item-by-item from an atomic cursor, and
//! writes each result into its input slot. A pool of one thread runs
//! the closure inline on the caller's thread — the exact legacy serial
//! path, spawn-free.
//!
//! ```
//! use dq_exec::WorkerPool;
//!
//! let pool = WorkerPool::new(4);
//! let squares = pool.map_indexed(&[1, 2, 3, 4, 5], |_idx, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]); // input order, always
//! ```
//!
//! Worker panics are captured and surfaced as [`ExecError::WorkerPanic`]
//! by [`WorkerPool::try_map_indexed`] (or re-raised by
//! [`WorkerPool::map_indexed`]) instead of poisoning the scope.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Errors surfaced by pool execution.
#[derive(Debug)]
pub enum ExecError {
    /// A worker closure panicked while processing the item at `index`.
    WorkerPanic {
        /// Input index of the item whose closure panicked (the lowest
        /// one, when several workers panic).
        index: usize,
        /// The panic payload, rendered (`&str`/`String` payloads are
        /// kept verbatim).
        message: String,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::WorkerPanic { index, message } => {
                write!(f, "worker panicked on item {index}: {message}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// The number of hardware threads, with a fallback of 1 when the
/// platform cannot tell.
pub fn available_threads() -> usize {
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolve a `threads: Option<usize>` configuration knob to a concrete
/// worker count.
///
/// `Some(n)` is honoured (clamped to at least 1). `None` consults the
/// `DQ_THREADS` environment variable (a positive integer — the hook CI
/// uses to force the serial path) and falls back to
/// [`available_threads`].
pub fn resolve_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(n) => n.max(1),
        None => match std::env::var("DQ_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => available_threads(),
        },
    }
}

/// The one parallelism knob every subsystem shares.
///
/// Historically each layer carried its own `threads: Option<usize>`
/// field with its own folklore about what `None` meant. `Parallelism`
/// is that knob with the resolution rule attached, applied identically
/// everywhere: **explicit count > `DQ_THREADS` > available cores**
/// (see [`resolve_threads`]). The audit config, the generator config,
/// the eval sweeps and the CLI `--threads` flags all store one of
/// these.
///
/// `Option<usize>` converts losslessly (`Some(n)` → explicit, `None` →
/// auto), so configs built from optional CLI flags spell
/// `flags.parse_positive_opt("threads")?.into()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Parallelism {
    requested: Option<usize>,
}

impl Parallelism {
    /// Defer to `DQ_THREADS`, then the core count (the [`Default`]).
    pub const AUTO: Parallelism = Parallelism { requested: None };

    /// Exactly `n` workers (clamped to at least 1), environment
    /// ignored.
    pub fn explicit(n: usize) -> Self {
        Parallelism { requested: Some(n.max(1)) }
    }

    /// Exactly one worker — the deterministic legacy serial path.
    pub fn serial() -> Self {
        Parallelism::explicit(1)
    }

    /// The explicit request, when one was made.
    pub fn requested(&self) -> Option<usize> {
        self.requested
    }

    /// `true` when no explicit count was requested (the environment
    /// decides).
    pub fn is_auto(&self) -> bool {
        self.requested.is_none()
    }

    /// The concrete worker count under the shared resolution rule.
    pub fn resolve(&self) -> usize {
        resolve_threads(self.requested)
    }

    /// A pool of [`Parallelism::resolve`] workers.
    pub fn pool(&self) -> WorkerPool {
        WorkerPool::new(self.resolve())
    }
}

impl From<Option<usize>> for Parallelism {
    fn from(requested: Option<usize>) -> Self {
        match requested {
            Some(n) => Parallelism::explicit(n),
            None => Parallelism::AUTO,
        }
    }
}

impl From<usize> for Parallelism {
    fn from(n: usize) -> Self {
        Parallelism::explicit(n)
    }
}

/// A fixed-width scoped worker pool.
///
/// The pool owns no threads between calls: each `map` spawns scoped
/// workers, drains the job list through an atomic cursor and joins them
/// before returning, so borrowed inputs need no `'static` bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl Default for WorkerPool {
    /// A pool over [`available_threads`] workers (honouring
    /// `DQ_THREADS`).
    fn default() -> Self {
        WorkerPool::new(resolve_threads(None))
    }
}

impl WorkerPool {
    /// A pool of exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        WorkerPool { threads: threads.max(1) }
    }

    /// A pool for a configuration knob — accepts a [`Parallelism`] or
    /// anything that converts into one (`Option<usize>`, `usize`); see
    /// [`resolve_threads`] for the resolution rule.
    pub fn from_config(requested: impl Into<Parallelism>) -> Self {
        requested.into().pool()
    }

    /// The fixed worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` when the pool runs inline on the caller's thread.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Apply `f` to every item, returning results **in input order**
    /// regardless of completion order. `f` receives the input index
    /// alongside the item. On one effective worker the closure runs
    /// unguarded on the caller's thread, so a panic unwinds exactly as
    /// in a plain serial loop (original payload and location); with
    /// more workers a panic is re-raised on the caller's thread with a
    /// rendered message (see [`WorkerPool::try_map_indexed`] for the
    /// error-returning variant).
    pub fn map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if self.threads.min(items.len()) <= 1 {
            // The exact legacy serial path, including panic semantics.
            return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        match self.try_map_indexed(items, f) {
            Ok(results) => results,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`WorkerPool::map_indexed`], but a panicking worker closure
    /// yields `Err(ExecError::WorkerPanic)` instead of unwinding.
    pub fn try_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, ExecError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.threads.min(n);
        if workers <= 1 {
            // The exact legacy serial path: caller's thread, input order.
            let mut out = Vec::with_capacity(n);
            for (i, item) in items.iter().enumerate() {
                out.push(guarded(i, || f(i, item))?);
            }
            return Ok(out);
        }
        // Slot-per-item storage keeps completion order irrelevant: each
        // worker steals the next index and writes into that index's slot.
        let slots: Vec<Mutex<Option<Result<R, ExecError>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = guarded(i, || f(i, &items[i]));
                    *slots[i].lock().expect("result slot is never poisoned") = Some(result);
                });
            }
        });
        let mut out = Vec::with_capacity(n);
        for slot in slots {
            let result = slot
                .into_inner()
                .expect("result slot is never poisoned")
                .expect("every index below the cursor was filled");
            out.push(result?);
        }
        Ok(out)
    }
}

/// Run one job under a panic guard, mapping unwinds to [`ExecError`].
fn guarded<R>(index: usize, job: impl FnOnce() -> R) -> Result<R, ExecError> {
    catch_unwind(AssertUnwindSafe(job)).map_err(|payload| {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        ExecError::WorkerPanic { index, message }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_preserves_input_order_across_thread_counts() {
        let items: Vec<usize> = (0..97).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 4, 9, 200] {
            let pool = WorkerPool::new(threads);
            assert_eq!(pool.map_indexed(&items, |_, &x| x * 3), expected, "threads={threads}");
        }
    }

    #[test]
    fn index_matches_item_position() {
        let items = ["a", "b", "c", "d"];
        let pool = WorkerPool::new(3);
        let tagged = pool.map_indexed(&items, |i, s| format!("{i}:{s}"));
        assert_eq!(tagged, vec!["0:a", "1:b", "2:c", "3:d"]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = WorkerPool::new(8);
        assert_eq!(pool.map_indexed(&[] as &[u32], |_, &x| x), Vec::<u32>::new());
        assert_eq!(pool.map_indexed(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn worker_panic_becomes_error_with_lowest_index() {
        let items: Vec<usize> = (0..40).collect();
        for threads in [1, 4] {
            let pool = WorkerPool::new(threads);
            let err = pool
                .try_map_indexed(&items, |_, &x| {
                    if x % 10 == 3 {
                        panic!("boom at {x}");
                    }
                    x
                })
                .unwrap_err();
            match err {
                ExecError::WorkerPanic { index, message } => {
                    assert_eq!(index, 3, "threads={threads}");
                    assert!(message.contains("boom at 3"), "got: {message}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "worker panicked on item 2")]
    fn map_indexed_reraises_worker_panics() {
        WorkerPool::new(4).map_indexed(&[0, 1, 2, 3], |_, &x| {
            if x == 2 {
                panic!("kaboom");
            }
            x
        });
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        let hits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..500).collect();
        let pool = WorkerPool::new(4);
        let out = pool.map_indexed(&items, |_, &x| {
            hits.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 500);
        assert_eq!(hits.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn serial_map_unwinds_with_the_original_payload() {
        // One effective worker = the exact legacy panic semantics: the
        // typed payload survives, not a rendered string.
        let caught = std::panic::catch_unwind(|| {
            WorkerPool::new(1).map_indexed(&[1u32, 2], |_, &x| {
                if x == 2 {
                    std::panic::panic_any(42usize);
                }
                x
            })
        })
        .unwrap_err();
        assert_eq!(caught.downcast_ref::<usize>(), Some(&42));
    }

    #[test]
    fn knob_resolution() {
        assert_eq!(resolve_threads(Some(4)), 4);
        assert_eq!(resolve_threads(Some(0)), 1, "zero clamps to the serial path");
        assert!(resolve_threads(None) >= 1);
        assert_eq!(WorkerPool::new(0).threads(), 1);
        assert!(WorkerPool::new(1).is_serial());
        assert!(!WorkerPool::new(2).is_serial());
        assert_eq!(WorkerPool::from_config(Some(3)).threads(), 3);
    }

    #[test]
    fn parallelism_is_the_shared_knob() {
        // One resolution rule: explicit > DQ_THREADS > cores.
        assert_eq!(Parallelism::explicit(4).resolve(), 4);
        assert_eq!(Parallelism::explicit(0).resolve(), 1, "explicit zero clamps");
        assert!(Parallelism::serial().pool().is_serial());
        assert!(Parallelism::AUTO.is_auto());
        assert!(Parallelism::AUTO.resolve() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::AUTO);
        // Option/usize conversions round-trip the request.
        assert_eq!(Parallelism::from(Some(3)).requested(), Some(3));
        assert_eq!(Parallelism::from(None).requested(), None);
        assert_eq!(Parallelism::from(5usize).requested(), Some(5));
        assert_eq!(WorkerPool::from_config(Parallelism::explicit(2)).threads(), 2);
        assert_eq!(WorkerPool::from_config(2usize).threads(), 2);
    }
}
