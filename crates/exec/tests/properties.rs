//! Property-based checks of the worker pool: deterministic input-order
//! results for arbitrary (item count, thread count) combinations, and
//! panic propagation as errors from arbitrary positions.

use dq_exec::{ExecError, WorkerPool};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Results come back in input order for any pool width — including
    /// pools wider than the job list — and agree with the serial map.
    #[test]
    fn results_are_in_input_order(items in proptest::collection::vec(0u64..1_000_000, 0..80),
                                  threads in 1usize..12) {
        let serial: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(2654435761) >> 7).collect();
        let pool = WorkerPool::new(threads);
        let parallel = pool.map_indexed(&items, |_, &x| x.wrapping_mul(2654435761) >> 7);
        prop_assert_eq!(parallel, serial);
    }

    /// The closure's index argument always equals the item's position.
    #[test]
    fn indices_match_positions(n in 0usize..120, threads in 1usize..9) {
        let items: Vec<usize> = (0..n).collect();
        let pool = WorkerPool::new(threads);
        let echoed = pool.map_indexed(&items, |i, &x| (i, x));
        for (i, &(idx, x)) in echoed.iter().enumerate() {
            prop_assert_eq!(idx, i);
            prop_assert_eq!(x, i);
        }
    }

    /// A panic in any single item surfaces as `WorkerPanic` naming that
    /// item's index; panic-free runs never error.
    #[test]
    fn panics_propagate_as_errors(n in 1usize..60, bad in 0usize..60, threads in 1usize..9) {
        let bad = bad % n;
        let items: Vec<usize> = (0..n).collect();
        let pool = WorkerPool::new(threads);
        let err = pool
            .try_map_indexed(&items, |_, &x| {
                if x == bad {
                    panic!("injected failure at {x}");
                }
                x
            })
            .unwrap_err();
        let ExecError::WorkerPanic { index, message } = err;
        prop_assert_eq!(index, bad);
        prop_assert!(message.contains("injected failure"));

        let clean = pool.try_map_indexed(&items, |_, &x| x + 1);
        prop_assert!(clean.is_ok());
    }
}
