//! Memoized pairwise rule hygiene — the fast path behind the rule
//! generator's quadratic Def. 6 / instance-compatibility pass.
//!
//! Admitting the n-th rule into a natural rule set compares the
//! candidate against every accepted rule; each comparison re-derives
//! the same DNFs and TDG-negations from scratch, which makes rule-set
//! generation quadratic with a large constant. A [`CachedRule`]
//! computes, once per rule:
//!
//! * the DNFs of its premise, consequent and their TDG-negations (the
//!   building blocks of every [`implies`](crate::implies::implies) and
//!   [`satisfiable`](crate::sat::satisfiable) call the checks make);
//! * its attribute masks (premise and whole-rule);
//! * whether its premise is *valid* (true on every record) under the
//!   implemented decision procedure.
//!
//! [`pair_conflict`] and [`instance_conflict`] then combine cached
//! DNFs with the exact conjunction-product rule
//! [`to_dnf`] uses (including its overflow cap),
//! so every satisfiability verdict — and therefore every accept/reject
//! decision of the rule generator — is **identical** to the uncached
//! [`rule_pair_conflict`](crate::natural::rule_pair_conflict) path.
//!
//! On top of the memoization sit two attribute-disjointness prefilters
//! that skip entire checks without changing any verdict (arguments in
//! the function docs); both rely on the inputs being natural rules,
//! which is the order the generator establishes anyway.

use crate::atom::Atom;
use crate::dnf::{to_dnf, MAX_DNF_CONJUNCTS};
use crate::formula::Rule;
use crate::negate::negate;
use crate::program::AttrMask;
use crate::sat::satisfiable_conjunction;
use dq_table::Schema;

/// A DNF as [`to_dnf`] produces it; `None` is the overflow verdict,
/// which every consumer treats as "conservatively satisfiable".
type Dnf = Option<Vec<Vec<Atom>>>;

/// A rule with its pairwise-check ingredients precomputed.
#[derive(Debug, Clone)]
pub struct CachedRule {
    /// The underlying rule.
    pub rule: Rule,
    attrs: AttrMask,
    premise_attrs: AttrMask,
    premise_valid: bool,
    dnf_premise: Dnf,
    dnf_neg_premise: Dnf,
    dnf_consequent: Dnf,
    dnf_neg_consequent: Dnf,
}

impl CachedRule {
    /// Precompute the pairwise-check ingredients of `rule`.
    pub fn new(schema: &Schema, rule: Rule) -> CachedRule {
        let mut attrs = AttrMask::default();
        for a in rule.attrs() {
            attrs.set(a);
        }
        let mut premise_attrs = AttrMask::default();
        for a in rule.premise.attrs() {
            premise_attrs.set(a);
        }
        let dnf_premise = to_dnf(&rule.premise);
        let dnf_neg_premise = to_dnf(&negate(&rule.premise));
        let dnf_consequent = to_dnf(&rule.consequent);
        let dnf_neg_consequent = to_dnf(&negate(&rule.consequent));
        // The premise is valid iff its TDG-negation is unsatisfiable —
        // the same decision `implies(⊤, premise)` would reach.
        let premise_valid = !sat_dnf(schema, &dnf_neg_premise);
        CachedRule {
            rule,
            attrs,
            premise_attrs,
            premise_valid,
            dnf_premise,
            dnf_neg_premise,
            dnf_consequent,
            dnf_neg_consequent,
        }
    }

    /// Attributes mentioned anywhere in the rule.
    pub fn attrs(&self) -> AttrMask {
        self.attrs
    }
}

/// Satisfiability of a cached DNF (`None` = overflow = satisfiable),
/// exactly as [`satisfiable`](crate::sat::satisfiable) decides it.
fn sat_dnf(schema: &Schema, dnf: &Dnf) -> bool {
    match dnf {
        None => true,
        Some(conjs) => conjs.iter().any(|c| satisfiable_conjunction(schema, c)),
    }
}

/// `satisfiable(schema, And(parts))` from cached part DNFs, without
/// materializing the product: the conjuncts of the product DNF are
/// enumerated lazily into one reusable buffer and solved until the
/// first satisfiable one.
///
/// Verdict-identical to building [`to_dnf`]'s product and testing it:
/// the enumerated conjunct set is the same, existence (`any`) does not
/// depend on enumeration order, and the overflow cap triggers in
/// exactly the same cases — with every factor non-empty the stepwise
/// prefix products are monotone, so "some prefix exceeds the cap" is
/// "the running product exceeds the cap at that step", which is what
/// the loop below checks.
fn sat_and(schema: &Schema, parts: &[&Dnf]) -> bool {
    const MAX_PARTS: usize = 4;
    assert!(parts.len() <= MAX_PARTS, "pairwise checks conjoin at most 4 formulae");
    let mut factors: [&[Vec<Atom>]; MAX_PARTS] = [&[]; MAX_PARTS];
    let mut total = 1usize;
    for (k, part) in parts.iter().enumerate() {
        let Some(d) = part.as_ref() else {
            return true; // a factor already overflowed: conservative SAT
        };
        match total.checked_mul(d.len()) {
            Some(t) if t <= MAX_DNF_CONJUNCTS => total = t,
            _ => return true, // product overflow: conservative SAT
        }
        factors[k] = d;
    }
    if total == 0 {
        return false; // an empty factor empties the product
    }
    let factors = &factors[..parts.len()];
    // Odometer over one conjunct index per factor, merging into one
    // reusable buffer.
    let mut idx = [0usize; MAX_PARTS];
    CONJ_SCRATCH.with(|cell| {
        let mut conj = cell.borrow_mut();
        loop {
            conj.clear();
            for (f, &i) in factors.iter().zip(&idx) {
                conj.extend_from_slice(&f[i]);
            }
            if satisfiable_conjunction(schema, &conj) {
                return true;
            }
            // Advance the odometer (last factor fastest, like the
            // nested product loops).
            let mut k = factors.len();
            loop {
                if k == 0 {
                    return false;
                }
                k -= 1;
                idx[k] += 1;
                if idx[k] < factors[k].len() {
                    break;
                }
                idx[k] = 0;
            }
        }
    })
}

thread_local! {
    /// Reusable merged-conjunct buffer for [`sat_and`]. The solver it
    /// feeds never calls back into `sat_and`, so the borrow is never
    /// reentrant.
    static CONJ_SCRATCH: std::cell::RefCell<Vec<Atom>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Cached equivalent of
/// [`rule_pair_conflict`](crate::natural::rule_pair_conflict):
/// identical verdict on every natural rule pair.
pub fn pair_conflict(schema: &Schema, a: &CachedRule, b: &CachedRule) -> bool {
    directed_conflict(schema, a, b) || directed_conflict(schema, b, a)
}

/// The Def. 6 check for the ordered pair (`ri` = αᵢ → βᵢ,
/// `rj` = αⱼ → βⱼ), off cached DNFs.
///
/// Prefilter: when the premises share no attribute and αᵢ is not
/// valid, `αⱼ ⇒ αᵢ` is decidedly false — a satisfiable conjunct of
/// DNF(αⱼ) (αⱼ is natural, hence satisfiable) concatenated with a
/// satisfiable conjunct of DNF(α̃ᵢ) (exists since αᵢ is not valid)
/// stays satisfiable under the per-attribute domain-restriction
/// procedure, because restrictions and links never cross disjoint
/// attribute sets. The full check would reach the same "no
/// implication" answer, so skipping changes no verdict.
fn directed_conflict(schema: &Schema, ri: &CachedRule, rj: &CachedRule) -> bool {
    if !ri.premise_attrs.intersects(rj.premise_attrs) && !ri.premise_valid {
        return false;
    }
    // implies(αⱼ, αᵢ) = UNSAT(αⱼ ∧ α̃ᵢ).
    if sat_and(schema, &[&rj.dnf_premise, &ri.dnf_neg_premise]) {
        return false; // αⱼ does not imply αᵢ
    }
    let overlap_sat = sat_and(schema, &[&rj.dnf_premise, &ri.dnf_consequent, &rj.dnf_consequent]);
    if !overlap_sat {
        return true; // contradictory consequences on αⱼ-records
    }
    // (αⱼ ∧ βᵢ) ⇒ βⱼ — rⱼ adds nothing beyond rᵢ on its own records.
    !sat_and(schema, &[&rj.dnf_premise, &ri.dnf_consequent, &rj.dnf_neg_consequent])
}

/// Cached equivalent of the rule generator's strict
/// instance-compatibility check: can the two rules clash on a single
/// record (premises can hold together but premises ∧ consequents
/// cannot)?
///
/// Prefilter: when the rules share no attribute at all, both
/// conjunctions factor into the two rules' own satisfiable halves
/// (`αₖ ∧ βₖ` is satisfiable for every natural rule), so the check is
/// decidedly "no conflict".
pub fn instance_conflict(schema: &Schema, a: &CachedRule, b: &CachedRule) -> bool {
    if !a.attrs.intersects(b.attrs) {
        return false;
    }
    if !sat_and(schema, &[&a.dnf_premise, &b.dnf_premise]) {
        return false; // premises disjoint: no record triggers both
    }
    !sat_and(schema, &[&a.dnf_premise, &b.dnf_premise, &a.dnf_consequent, &b.dnf_consequent])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula;
    use crate::natural::rule_pair_conflict;
    use crate::sat::satisfiable;
    use dq_table::{SchemaBuilder, Value};

    fn schema() -> std::sync::Arc<Schema> {
        SchemaBuilder::new()
            .nominal("A", ["Val1", "Val2", "Val3"])
            .nominal("B", ["Val1", "Val2", "Val3"])
            .nominal("C", ["Val1", "Val2", "Val3"])
            .numeric("N", 0.0, 10.0)
            .build()
            .unwrap()
    }

    fn eq(attr: usize, code: u32) -> Formula {
        Formula::Atom(Atom::EqConst { attr, value: Value::Nominal(code) })
    }

    fn neq(attr: usize, code: u32) -> Formula {
        Formula::Atom(Atom::NeqConst { attr, value: Value::Nominal(code) })
    }

    /// The uncached instance-compatibility check, verbatim from the
    /// rule generator, as differential ground truth.
    fn instance_conflict_plain(schema: &Schema, a: &Rule, b: &Rule) -> bool {
        let premises = Formula::And(vec![a.premise.clone(), b.premise.clone()]);
        if !satisfiable(schema, &premises) {
            return false;
        }
        let all = Formula::And(vec![
            a.premise.clone(),
            b.premise.clone(),
            a.consequent.clone(),
            b.consequent.clone(),
        ]);
        !satisfiable(schema, &all)
    }

    #[test]
    fn cached_verdicts_match_plain_on_paper_examples() {
        let s = schema();
        let pairs = [
            // Mutually contradictory pair.
            (Rule::new(eq(0, 0), eq(1, 0)), Rule::new(eq(0, 0), eq(1, 1))),
            // Redundant specialization.
            (
                Rule::new(eq(0, 0), eq(2, 0)),
                Rule::new(Formula::And(vec![eq(0, 0), eq(1, 1)]), eq(2, 0)),
            ),
            // Refining specialization (accepted).
            (
                Rule::new(eq(0, 0), neq(2, 2)),
                Rule::new(Formula::And(vec![eq(0, 0), eq(1, 1)]), eq(2, 0)),
            ),
            // Unrelated rules.
            (Rule::new(eq(0, 0), eq(1, 0)), Rule::new(eq(2, 1), eq(1, 2))),
            // Fully attribute-disjoint rules (prefilter path).
            (
                Rule::new(eq(0, 0), eq(1, 0)),
                Rule::new(eq(2, 1), Formula::Atom(Atom::LessConst { attr: 3, value: 5.0 })),
            ),
            // Instance conflict through overlapping premises.
            (
                Rule::new(eq(0, 0), Formula::Atom(Atom::LessConst { attr: 3, value: 2.0 })),
                Rule::new(eq(1, 0), Formula::Atom(Atom::GreaterConst { attr: 3, value: 8.0 })),
            ),
        ];
        for (ra, rb) in pairs {
            let ca = CachedRule::new(&s, ra.clone());
            let cb = CachedRule::new(&s, rb.clone());
            assert_eq!(
                pair_conflict(&s, &ca, &cb),
                rule_pair_conflict(&s, &ra, &rb),
                "pair_conflict({ra}, {rb})"
            );
            assert_eq!(
                instance_conflict(&s, &ca, &cb),
                instance_conflict_plain(&s, &ra, &rb),
                "instance_conflict({ra}, {rb})"
            );
        }
    }

    #[test]
    fn premise_validity_is_detected() {
        let s = schema();
        // N < 100 is valid over N ∈ [0, 10] … except NULLs: a NULL
        // record falsifies it, so it is NOT valid under TDG semantics.
        let almost = CachedRule::new(
            &s,
            Rule::new(Formula::Atom(Atom::LessConst { attr: 3, value: 100.0 }), eq(0, 0)),
        );
        assert!(!almost.premise_valid);
        // N < 100 ∨ N isnull *is* valid.
        let valid = CachedRule::new(
            &s,
            Rule::new(
                Formula::Or(vec![
                    Formula::Atom(Atom::LessConst { attr: 3, value: 100.0 }),
                    Formula::Atom(Atom::IsNull { attr: 3 }),
                ]),
                eq(0, 0),
            ),
        );
        assert!(valid.premise_valid);
        // A valid premise defeats the disjointness prefilter: the pair
        // verdict must still match the plain path.
        let other = CachedRule::new(&s, Rule::new(eq(1, 0), eq(2, 0)));
        assert_eq!(
            pair_conflict(&s, &valid, &other),
            rule_pair_conflict(&s, &valid.rule, &other.rule)
        );
    }
}
