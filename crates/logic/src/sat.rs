//! The pragmatic satisfiability test (sec. 4.1.3 of the paper).
//!
//! A conjunction of atoms is checked by initializing every attribute's
//! current domain from the schema and successively restricting it:
//! propositional atoms restrict directly; relational atoms instantiate
//! *links* between attributes ("while considering the transitive nature
//! of the operators <, > and ="), along which domain restrictions are
//! propagated. General formulae go through DNF first.
//!
//! The test is **sound for UNSAT**: when it answers "unsatisfiable"
//! there really is no model. Like the paper's procedure it may, in rare
//! contrived cases, answer "satisfiable" for an unsatisfiable formula
//! (e.g. disequality chains that need graph coloring, or mixed
//! real/integer equality groups); all approximations err towards SAT.
//! DNF overflow likewise yields a conservative "satisfiable".

use crate::atom::Atom;
use crate::dnf::to_dnf;
use crate::domain::DomainSet;
use crate::formula::Formula;
use dq_table::Schema;

/// Satisfiability of an arbitrary TDG-formula over `schema`.
pub fn satisfiable(schema: &Schema, formula: &Formula) -> bool {
    // Single atoms are their own DNF — skip the expansion (naturality
    // checks test every atom of every candidate rule this way).
    if let Formula::Atom(a) = formula {
        return satisfiable_conjunction(schema, std::slice::from_ref(a));
    }
    match to_dnf(formula) {
        // DNF too large to enumerate: give the formula the benefit of
        // the doubt (errs toward SAT, preserving UNSAT soundness).
        None => true,
        Some(dnf) => dnf.iter().any(|conj| satisfiable_conjunction(schema, conj)),
    }
}

/// Satisfiability of a conjunction of atoms.
///
/// Runs the same solver as [`solve_conjunction`] but skips the final
/// per-attribute domain materialization — the hot callers (rule-set
/// hygiene, implication checks) only need the verdict.
pub fn satisfiable_conjunction(schema: &Schema, atoms: &[Atom]) -> bool {
    SOLVE_SCRATCH.with(|cell| {
        let mut st = cell.borrow_mut();
        solve_slots_in(schema, atoms, &mut st)
    })
}

/// Run the domain-restriction procedure on a conjunction of atoms.
///
/// Returns the restricted per-attribute [`DomainSet`]s if the
/// conjunction is (believed) satisfiable — the test data generator
/// samples repair values from exactly these sets — or `None` if it is
/// definitely unsatisfiable.
pub fn solve_conjunction(schema: &Schema, atoms: &[Atom]) -> Option<Vec<DomainSet>> {
    SOLVE_SCRATCH.with(|cell| {
        let mut st = cell.borrow_mut();
        if !solve_slots_in(schema, atoms, &mut st) {
            return None;
        }
        // Copy root domains back to every member so callers see the
        // restriction on the attribute they asked about; unmentioned
        // attributes keep their full domain.
        Some(
            (0..schema.len())
                .map(|i| match st.attrs.iter().position(|&a| a == i) {
                    Some(s) => st.dom[st.root_of(s)].clone(),
                    None => DomainSet::full(&schema.attr(i).ty),
                })
                .collect(),
        )
    })
}

/// The solver's working state, over *mentioned attributes only*: a
/// conjunction of k atoms touches at most 2k attributes, so building
/// (and intersecting, propagating, checking) domains for the whole
/// schema is wasted work — unmentioned attributes keep their full
/// domain, participate in no links, and are always satisfiable. The
/// verdict is identical to solving over all attributes: restrictions
/// and links never reach an unmentioned attribute, and the sweep count
/// (one per slot) still covers the longest possible propagation chain.
struct SlotState {
    /// Mentioned attributes, in first-mention order (slot index →
    /// attribute index).
    attrs: Vec<usize>,
    /// Per-slot restricted domain.
    dom: Vec<DomainSet>,
    /// Union-find parents over slots.
    parent: Vec<usize>,
}

impl SlotState {
    /// The slot for attribute `attr`, creating it (with the attribute's
    /// full domain) on first mention.
    fn slot(&mut self, schema: &Schema, attr: usize) -> usize {
        match self.attrs.iter().position(|&a| a == attr) {
            Some(s) => s,
            None => {
                self.attrs.push(attr);
                self.dom.push(DomainSet::full(&schema.attr(attr).ty));
                self.parent.push(self.parent.len());
                self.attrs.len() - 1
            }
        }
    }

    fn root_of(&self, mut s: usize) -> usize {
        while self.parent[s] != s {
            s = self.parent[s];
        }
        s
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.root_of(a), self.root_of(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

thread_local! {
    /// Reusable solver buffers — `solve_slots` is called once per DNF
    /// conjunct on the hot hygiene paths, and with bitmask nominal
    /// domains the buffers themselves were its only remaining heap
    /// traffic. Never borrowed reentrantly: the solver does not call
    /// back into itself.
    static SOLVE_SCRATCH: std::cell::RefCell<SlotState> = const { std::cell::RefCell::new(SlotState {
        attrs: Vec::new(),
        dom: Vec::new(),
        parent: Vec::new(),
    }) };
}

/// The domain-restriction procedure over mentioned-attribute slots;
/// `true` iff the conjunction is (believed) satisfiable. On success
/// `st` holds the restricted slots.
fn solve_slots_in(schema: &Schema, atoms: &[Atom], st: &mut SlotState) -> bool {
    st.attrs.clear();
    st.dom.clear();
    st.parent.clear();
    let mut less_edges: Vec<(usize, usize)> = Vec::new(); // (a, b) means a < b (slots)
    let mut neq_pairs: Vec<(usize, usize)> = Vec::new();

    // Phase 1: integrate propositional restrictions, collect links.
    for atom in atoms {
        match atom {
            Atom::EqConst { attr, value } => {
                let s = st.slot(schema, *attr);
                st.dom[s].restrict_eq(value);
            }
            Atom::NeqConst { attr, value } => {
                let s = st.slot(schema, *attr);
                st.dom[s].restrict_neq(value);
            }
            Atom::LessConst { attr, value } => {
                let s = st.slot(schema, *attr);
                st.dom[s].restrict_less(*value, true);
            }
            Atom::GreaterConst { attr, value } => {
                let s = st.slot(schema, *attr);
                st.dom[s].restrict_greater(*value, true);
            }
            Atom::IsNull { attr } => {
                let s = st.slot(schema, *attr);
                st.dom[s].restrict_null();
            }
            Atom::IsNotNull { attr } => {
                let s = st.slot(schema, *attr);
                st.dom[s].restrict_not_null();
            }
            Atom::EqAttr { left, right } => {
                let (l, r) = (st.slot(schema, *left), st.slot(schema, *right));
                st.dom[l].restrict_not_null();
                st.dom[r].restrict_not_null();
                st.union(l, r);
            }
            Atom::NeqAttr { left, right } => {
                let (l, r) = (st.slot(schema, *left), st.slot(schema, *right));
                st.dom[l].restrict_not_null();
                st.dom[r].restrict_not_null();
                neq_pairs.push((l, r));
            }
            Atom::LessAttr { left, right } => {
                let (l, r) = (st.slot(schema, *left), st.slot(schema, *right));
                st.dom[l].restrict_not_null();
                st.dom[r].restrict_not_null();
                less_edges.push((l, r));
            }
            Atom::GreaterAttr { left, right } => {
                let (l, r) = (st.slot(schema, *left), st.slot(schema, *right));
                st.dom[l].restrict_not_null();
                st.dom[r].restrict_not_null();
                less_edges.push((r, l));
            }
        }
    }
    let k = st.attrs.len();

    // Phase 2: merge the domains of equality groups into the root.
    for s in 0..k {
        let r = st.root_of(s);
        if r != s {
            let d = st.dom[s].clone();
            st.dom[r].intersect(&d);
        }
    }

    // Map order/disequality constraints onto group roots.
    let less: Vec<(usize, usize)> =
        less_edges.iter().map(|&(a, b)| (st.root_of(a), st.root_of(b))).collect();
    if less.iter().any(|&(a, b)| a == b) {
        return false; // x < x via equality chain
    }
    for &(a, b) in &neq_pairs {
        if st.root_of(a) == st.root_of(b) {
            return false; // x ≠ x via equality chain
        }
    }

    // A cycle in the strict-order graph is unsatisfiable
    // (a < … < a) — the transitivity the paper calls out.
    if has_cycle(k, &less) {
        return false;
    }

    // Phase 3: propagate interval bounds along order edges. The graph
    // is a DAG with at most k nodes, so k sweeps reach the fixpoint.
    for _ in 0..k.max(1) {
        for &(a, b) in &less {
            // a < b: a stays below b's supremum, b above a's infimum.
            let (da, db) = if a < b {
                let (x, y) = st.dom.split_at_mut(b);
                (&mut x[a], &mut y[0])
            } else {
                let (x, y) = st.dom.split_at_mut(a);
                (&mut y[0], &mut x[b])
            };
            if let Some(sup_b) = db.values.sup() {
                da.values.tighten_hi(sup_b, true);
            }
            if let Some(inf_a) = da.values.inf() {
                db.values.tighten_lo(inf_a, true);
            }
        }
    }

    // Phase 4: verdicts. Every group root must still be satisfiable.
    for s in 0..k {
        if !st.dom[st.root_of(s)].is_satisfiable() {
            return false;
        }
        // Attributes linked relationally must have a *value* (they are
        // non-null); the intersect already dropped nullability.
    }
    // Disequality between two singleton groups pinned to one value.
    for &(a, b) in &neq_pairs {
        let (ra, rb) = (st.root_of(a), st.root_of(b));
        if let (Some(x), Some(y)) = (st.dom[ra].values.singleton(), st.dom[rb].values.singleton()) {
            if x == y {
                return false;
            }
        }
    }
    true
}

/// Kahn's algorithm over the strict-order edges.
fn has_cycle(n: usize, edges: &[(usize, usize)]) -> bool {
    let mut indeg = vec![0usize; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a].push(b);
        indeg[b] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut seen = 0;
    while let Some(x) = queue.pop() {
        seen += 1;
        for &y in &adj[x] {
            indeg[y] -= 1;
            if indeg[y] == 0 {
                queue.push(y);
            }
        }
    }
    seen < n
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_table::{SchemaBuilder, Value};

    fn schema() -> std::sync::Arc<Schema> {
        SchemaBuilder::new()
            .nominal("a", ["x", "y", "z"])
            .nominal("b", ["x", "y", "z"])
            .numeric("n", 0.0, 10.0)
            .numeric("m", 0.0, 10.0)
            .numeric("k", 0.0, 10.0)
            .integer("i", 0.0, 3.0)
            .build()
            .unwrap()
    }

    fn eq(attr: usize, code: u32) -> Atom {
        Atom::EqConst { attr, value: Value::Nominal(code) }
    }

    #[test]
    fn paper_contradiction_example() {
        // A = Val1 ∧ A = Val2 is unsatisfiable (first bad rule of
        // sec. 4.1.2 has this as premise ∧ consequent).
        let s = schema();
        assert!(!satisfiable_conjunction(&s, &[eq(0, 0), eq(0, 1)]));
        assert!(satisfiable_conjunction(&s, &[eq(0, 0), eq(1, 1)]));
    }

    #[test]
    fn null_interactions() {
        let s = schema();
        assert!(!satisfiable_conjunction(
            &s,
            &[Atom::IsNull { attr: 0 }, Atom::IsNotNull { attr: 0 }]
        ));
        assert!(!satisfiable_conjunction(&s, &[Atom::IsNull { attr: 0 }, eq(0, 1)]));
        assert!(satisfiable_conjunction(
            &s,
            &[Atom::IsNull { attr: 0 }, Atom::IsNotNull { attr: 1 }]
        ));
    }

    #[test]
    fn numeric_interval_conflicts() {
        let s = schema();
        assert!(!satisfiable_conjunction(
            &s,
            &[Atom::LessConst { attr: 2, value: 3.0 }, Atom::GreaterConst { attr: 2, value: 3.0 },]
        ));
        assert!(satisfiable_conjunction(
            &s,
            &[Atom::GreaterConst { attr: 2, value: 2.0 }, Atom::LessConst { attr: 2, value: 3.0 },]
        ));
        // Out-of-domain demands are unsatisfiable: n ∈ [0, 10].
        assert!(!satisfiable_conjunction(&s, &[Atom::GreaterConst { attr: 2, value: 10.0 }]));
        assert!(!satisfiable_conjunction(
            &s,
            &[Atom::EqConst { attr: 2, value: Value::Number(11.0) }]
        ));
    }

    #[test]
    fn equality_links_propagate() {
        let s = schema();
        // a = b ∧ a = x ∧ b = y → unsat (the paper's mutually
        // contradictory pair, expressed through a link).
        assert!(!satisfiable_conjunction(
            &s,
            &[Atom::EqAttr { left: 0, right: 1 }, eq(0, 0), eq(1, 1)]
        ));
        assert!(satisfiable_conjunction(
            &s,
            &[Atom::EqAttr { left: 0, right: 1 }, eq(0, 0), eq(1, 0)]
        ));
        // Numeric link: n = m ∧ n < 3 ∧ m > 5 → unsat.
        assert!(!satisfiable_conjunction(
            &s,
            &[
                Atom::EqAttr { left: 2, right: 3 },
                Atom::LessConst { attr: 2, value: 3.0 },
                Atom::GreaterConst { attr: 3, value: 5.0 },
            ]
        ));
    }

    #[test]
    fn equality_link_forbids_null() {
        let s = schema();
        assert!(!satisfiable_conjunction(
            &s,
            &[Atom::EqAttr { left: 0, right: 1 }, Atom::IsNull { attr: 0 }]
        ));
    }

    #[test]
    fn strict_order_cycles_are_unsat() {
        let s = schema();
        // n < m ∧ m < k ∧ k < n.
        assert!(!satisfiable_conjunction(
            &s,
            &[
                Atom::LessAttr { left: 2, right: 3 },
                Atom::LessAttr { left: 3, right: 4 },
                Atom::LessAttr { left: 4, right: 2 },
            ]
        ));
        // Two-cycle via > and <.
        assert!(!satisfiable_conjunction(
            &s,
            &[Atom::LessAttr { left: 2, right: 3 }, Atom::GreaterAttr { left: 2, right: 3 },]
        ));
        // A chain is fine.
        assert!(satisfiable_conjunction(
            &s,
            &[Atom::LessAttr { left: 2, right: 3 }, Atom::LessAttr { left: 3, right: 4 },]
        ));
    }

    #[test]
    fn order_with_equality_is_unsat() {
        let s = schema();
        // n = m ∧ n < m collapses to x < x.
        assert!(!satisfiable_conjunction(
            &s,
            &[Atom::EqAttr { left: 2, right: 3 }, Atom::LessAttr { left: 2, right: 3 },]
        ));
        // n ≠ m ∧ n = m likewise.
        assert!(!satisfiable_conjunction(
            &s,
            &[Atom::EqAttr { left: 2, right: 3 }, Atom::NeqAttr { left: 2, right: 3 },]
        ));
    }

    #[test]
    fn transitive_bound_propagation() {
        let s = schema();
        // n < m ∧ n > 9 ∧ m < 9: the bounds meet in the middle.
        assert!(!satisfiable_conjunction(
            &s,
            &[
                Atom::LessAttr { left: 2, right: 3 },
                Atom::GreaterConst { attr: 2, value: 9.0 },
                Atom::LessConst { attr: 3, value: 9.0 },
            ]
        ));
        // Propagation through a middle attribute: n < m ∧ m < k with
        // n > 9 forces k > 9 strictly twice — fine for reals…
        assert!(satisfiable_conjunction(
            &s,
            &[
                Atom::LessAttr { left: 2, right: 3 },
                Atom::LessAttr { left: 3, right: 4 },
                Atom::GreaterConst { attr: 2, value: 9.0 },
            ]
        ));
        // …but k < 9 on top closes the corridor.
        assert!(!satisfiable_conjunction(
            &s,
            &[
                Atom::LessAttr { left: 2, right: 3 },
                Atom::LessAttr { left: 3, right: 4 },
                Atom::GreaterConst { attr: 2, value: 9.0 },
                Atom::LessConst { attr: 4, value: 9.0 },
            ]
        ));
        // Integer grids step: i ∈ {0..3}, i > 2 ∧ i < 3 has no
        // integral point.
        assert!(!satisfiable_conjunction(
            &s,
            &[Atom::GreaterConst { attr: 5, value: 2.0 }, Atom::LessConst { attr: 5, value: 3.0 },]
        ));
        // The crisp boundary case: i > 3 leaves {0..3} entirely.
        assert!(!satisfiable_conjunction(&s, &[Atom::GreaterConst { attr: 5, value: 3.0 }]));
    }

    #[test]
    fn singleton_disequality() {
        let s = schema();
        assert!(!satisfiable_conjunction(
            &s,
            &[eq(0, 1), eq(1, 1), Atom::NeqAttr { left: 0, right: 1 }]
        ));
        assert!(satisfiable_conjunction(&s, &[eq(0, 1), Atom::NeqAttr { left: 0, right: 1 }]));
    }

    #[test]
    fn formula_level_sat_goes_through_dnf() {
        let s = schema();
        // (a = x ∧ a = y) ∨ (a = z): first disjunct unsat, second sat.
        let f = Formula::Or(vec![
            Formula::And(vec![Formula::Atom(eq(0, 0)), Formula::Atom(eq(0, 1))]),
            Formula::Atom(eq(0, 2)),
        ]);
        assert!(satisfiable(&s, &f));
        let g =
            Formula::Or(vec![Formula::And(vec![Formula::Atom(eq(0, 0)), Formula::Atom(eq(0, 1))])]);
        assert!(!satisfiable(&s, &g));
    }

    #[test]
    fn solver_returns_usable_domains() {
        let s = schema();
        let doms = solve_conjunction(
            &s,
            &[
                eq(0, 2),
                Atom::GreaterConst { attr: 2, value: 4.0 },
                Atom::LessConst { attr: 2, value: 6.0 },
            ],
        )
        .unwrap();
        assert_eq!(doms[0].values.singleton(), Some(2.0));
        assert!(!doms[0].can_null);
        assert_eq!(doms[2].values.inf(), Some(4.0));
        assert_eq!(doms[2].values.sup(), Some(6.0));
        // Unconstrained attribute keeps its full domain and nullability.
        assert!(doms[1].can_null);
    }

    #[test]
    fn date_vs_numeric_ordering() {
        let s = SchemaBuilder::new()
            .date_ymd("d", (2000, 1, 1), (2000, 1, 10))
            .numeric("x", 0.0, 1e5)
            .build()
            .unwrap();
        // d > x ∧ x > day#(2000-01-10) → d > max(d) → unsat.
        let top = dq_table::date::days_from_civil(2000, 1, 10) as f64;
        assert!(!satisfiable_conjunction(
            &s,
            &[Atom::GreaterAttr { left: 0, right: 1 }, Atom::GreaterConst { attr: 1, value: top },]
        ));
    }
}
