//! Compiled rule programs — the flat, recursion-free evaluation layer.
//!
//! [`eval_formula`](crate::eval::eval_formula) walks the boxed
//! [`Formula`] tree and re-discovers the connective structure on every
//! record. That is fine for one-off checks, but the test data
//! generator's repair loop, the polluter's violation counters and the
//! rule-violation scans all evaluate the *same* rule set against
//! millions of records. This module compiles a formula **once** into a
//! contiguous arena of typed atom ops wired as a short-circuit branch
//! program, so per-record evaluation is a tight loop over a slice:
//!
//! * every op is one `AtomOp` with pre-resolved operands (nominal
//!   codes and widened numeric thresholds split at compile time, so no
//!   `Value` matching on constants at run time);
//! * the connective structure is encoded in each op's `on_true` /
//!   `on_false` jump targets — evaluation is `pc = if hit { on_true }
//!   else { on_false }` until an accept/reject sentinel, which is
//!   exactly the short-circuit order of `Iterator::all`/`any`;
//! * there is no recursion, no stack and no `Vec<Formula>` pointer
//!   chasing at evaluation time.
//!
//! [`CompiledRuleSet`] adds what the rule consumers need on top:
//! per-rule attribute masks, and a dirty-attribute → affected-rule
//! inverted index so incremental consumers (the TDG repair loop)
//! re-evaluate only the rules that can have changed.
//!
//! Semantics are pinned to the interpreter: for every formula `f` and
//! record `r`, `compile(f).eval(r) == eval_formula(&f, r)` — including
//! NULL handling, out-of-label nominal codes and mixed nominal/numeric
//! comparisons (the property suite in `tests/` re-checks this on random
//! formulae).

use crate::atom::Atom;
use crate::eval::RuleStatus;
use crate::formula::{Formula, Rule, RuleSet};
use dq_table::{AttrIdx, Table, Value};
use std::cmp::Ordering;

/// Jump target: accept (formula holds).
const ACCEPT: u32 = u32::MAX;
/// Jump target: reject (formula does not hold).
const REJECT: u32 = u32::MAX - 1;

/// One atom with pre-resolved operands.
///
/// Constants are split by kind at compile time so the evaluator never
/// matches on a constant `Value`: `EqNominal` compares codes,
/// `EqNumeric` compares widened numbers (dates widen to day numbers,
/// exactly like [`Value::as_numeric`]).
#[derive(Debug, Clone, Copy, PartialEq)]
enum AtomOp {
    /// `A = c` for a nominal constant.
    EqNominal { attr: AttrIdx, code: u32 },
    /// `A ≠ c` for a nominal constant.
    NeqNominal { attr: AttrIdx, code: u32 },
    /// `A = x` for a numeric/date constant (widened coordinates).
    EqNumeric { attr: AttrIdx, x: f64 },
    /// `A ≠ x` for a numeric/date constant.
    NeqNumeric { attr: AttrIdx, x: f64 },
    /// `N < x`.
    LessConst { attr: AttrIdx, x: f64 },
    /// `N > x`.
    GreaterConst { attr: AttrIdx, x: f64 },
    /// `A isnull`.
    IsNull { attr: AttrIdx },
    /// `A isnotnull`.
    IsNotNull { attr: AttrIdx },
    /// `A = B`.
    EqAttr { left: AttrIdx, right: AttrIdx },
    /// `A ≠ B`.
    NeqAttr { left: AttrIdx, right: AttrIdx },
    /// `A < B`.
    LessAttr { left: AttrIdx, right: AttrIdx },
    /// `A > B`.
    GreaterAttr { left: AttrIdx, right: AttrIdx },
}

impl AtomOp {
    fn compile(atom: &Atom) -> AtomOp {
        match atom {
            Atom::EqConst { attr, value } => match value {
                Value::Nominal(code) => AtomOp::EqNominal { attr: *attr, code: *code },
                other => match other.as_numeric() {
                    Some(x) => AtomOp::EqNumeric { attr: *attr, x },
                    // `A = NULL` is rejected by validation; if it ever
                    // reaches compilation it holds for no record, which
                    // `sql_eq`'s NULL semantics encode as never-equal.
                    None => AtomOp::EqNumeric { attr: *attr, x: f64::NAN },
                },
            },
            Atom::NeqConst { attr, value } => match value {
                Value::Nominal(code) => AtomOp::NeqNominal { attr: *attr, code: *code },
                other => match other.as_numeric() {
                    Some(x) => AtomOp::NeqNumeric { attr: *attr, x },
                    None => AtomOp::NeqNumeric { attr: *attr, x: f64::NAN },
                },
            },
            Atom::LessConst { attr, value } => AtomOp::LessConst { attr: *attr, x: *value },
            Atom::GreaterConst { attr, value } => AtomOp::GreaterConst { attr: *attr, x: *value },
            Atom::IsNull { attr } => AtomOp::IsNull { attr: *attr },
            Atom::IsNotNull { attr } => AtomOp::IsNotNull { attr: *attr },
            Atom::EqAttr { left, right } => AtomOp::EqAttr { left: *left, right: *right },
            Atom::NeqAttr { left, right } => AtomOp::NeqAttr { left: *left, right: *right },
            Atom::LessAttr { left, right } => AtomOp::LessAttr { left: *left, right: *right },
            Atom::GreaterAttr { left, right } => AtomOp::GreaterAttr { left: *left, right: *right },
        }
    }

    /// Truth value on a record — must agree with
    /// [`eval_atom`](crate::eval::eval_atom) on every input.
    #[inline]
    fn eval(&self, record: &[Value]) -> bool {
        match *self {
            AtomOp::EqNominal { attr, code } => {
                matches!(record[attr], Value::Nominal(c) if c == code)
            }
            AtomOp::NeqNominal { attr, code } => match record[attr] {
                Value::Null => false,
                Value::Nominal(c) => c != code,
                // A non-NULL numeric cell is SQL-unequal to a nominal
                // constant (`sql_eq` answers `Some(false)`).
                Value::Number(_) | Value::Date(_) => true,
            },
            AtomOp::EqNumeric { attr, x } => match record[attr] {
                Value::Number(y) => y == x,
                Value::Date(d) => d as f64 == x,
                Value::Null | Value::Nominal(_) => false,
            },
            AtomOp::NeqNumeric { attr, x } => match record[attr] {
                Value::Null => false,
                Value::Number(y) => y != x,
                Value::Date(d) => d as f64 != x,
                // Nominal vs numeric constant: SQL-unequal.
                Value::Nominal(_) => true,
            },
            AtomOp::LessConst { attr, x } => match record[attr] {
                Value::Number(y) => y < x,
                Value::Date(d) => (d as f64) < x,
                Value::Null | Value::Nominal(_) => false,
            },
            AtomOp::GreaterConst { attr, x } => match record[attr] {
                Value::Number(y) => y > x,
                Value::Date(d) => (d as f64) > x,
                Value::Null | Value::Nominal(_) => false,
            },
            AtomOp::IsNull { attr } => record[attr].is_null(),
            AtomOp::IsNotNull { attr } => !record[attr].is_null(),
            AtomOp::EqAttr { left, right } => record[left].sql_eq(&record[right]) == Some(true),
            AtomOp::NeqAttr { left, right } => record[left].sql_eq(&record[right]) == Some(false),
            AtomOp::LessAttr { left, right } => {
                record[left].sql_cmp(&record[right]) == Some(Ordering::Less)
            }
            AtomOp::GreaterAttr { left, right } => {
                record[left].sql_cmp(&record[right]) == Some(Ordering::Greater)
            }
        }
    }
}

impl AtomOp {
    /// Truth value on a [`RecordView`] — agrees with [`AtomOp::eval`]
    /// on every *kind-correct* record (cells match their attribute's
    /// schema kind, the well-formedness every validated rule set and
    /// generated record guarantees).
    #[inline(always)]
    fn eval_view(&self, codes: &[u32], nums: &[f64]) -> bool {
        match *self {
            AtomOp::EqNominal { attr, code } => codes[attr] == code,
            AtomOp::NeqNominal { attr, code } => {
                if codes[attr] != NONE_CODE {
                    codes[attr] != code
                } else {
                    // A non-null numeric cell is SQL-unequal to a
                    // nominal constant; NULL is not.
                    !nums[attr].is_nan()
                }
            }
            AtomOp::EqNumeric { attr, x } => nums[attr] == x,
            AtomOp::NeqNumeric { attr, x } => {
                if nums[attr].is_nan() {
                    codes[attr] != NONE_CODE
                } else {
                    nums[attr] != x
                }
            }
            AtomOp::LessConst { attr, x } => nums[attr] < x,
            AtomOp::GreaterConst { attr, x } => nums[attr] > x,
            AtomOp::IsNull { attr } => codes[attr] == NONE_CODE && nums[attr].is_nan(),
            AtomOp::IsNotNull { attr } => codes[attr] != NONE_CODE || !nums[attr].is_nan(),
            AtomOp::EqAttr { left, right } => {
                (codes[left] != NONE_CODE && codes[left] == codes[right])
                    || nums[left] == nums[right]
            }
            AtomOp::NeqAttr { left, right } => {
                let nonnull_l = codes[left] != NONE_CODE || !nums[left].is_nan();
                let nonnull_r = codes[right] != NONE_CODE || !nums[right].is_nan();
                nonnull_l
                    && nonnull_r
                    && !((codes[left] != NONE_CODE && codes[left] == codes[right])
                        || nums[left] == nums[right])
            }
            // Ordering atoms are validated onto ordered attributes, so
            // both cells live in `nums` (NaN for NULL → false).
            AtomOp::LessAttr { left, right } => nums[left] < nums[right],
            AtomOp::GreaterAttr { left, right } => nums[left] > nums[right],
        }
    }
}

/// One op of a branch program: an atom plus its two jump targets.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Op {
    atom: AtomOp,
    on_true: u32,
    on_false: u32,
}

/// The nominal-code slot of a NULL or non-nominal cell in a
/// [`RecordView`].
pub const NONE_CODE: u32 = u32::MAX;

/// A typed mirror of one record: per attribute its nominal code (or
/// [`NONE_CODE`]) and its widened numeric payload (or NaN). View-based
/// evaluation replaces per-cell `Value` matching with flat array reads
/// — the shape the TDG repair loop keeps in sync cell-by-cell.
#[derive(Debug, Clone, Default)]
pub struct RecordView {
    codes: Vec<u32>,
    nums: Vec<f64>,
}

impl RecordView {
    /// An all-NULL view over `n_attrs` attributes.
    pub fn new(n_attrs: usize) -> RecordView {
        RecordView { codes: vec![NONE_CODE; n_attrs], nums: vec![f64::NAN; n_attrs] }
    }

    /// Mirror one cell.
    #[inline]
    pub fn sync_attr(&mut self, attr: AttrIdx, value: &Value) {
        match value {
            Value::Null => {
                self.codes[attr] = NONE_CODE;
                self.nums[attr] = f64::NAN;
            }
            Value::Nominal(c) => {
                self.codes[attr] = *c;
                self.nums[attr] = f64::NAN;
            }
            Value::Number(x) => {
                self.codes[attr] = NONE_CODE;
                self.nums[attr] = *x;
            }
            Value::Date(d) => {
                self.codes[attr] = NONE_CODE;
                self.nums[attr] = *d as f64;
            }
        }
    }

    /// Mirror one cell of a purely nominal coded space: `Some(code)`
    /// behaves like [`Value::Nominal`], `None` like [`Value::Null`].
    /// Consumers that evaluate rules over a *coded* view of a table
    /// (the association auditor's item space) sync through this
    /// instead of materializing intermediate [`Value`]s.
    #[inline]
    pub fn sync_nominal(&mut self, attr: AttrIdx, code: Option<u32>) {
        self.codes[attr] = code.unwrap_or(NONE_CODE);
        self.nums[attr] = f64::NAN;
    }

    /// Mirror a whole record.
    pub fn sync_all(&mut self, record: &[Value]) {
        for (a, v) in record.iter().enumerate() {
            self.sync_attr(a, v);
        }
    }

    /// The per-attribute nominal codes ([`NONE_CODE`] = NULL or
    /// non-nominal).
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The per-attribute widened numeric payloads (NaN = NULL or
    /// nominal).
    pub fn nums(&self) -> &[f64] {
        &self.nums
    }
}

/// A formula compiled into a contiguous short-circuit branch program.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFormula {
    ops: Vec<Op>,
    /// Result when the program is empty — the formula folded to a
    /// record-independent constant (empty connectives: `And([])` is
    /// vacuously true, `Or([])` vacuously false, and those constants
    /// propagate through enclosing connectives).
    const_result: bool,
    mask: AttrMask,
}

impl CompiledFormula {
    /// Compile a formula. Empty connectives (rejected by
    /// [`Formula::validate`]) fold to their `all`/`any` identities at
    /// compile time, so even degenerate formulae evaluate exactly like
    /// [`eval_formula`](crate::eval::eval_formula).
    pub fn compile(formula: &Formula) -> CompiledFormula {
        let mut mask = AttrMask::default();
        formula.visit_atoms(&mut |a| {
            for attr in a.attrs() {
                mask.set(attr);
            }
        });
        match fold_constants(formula) {
            Err(const_result) => CompiledFormula { ops: Vec::new(), const_result, mask },
            Ok(simplified) => {
                let mut ops = Vec::with_capacity(simplified.atom_count());
                emit(&simplified, ACCEPT, REJECT, &mut ops);
                CompiledFormula { ops, const_result: false, mask }
            }
        }
    }

    /// Number of atom ops in the arena.
    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }

    /// Attributes the formula reads.
    pub fn mask(&self) -> AttrMask {
        self.mask
    }

    /// Truth value on a record — identical to
    /// [`eval_formula`](crate::eval::eval_formula) on the source
    /// formula.
    #[inline]
    pub fn eval(&self, record: &[Value]) -> bool {
        if self.ops.is_empty() {
            return self.const_result;
        }
        let mut pc = 0u32;
        loop {
            let op = &self.ops[pc as usize];
            pc = if op.atom.eval(record) { op.on_true } else { op.on_false };
            match pc {
                ACCEPT => return true,
                REJECT => return false,
                _ => {}
            }
        }
    }
}

/// Emit the fused violation program of a rule into the shared arena:
/// premise ops falling through into consequent ops, with ACCEPT
/// meaning "violated" (premise holds, consequent fails) and REJECT
/// "not violated". Returns `(entry, post-guard entry)`: when a guard
/// conjunct exists it is moved to the front of the premise (a pure
/// conjunction is order-insensitive), so dispatchers that have already
/// established the guard can enter one op later.
fn compile_violation(rule: &Rule, guard: Option<&AtomOp>, vops: &mut Vec<Op>) -> (VEntry, VEntry) {
    let premise = fold_constants(&rule.premise).map(|p| reorder_guard_first(p, guard));
    let consequent = fold_constants(&rule.consequent);
    let entry = match (premise, consequent) {
        // Premise never holds, or consequent always holds: never
        // violated.
        (Err(false), _) | (_, Err(true)) => VEntry::Const(false),
        // Premise always holds, consequent never: constantly violated.
        (Err(true), Err(false)) => VEntry::Const(true),
        (Err(true), Ok(c)) => {
            let start = vops.len() as u32;
            // Violated iff the consequent fails.
            emit(&c, REJECT, ACCEPT, vops);
            VEntry::Pc(start)
        }
        (Ok(p), Err(false)) => {
            let start = vops.len() as u32;
            // Violated iff the premise holds.
            emit(&p, ACCEPT, REJECT, vops);
            VEntry::Pc(start)
        }
        (Ok(p), Ok(c)) => {
            let start = vops.len() as u32;
            let consequent_start = start + p.atom_count() as u32;
            emit(&p, consequent_start, REJECT, vops);
            emit(&c, REJECT, ACCEPT, vops);
            VEntry::Pc(start)
        }
    };
    let after_guard = match entry {
        // With a guard known true, a single-atom premise is spent: the
        // next op (the consequent, when the program has one) decides.
        VEntry::Pc(start) if guard.is_some() => {
            let first = &vops[start as usize];
            debug_assert_eq!(Some(&first.atom), guard, "guard is the first premise op");
            // The guard op's on_true target is where evaluation
            // continues once the guard holds.
            match first.on_true {
                ACCEPT => VEntry::Const(true),
                REJECT => VEntry::Const(false),
                next => VEntry::Pc(next),
            }
        }
        other => other,
    };
    (entry, after_guard)
}

/// Move the guard conjunct to the front of a conjunction (verdict-
/// preserving: conjunction order does not affect truth).
fn reorder_guard_first(premise: Formula, guard: Option<&AtomOp>) -> Formula {
    let Some(guard) = guard else {
        return premise;
    };
    match premise {
        Formula::And(mut fs) => {
            if let Some(k) = fs
                .iter()
                .position(|f| matches!(f, Formula::Atom(a) if &AtomOp::compile(a) == guard))
            {
                let g = fs.remove(k);
                fs.insert(0, g);
            }
            Formula::And(fs)
        }
        other => other,
    }
}

/// A guard for the premise: an atom that is a *conjunct* of the
/// premise, so its falsehood makes the whole premise false. `None`
/// when the premise has no atomic conjunct (e.g. a disjunction).
///
/// Nominal-equality conjuncts are preferred: they are the most
/// selective (one code out of the domain) and schedulers can bucket
/// them by `(attr, code)`, ruling whole rule groups out with a lookup.
fn premise_guard(premise: &Formula) -> Option<AtomOp> {
    let atoms: &[Formula] = match premise {
        Formula::Atom(_) => std::slice::from_ref(premise),
        Formula::And(fs) => fs,
        Formula::Or(_) => return None,
    };
    // Rank conjuncts by selectivity: equality guards reject almost
    // every record (a point in the domain), ordering guards about
    // half, disequality/null-test guards almost none.
    fn rank(op: &AtomOp) -> u8 {
        match op {
            AtomOp::EqNominal { .. } => 5,
            AtomOp::EqNumeric { .. } => 4,
            AtomOp::EqAttr { .. } => 3,
            AtomOp::LessConst { .. }
            | AtomOp::GreaterConst { .. }
            | AtomOp::LessAttr { .. }
            | AtomOp::GreaterAttr { .. } => 2,
            AtomOp::IsNull { .. } => 1,
            _ => 0,
        }
    }
    let mut best: Option<(u8, AtomOp)> = None;
    for f in atoms {
        if let Formula::Atom(a) = f {
            let op = AtomOp::compile(a);
            let r = rank(&op);
            if best.is_none_or(|(br, _)| r > br) {
                best = Some((r, op));
            }
        }
    }
    best.map(|(_, op)| op)
}

/// Fold empty connectives to constants, bottom-up: `Err(b)` means the
/// formula is the record-independent constant `b`; `Ok(f)` is an
/// equivalent formula with no empty (or constant) sub-connectives.
/// Dropping a constant conjunct/disjunct is semantics-preserving
/// because atom evaluation has no side effects.
fn fold_constants(formula: &Formula) -> Result<Formula, bool> {
    match formula {
        Formula::Atom(a) => Ok(Formula::Atom(*a)),
        Formula::And(fs) => {
            let mut kept = Vec::with_capacity(fs.len());
            for f in fs {
                match fold_constants(f) {
                    Ok(sub) => kept.push(sub),
                    Err(true) => {}
                    Err(false) => return Err(false),
                }
            }
            if kept.is_empty() {
                Err(true)
            } else {
                Ok(Formula::And(kept))
            }
        }
        Formula::Or(fs) => {
            let mut kept = Vec::with_capacity(fs.len());
            for f in fs {
                match fold_constants(f) {
                    Ok(sub) => kept.push(sub),
                    Err(false) => {}
                    Err(true) => return Err(true),
                }
            }
            if kept.is_empty() {
                Err(false)
            } else {
                Ok(Formula::Or(kept))
            }
        }
    }
}

/// Emit the ops of `formula` into `ops`, jumping to `succ` when the
/// formula holds and `fail` when it does not. Children of a connective
/// are laid out contiguously in order; intermediate targets are
/// computed from atom counts, so emission is a single pass.
fn emit(formula: &Formula, succ: u32, fail: u32, ops: &mut Vec<Op>) {
    match formula {
        Formula::Atom(a) => {
            ops.push(Op { atom: AtomOp::compile(a), on_true: succ, on_false: fail })
        }
        Formula::And(fs) => {
            let mut next = ops.len() as u32;
            for (i, f) in fs.iter().enumerate() {
                next += f.atom_count() as u32;
                let child_succ = if i + 1 == fs.len() { succ } else { next };
                emit(f, child_succ, fail, ops);
            }
        }
        Formula::Or(fs) => {
            let mut next = ops.len() as u32;
            for (i, f) in fs.iter().enumerate() {
                next += f.atom_count() as u32;
                let child_fail = if i + 1 == fs.len() { fail } else { next };
                emit(f, succ, child_fail, ops);
            }
        }
    }
}

/// A fixed-width attribute bitmask (schemas wider than 128 attributes
/// degrade to an all-attributes mask, which only costs re-evaluation,
/// never correctness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AttrMask(u128);

/// Widest schema a precise mask covers.
const MASK_WIDTH: usize = 128;

impl AttrMask {
    /// Mark an attribute.
    pub fn set(&mut self, attr: AttrIdx) {
        if attr < MASK_WIDTH {
            self.0 |= 1u128 << attr;
        } else {
            self.0 = u128::MAX;
        }
    }

    /// `true` when the two masks share an attribute.
    pub fn intersects(&self, other: AttrMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Union of the two masks.
    pub fn union(&self, other: AttrMask) -> AttrMask {
        AttrMask(self.0 | other.0)
    }

    /// `true` when no attribute is marked.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }
}

/// A rule compiled into two branch programs plus its attribute mask.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleProgram {
    premise: CompiledFormula,
    consequent: CompiledFormula,
    mask: AttrMask,
}

impl RuleProgram {
    /// Compile one rule.
    pub fn compile(rule: &Rule) -> RuleProgram {
        let premise = CompiledFormula::compile(&rule.premise);
        let consequent = CompiledFormula::compile(&rule.consequent);
        let mask = premise.mask().union(consequent.mask());
        RuleProgram { premise, consequent, mask }
    }

    /// All attributes the rule reads (premise ∪ consequent).
    pub fn mask(&self) -> AttrMask {
        self.mask
    }

    /// The compiled premise.
    pub fn premise(&self) -> &CompiledFormula {
        &self.premise
    }

    /// The compiled consequent.
    pub fn consequent(&self) -> &CompiledFormula {
        &self.consequent
    }

    /// Evaluate the rule — identical to
    /// [`eval_rule`](crate::eval::eval_rule) on the source rule.
    #[inline]
    pub fn eval(&self, record: &[Value]) -> RuleStatus {
        if !self.premise.eval(record) {
            RuleStatus::NotApplicable
        } else if self.consequent.eval(record) {
            RuleStatus::Satisfied
        } else {
            RuleStatus::Violated
        }
    }

    /// `true` iff the record violates the rule.
    #[inline]
    pub fn violates(&self, record: &[Value]) -> bool {
        self.premise.eval(record) && !self.consequent.eval(record)
    }
}

/// How one rule's fused violation program starts.
#[derive(Debug, Clone, Copy, PartialEq)]
enum VEntry {
    /// The rule's violation verdict is record-independent.
    Const(bool),
    /// Entry pc into the shared violation arena.
    Pc(u32),
}

/// A rule set compiled for repeated per-record evaluation: one
/// [`RuleProgram`] per rule, a dirty-attribute → affected-rule
/// inverted index, and — for the hottest consumers — per-rule *fused
/// violation programs* in one contiguous arena (premise ops flow
/// straight into consequent ops; the two sentinels mean
/// violated / not-violated) with an optional *guard atom* (a conjunct
/// of the premise checked before entering the program — most rules'
/// premises fail on their first conjunct, and the guard decides that
/// without the program-loop overhead).
#[derive(Debug, Clone, Default)]
pub struct CompiledRuleSet {
    programs: Vec<RuleProgram>,
    /// `by_attr[a]` lists (ascending) the indices of rules whose mask
    /// contains attribute `a`.
    by_attr: Vec<Vec<u32>>,
    /// Shared arena of all fused violation programs.
    vops: Vec<Op>,
    /// Per-rule entry into `vops` (or a constant verdict).
    ventries: Vec<VEntry>,
    /// Per-rule entry *after* the guard conjunct (the guard is emitted
    /// first), for dispatchers that already know the guard holds.
    postguard: Vec<VEntry>,
    /// Per-rule guard: a premise conjunct that is false only if the
    /// premise is false (hence the rule not violated).
    guards: Vec<Option<AtomOp>>,
}

impl CompiledRuleSet {
    /// Compile a rule set over a schema of `n_attrs` attributes.
    pub fn compile(rules: &RuleSet, n_attrs: usize) -> CompiledRuleSet {
        let programs: Vec<RuleProgram> = rules.iter().map(RuleProgram::compile).collect();
        let mut by_attr: Vec<Vec<u32>> = vec![Vec::new(); n_attrs];
        for (i, rule) in rules.iter().enumerate() {
            for attr in rule.attrs() {
                if attr < n_attrs {
                    by_attr[attr].push(i as u32);
                }
            }
        }
        let mut vops = Vec::new();
        let mut ventries = Vec::with_capacity(rules.len());
        let mut postguard = Vec::with_capacity(rules.len());
        let mut guards = Vec::with_capacity(rules.len());
        for rule in rules.iter() {
            let guard = premise_guard(&rule.premise);
            let (entry, after_guard) = compile_violation(rule, guard.as_ref(), &mut vops);
            ventries.push(entry);
            postguard.push(after_guard);
            guards.push(guard);
        }
        CompiledRuleSet { programs, by_attr, vops, ventries, postguard, guards }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// `true` when the set has no rules.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// The compiled programs, index-aligned with the source rule set.
    pub fn programs(&self) -> &[RuleProgram] {
        &self.programs
    }

    /// One compiled rule.
    pub fn program(&self, rule: usize) -> &RuleProgram {
        &self.programs[rule]
    }

    /// Indices of the rules whose attribute mask contains `attr` — the
    /// inverted index incremental consumers use to re-evaluate only
    /// affected rules after a cell changes.
    pub fn rules_on_attr(&self, attr: AttrIdx) -> &[u32] {
        &self.by_attr[attr]
    }

    /// Evaluate one rule on a record.
    #[inline]
    pub fn eval_rule(&self, rule: usize, record: &[Value]) -> RuleStatus {
        self.programs[rule].eval(record)
    }

    /// The rule's guard when it is a nominal-equality conjunct of the
    /// premise: `Some((attr, code))` means the rule cannot be violated
    /// unless `record[attr] == Nominal(code)`. Schedulers use this to
    /// index rules by (attribute, code) and skip whole groups whose
    /// guard cell does not match.
    pub fn guard_nominal(&self, rule: usize) -> Option<(AttrIdx, u32)> {
        match self.guards[rule] {
            Some(AtomOp::EqNominal { attr, code }) => Some((attr, code)),
            _ => None,
        }
    }

    /// The rule's guard when it is a *numeric threshold* conjunct:
    /// `(attr, x, ord)` with `ord` <0/0/>0 meaning the rule cannot be
    /// violated unless `record[attr]` is respectively `< x`, `== x` or
    /// `> x` (widened coordinates, NULL never passes). Schedulers use
    /// this for branch-free type-major guard sweeps.
    pub fn guard_numeric(&self, rule: usize) -> Option<(AttrIdx, f64, i8)> {
        match self.guards[rule] {
            Some(AtomOp::LessConst { attr, x }) => Some((attr, x, -1)),
            Some(AtomOp::EqNumeric { attr, x }) => Some((attr, x, 0)),
            Some(AtomOp::GreaterConst { attr, x }) => Some((attr, x, 1)),
            _ => None,
        }
    }

    /// Does the record violate rule `rule`? The fastest `Value`-based
    /// entry point: guard atom first, then the rule's fused violation
    /// program — identical verdict to
    /// `eval_rule(rule, record) == Violated`.
    #[inline]
    pub fn violates_rule(&self, rule: usize, record: &[Value]) -> bool {
        if let Some(guard) = &self.guards[rule] {
            if !guard.eval(record) {
                return false; // a premise conjunct fails: not violated
            }
        }
        match self.ventries[rule] {
            VEntry::Const(v) => v,
            VEntry::Pc(mut pc) => loop {
                let op = &self.vops[pc as usize];
                pc = if op.atom.eval(record) { op.on_true } else { op.on_false };
                match pc {
                    ACCEPT => return true,
                    REJECT => return false,
                    _ => {}
                }
            },
        }
    }

    /// [`CompiledRuleSet::violates_rule`] over a [`RecordView`] —
    /// identical verdict on kind-correct records, a few ns cheaper per
    /// call (flat typed loads instead of `Value` matching).
    #[inline]
    pub fn violates_rule_view(&self, rule: usize, view: &RecordView) -> bool {
        let (codes, nums) = (view.codes.as_slice(), view.nums.as_slice());
        if let Some(guard) = &self.guards[rule] {
            if !guard.eval_view(codes, nums) {
                return false;
            }
        }
        self.run_view(self.ventries[rule], codes, nums)
    }

    /// [`CompiledRuleSet::violates_rule_view`] for dispatchers that
    /// have already established the rule's guard (e.g. through a
    /// bucket lookup): enters the violation program one op past the
    /// guard conjunct. Calling this when the guard does *not* hold
    /// returns garbage — only guard-verified dispatch may use it.
    #[inline(always)]
    pub fn violates_rule_view_postguard(&self, rule: usize, view: &RecordView) -> bool {
        self.run_view(self.postguard[rule], view.codes.as_slice(), view.nums.as_slice())
    }

    /// Does the rule's guard conjunct hold on the view (`true` when
    /// the rule has no guard)? A failing guard proves the rule is not
    /// violated; schedulers cache this per record and refresh it only
    /// when one of [`CompiledRuleSet::guard_attrs`] changes.
    #[inline(always)]
    pub fn guard_passes_view(&self, rule: usize, view: &RecordView) -> bool {
        match &self.guards[rule] {
            Some(g) => g.eval_view(view.codes.as_slice(), view.nums.as_slice()),
            None => true,
        }
    }

    /// The attributes the rule's guard reads (empty when unguarded).
    pub fn guard_attrs(&self, rule: usize) -> Vec<AttrIdx> {
        match &self.guards[rule] {
            Some(g) => match *g {
                AtomOp::EqNominal { attr, .. }
                | AtomOp::NeqNominal { attr, .. }
                | AtomOp::EqNumeric { attr, .. }
                | AtomOp::NeqNumeric { attr, .. }
                | AtomOp::LessConst { attr, .. }
                | AtomOp::GreaterConst { attr, .. }
                | AtomOp::IsNull { attr }
                | AtomOp::IsNotNull { attr } => vec![attr],
                AtomOp::EqAttr { left, right }
                | AtomOp::NeqAttr { left, right }
                | AtomOp::LessAttr { left, right }
                | AtomOp::GreaterAttr { left, right } => vec![left, right],
            },
            None => Vec::new(),
        }
    }

    #[inline(always)]
    fn run_view(&self, entry: VEntry, codes: &[u32], nums: &[f64]) -> bool {
        match entry {
            VEntry::Const(v) => v,
            VEntry::Pc(mut pc) => loop {
                let op = &self.vops[pc as usize];
                pc = if op.atom.eval_view(codes, nums) { op.on_true } else { op.on_false };
                match pc {
                    ACCEPT => return true,
                    REJECT => return false,
                    _ => {}
                }
            },
        }
    }

    /// Count the rules a record violates.
    pub fn count_violated(&self, record: &[Value]) -> usize {
        self.programs.iter().filter(|p| p.violates(record)).count()
    }

    /// Per-rule violating-row indices over a table — the compiled
    /// equivalent of running [`violations`](crate::eval::violations)
    /// once per rule, in one pass over the rows.
    pub fn violations(&self, table: &Table) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.programs.len()];
        let mut buf = Vec::with_capacity(table.n_cols());
        for r in 0..table.n_rows() {
            table.row_into(r, &mut buf);
            for (i, p) in self.programs.iter().enumerate() {
                if p.violates(&buf) {
                    out[i].push(r);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_formula, eval_rule};
    use dq_table::SchemaBuilder;

    fn eq(attr: AttrIdx, code: u32) -> Formula {
        Formula::Atom(Atom::EqConst { attr, value: Value::Nominal(code) })
    }

    #[test]
    fn atoms_compile_and_match_interpreter() {
        let atoms = [
            Atom::EqConst { attr: 0, value: Value::Nominal(1) },
            Atom::EqConst { attr: 1, value: Value::Number(2.0) },
            Atom::NeqConst { attr: 0, value: Value::Nominal(1) },
            Atom::NeqConst { attr: 2, value: Value::Number(3.0) },
            Atom::LessConst { attr: 1, value: 5.0 },
            Atom::GreaterConst { attr: 2, value: 5.0 },
            Atom::IsNull { attr: 0 },
            Atom::IsNotNull { attr: 1 },
            Atom::EqAttr { left: 0, right: 3 },
            Atom::NeqAttr { left: 1, right: 2 },
            Atom::LessAttr { left: 1, right: 2 },
            Atom::GreaterAttr { left: 2, right: 1 },
        ];
        let records: Vec<Vec<Value>> = vec![
            vec![Value::Null; 4],
            vec![Value::Nominal(1), Value::Number(2.0), Value::Date(3), Value::Nominal(1)],
            vec![Value::Nominal(9), Value::Number(7.5), Value::Number(3.0), Value::Nominal(0)],
            vec![Value::Number(1.0), Value::Nominal(2), Value::Date(8), Value::Null],
        ];
        for atom in &atoms {
            let f = Formula::Atom(*atom);
            let c = CompiledFormula::compile(&f);
            assert_eq!(c.n_ops(), 1);
            for rec in &records {
                assert_eq!(c.eval(rec), eval_formula(&f, rec), "{atom} on {rec:?}");
            }
        }
    }

    #[test]
    fn nested_connectives_short_circuit_identically() {
        let f = Formula::And(vec![
            eq(0, 0),
            Formula::Or(vec![
                eq(1, 1),
                Formula::And(vec![eq(2, 0), eq(3, 1)]),
                Formula::Atom(Atom::IsNull { attr: 1 }),
            ]),
        ]);
        let c = CompiledFormula::compile(&f);
        assert_eq!(c.n_ops(), f.atom_count());
        for bits in 0..(1u32 << 8) {
            let rec: Vec<Value> = (0..4)
                .map(|i| match (bits >> (2 * i)) & 3 {
                    0 => Value::Null,
                    1 => Value::Nominal(0),
                    2 => Value::Nominal(1),
                    _ => Value::Nominal(2),
                })
                .collect();
            assert_eq!(c.eval(&rec), eval_formula(&f, &rec), "bits {bits:#x}");
        }
    }

    #[test]
    fn rule_program_matches_eval_rule() {
        let rule = Rule::new(Formula::And(vec![eq(0, 0), eq(1, 1)]), eq(2, 2));
        let p = RuleProgram::compile(&rule);
        let cases = [
            vec![Value::Nominal(0), Value::Nominal(1), Value::Nominal(2)],
            vec![Value::Nominal(0), Value::Nominal(1), Value::Nominal(0)],
            vec![Value::Nominal(1), Value::Nominal(1), Value::Nominal(0)],
            vec![Value::Null, Value::Nominal(1), Value::Nominal(0)],
        ];
        for rec in &cases {
            assert_eq!(p.eval(rec), eval_rule(&rule, rec), "{rec:?}");
            assert_eq!(p.violates(rec), eval_rule(&rule, rec) == RuleStatus::Violated);
        }
    }

    #[test]
    fn masks_and_inverted_index() {
        let rules = RuleSet::from_rules(vec![
            Rule::new(eq(0, 0), eq(1, 1)),
            Rule::new(eq(2, 0), Formula::Atom(Atom::LessAttr { left: 1, right: 3 })),
        ]);
        let c = CompiledRuleSet::compile(&rules, 4);
        assert_eq!(c.len(), 2);
        assert!(c.program(0).mask().intersects(c.program(1).mask()), "both touch attr 1");
        assert_eq!(c.rules_on_attr(0), &[0]);
        assert_eq!(c.rules_on_attr(1), &[0, 1]);
        assert_eq!(c.rules_on_attr(2), &[1]);
        assert_eq!(c.rules_on_attr(3), &[1]);
    }

    #[test]
    fn table_violations_match_per_rule_scan() {
        let schema =
            SchemaBuilder::new().nominal("a", ["x", "y"]).nominal("b", ["x", "y"]).build().unwrap();
        let mut t = Table::new(schema);
        t.push_row(&[Value::Nominal(0), Value::Nominal(1)]).unwrap();
        t.push_row(&[Value::Nominal(0), Value::Nominal(0)]).unwrap();
        t.push_row(&[Value::Nominal(1), Value::Nominal(0)]).unwrap();
        t.push_row(&[Value::Nominal(0), Value::Null]).unwrap();
        let rules = RuleSet::from_rules(vec![Rule::new(eq(0, 0), eq(1, 1))]);
        let c = CompiledRuleSet::compile(&rules, 2);
        assert_eq!(c.violations(&t), vec![vec![1, 3]]);
        assert_eq!(c.count_violated(&[Value::Nominal(0), Value::Nominal(0)]), 1);
        assert_eq!(c.count_violated(&[Value::Nominal(1), Value::Nominal(0)]), 0);
    }

    #[test]
    fn fused_violation_programs_match_eval_rule() {
        let rules = RuleSet::from_rules(vec![
            // Guarded 2-conjunct premise.
            Rule::new(Formula::And(vec![eq(0, 0), eq(1, 1)]), eq(2, 2)),
            // Disjunctive premise (no guard).
            Rule::new(Formula::Or(vec![eq(0, 1), eq(1, 0)]), Formula::Or(vec![eq(2, 0), eq(3, 1)])),
            // Degenerate: constant-true premise, real consequent.
            Rule::new(Formula::And(vec![]), eq(3, 0)),
            // Degenerate: constant-false premise.
            Rule::new(Formula::Or(vec![]), eq(0, 0)),
            // Relational consequent.
            Rule::new(eq(0, 2), Formula::Atom(Atom::LessAttr { left: 1, right: 2 })),
        ]);
        let c = CompiledRuleSet::compile(&rules, 4);
        let mut view = RecordView::new(4);
        for bits in 0..(1u32 << 8) {
            let rec: Vec<Value> = (0..4)
                .map(|i| match (bits >> (2 * i)) & 3 {
                    0 => Value::Null,
                    1 => Value::Nominal(0),
                    2 => Value::Nominal(1),
                    _ => Value::Nominal(2),
                })
                .collect();
            view.sync_all(&rec);
            for i in 0..c.len() {
                let expected = c.eval_rule(i, &rec) == RuleStatus::Violated;
                assert_eq!(c.violates_rule(i, &rec), expected, "rule {i} on {rec:?}");
                if i != 4 {
                    // Rule 4 reads attrs 1/2 through an ordering atom;
                    // these all-nominal records are kind-incorrect for
                    // it, which the view path does not support.
                    assert_eq!(
                        c.violates_rule_view(i, &view),
                        expected,
                        "rule {i} view on {rec:?}"
                    );
                    // When the guard holds, the post-guard entry must
                    // agree with the full program.
                    if let Some((gattr, gcode)) = c.guard_nominal(i) {
                        if rec[gattr] == Value::Nominal(gcode) {
                            assert_eq!(
                                c.violates_rule_view_postguard(i, &view),
                                expected,
                                "rule {i} postguard on {rec:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn view_evaluation_matches_on_kind_correct_records() {
        // Attrs: 0 nominal, 1 numeric, 2 numeric, 3 date.
        let rules = RuleSet::from_rules(vec![
            Rule::new(eq(0, 0), Formula::Atom(Atom::LessAttr { left: 1, right: 2 })),
            Rule::new(
                Formula::Atom(Atom::GreaterConst { attr: 1, value: 2.0 }),
                Formula::Atom(Atom::EqAttr { left: 2, right: 3 }),
            ),
            Rule::new(
                Formula::Atom(Atom::NeqConst { attr: 1, value: Value::Number(1.0) }),
                Formula::Atom(Atom::IsNull { attr: 3 }),
            ),
            Rule::new(
                Formula::Atom(Atom::IsNotNull { attr: 0 }),
                Formula::Atom(Atom::NeqAttr { left: 1, right: 3 }),
            ),
        ]);
        let c = CompiledRuleSet::compile(&rules, 4);
        let cells0 = [Value::Null, Value::Nominal(0), Value::Nominal(1)];
        let cells_num = [Value::Null, Value::Number(1.0), Value::Number(3.0)];
        let cells_date = [Value::Null, Value::Date(1), Value::Date(3)];
        let mut view = RecordView::new(4);
        for &v0 in &cells0 {
            for &v1 in &cells_num {
                for &v2 in &cells_num {
                    for &v3 in &cells_date {
                        let rec = vec![v0, v1, v2, v3];
                        view.sync_all(&rec);
                        for i in 0..c.len() {
                            assert_eq!(
                                c.violates_rule_view(i, &view),
                                c.violates_rule(i, &rec),
                                "rule {i} on {rec:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_connectives_fold_to_their_identities() {
        let records: [&[Value]; 2] = [&[Value::Null], &[Value::Nominal(0)]];
        for rec in records {
            assert!(CompiledFormula::compile(&Formula::And(vec![])).eval(rec));
            assert!(!CompiledFormula::compile(&Formula::Or(vec![])).eval(rec));
            // Nested: And([Or([]), atom]) is constantly false, and
            // Or([And([]), atom]) constantly true — exactly what the
            // interpreter computes.
            let and_dead = Formula::And(vec![Formula::Or(vec![]), eq(0, 0)]);
            assert_eq!(CompiledFormula::compile(&and_dead).eval(rec), eval_formula(&and_dead, rec));
            let or_live = Formula::Or(vec![Formula::And(vec![]), eq(0, 0)]);
            assert_eq!(CompiledFormula::compile(&or_live).eval(rec), eval_formula(&or_live, rec));
        }
    }

    #[test]
    fn mask_width_degrades_gracefully() {
        let mut m = AttrMask::default();
        assert!(m.is_empty());
        m.set(200); // beyond the precise width
        let mut n = AttrMask::default();
        n.set(3);
        assert!(m.intersects(n), "overflowed mask must intersect everything");
    }
}
