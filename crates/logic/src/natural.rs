//! Natural formulae, rules and rule sets (Defs. 4-6 of the paper).
//!
//! Randomly constructed rules "do not necessarily comply with a
//! human-generated set of meaningful rules": they may be tautological,
//! contradictory or internally redundant. Since the *number* of
//! generated rules is meant to reflect the structural strength of the
//! data (Fig. 4 of the paper plots sensitivity against it), such
//! degenerate rules must be rejected. The paper's conditions are
//! checked here exactly as stated; the full rule set check is the
//! *pairwise* test of Def. 6 ("it is expensive to check" the global
//! entailment condition — the paper and we both settle for pairs).

use crate::formula::{Formula, Rule};
use crate::implies::implies;
use crate::sat::satisfiable;
use dq_table::Schema;

/// Def. 4: a formula is natural iff it is (domain-)satisfiable, every
/// sub-formula is natural, and no sub-formula of a connective is
/// implied by the remaining sub-formulae (redundancy).
pub fn is_natural_formula(schema: &Schema, formula: &Formula) -> bool {
    match formula {
        Formula::Atom(_) => satisfiable(schema, formula),
        Formula::And(parts) => {
            if parts.is_empty() || !parts.iter().all(|p| is_natural_formula(schema, p)) {
                return false;
            }
            if !satisfiable(schema, formula) {
                return false;
            }
            // ∀i: αᵢ must not be implied by the conjunction of the rest.
            for i in 0..parts.len() {
                let rest: Vec<Formula> = parts
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, p)| p.clone())
                    .collect();
                if rest.is_empty() {
                    continue;
                }
                let rest_f = if rest.len() == 1 { rest[0].clone() } else { Formula::And(rest) };
                if implies(schema, &rest_f, &parts[i]) {
                    return false;
                }
            }
            true
        }
        Formula::Or(parts) => {
            if parts.is_empty() || !parts.iter().all(|p| is_natural_formula(schema, p)) {
                return false;
            }
            // ∀i: αᵢ must not be implied by the disjunction of the rest
            // (if it were, αᵢ is redundant in the disjunction).
            for i in 0..parts.len() {
                let rest: Vec<Formula> = parts
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, p)| p.clone())
                    .collect();
                if rest.is_empty() {
                    continue;
                }
                let rest_f = if rest.len() == 1 { rest[0].clone() } else { Formula::Or(rest) };
                if implies(schema, &rest_f, &parts[i]) {
                    return false;
                }
            }
            true
        }
    }
}

/// Def. 5: a rule `α → β` is natural iff both sides are natural,
/// `α ∧ β` is satisfiable (not contradictory) and `α` does not already
/// imply `β` (not tautological).
pub fn is_natural_rule(schema: &Schema, rule: &Rule) -> bool {
    if !is_natural_formula(schema, &rule.premise) || !is_natural_formula(schema, &rule.consequent) {
        return false;
    }
    let both = Formula::And(vec![rule.premise.clone(), rule.consequent.clone()]);
    if !satisfiable(schema, &both) {
        return false;
    }
    !implies(schema, &rule.premise, &rule.consequent)
}

/// Def. 6 pairwise condition: given rules `αᵢ → βᵢ` and `αⱼ → βⱼ` with
/// `αⱼ ⇒ αᵢ`, require `αⱼ ∧ βᵢ ∧ βⱼ` satisfiable (no contradiction on
/// the overlap) and `(αⱼ ∧ βᵢ) ⇏ βⱼ` (the more specific rule adds a new
/// dependency). Returns `true` if the **pair conflicts** (violates the
/// condition) in either direction.
pub fn rule_pair_conflict(schema: &Schema, a: &Rule, b: &Rule) -> bool {
    directed_conflict(schema, a, b) || directed_conflict(schema, b, a)
}

/// The Def. 6 check for the ordered pair (`ri` = αᵢ → βᵢ, `rj` = αⱼ → βⱼ).
fn directed_conflict(schema: &Schema, ri: &Rule, rj: &Rule) -> bool {
    if !implies(schema, &rj.premise, &ri.premise) {
        return false;
    }
    let overlap =
        Formula::And(vec![rj.premise.clone(), ri.consequent.clone(), rj.consequent.clone()]);
    if !satisfiable(schema, &overlap) {
        return true; // contradictory consequences on αⱼ-records
    }
    let redundant_premise = Formula::And(vec![rj.premise.clone(), ri.consequent.clone()]);
    implies(schema, &redundant_premise, &rj.consequent) // rⱼ adds nothing
}

/// Def. 6: a set of natural rules is a natural rule set iff no pair
/// conflicts. (Each rule is also checked with [`is_natural_rule`].)
pub fn is_natural_rule_set(schema: &Schema, rules: &[Rule]) -> bool {
    if !rules.iter().all(|r| is_natural_rule(schema, r)) {
        return false;
    }
    for i in 0..rules.len() {
        for j in (i + 1)..rules.len() {
            if rule_pair_conflict(schema, &rules[i], &rules[j]) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use dq_table::{SchemaBuilder, Value};

    fn schema() -> std::sync::Arc<Schema> {
        SchemaBuilder::new()
            .nominal("A", ["Val1", "Val2", "Val3"])
            .nominal("B", ["Val1", "Val2", "Val3"])
            .nominal("C", ["Val1", "Val2", "Val3"])
            .numeric("N", 0.0, 10.0)
            .build()
            .unwrap()
    }

    fn eq(attr: usize, code: u32) -> Formula {
        Formula::Atom(Atom::EqConst { attr, value: Value::Nominal(code) })
    }

    fn neq(attr: usize, code: u32) -> Formula {
        Formula::Atom(Atom::NeqConst { attr, value: Value::Nominal(code) })
    }

    #[test]
    fn satisfiable_atoms_are_natural() {
        let s = schema();
        assert!(is_natural_formula(&s, &eq(0, 0)));
        // An atom demanding an out-of-domain value is not.
        let bad = Formula::Atom(Atom::EqConst { attr: 3, value: Value::Number(99.0) });
        assert!(!is_natural_formula(&s, &bad));
    }

    #[test]
    fn redundant_conjuncts_are_rejected() {
        let s = schema();
        // A = Val1 ∧ A ≠ Val2: the second conjunct is implied by the first.
        let f = Formula::And(vec![eq(0, 0), neq(0, 1)]);
        assert!(!is_natural_formula(&s, &f));
        // A = Val1 ∧ B = Val2 is fine.
        let g = Formula::And(vec![eq(0, 0), eq(1, 1)]);
        assert!(is_natural_formula(&s, &g));
        // Unsatisfiable conjunction is rejected outright.
        let h = Formula::And(vec![eq(0, 0), eq(0, 1)]);
        assert!(!is_natural_formula(&s, &h));
    }

    #[test]
    fn redundant_disjuncts_are_rejected() {
        let s = schema();
        // A = Val1 ∨ A ≠ Val2: the first disjunct implies the second…
        // making the *second*'s check fail? No — the condition is that
        // no disjunct is implied by the rest; here A = Val1 (rest)
        // implies A ≠ Val2 (αᵢ), so the set is unnatural.
        let f = Formula::Or(vec![eq(0, 0), neq(0, 1)]);
        assert!(!is_natural_formula(&s, &f));
        // A = Val1 ∨ B = Val1 is fine.
        let g = Formula::Or(vec![eq(0, 0), eq(1, 0)]);
        assert!(is_natural_formula(&s, &g));
        // Exhaustive disjunction A=1 ∨ A=2 ∨ A=3 is natural (no single
        // disjunct is implied by the other two).
        let h = Formula::Or(vec![eq(0, 0), eq(0, 1), eq(0, 2)]);
        assert!(is_natural_formula(&s, &h));
    }

    #[test]
    fn paper_rule_examples() {
        let s = schema();
        // Contradictory: A = Val1 → A = Val2.
        assert!(!is_natural_rule(&s, &Rule::new(eq(0, 0), eq(0, 1))));
        // Premise internally contradictory: A = Val1 ∧ A = Val2 → B = Val1.
        let bad_prem = Formula::And(vec![eq(0, 0), eq(0, 1)]);
        assert!(!is_natural_rule(&s, &Rule::new(bad_prem, eq(1, 0))));
        // Tautological: A = Val1 → A ≠ Val2.
        assert!(!is_natural_rule(&s, &Rule::new(eq(0, 0), neq(0, 1))));
        // Ordinary rule: A = Val1 → B = Val1.
        assert!(is_natural_rule(&s, &Rule::new(eq(0, 0), eq(1, 0))));
    }

    #[test]
    fn mutually_contradictory_pair_is_rejected() {
        let s = schema();
        // The paper's example: A = Val1 → B = Val1 vs A = Val1 → B = Val2.
        let r1 = Rule::new(eq(0, 0), eq(1, 0));
        let r2 = Rule::new(eq(0, 0), eq(1, 1));
        assert!(is_natural_rule(&s, &r1) && is_natural_rule(&s, &r2));
        assert!(rule_pair_conflict(&s, &r1, &r2));
        assert!(!is_natural_rule_set(&s, &[r1, r2]));
    }

    #[test]
    fn redundant_specialization_is_rejected() {
        let s = schema();
        // The paper's second example:
        //   A = Val1 ∧ B = Val2 → C = Val1   (specific, adds nothing)
        //   A = Val1 → C = Val1              (general)
        let specific = Rule::new(Formula::And(vec![eq(0, 0), eq(1, 1)]), eq(2, 0));
        let general = Rule::new(eq(0, 0), eq(2, 0));
        assert!(rule_pair_conflict(&s, &general, &specific));
        assert!(!is_natural_rule_set(&s, &[general, specific]));
    }

    #[test]
    fn refining_specialization_is_accepted() {
        let s = schema();
        // A specific rule that *refines* the general one is fine:
        //   A = Val1 → C ≠ Val3
        //   A = Val1 ∧ B = Val2 → C = Val1  (consistent with C ≠ Val3,
        //                                    and adds information)
        let general = Rule::new(eq(0, 0), neq(2, 2));
        let specific = Rule::new(Formula::And(vec![eq(0, 0), eq(1, 1)]), eq(2, 0));
        assert!(!rule_pair_conflict(&s, &general, &specific));
        assert!(is_natural_rule_set(&s, &[general, specific]));
    }

    #[test]
    fn unrelated_rules_form_natural_sets() {
        let s = schema();
        let rules = vec![
            Rule::new(eq(0, 0), eq(1, 0)),
            Rule::new(eq(1, 1), eq(2, 1)),
            Rule::new(eq(2, 2), eq(0, 2)),
        ];
        assert!(is_natural_rule_set(&s, &rules));
    }

    #[test]
    fn set_with_one_unnatural_rule_is_rejected() {
        let s = schema();
        let rules = vec![
            Rule::new(eq(0, 0), eq(1, 0)),
            Rule::new(eq(0, 1), eq(0, 2)), // contradictory
        ];
        assert!(!is_natural_rule_set(&s, &rules));
    }
}
