//! A small text syntax for TDG-formulae and rules.
//!
//! Lets examples, tests and domain experts write rules the way the
//! paper prints them:
//!
//! ```text
//! BRV = 404 -> GBM = 901
//! KBM = 01 and GBM = 901 -> BRV = 501
//! PRICE > 1000 or SEGMENT = luxury -> (TRIM != base and EXTRAS isnotnull)
//! ```
//!
//! Grammar (tokens are whitespace-separated; parentheses may hug their
//! content):
//!
//! ```text
//! rule    := formula '->' formula
//! formula := conj ( 'or' conj )*
//! conj    := unit ( 'and' unit )*
//! unit    := '(' formula ')' | atom
//! atom    := IDENT ('='|'!='|'<'|'>') operand | IDENT 'isnull' | IDENT 'isnotnull'
//! ```
//!
//! An operand that names another attribute yields a relational atom;
//! otherwise it is parsed as a constant of the left attribute's type
//! (nominal label, number, or ISO date).

use crate::atom::Atom;
use crate::formula::{Formula, Rule};
use dq_table::{date::parse_iso, AttrIdx, AttrType, Schema, Value};
use std::fmt;

/// Parse failure with a human-oriented message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parse a rule `premise -> consequent`.
pub fn parse_rule(schema: &Schema, text: &str) -> Result<Rule, ParseError> {
    let mut parts = text.splitn(2, "->");
    let prem = parts.next().unwrap_or("");
    let cons = parts.next().ok_or_else(|| ParseError("missing `->` in rule".into()))?;
    if cons.contains("->") {
        return Err(ParseError("more than one `->` in rule".into()));
    }
    let rule = Rule::new(parse_formula(schema, prem)?, parse_formula(schema, cons)?);
    rule.validate(schema).map_err(ParseError)?;
    Ok(rule)
}

/// Parse a formula.
pub fn parse_formula(schema: &Schema, text: &str) -> Result<Formula, ParseError> {
    let tokens = tokenize(text);
    let mut p = Parser { schema, tokens, pos: 0 };
    let f = p.formula()?;
    if p.pos != p.tokens.len() {
        return Err(ParseError(format!("unexpected trailing token `{}`", p.tokens[p.pos])));
    }
    f.validate(schema).map_err(ParseError)?;
    Ok(f)
}

fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for raw in text.split_whitespace() {
        let mut chunk = raw;
        let mut trailing = 0usize;
        while let Some(rest) = chunk.strip_prefix('(') {
            out.push("(".to_string());
            chunk = rest;
        }
        while let Some(rest) = chunk.strip_suffix(')') {
            trailing += 1;
            chunk = rest;
        }
        if !chunk.is_empty() {
            out.push(chunk.to_string());
        }
        for _ in 0..trailing {
            out.push(")".to_string());
        }
    }
    out
}

struct Parser<'a> {
    schema: &'a Schema,
    tokens: Vec<String>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(String::as_str)
    }

    fn next(&mut self) -> Option<&str> {
        let t = self.tokens.get(self.pos).map(String::as_str);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn formula(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.conj()?];
        while self.peek() == Some("or") {
            self.next();
            parts.push(self.conj()?);
        }
        Ok(if parts.len() == 1 { parts.pop().unwrap() } else { Formula::Or(parts) })
    }

    fn conj(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.unit()?];
        while self.peek() == Some("and") {
            self.next();
            parts.push(self.unit()?);
        }
        Ok(if parts.len() == 1 { parts.pop().unwrap() } else { Formula::And(parts) })
    }

    fn unit(&mut self) -> Result<Formula, ParseError> {
        if self.peek() == Some("(") {
            self.next();
            let f = self.formula()?;
            if self.next() != Some(")") {
                return Err(ParseError("missing closing parenthesis".into()));
            }
            return Ok(f);
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Formula, ParseError> {
        let name =
            self.next().ok_or_else(|| ParseError("expected an attribute name".into()))?.to_string();
        let attr = self
            .schema
            .index_of(&name)
            .ok_or_else(|| ParseError(format!("unknown attribute `{name}`")))?;
        let op = self
            .next()
            .ok_or_else(|| ParseError(format!("expected an operator after `{name}`")))?
            .to_string();
        match op.as_str() {
            "isnull" => Ok(Formula::Atom(Atom::IsNull { attr })),
            "isnotnull" => Ok(Formula::Atom(Atom::IsNotNull { attr })),
            "=" | "!=" | "<" | ">" => {
                let operand = self
                    .next()
                    .ok_or_else(|| ParseError(format!("expected an operand after `{op}`")))?
                    .to_string();
                self.build_binary(attr, &op, &operand).map(Formula::Atom)
            }
            // `<=` / `>=` are sugar over the Def. 1 atom kinds: the
            // bound is itself a domain constant, so `N <= n` is exactly
            // `N < n or N = n`. Relational forms (`N <= M`) are not
            // sugared — Table 1 has no negation for them.
            "<=" | ">=" => {
                let operand = self
                    .next()
                    .ok_or_else(|| ParseError(format!("expected an operand after `{op}`")))?
                    .to_string();
                if self.schema.index_of(&operand).is_some() {
                    return Err(ParseError(format!(
                        "`{op}` only takes a constant operand, not attribute `{operand}`"
                    )));
                }
                let strict =
                    self.build_binary(attr, if op == "<=" { "<" } else { ">" }, &operand)?;
                let equal = self.build_binary(attr, "=", &operand)?;
                Ok(Formula::Or(vec![Formula::Atom(strict), Formula::Atom(equal)]))
            }
            other => Err(ParseError(format!("unknown operator `{other}`"))),
        }
    }

    fn build_binary(&self, attr: AttrIdx, op: &str, operand: &str) -> Result<Atom, ParseError> {
        // An operand naming another attribute makes a relational atom.
        if let Some(right) = self.schema.index_of(operand) {
            return Ok(match op {
                "=" => Atom::EqAttr { left: attr, right },
                "!=" => Atom::NeqAttr { left: attr, right },
                "<" => Atom::LessAttr { left: attr, right },
                _ => Atom::GreaterAttr { left: attr, right },
            });
        }
        match op {
            "=" | "!=" => {
                let value = self.constant_for(attr, operand)?;
                Ok(if op == "=" {
                    Atom::EqConst { attr, value }
                } else {
                    Atom::NeqConst { attr, value }
                })
            }
            _ => {
                let value = self.threshold_for(attr, operand)?;
                Ok(if op == "<" {
                    Atom::LessConst { attr, value }
                } else {
                    Atom::GreaterConst { attr, value }
                })
            }
        }
    }

    fn constant_for(&self, attr: AttrIdx, token: &str) -> Result<Value, ParseError> {
        let a = self.schema.attr(attr);
        match &a.ty {
            AttrType::Nominal { .. } => a
                .code(token)
                .map(Value::Nominal)
                .ok_or_else(|| ParseError(format!("`{token}` is not a label of `{}`", a.name))),
            AttrType::Numeric { .. } => token.parse::<f64>().map(Value::Number).map_err(|_| {
                ParseError(format!("`{token}` is not a number (attribute `{}`)", a.name))
            }),
            AttrType::Date { .. } => parse_iso(token).map(Value::Date).ok_or_else(|| {
                ParseError(format!("`{token}` is not an ISO date (attribute `{}`)", a.name))
            }),
        }
    }

    fn threshold_for(&self, attr: AttrIdx, token: &str) -> Result<f64, ParseError> {
        let a = self.schema.attr(attr);
        match &a.ty {
            AttrType::Date { .. } => {
                if let Some(d) = parse_iso(token) {
                    return Ok(d as f64);
                }
                token.parse::<f64>().map_err(|_| {
                    ParseError(format!(
                        "`{token}` is neither a date nor a number (attribute `{}`)",
                        a.name
                    ))
                })
            }
            _ => token.parse::<f64>().map_err(|_| {
                ParseError(format!("`{token}` is not a number (attribute `{}`)", a.name))
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_table::SchemaBuilder;

    fn schema() -> std::sync::Arc<Schema> {
        SchemaBuilder::new()
            .nominal("BRV", ["404", "501", "611"])
            .nominal("GBM", ["901", "911", "921"])
            .nominal("KBM", ["01", "02"])
            .numeric("POWER", 0.0, 500.0)
            .numeric("TORQUE", 0.0, 1000.0)
            .date_ymd("PROD", (1990, 1, 1), (2003, 12, 31))
            .build()
            .unwrap()
    }

    #[test]
    fn parses_the_papers_quis_rules() {
        let s = schema();
        let r = parse_rule(&s, "BRV = 404 -> GBM = 901").unwrap();
        assert_eq!(r.render(&s), "BRV = 404 -> GBM = 901");
        let r = parse_rule(&s, "KBM = 01 and GBM = 901 -> BRV = 501").unwrap();
        assert_eq!(r.render(&s), "KBM = 01 and GBM = 901 -> BRV = 501");
    }

    #[test]
    fn parses_connective_nesting() {
        let s = schema();
        let f = parse_formula(&s, "(BRV = 404 or BRV = 501) and POWER > 100").unwrap();
        assert_eq!(f.render(&s), "(BRV = 404 or BRV = 501) and POWER > 100");
        assert_eq!(f.atom_count(), 3);
        // `and` binds tighter than `or`.
        let g = parse_formula(&s, "BRV = 404 or BRV = 501 and POWER > 100").unwrap();
        assert_eq!(g.render(&s), "BRV = 404 or (BRV = 501 and POWER > 100)");
    }

    #[test]
    fn parses_null_tests_and_relational_atoms() {
        let s = schema();
        let f = parse_formula(&s, "GBM isnull or POWER < TORQUE").unwrap();
        assert_eq!(f.render(&s), "GBM isnull or POWER < TORQUE");
        let g = parse_formula(&s, "PROD isnotnull and POWER != TORQUE").unwrap();
        assert_eq!(g.render(&s), "PROD isnotnull and POWER != TORQUE");
    }

    #[test]
    fn parses_dates() {
        let s = schema();
        let f = parse_formula(&s, "PROD > 2000-06-15").unwrap();
        match f {
            Formula::Atom(Atom::GreaterConst { attr: 5, value }) => {
                assert_eq!(value, dq_table::date::days_from_civil(2000, 6, 15) as f64);
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        assert!(parse_formula(&s, "PROD = 2000-06-15").is_ok());
    }

    #[test]
    fn round_trips_render_output() {
        let s = schema();
        for text in [
            "BRV = 404 -> GBM = 901",
            "KBM = 01 and GBM = 901 -> BRV = 501",
            "POWER > 100 or (GBM = 911 and KBM != 02) -> TORQUE > 200",
        ] {
            let rule = parse_rule(&s, text).unwrap();
            let rendered = rule.render(&s);
            let reparsed = parse_rule(&s, &rendered).unwrap();
            assert_eq!(rule, reparsed, "render/parse must round-trip for `{text}`");
        }
    }

    #[test]
    fn le_ge_desugar_to_or_of_atoms() {
        let s = schema();
        // `N <= n` is `N < n or N = n` — structure-model rule lines
        // with threshold premises round-trip through this sugar.
        let f = parse_formula(&s, "POWER <= 100").unwrap();
        assert_eq!(
            f,
            Formula::Or(vec![
                Formula::Atom(Atom::LessConst { attr: 3, value: 100.0 }),
                Formula::Atom(Atom::EqConst { attr: 3, value: Value::Number(100.0) }),
            ])
        );
        let f = parse_formula(&s, "POWER >= 250.5").unwrap();
        assert_eq!(
            f,
            Formula::Or(vec![
                Formula::Atom(Atom::GreaterConst { attr: 3, value: 250.5 }),
                Formula::Atom(Atom::EqConst { attr: 3, value: Value::Number(250.5) }),
            ])
        );
        // Dates desugar through their day numbers.
        let f = parse_formula(&s, "PROD <= 2000-02-01").unwrap();
        match f {
            Formula::Or(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected Or, got {other:?}"),
        }
        // Rules accept the sugar anywhere a formula sits.
        assert!(parse_rule(&s, "POWER <= 10 -> TORQUE >= 20").is_ok());
        // Nominal attributes stay unordered, and the sugar has no
        // relational (attribute-operand) form.
        assert!(parse_formula(&s, "BRV <= 404").is_err());
        assert!(parse_formula(&s, "POWER <= TORQUE").is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        let s = schema();
        for text in [
            "",
            "BRV = 404", // missing arrow (rule)
        ] {
            assert!(parse_rule(&s, text).is_err(), "`{text}` must fail");
        }
        for text in [
            "NOPE = 404",          // unknown attribute
            "BRV == 404",          // unknown operator
            "BRV = 999",           // label not in domain
            "POWER = high",        // non-number for numeric attr
            "PROD > yesterday",    // bad date
            "BRV = 404 and",       // dangling connective
            "(BRV = 404",          // unbalanced paren
            "BRV = 404 GBM = 901", // missing connective
            "BRV < 404",           // ordering on nominal attribute
            "BRV = GBM",           // incompatible label lists
        ] {
            assert!(parse_formula(&s, text).is_err(), "`{text}` must fail");
        }
        assert!(parse_rule(&s, "BRV = 404 -> GBM = 901 -> KBM = 01").is_err());
    }
}
