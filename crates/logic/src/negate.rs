//! TDG-negation (Table 1 of the paper).
//!
//! The TDG logic has no negation operator, but every formula `α` has an
//! associated formula `α̃` that is true iff `α` is false under the
//! NULL-aware semantics. The mapping on atoms follows Table 1 verbatim;
//! connectives dualize (De Morgan).

use crate::atom::Atom;
use crate::formula::Formula;

/// The TDG-negation `α̃` of `α`.
pub fn negate(formula: &Formula) -> Formula {
    match formula {
        Formula::Atom(a) => negate_atom(a),
        Formula::And(fs) => Formula::Or(fs.iter().map(negate).collect()),
        Formula::Or(fs) => Formula::And(fs.iter().map(negate).collect()),
    }
}

fn negate_atom(atom: &Atom) -> Formula {
    match atom {
        // A = a  ⇝  A ≠ a ∨ A isnull
        Atom::EqConst { attr, value } => Formula::Or(vec![
            Formula::Atom(Atom::NeqConst { attr: *attr, value: *value }),
            Formula::Atom(Atom::IsNull { attr: *attr }),
        ]),
        // A ≠ a  ⇝  A = a ∨ A isnull
        Atom::NeqConst { attr, value } => Formula::Or(vec![
            Formula::Atom(Atom::EqConst { attr: *attr, value: *value }),
            Formula::Atom(Atom::IsNull { attr: *attr }),
        ]),
        // A < a  ⇝  A > a ∨ A = a ∨ A isnull
        Atom::LessConst { attr, value } => Formula::Or(vec![
            Formula::Atom(Atom::GreaterConst { attr: *attr, value: *value }),
            Formula::Atom(eq_threshold(*attr, *value)),
            Formula::Atom(Atom::IsNull { attr: *attr }),
        ]),
        // A > a  ⇝  A < a ∨ A = a ∨ A isnull
        Atom::GreaterConst { attr, value } => Formula::Or(vec![
            Formula::Atom(Atom::LessConst { attr: *attr, value: *value }),
            Formula::Atom(eq_threshold(*attr, *value)),
            Formula::Atom(Atom::IsNull { attr: *attr }),
        ]),
        // A isnull  ⇝  A isnotnull
        Atom::IsNull { attr } => Formula::Atom(Atom::IsNotNull { attr: *attr }),
        // A isnotnull  ⇝  A isnull
        Atom::IsNotNull { attr } => Formula::Atom(Atom::IsNull { attr: *attr }),
        // A = B  ⇝  A ≠ B ∨ A isnull ∨ B isnull
        Atom::EqAttr { left, right } => Formula::Or(vec![
            Formula::Atom(Atom::NeqAttr { left: *left, right: *right }),
            Formula::Atom(Atom::IsNull { attr: *left }),
            Formula::Atom(Atom::IsNull { attr: *right }),
        ]),
        // A ≠ B  ⇝  A = B ∨ A isnull ∨ B isnull
        Atom::NeqAttr { left, right } => Formula::Or(vec![
            Formula::Atom(Atom::EqAttr { left: *left, right: *right }),
            Formula::Atom(Atom::IsNull { attr: *left }),
            Formula::Atom(Atom::IsNull { attr: *right }),
        ]),
        // A < B  ⇝  A > B ∨ A = B ∨ A isnull ∨ B isnull
        Atom::LessAttr { left, right } => Formula::Or(vec![
            Formula::Atom(Atom::GreaterAttr { left: *left, right: *right }),
            Formula::Atom(Atom::EqAttr { left: *left, right: *right }),
            Formula::Atom(Atom::IsNull { attr: *left }),
            Formula::Atom(Atom::IsNull { attr: *right }),
        ]),
        // A > B  ⇝  A < B ∨ A = B ∨ A isnull ∨ B isnull
        Atom::GreaterAttr { left, right } => Formula::Or(vec![
            Formula::Atom(Atom::LessAttr { left: *left, right: *right }),
            Formula::Atom(Atom::EqAttr { left: *left, right: *right }),
            Formula::Atom(Atom::IsNull { attr: *left }),
            Formula::Atom(Atom::IsNull { attr: *right }),
        ]),
    }
}

/// `A = a` for an ordering threshold: thresholds live in widened
/// numeric coordinates, so the equality constant is a `Number`.
///
/// For date attributes the record evaluator compares via
/// [`dq_table::Value::as_numeric`], so a `Number` constant equals a
/// `Date` cell with the same day number — the negation stays exact.
fn eq_threshold(attr: dq_table::AttrIdx, value: f64) -> Atom {
    Atom::EqConst { attr, value: dq_table::Value::Number(value) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_formula;
    use dq_table::{SchemaBuilder, Value};

    fn schema() -> std::sync::Arc<dq_table::Schema> {
        SchemaBuilder::new()
            .nominal("a", ["x", "y", "z"])
            .nominal("b", ["x", "y", "z"])
            .numeric("n", 0.0, 10.0)
            .numeric("m", 0.0, 10.0)
            .build()
            .unwrap()
    }

    /// Every atom's negation must be its exact logical complement on
    /// every record — the defining property of Table 1.
    #[test]
    fn negation_complements_on_all_records() {
        let _s = schema(); // documents the attribute layout the records follow
        let atoms = vec![
            Atom::EqConst { attr: 0, value: Value::Nominal(1) },
            Atom::NeqConst { attr: 0, value: Value::Nominal(1) },
            Atom::LessConst { attr: 2, value: 5.0 },
            Atom::GreaterConst { attr: 2, value: 5.0 },
            Atom::IsNull { attr: 0 },
            Atom::IsNotNull { attr: 0 },
            Atom::EqAttr { left: 0, right: 1 },
            Atom::NeqAttr { left: 0, right: 1 },
            Atom::LessAttr { left: 2, right: 3 },
            Atom::GreaterAttr { left: 2, right: 3 },
        ];
        let a_vals = [Value::Null, Value::Nominal(0), Value::Nominal(1)];
        let n_vals = [Value::Null, Value::Number(3.0), Value::Number(5.0), Value::Number(7.0)];
        for atom in &atoms {
            let f = Formula::Atom(*atom);
            let g = negate(&f);
            for &av in &a_vals {
                for &bv in &a_vals {
                    for &nv in &n_vals {
                        for &mv in &n_vals {
                            let rec = [av, bv, nv, mv];
                            assert_ne!(
                                eval_formula(&f, &rec),
                                eval_formula(&g, &rec),
                                "negation must flip {atom} on {rec:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn connectives_dualize() {
        let f = Formula::And(vec![
            Formula::Atom(Atom::IsNull { attr: 0 }),
            Formula::Or(vec![
                Formula::Atom(Atom::IsNull { attr: 1 }),
                Formula::Atom(Atom::IsNotNull { attr: 2 }),
            ]),
        ]);
        let g = negate(&f);
        match &g {
            Formula::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[1], Formula::And(_)));
            }
            other => panic!("expected Or, got {other:?}"),
        }
        // Double negation is logically (not structurally) the identity.
        let gg = negate(&g);
        let rec = [Value::Null, Value::Nominal(0), Value::Null, Value::Null];
        assert_eq!(eval_formula(&f, &rec), eval_formula(&gg, &rec));
    }

    #[test]
    fn date_threshold_negation_is_exact() {
        let s = SchemaBuilder::new().date_ymd("d", (2000, 1, 1), (2005, 1, 1)).build().unwrap();
        let _ = s;
        let f = Formula::Atom(Atom::LessConst { attr: 0, value: 11_500.0 });
        let g = negate(&f);
        for v in [Value::Null, Value::Date(11_499), Value::Date(11_500), Value::Date(11_501)] {
            assert_ne!(eval_formula(&f, &[v]), eval_formula(&g, &[v]), "value {v:?}");
        }
    }
}
