//! Implication, validity and equivalence via TDG-negation.
//!
//! "In ordinary propositional logic the validity of the sentence α ⇒ β
//! is equivalent to the unsatisfiability of α ∧ ¬β. As we did not
//! include negation … we can instead associate a TDG-formula α̃ to a
//! TDG-formula α, so that α is true iff α̃ is false" (sec. 4.1.3).
//!
//! Because the satisfiability test errs towards SAT, these checks err
//! towards **"does not imply"** — a missed implication merely makes
//! the rule generator a little more permissive, never inconsistent.

use crate::formula::{Formula, Rule};
use crate::negate::negate;
use crate::sat::satisfiable;
use dq_table::Schema;

/// Does `a` imply `b` (over the schema's domains)? Decided as
/// UNSAT(`a ∧ b̃`).
pub fn implies(schema: &Schema, a: &Formula, b: &Formula) -> bool {
    let test = Formula::And(vec![a.clone(), negate(b)]);
    !satisfiable(schema, &test)
}

/// Is the rule `α → β` valid (true on every record)? Equivalent to
/// `implies(α, β)`.
pub fn valid(schema: &Schema, rule: &Rule) -> bool {
    implies(schema, &rule.premise, &rule.consequent)
}

/// Are the two formulae equivalent (mutual implication)?
pub fn equivalent(schema: &Schema, a: &Formula, b: &Formula) -> bool {
    implies(schema, a, b) && implies(schema, b, a)
}

/// A rule is *tautological* if its premise already forces its
/// consequent — the paper's example `A = Val1 → A ≠ Val2`.
pub fn is_tautological_rule(schema: &Schema, rule: &Rule) -> bool {
    valid(schema, rule)
}

/// A rule is *contradictory* if no record can satisfy premise and
/// consequent together — the paper's example `A = Val1 → A = Val2`.
pub fn is_contradictory_rule(schema: &Schema, rule: &Rule) -> bool {
    let both = Formula::And(vec![rule.premise.clone(), rule.consequent.clone()]);
    !satisfiable(schema, &both)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use dq_table::{SchemaBuilder, Value};

    fn schema() -> std::sync::Arc<Schema> {
        SchemaBuilder::new()
            .nominal("A", ["Val1", "Val2", "Val3"])
            .nominal("B", ["Val1", "Val2", "Val3"])
            .numeric("N", 0.0, 10.0)
            .build()
            .unwrap()
    }

    fn a_eq(code: u32) -> Formula {
        Formula::Atom(Atom::EqConst { attr: 0, value: Value::Nominal(code) })
    }

    fn a_neq(code: u32) -> Formula {
        Formula::Atom(Atom::NeqConst { attr: 0, value: Value::Nominal(code) })
    }

    fn b_eq(code: u32) -> Formula {
        Formula::Atom(Atom::EqConst { attr: 1, value: Value::Nominal(code) })
    }

    #[test]
    fn paper_tautology_example() {
        // A = Val1 → A ≠ Val2 is tautological.
        let rule = Rule::new(a_eq(0), a_neq(1));
        assert!(is_tautological_rule(&schema(), &rule));
    }

    #[test]
    fn paper_contradiction_example() {
        // A = Val1 → A = Val2 is contradictory.
        let rule = Rule::new(a_eq(0), a_eq(1));
        assert!(is_contradictory_rule(&schema(), &rule));
        // But not tautological (its premise is satisfiable and does
        // not force the consequent — it forbids it).
        assert!(!is_tautological_rule(&schema(), &rule));
    }

    #[test]
    fn ordinary_rules_are_neither() {
        let rule = Rule::new(a_eq(0), b_eq(1));
        let s = schema();
        assert!(!is_tautological_rule(&s, &rule));
        assert!(!is_contradictory_rule(&s, &rule));
    }

    #[test]
    fn implication_with_disjunction() {
        let s = schema();
        // A = Val1 implies (A = Val1 ∨ A = Val2).
        let disj = Formula::Or(vec![a_eq(0), a_eq(1)]);
        assert!(implies(&s, &a_eq(0), &disj));
        assert!(!implies(&s, &disj, &a_eq(0)));
    }

    #[test]
    fn implication_respects_domain_exhaustion() {
        let s = schema();
        // A ≠ Val1 ∧ A ≠ Val2 implies A = Val3 over a 3-label domain.
        let prem = Formula::And(vec![a_neq(0), a_neq(1)]);
        assert!(implies(&s, &prem, &a_eq(2)));
    }

    #[test]
    fn numeric_implication() {
        let s = schema();
        let lt3 = Formula::Atom(Atom::LessConst { attr: 2, value: 3.0 });
        let lt5 = Formula::Atom(Atom::LessConst { attr: 2, value: 5.0 });
        assert!(implies(&s, &lt3, &lt5));
        assert!(!implies(&s, &lt5, &lt3));
        // N < 3 implies N isnotnull.
        let notnull = Formula::Atom(Atom::IsNotNull { attr: 2 });
        assert!(implies(&s, &lt3, &notnull));
        // …but not N isnull.
        let isnull = Formula::Atom(Atom::IsNull { attr: 2 });
        assert!(!implies(&s, &lt3, &isnull));
    }

    #[test]
    fn equivalence() {
        let s = schema();
        // A ≠ Val1 ≡ (A = Val2 ∨ A = Val3) over the 3-label domain.
        let lhs = a_neq(0);
        let rhs = Formula::Or(vec![a_eq(1), a_eq(2)]);
        assert!(equivalent(&s, &lhs, &rhs));
        assert!(!equivalent(&s, &lhs, &a_eq(1)));
    }

    #[test]
    fn everything_implies_from_false() {
        let s = schema();
        let falsum = Formula::And(vec![a_eq(0), a_eq(1)]);
        assert!(implies(&s, &falsum, &b_eq(2)));
    }
}
