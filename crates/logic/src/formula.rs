//! TDG-formulae (Def. 2) and TDG-rules (Def. 3).

use crate::atom::Atom;
use dq_table::{AttrIdx, Schema};
use std::fmt;

/// A TDG-formula: an atom, or a finite conjunction/disjunction of
/// sub-formulae.
#[derive(Debug, Clone, PartialEq)]
pub enum Formula {
    /// An atomic TDG-formula.
    Atom(Atom),
    /// `α₁ ∧ … ∧ αₙ`.
    And(Vec<Formula>),
    /// `α₁ ∨ … ∨ αₙ`.
    Or(Vec<Formula>),
}

impl Formula {
    /// Convenience constructor for a conjunction of atoms.
    pub fn and_of(atoms: impl IntoIterator<Item = Atom>) -> Formula {
        Formula::And(atoms.into_iter().map(Formula::Atom).collect())
    }

    /// Convenience constructor for a disjunction of atoms.
    pub fn or_of(atoms: impl IntoIterator<Item = Atom>) -> Formula {
        Formula::Or(atoms.into_iter().map(Formula::Atom).collect())
    }

    /// Number of atomic sub-formulae.
    pub fn atom_count(&self) -> usize {
        match self {
            Formula::Atom(_) => 1,
            Formula::And(fs) | Formula::Or(fs) => fs.iter().map(Formula::atom_count).sum(),
        }
    }

    /// Nesting depth (an atom has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Formula::Atom(_) => 1,
            Formula::And(fs) | Formula::Or(fs) => {
                1 + fs.iter().map(Formula::depth).max().unwrap_or(0)
            }
        }
    }

    /// All attribute indices mentioned, deduplicated, in first-seen
    /// order.
    pub fn attrs(&self) -> Vec<AttrIdx> {
        let mut out = Vec::new();
        self.visit_atoms(&mut |a| {
            for idx in a.attrs() {
                if !out.contains(&idx) {
                    out.push(idx);
                }
            }
        });
        out
    }

    /// Visit every atom in left-to-right order.
    pub fn visit_atoms<F: FnMut(&Atom)>(&self, f: &mut F) {
        match self {
            Formula::Atom(a) => f(a),
            Formula::And(fs) | Formula::Or(fs) => {
                for sub in fs {
                    sub.visit_atoms(f);
                }
            }
        }
    }

    /// Validate every atom against `schema` and reject empty
    /// connectives (a conjunction/disjunction of zero formulae has no
    /// meaning in Def. 2, which requires `n ∈ ℕ`, i.e. at least one).
    pub fn validate(&self, schema: &Schema) -> Result<(), String> {
        match self {
            Formula::Atom(a) => a.validate(schema),
            Formula::And(fs) | Formula::Or(fs) => {
                if fs.is_empty() {
                    return Err("empty connective".into());
                }
                for f in fs {
                    f.validate(schema)?;
                }
                Ok(())
            }
        }
    }

    /// Render with attribute names/labels from `schema`.
    pub fn render(&self, schema: &Schema) -> String {
        match self {
            Formula::Atom(a) => a.render(schema),
            Formula::And(fs) => join_rendered(fs, schema, " and "),
            Formula::Or(fs) => join_rendered(fs, schema, " or "),
        }
    }
}

fn join_rendered(fs: &[Formula], schema: &Schema, sep: &str) -> String {
    let parts: Vec<String> = fs
        .iter()
        .map(|f| match f {
            Formula::Atom(_) => f.render(schema),
            _ => format!("({})", f.render(schema)),
        })
        .collect();
    parts.join(sep)
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::And(fs) => write_joined(f, fs, " and "),
            Formula::Or(fs) => write_joined(f, fs, " or "),
        }
    }
}

fn write_joined(f: &mut fmt::Formatter<'_>, fs: &[Formula], sep: &str) -> fmt::Result {
    for (i, sub) in fs.iter().enumerate() {
        if i > 0 {
            write!(f, "{sep}")?;
        }
        match sub {
            Formula::Atom(_) => write!(f, "{sub}")?,
            _ => write!(f, "({sub})")?,
        }
    }
    Ok(())
}

/// A TDG-rule `premise → consequent` (Def. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The antecedent `α`.
    pub premise: Formula,
    /// The consequent `β`.
    pub consequent: Formula,
}

impl Rule {
    /// Construct a rule.
    pub fn new(premise: Formula, consequent: Formula) -> Self {
        Rule { premise, consequent }
    }

    /// Validate both sides against `schema`.
    pub fn validate(&self, schema: &Schema) -> Result<(), String> {
        self.premise.validate(schema)?;
        self.consequent.validate(schema)
    }

    /// All attribute indices mentioned on either side.
    pub fn attrs(&self) -> Vec<AttrIdx> {
        let mut out = self.premise.attrs();
        for a in self.consequent.attrs() {
            if !out.contains(&a) {
                out.push(a);
            }
        }
        out
    }

    /// Render with attribute names/labels from `schema`.
    pub fn render(&self, schema: &Schema) -> String {
        format!("{} -> {}", self.premise.render(schema), self.consequent.render(schema))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.premise, self.consequent)
    }
}

/// An ordered collection of rules, as produced by the rule generator
/// and consumed by the data generator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleSet {
    /// The rules, in generation order.
    pub rules: Vec<Rule>,
}

impl RuleSet {
    /// An empty rule set.
    pub fn new() -> Self {
        RuleSet::default()
    }

    /// Wrap an existing vector.
    pub fn from_rules(rules: Vec<Rule>) -> Self {
        RuleSet { rules }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` if there are no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterate over the rules.
    pub fn iter(&self) -> std::slice::Iter<'_, Rule> {
        self.rules.iter()
    }

    /// Render one rule per line with attribute names from `schema`.
    pub fn render(&self, schema: &Schema) -> String {
        self.rules.iter().map(|r| r.render(schema)).collect::<Vec<_>>().join("\n")
    }
}

impl<'a> IntoIterator for &'a RuleSet {
    type Item = &'a Rule;
    type IntoIter = std::slice::Iter<'a, Rule>;
    fn into_iter(self) -> Self::IntoIter {
        self.rules.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_table::{SchemaBuilder, Value};

    fn schema() -> std::sync::Arc<Schema> {
        SchemaBuilder::new()
            .nominal("a", ["x", "y"])
            .nominal("b", ["x", "y"])
            .numeric("n", 0.0, 10.0)
            .build()
            .unwrap()
    }

    fn eq(attr: AttrIdx, code: u32) -> Atom {
        Atom::EqConst { attr, value: Value::Nominal(code) }
    }

    #[test]
    fn structure_measures() {
        let f = Formula::And(vec![
            Formula::Atom(eq(0, 0)),
            Formula::Or(vec![Formula::Atom(eq(1, 0)), Formula::Atom(eq(1, 1))]),
        ]);
        assert_eq!(f.atom_count(), 3);
        assert_eq!(f.depth(), 3);
        assert_eq!(f.attrs(), vec![0, 1]);
    }

    #[test]
    fn validation_rejects_empty_connectives() {
        let s = schema();
        assert!(Formula::And(vec![]).validate(&s).is_err());
        assert!(Formula::Or(vec![]).validate(&s).is_err());
        assert!(Formula::Atom(eq(0, 0)).validate(&s).is_ok());
        // Nested invalid atom propagates.
        let f = Formula::And(vec![Formula::Atom(eq(0, 9))]);
        assert!(f.validate(&s).is_err());
    }

    #[test]
    fn rendering() {
        let s = schema();
        let f = Formula::And(vec![
            Formula::Atom(eq(0, 0)),
            Formula::Or(vec![
                Formula::Atom(eq(1, 1)),
                Formula::Atom(Atom::LessConst { attr: 2, value: 3.0 }),
            ]),
        ]);
        assert_eq!(f.render(&s), "a = x and (b = y or n < 3)");
        let r = Rule::new(Formula::Atom(eq(0, 0)), Formula::Atom(eq(1, 1)));
        assert_eq!(r.render(&s), "a = x -> b = y");
        assert_eq!(r.to_string(), "@0 = #0 -> @1 = #1");
    }

    #[test]
    fn rule_attrs_and_set_iteration() {
        let r1 = Rule::new(Formula::Atom(eq(0, 0)), Formula::Atom(eq(1, 1)));
        let r2 = Rule::new(Formula::Atom(eq(1, 0)), Formula::Atom(eq(0, 1)));
        assert_eq!(r1.attrs(), vec![0, 1]);
        let rs = RuleSet::from_rules(vec![r1, r2]);
        assert_eq!(rs.len(), 2);
        assert!(!rs.is_empty());
        assert_eq!(rs.iter().count(), 2);
        assert_eq!((&rs).into_iter().count(), 2);
        let s = schema();
        assert_eq!(rs.render(&s).lines().count(), 2);
    }
}
