//! NULL-aware evaluation of formulae and rules on records.
//!
//! Semantics: every atom except `isnull` requires its attribute(s) to
//! be non-NULL to hold (this is what makes the Table-1 negation exact).
//! A record *violates* a rule iff the premise holds and the consequent
//! does not — this is what the data generator repairs and what turns a
//! rule set into checkable integrity constraints.

use crate::atom::Atom;
use crate::formula::{Formula, Rule};
use dq_table::{Table, Value};
use std::cmp::Ordering;

/// Truth value of an atom on a record (a slice of cell values indexed
/// by attribute).
pub fn eval_atom(atom: &Atom, record: &[Value]) -> bool {
    match atom {
        Atom::EqConst { attr, value } => record[*attr].sql_eq(value) == Some(true),
        Atom::NeqConst { attr, value } => record[*attr].sql_eq(value) == Some(false),
        Atom::LessConst { attr, value } => {
            matches!(record[*attr].as_numeric(), Some(x) if x < *value)
        }
        Atom::GreaterConst { attr, value } => {
            matches!(record[*attr].as_numeric(), Some(x) if x > *value)
        }
        Atom::IsNull { attr } => record[*attr].is_null(),
        Atom::IsNotNull { attr } => !record[*attr].is_null(),
        Atom::EqAttr { left, right } => record[*left].sql_eq(&record[*right]) == Some(true),
        Atom::NeqAttr { left, right } => record[*left].sql_eq(&record[*right]) == Some(false),
        Atom::LessAttr { left, right } => {
            record[*left].sql_cmp(&record[*right]) == Some(Ordering::Less)
        }
        Atom::GreaterAttr { left, right } => {
            record[*left].sql_cmp(&record[*right]) == Some(Ordering::Greater)
        }
    }
}

/// Truth value of a formula on a record.
pub fn eval_formula(formula: &Formula, record: &[Value]) -> bool {
    match formula {
        Formula::Atom(a) => eval_atom(a, record),
        Formula::And(fs) => fs.iter().all(|f| eval_formula(f, record)),
        Formula::Or(fs) => fs.iter().any(|f| eval_formula(f, record)),
    }
}

/// How a record relates to a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleStatus {
    /// Premise false — the rule does not apply.
    NotApplicable,
    /// Premise and consequent both hold.
    Satisfied,
    /// Premise holds, consequent does not.
    Violated,
}

/// Evaluate a rule on a record.
pub fn eval_rule(rule: &Rule, record: &[Value]) -> RuleStatus {
    if !eval_formula(&rule.premise, record) {
        RuleStatus::NotApplicable
    } else if eval_formula(&rule.consequent, record) {
        RuleStatus::Satisfied
    } else {
        RuleStatus::Violated
    }
}

/// Indices of all rows in `table` that violate `rule`.
///
/// Compiles the rule into a [`RuleProgram`](crate::program::RuleProgram)
/// and scans with it — semantically identical to
/// [`violations_reference`], which row-by-row interpretation pins.
pub fn violations(rule: &Rule, table: &Table) -> Vec<usize> {
    let program = crate::program::RuleProgram::compile(rule);
    let mut buf = Vec::with_capacity(table.n_cols());
    let mut out = Vec::new();
    for r in 0..table.n_rows() {
        table.row_into(r, &mut buf);
        if program.violates(&buf) {
            out.push(r);
        }
    }
    out
}

/// The retained interpreted scan — ground truth for the compiled path.
pub fn violations_reference(rule: &Rule, table: &Table) -> Vec<usize> {
    let mut buf = Vec::with_capacity(table.n_cols());
    let mut out = Vec::new();
    for r in 0..table.n_rows() {
        table.row_into(r, &mut buf);
        if eval_rule(rule, &buf) == RuleStatus::Violated {
            out.push(r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_table::SchemaBuilder;

    #[test]
    fn atoms_on_nulls_are_false_except_isnull() {
        let rec = [Value::Null, Value::Null];
        assert!(!eval_atom(&Atom::EqConst { attr: 0, value: Value::Nominal(0) }, &rec));
        assert!(!eval_atom(&Atom::NeqConst { attr: 0, value: Value::Nominal(0) }, &rec));
        assert!(!eval_atom(&Atom::LessConst { attr: 0, value: 1.0 }, &rec));
        assert!(!eval_atom(&Atom::GreaterConst { attr: 0, value: 1.0 }, &rec));
        assert!(!eval_atom(&Atom::EqAttr { left: 0, right: 1 }, &rec));
        assert!(!eval_atom(&Atom::NeqAttr { left: 0, right: 1 }, &rec));
        assert!(!eval_atom(&Atom::LessAttr { left: 0, right: 1 }, &rec));
        assert!(eval_atom(&Atom::IsNull { attr: 0 }, &rec));
        assert!(!eval_atom(&Atom::IsNotNull { attr: 0 }, &rec));
    }

    #[test]
    fn ordering_atoms() {
        let rec = [Value::Number(3.0), Value::Number(5.0)];
        assert!(eval_atom(&Atom::LessConst { attr: 0, value: 4.0 }, &rec));
        assert!(!eval_atom(&Atom::LessConst { attr: 0, value: 3.0 }, &rec)); // strict
        assert!(eval_atom(&Atom::GreaterConst { attr: 1, value: 4.0 }, &rec));
        assert!(eval_atom(&Atom::LessAttr { left: 0, right: 1 }, &rec));
        assert!(eval_atom(&Atom::GreaterAttr { left: 1, right: 0 }, &rec));
        assert!(!eval_atom(&Atom::GreaterAttr { left: 0, right: 1 }, &rec));
    }

    #[test]
    fn date_vs_number_threshold() {
        let rec = [Value::Date(100)];
        assert!(eval_atom(&Atom::LessConst { attr: 0, value: 101.0 }, &rec));
        assert!(eval_atom(&Atom::EqConst { attr: 0, value: Value::Number(100.0) }, &rec));
    }

    #[test]
    fn connective_evaluation() {
        let rec = [Value::Nominal(1), Value::Nominal(2)];
        let a = Formula::Atom(Atom::EqConst { attr: 0, value: Value::Nominal(1) });
        let b = Formula::Atom(Atom::EqConst { attr: 1, value: Value::Nominal(0) });
        assert!(eval_formula(&Formula::And(vec![a.clone()]), &rec));
        assert!(!eval_formula(&Formula::And(vec![a.clone(), b.clone()]), &rec));
        assert!(eval_formula(&Formula::Or(vec![b.clone(), a.clone()]), &rec));
        assert!(!eval_formula(&Formula::Or(vec![b]), &rec));
    }

    #[test]
    fn rule_status() {
        let rule = Rule::new(
            Formula::Atom(Atom::EqConst { attr: 0, value: Value::Nominal(0) }),
            Formula::Atom(Atom::EqConst { attr: 1, value: Value::Nominal(1) }),
        );
        assert_eq!(
            eval_rule(&rule, &[Value::Nominal(1), Value::Nominal(0)]),
            RuleStatus::NotApplicable
        );
        assert_eq!(
            eval_rule(&rule, &[Value::Nominal(0), Value::Nominal(1)]),
            RuleStatus::Satisfied
        );
        assert_eq!(eval_rule(&rule, &[Value::Nominal(0), Value::Nominal(0)]), RuleStatus::Violated);
        // NULL premise attribute → not applicable.
        assert_eq!(eval_rule(&rule, &[Value::Null, Value::Nominal(0)]), RuleStatus::NotApplicable);
    }

    #[test]
    fn table_violations() {
        let schema =
            SchemaBuilder::new().nominal("a", ["x", "y"]).nominal("b", ["x", "y"]).build().unwrap();
        let mut t = dq_table::Table::new(schema);
        t.push_row(&[Value::Nominal(0), Value::Nominal(1)]).unwrap(); // satisfied
        t.push_row(&[Value::Nominal(0), Value::Nominal(0)]).unwrap(); // violated
        t.push_row(&[Value::Nominal(1), Value::Nominal(0)]).unwrap(); // n/a
        t.push_row(&[Value::Nominal(0), Value::Null]).unwrap(); // violated (null consequent)
        let rule = Rule::new(
            Formula::Atom(Atom::EqConst { attr: 0, value: Value::Nominal(0) }),
            Formula::Atom(Atom::EqConst { attr: 1, value: Value::Nominal(1) }),
        );
        assert_eq!(violations(&rule, &t), vec![1, 3]);
        assert_eq!(violations_reference(&rule, &t), vec![1, 3]);
    }
}
