//! Atomic TDG-formulae (Def. 1 of the paper).

use dq_table::{AttrIdx, AttrType, Schema, Value};
use std::fmt;

/// An atomic TDG-formula.
///
/// Propositional atoms relate an attribute to a domain constant;
/// relational atoms relate two attributes. Ordering atoms (`<`, `>`)
/// are restricted to *ordered* attributes (numeric or date); equality
/// atoms between attributes require *compatible* attributes (both
/// nominal — compared by code — or both ordered — compared by widened
/// numeric value). These well-formedness rules are checked by
/// [`Atom::validate`].
///
/// NULL semantics (which Table 1's negation encodes): every atom except
/// `IsNull` requires its attribute(s) to be non-NULL to hold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Atom {
    /// `A = a`.
    EqConst {
        /// Attribute index.
        attr: AttrIdx,
        /// Non-NULL domain constant.
        value: Value,
    },
    /// `A ≠ a`.
    NeqConst {
        /// Attribute index.
        attr: AttrIdx,
        /// Non-NULL domain constant.
        value: Value,
    },
    /// `N < n` (ordered attributes only; dates widen to day numbers).
    LessConst {
        /// Attribute index.
        attr: AttrIdx,
        /// Threshold, in widened numeric coordinates.
        value: f64,
    },
    /// `N > n` (ordered attributes only).
    GreaterConst {
        /// Attribute index.
        attr: AttrIdx,
        /// Threshold, in widened numeric coordinates.
        value: f64,
    },
    /// `A isnull`.
    IsNull {
        /// Attribute index.
        attr: AttrIdx,
    },
    /// `A isnotnull`.
    IsNotNull {
        /// Attribute index.
        attr: AttrIdx,
    },
    /// `A = B`.
    EqAttr {
        /// Left attribute index.
        left: AttrIdx,
        /// Right attribute index.
        right: AttrIdx,
    },
    /// `A ≠ B`.
    NeqAttr {
        /// Left attribute index.
        left: AttrIdx,
        /// Right attribute index.
        right: AttrIdx,
    },
    /// `N < M` (both ordered).
    LessAttr {
        /// Left attribute index.
        left: AttrIdx,
        /// Right attribute index.
        right: AttrIdx,
    },
    /// `N > M` (both ordered).
    GreaterAttr {
        /// Left attribute index.
        left: AttrIdx,
        /// Right attribute index.
        right: AttrIdx,
    },
}

impl Atom {
    /// All attribute indices the atom mentions.
    pub fn attrs(&self) -> Vec<AttrIdx> {
        match self {
            Atom::EqConst { attr, .. }
            | Atom::NeqConst { attr, .. }
            | Atom::LessConst { attr, .. }
            | Atom::GreaterConst { attr, .. }
            | Atom::IsNull { attr }
            | Atom::IsNotNull { attr } => vec![*attr],
            Atom::EqAttr { left, right }
            | Atom::NeqAttr { left, right }
            | Atom::LessAttr { left, right }
            | Atom::GreaterAttr { left, right } => vec![*left, *right],
        }
    }

    /// `true` for relational (two-attribute) atoms.
    pub fn is_relational(&self) -> bool {
        matches!(
            self,
            Atom::EqAttr { .. }
                | Atom::NeqAttr { .. }
                | Atom::LessAttr { .. }
                | Atom::GreaterAttr { .. }
        )
    }

    /// Check well-formedness against a schema: indices in range,
    /// constants of the attribute's kind, ordering restricted to
    /// ordered attributes, relational atoms between compatible
    /// attributes and distinct attributes.
    pub fn validate(&self, schema: &Schema) -> Result<(), String> {
        let check_idx = |i: AttrIdx| {
            if i >= schema.len() {
                Err(format!("attribute index {i} out of range"))
            } else {
                Ok(())
            }
        };
        match self {
            Atom::EqConst { attr, value } | Atom::NeqConst { attr, value } => {
                check_idx(*attr)?;
                if value.is_null() {
                    return Err("NULL is not a domain constant; use isnull".into());
                }
                let ty = &schema.attr(*attr).ty;
                if !ty.kind_matches(value) {
                    return Err(format!(
                        "constant {value} does not match attribute `{}`",
                        schema.attr(*attr).name
                    ));
                }
                if let (Value::Nominal(c), AttrType::Nominal { labels }) = (value, ty) {
                    if *c as usize >= labels.len() {
                        return Err(format!(
                            "nominal code {c} out of domain of `{}`",
                            schema.attr(*attr).name
                        ));
                    }
                }
                Ok(())
            }
            Atom::LessConst { attr, value } | Atom::GreaterConst { attr, value } => {
                check_idx(*attr)?;
                if !schema.attr(*attr).ty.is_ordered() {
                    return Err(format!(
                        "ordering atom on nominal attribute `{}`",
                        schema.attr(*attr).name
                    ));
                }
                if !value.is_finite() {
                    return Err("non-finite threshold".into());
                }
                Ok(())
            }
            Atom::IsNull { attr } | Atom::IsNotNull { attr } => check_idx(*attr),
            Atom::EqAttr { left, right } | Atom::NeqAttr { left, right } => {
                check_idx(*left)?;
                check_idx(*right)?;
                if left == right {
                    return Err("relational atom over a single attribute".into());
                }
                if !compatible(schema, *left, *right) {
                    return Err(format!(
                        "attributes `{}` and `{}` are not comparable",
                        schema.attr(*left).name,
                        schema.attr(*right).name
                    ));
                }
                Ok(())
            }
            Atom::LessAttr { left, right } | Atom::GreaterAttr { left, right } => {
                check_idx(*left)?;
                check_idx(*right)?;
                if left == right {
                    return Err("relational atom over a single attribute".into());
                }
                if !schema.attr(*left).ty.is_ordered() || !schema.attr(*right).ty.is_ordered() {
                    return Err("ordering atom over nominal attribute(s)".into());
                }
                Ok(())
            }
        }
    }

    /// Render with attribute names and labels from `schema`.
    pub fn render(&self, schema: &Schema) -> String {
        let name = |i: AttrIdx| schema.attr(i).name.clone();
        match self {
            Atom::EqConst { attr, value } => {
                format!("{} = {}", name(*attr), schema.display_value(*attr, value))
            }
            Atom::NeqConst { attr, value } => {
                format!("{} != {}", name(*attr), schema.display_value(*attr, value))
            }
            Atom::LessConst { attr, value } => {
                format!("{} < {}", name(*attr), render_threshold(schema, *attr, *value))
            }
            Atom::GreaterConst { attr, value } => {
                format!("{} > {}", name(*attr), render_threshold(schema, *attr, *value))
            }
            Atom::IsNull { attr } => format!("{} isnull", name(*attr)),
            Atom::IsNotNull { attr } => format!("{} isnotnull", name(*attr)),
            Atom::EqAttr { left, right } => format!("{} = {}", name(*left), name(*right)),
            Atom::NeqAttr { left, right } => format!("{} != {}", name(*left), name(*right)),
            Atom::LessAttr { left, right } => format!("{} < {}", name(*left), name(*right)),
            Atom::GreaterAttr { left, right } => format!("{} > {}", name(*left), name(*right)),
        }
    }
}

/// Two attributes are comparable if both are nominal with the *same*
/// label list, or both are ordered (numeric/date, compared in widened
/// day/number coordinates).
pub fn compatible(schema: &Schema, a: AttrIdx, b: AttrIdx) -> bool {
    match (&schema.attr(a).ty, &schema.attr(b).ty) {
        (AttrType::Nominal { labels: la }, AttrType::Nominal { labels: lb }) => la == lb,
        (x, y) => x.is_ordered() && y.is_ordered(),
    }
}

fn render_threshold(schema: &Schema, attr: AttrIdx, value: f64) -> String {
    match schema.attr(attr).ty {
        AttrType::Date { .. } => Value::Date(value as i64).to_string(),
        _ => format!("{value}"),
    }
}

impl fmt::Display for Atom {
    /// Schema-less rendering with `@i` attribute placeholders; prefer
    /// [`Atom::render`] when a schema is at hand.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::EqConst { attr, value } => write!(f, "@{attr} = {value}"),
            Atom::NeqConst { attr, value } => write!(f, "@{attr} != {value}"),
            Atom::LessConst { attr, value } => write!(f, "@{attr} < {value}"),
            Atom::GreaterConst { attr, value } => write!(f, "@{attr} > {value}"),
            Atom::IsNull { attr } => write!(f, "@{attr} isnull"),
            Atom::IsNotNull { attr } => write!(f, "@{attr} isnotnull"),
            Atom::EqAttr { left, right } => write!(f, "@{left} = @{right}"),
            Atom::NeqAttr { left, right } => write!(f, "@{left} != @{right}"),
            Atom::LessAttr { left, right } => write!(f, "@{left} < @{right}"),
            Atom::GreaterAttr { left, right } => write!(f, "@{left} > @{right}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_table::SchemaBuilder;

    fn schema() -> std::sync::Arc<Schema> {
        SchemaBuilder::new()
            .nominal("c1", ["a", "b"])
            .nominal("c2", ["a", "b"])
            .nominal("c3", ["x", "y", "z"])
            .numeric("n1", 0.0, 10.0)
            .numeric("n2", -5.0, 5.0)
            .date_ymd("d", (2000, 1, 1), (2003, 12, 31))
            .build()
            .unwrap()
    }

    #[test]
    fn validates_well_formed_atoms() {
        let s = schema();
        let ok = [
            Atom::EqConst { attr: 0, value: Value::Nominal(1) },
            Atom::NeqConst { attr: 3, value: Value::Number(4.0) },
            Atom::LessConst { attr: 3, value: 2.0 },
            Atom::GreaterConst { attr: 5, value: 11_000.0 },
            Atom::IsNull { attr: 2 },
            Atom::IsNotNull { attr: 4 },
            Atom::EqAttr { left: 0, right: 1 },
            Atom::NeqAttr { left: 0, right: 1 },
            Atom::LessAttr { left: 3, right: 4 },
            Atom::GreaterAttr { left: 4, right: 5 }, // number vs date: both ordered
        ];
        for a in ok {
            assert!(a.validate(&s).is_ok(), "{a} should validate");
        }
    }

    #[test]
    fn rejects_ill_formed_atoms() {
        let s = schema();
        let bad = [
            Atom::EqConst { attr: 99, value: Value::Nominal(0) },
            Atom::EqConst { attr: 0, value: Value::Null },
            Atom::EqConst { attr: 0, value: Value::Number(1.0) },
            Atom::EqConst { attr: 0, value: Value::Nominal(7) },
            Atom::LessConst { attr: 0, value: 1.0 },
            Atom::LessConst { attr: 3, value: f64::NAN },
            Atom::EqAttr { left: 0, right: 0 },
            Atom::EqAttr { left: 0, right: 2 }, // different label lists
            Atom::EqAttr { left: 0, right: 3 }, // nominal vs numeric
            Atom::LessAttr { left: 0, right: 3 },
        ];
        for a in bad {
            assert!(a.validate(&s).is_err(), "{a} should be rejected");
        }
    }

    #[test]
    fn rendering_uses_labels_and_dates() {
        let s = schema();
        assert_eq!(Atom::EqConst { attr: 0, value: Value::Nominal(1) }.render(&s), "c1 = b");
        assert_eq!(Atom::LessAttr { left: 3, right: 4 }.render(&s), "n1 < n2");
        let a = Atom::GreaterConst { attr: 5, value: 0.0 };
        assert_eq!(a.render(&s), "d > 1970-01-01");
        assert_eq!(a.to_string(), "@5 > 0");
    }

    #[test]
    fn attrs_listing() {
        assert_eq!(Atom::IsNull { attr: 3 }.attrs(), vec![3]);
        assert_eq!(Atom::EqAttr { left: 1, right: 4 }.attrs(), vec![1, 4]);
        assert!(Atom::EqAttr { left: 1, right: 4 }.is_relational());
        assert!(!Atom::IsNull { attr: 3 }.is_relational());
    }
}
