//! Disjunctive normal form of TDG-formulae.
//!
//! The satisfiability test first transforms a formula into DNF; "α is
//! satisfiable iff one of these disjuncts is satisfiable"
//! (sec. 4.1.3). TDG-formulae are small by construction (the rule
//! generator caps atom counts), but DNF is worst-case exponential, so
//! the expansion carries a hard cap; callers treat an overflow as
//! "undecided" and answer conservatively.

use crate::atom::Atom;
use crate::formula::Formula;

/// Upper bound on the number of conjuncts a DNF expansion may produce.
/// Beyond this, [`to_dnf`] gives up and returns `None`.
pub const MAX_DNF_CONJUNCTS: usize = 4096;

/// Convert `formula` to DNF: a disjunction of conjunctions of atoms.
/// Returns `None` if the expansion exceeds [`MAX_DNF_CONJUNCTS`].
pub fn to_dnf(formula: &Formula) -> Option<Vec<Vec<Atom>>> {
    match formula {
        Formula::Atom(a) => Some(vec![vec![*a]]),
        Formula::Or(fs) => {
            let mut out = Vec::new();
            for f in fs {
                let mut sub = to_dnf(f)?;
                out.append(&mut sub);
                if out.len() > MAX_DNF_CONJUNCTS {
                    return None;
                }
            }
            Some(out)
        }
        Formula::And(fs) => {
            let mut acc: Vec<Vec<Atom>> = vec![Vec::new()];
            for f in fs {
                let sub = to_dnf(f)?;
                if acc.len().checked_mul(sub.len())? > MAX_DNF_CONJUNCTS {
                    return None;
                }
                let mut next = Vec::with_capacity(acc.len() * sub.len());
                for conj in &acc {
                    for s in &sub {
                        let mut merged = conj.clone();
                        merged.extend(s.iter().cloned());
                        next.push(merged);
                    }
                }
                acc = next;
            }
            Some(acc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_atom, eval_formula};
    use dq_table::Value;

    fn null_atom(attr: usize) -> Formula {
        Formula::Atom(Atom::IsNull { attr })
    }

    fn notnull_atom(attr: usize) -> Formula {
        Formula::Atom(Atom::IsNotNull { attr })
    }

    #[test]
    fn atom_is_its_own_dnf() {
        let f = null_atom(0);
        assert_eq!(to_dnf(&f).unwrap(), vec![vec![Atom::IsNull { attr: 0 }]]);
    }

    #[test]
    fn or_concatenates() {
        let f = Formula::Or(vec![null_atom(0), null_atom(1), null_atom(2)]);
        assert_eq!(to_dnf(&f).unwrap().len(), 3);
    }

    #[test]
    fn and_distributes() {
        // (a ∨ b) ∧ (c ∨ d) → 4 conjuncts of 2 atoms.
        let f = Formula::And(vec![
            Formula::Or(vec![null_atom(0), null_atom(1)]),
            Formula::Or(vec![null_atom(2), null_atom(3)]),
        ]);
        let dnf = to_dnf(&f).unwrap();
        assert_eq!(dnf.len(), 4);
        assert!(dnf.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn dnf_preserves_semantics() {
        // Nested mixed formula over 3 nullable attributes: check
        // equivalence on all 8 null/not-null records.
        let f = Formula::And(vec![
            Formula::Or(vec![null_atom(0), notnull_atom(1)]),
            Formula::Or(vec![notnull_atom(0), Formula::And(vec![null_atom(1), null_atom(2)])]),
        ]);
        let dnf = to_dnf(&f).unwrap();
        for bits in 0..8u32 {
            let rec: Vec<Value> = (0..3)
                .map(|i| if bits & (1 << i) != 0 { Value::Null } else { Value::Nominal(0) })
                .collect();
            let direct = eval_formula(&f, &rec);
            let via_dnf = dnf.iter().any(|conj| conj.iter().all(|a| eval_atom(a, &rec)));
            assert_eq!(direct, via_dnf, "record {rec:?}");
        }
    }

    #[test]
    fn overflow_is_detected() {
        // (x ∨ x)^13 = 8192 conjuncts > cap.
        let pair = Formula::Or(vec![null_atom(0), null_atom(1)]);
        let f = Formula::And(vec![pair; 13]);
        assert!(to_dnf(&f).is_none());
    }

    #[test]
    fn deep_but_narrow_formulas_are_fine() {
        let mut f = null_atom(0);
        for _ in 0..50 {
            f = Formula::And(vec![f, null_atom(1)]);
        }
        let dnf = to_dnf(&f).unwrap();
        assert_eq!(dnf.len(), 1);
        assert_eq!(dnf[0].len(), 51);
    }
}
