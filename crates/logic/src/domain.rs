//! Restrictable attribute domains — the state of the paper's pragmatic
//! satisfiability test.
//!
//! "The main idea of the procedure is to initialize the current domain
//! ranges of every attribute … with their domain ranges and then
//! successively restrict them by integrating the constraints of each
//! atomic TDG-formula" (sec. 4.1.3).

use dq_table::{AttrType, Value};

/// The allowed codes of a nominal domain, as a bitset.
///
/// Stored inline as a `u128` mask when the label list fits (every
/// schema in this workspace does); wider domains spill to a boxed
/// vector. Bit `c` set ⇔ code `c` still allowed.
#[derive(Debug, Clone, PartialEq)]
pub enum NominalSet {
    /// Domains of at most 128 labels: one bit per code.
    Mask {
        /// Allowed codes (bit `c`).
        allowed: u128,
        /// Number of labels in the domain.
        len: u32,
    },
    /// Wider domains (`allowed[code]`).
    Big(Vec<bool>),
}

impl NominalSet {
    /// The full domain over `len` labels.
    pub fn full(len: usize) -> NominalSet {
        if len <= 128 {
            let allowed = if len == 128 { u128::MAX } else { (1u128 << len) - 1 };
            NominalSet::Mask { allowed, len: len as u32 }
        } else {
            NominalSet::Big(vec![true; len])
        }
    }

    /// Number of labels.
    fn len(&self) -> usize {
        match self {
            NominalSet::Mask { len, .. } => *len as usize,
            NominalSet::Big(v) => v.len(),
        }
    }

    /// Is code `c` allowed?
    fn contains(&self, c: usize) -> bool {
        match self {
            NominalSet::Mask { allowed, len } => c < *len as usize && allowed & (1u128 << c) != 0,
            NominalSet::Big(v) => c < v.len() && v[c],
        }
    }

    /// Remove code `c`.
    fn remove(&mut self, c: usize) {
        match self {
            NominalSet::Mask { allowed, len } => {
                if c < *len as usize {
                    *allowed &= !(1u128 << c);
                }
            }
            NominalSet::Big(v) => {
                if c < v.len() {
                    v[c] = false;
                }
            }
        }
    }

    /// Restrict to exactly code `c` (empty if `c` was not allowed).
    fn keep_only(&mut self, c: usize) {
        let keep = self.contains(c);
        match self {
            NominalSet::Mask { allowed, .. } => {
                *allowed = if keep { 1u128 << c } else { 0 };
            }
            NominalSet::Big(v) => {
                for x in v.iter_mut() {
                    *x = false;
                }
                if keep {
                    v[c] = true;
                }
            }
        }
    }

    /// `true` when no code remains.
    fn is_empty(&self) -> bool {
        match self {
            NominalSet::Mask { allowed, .. } => *allowed == 0,
            NominalSet::Big(v) => !v.iter().any(|&a| a),
        }
    }

    /// Lowest allowed code.
    fn first(&self) -> Option<usize> {
        match self {
            NominalSet::Mask { allowed, .. } => {
                if *allowed == 0 {
                    None
                } else {
                    Some(allowed.trailing_zeros() as usize)
                }
            }
            NominalSet::Big(v) => v.iter().position(|&a| a),
        }
    }

    /// Highest allowed code.
    fn last(&self) -> Option<usize> {
        match self {
            NominalSet::Mask { allowed, .. } => {
                if *allowed == 0 {
                    None
                } else {
                    Some(127 - allowed.leading_zeros() as usize)
                }
            }
            NominalSet::Big(v) => v.iter().rposition(|&a| a),
        }
    }

    /// Number of allowed codes.
    fn count(&self) -> usize {
        match self {
            NominalSet::Mask { allowed, .. } => allowed.count_ones() as usize,
            NominalSet::Big(v) => v.iter().filter(|&&a| a).count(),
        }
    }

    /// Intersect with another nominal set; codes beyond the shorter
    /// domain are dropped (compatible attributes share label lists, so
    /// this only matters for defensive inputs).
    fn intersect(&mut self, other: &NominalSet) {
        match (&mut *self, other) {
            (NominalSet::Mask { allowed, len }, NominalSet::Mask { allowed: ob, len: ol }) => {
                *allowed &= ob;
                if *ol < *len {
                    let keep = if *ol == 128 { u128::MAX } else { (1u128 << *ol).wrapping_sub(1) };
                    *allowed &= keep;
                }
            }
            (me, other) => {
                // Mixed widths: fall back to per-code filtering.
                let n = me.len();
                for c in 0..n {
                    if me.contains(c) && !other.contains(c) {
                        me.remove(c);
                    }
                }
            }
        }
    }
}

/// The set of *non-NULL* values an attribute may still take.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueDomain {
    /// Allowed nominal codes.
    Nominal(NominalSet),
    /// An interval in widened numeric coordinates (dates are day
    /// numbers), with excluded points from `≠` constraints.
    Range {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
        /// `true` if the lower bound is strict.
        lo_open: bool,
        /// `true` if the upper bound is strict.
        hi_open: bool,
        /// `true` if only integral values are in the domain (integer
        /// numeric or date attributes).
        integer: bool,
        /// Points removed by `≠` constraints.
        excluded: Vec<f64>,
    },
    /// No non-NULL value possible.
    Empty,
}

/// What an attribute may still be under a conjunction of atoms: a
/// value from [`ValueDomain`], or NULL if `can_null`.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainSet {
    /// May the attribute be NULL?
    pub can_null: bool,
    /// The possible non-NULL values.
    pub values: ValueDomain,
}

impl DomainSet {
    /// The unrestricted domain of an attribute: its full declared range
    /// plus NULL (attributes are nullable — the paper's logic reasons
    /// about NULLs explicitly).
    pub fn full(ty: &AttrType) -> DomainSet {
        let values = match ty {
            AttrType::Nominal { labels } => ValueDomain::Nominal(NominalSet::full(labels.len())),
            AttrType::Numeric { min, max, integer } => ValueDomain::Range {
                lo: *min,
                hi: *max,
                lo_open: false,
                hi_open: false,
                integer: *integer,
                excluded: Vec::new(),
            },
            AttrType::Date { min, max } => ValueDomain::Range {
                lo: *min as f64,
                hi: *max as f64,
                lo_open: false,
                hi_open: false,
                integer: true,
                excluded: Vec::new(),
            },
        };
        DomainSet { can_null: true, values }
    }

    /// Is any value (or NULL) still possible?
    pub fn is_satisfiable(&self) -> bool {
        self.can_null || !self.values.is_empty_set()
    }

    /// Restrict to exactly `value` (and non-NULL).
    pub fn restrict_eq(&mut self, value: &Value) {
        self.can_null = false;
        match (&mut self.values, value) {
            (ValueDomain::Nominal(allowed), Value::Nominal(c)) => {
                allowed.keep_only(*c as usize);
            }
            (vd @ ValueDomain::Range { .. }, v) => {
                if let Some(x) = v.as_numeric() {
                    vd.restrict_point(x);
                } else {
                    *vd = ValueDomain::Empty;
                }
            }
            (vd, _) => *vd = ValueDomain::Empty,
        }
    }

    /// Remove `value` from the domain (and require non-NULL).
    pub fn restrict_neq(&mut self, value: &Value) {
        self.can_null = false;
        match (&mut self.values, value) {
            (ValueDomain::Nominal(allowed), Value::Nominal(c)) => {
                allowed.remove(*c as usize);
            }
            (ValueDomain::Range { excluded, .. }, v) => {
                if let Some(x) = v.as_numeric() {
                    if !excluded.contains(&x) {
                        excluded.push(x);
                    }
                }
            }
            _ => {}
        }
    }

    /// Restrict to values `< bound` (strict) or `<= bound`, and
    /// non-NULL. Nominal domains become empty (ordering atoms do not
    /// apply to them).
    pub fn restrict_less(&mut self, bound: f64, strict: bool) {
        self.can_null = false;
        match &mut self.values {
            vd @ ValueDomain::Range { .. } => vd.tighten_hi(bound, strict),
            vd => *vd = ValueDomain::Empty,
        }
    }

    /// Restrict to values `> bound` (strict) or `>= bound`, and
    /// non-NULL.
    pub fn restrict_greater(&mut self, bound: f64, strict: bool) {
        self.can_null = false;
        match &mut self.values {
            vd @ ValueDomain::Range { .. } => vd.tighten_lo(bound, strict),
            vd => *vd = ValueDomain::Empty,
        }
    }

    /// Require the attribute to be NULL.
    pub fn restrict_null(&mut self) {
        self.values = ValueDomain::Empty;
    }

    /// Forbid NULL.
    pub fn restrict_not_null(&mut self) {
        self.can_null = false;
    }

    /// Intersect with another domain set (used when `A = B` merges the
    /// domains of `A` and `B`).
    pub fn intersect(&mut self, other: &DomainSet) {
        self.can_null &= other.can_null;
        self.values.intersect(&other.values);
    }
}

impl ValueDomain {
    /// `true` if no value is possible.
    pub fn is_empty_set(&self) -> bool {
        match self {
            ValueDomain::Empty => true,
            ValueDomain::Nominal(allowed) => allowed.is_empty(),
            ValueDomain::Range { .. } => self.normalized_is_empty(),
        }
    }

    /// The unique remaining value, if the domain is a singleton.
    pub fn singleton(&self) -> Option<f64> {
        match self {
            ValueDomain::Nominal(allowed) => {
                if allowed.count() == 1 {
                    allowed.first().map(|c| c as f64)
                } else {
                    None
                }
            }
            ValueDomain::Range { integer, excluded, .. } => {
                let (lo, hi) = self.effective_bounds()?;
                if *integer {
                    let lo_i = lo.ceil();
                    let hi_i = hi.floor();
                    if lo_i == hi_i && !excluded.contains(&lo_i) {
                        Some(lo_i)
                    } else {
                        None
                    }
                } else if lo == hi && !excluded.contains(&lo) {
                    Some(lo)
                } else {
                    None
                }
            }
            ValueDomain::Empty => None,
        }
    }

    /// The smallest still-possible value in widened coordinates
    /// (`None` for empty domains; for open real bounds, the bound
    /// itself is returned as the infimum).
    pub fn inf(&self) -> Option<f64> {
        match self {
            ValueDomain::Nominal(allowed) => allowed.first().map(|i| i as f64),
            ValueDomain::Range { .. } => self.effective_bounds().map(|(lo, _)| lo),
            ValueDomain::Empty => None,
        }
    }

    /// The largest still-possible value (supremum for open real
    /// bounds).
    pub fn sup(&self) -> Option<f64> {
        match self {
            ValueDomain::Nominal(allowed) => allowed.last().map(|i| i as f64),
            ValueDomain::Range { .. } => self.effective_bounds().map(|(_, hi)| hi),
            ValueDomain::Empty => None,
        }
    }

    fn restrict_point(&mut self, x: f64) {
        self.tighten_lo(x, false);
        self.tighten_hi(x, false);
    }

    /// Tighten the upper bound to `bound` (strict if `strict`).
    pub fn tighten_hi(&mut self, bound: f64, strict: bool) {
        if let ValueDomain::Range { hi, hi_open, integer, .. } = self {
            // Integer grids turn a strict bound into a closed one a
            // step below.
            let (b, open) =
                if *integer && strict { (step_below(bound), false) } else { (bound, strict) };
            if b < *hi || (b == *hi && open && !*hi_open) {
                *hi = b;
                *hi_open = open;
            }
        }
    }

    /// Tighten the lower bound to `bound` (strict if `strict`).
    pub fn tighten_lo(&mut self, bound: f64, strict: bool) {
        if let ValueDomain::Range { lo, lo_open, integer, .. } = self {
            let (b, open) =
                if *integer && strict { (step_above(bound), false) } else { (bound, strict) };
            if b > *lo || (b == *lo && open && !*lo_open) {
                *lo = b;
                *lo_open = open;
            }
        }
    }

    /// Intersect with another value domain of the same shape.
    pub fn intersect(&mut self, other: &ValueDomain) {
        match (&mut *self, other) {
            (_, ValueDomain::Empty) => *self = ValueDomain::Empty,
            (ValueDomain::Empty, _) => {}
            // Length mismatch would mean incompatible attributes,
            // which atom validation rules out; extra codes on either
            // side are simply dropped.
            (ValueDomain::Nominal(a), ValueDomain::Nominal(b)) => a.intersect(b),
            (
                me @ ValueDomain::Range { .. },
                ValueDomain::Range { lo, hi, lo_open, hi_open, excluded, .. },
            ) => {
                me.tighten_lo(*lo, *lo_open);
                me.tighten_hi(*hi, *hi_open);
                if let ValueDomain::Range { excluded: mine, .. } = me {
                    for e in excluded {
                        if !mine.contains(e) {
                            mine.push(*e);
                        }
                    }
                }
            }
            (me, _) => *me = ValueDomain::Empty,
        }
    }

    /// Effective closed-ish bounds after integer snapping; `None` if
    /// already plainly empty.
    fn effective_bounds(&self) -> Option<(f64, f64)> {
        if let ValueDomain::Range { lo, hi, lo_open, hi_open, integer, .. } = self {
            let (mut l, mut h) = (*lo, *hi);
            if *integer {
                l = if *lo_open && l.fract() == 0.0 { l + 1.0 } else { l.ceil() };
                h = if *hi_open && h.fract() == 0.0 { h - 1.0 } else { h.floor() };
            }
            if l > h {
                return None;
            }
            if !*integer && l == h && (*lo_open || *hi_open) {
                return None;
            }
            Some((l, h))
        } else {
            None
        }
    }

    fn normalized_is_empty(&self) -> bool {
        match self {
            ValueDomain::Range { integer, excluded, .. } => {
                let Some((lo, hi)) = self.effective_bounds() else {
                    return true;
                };
                if *integer {
                    // Finite grid: empty iff every point is excluded.
                    let count = (hi - lo) as i64 + 1;
                    if count <= 0 {
                        return true;
                    }
                    // Exclusions can only exhaust small grids; cap the
                    // scan (larger grids can't be emptied by the few ≠
                    // atoms a formula carries).
                    if (excluded.len() as i64) < count {
                        return false;
                    }
                    let mut remaining = count;
                    let mut seen: Vec<f64> = Vec::new();
                    for &e in excluded {
                        if e >= lo && e <= hi && e.fract() == 0.0 && !seen.contains(&e) {
                            seen.push(e);
                            remaining -= 1;
                        }
                    }
                    remaining <= 0
                } else {
                    // A dense interval can only be emptied by ≠ if it
                    // is degenerate.
                    lo == hi && excluded.contains(&lo)
                }
            }
            _ => unreachable!("normalized_is_empty is only called on ranges"),
        }
    }
}

fn step_below(x: f64) -> f64 {
    if x.fract() == 0.0 {
        x - 1.0
    } else {
        x.floor()
    }
}

fn step_above(x: f64) -> f64 {
    if x.fract() == 0.0 {
        x + 1.0
    } else {
        x.ceil()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal3() -> DomainSet {
        DomainSet::full(&AttrType::Nominal { labels: vec!["a".into(), "b".into(), "c".into()] })
    }

    fn real01() -> DomainSet {
        DomainSet::full(&AttrType::Numeric { min: 0.0, max: 1.0, integer: false })
    }

    fn int0to5() -> DomainSet {
        DomainSet::full(&AttrType::Numeric { min: 0.0, max: 5.0, integer: true })
    }

    #[test]
    fn full_domains_are_satisfiable() {
        assert!(nominal3().is_satisfiable());
        assert!(real01().is_satisfiable());
        assert!(int0to5().is_satisfiable());
        assert!(DomainSet::full(&AttrType::Date { min: 0, max: 10 }).is_satisfiable());
    }

    #[test]
    fn eq_then_neq_same_value_is_unsat() {
        let mut d = nominal3();
        d.restrict_eq(&Value::Nominal(1));
        assert!(d.is_satisfiable());
        d.restrict_neq(&Value::Nominal(1));
        assert!(!d.is_satisfiable());
    }

    #[test]
    fn neq_cannot_exhaust_large_domains_but_exhausts_small() {
        let mut d = nominal3();
        d.restrict_neq(&Value::Nominal(0));
        d.restrict_neq(&Value::Nominal(1));
        assert!(d.is_satisfiable());
        d.restrict_neq(&Value::Nominal(2));
        assert!(!d.is_satisfiable());
    }

    #[test]
    fn isnull_vs_isnotnull() {
        let mut d = nominal3();
        d.restrict_null();
        assert!(d.is_satisfiable(), "NULL alone is fine");
        d.restrict_not_null();
        assert!(!d.is_satisfiable(), "NULL and not-NULL together are not");
    }

    #[test]
    fn eq_removes_nullability() {
        let mut d = nominal3();
        d.restrict_eq(&Value::Nominal(0));
        d.restrict_null();
        assert!(!d.is_satisfiable());
    }

    #[test]
    fn real_interval_restrictions() {
        let mut d = real01();
        d.restrict_greater(0.3, true);
        d.restrict_less(0.7, true);
        assert!(d.is_satisfiable());
        assert_eq!(d.values.inf(), Some(0.3));
        assert_eq!(d.values.sup(), Some(0.7));
        d.restrict_less(0.3, false);
        assert!(!d.is_satisfiable(), "(0.3, 0.3] is empty");
    }

    #[test]
    fn real_point_with_exclusion() {
        let mut d = real01();
        d.restrict_eq(&Value::Number(0.5));
        assert_eq!(d.values.singleton(), Some(0.5));
        d.restrict_neq(&Value::Number(0.5));
        assert!(!d.is_satisfiable());
    }

    #[test]
    fn integer_grid_snapping() {
        let mut d = int0to5();
        d.restrict_greater(1.0, true); // > 1  ⇒  >= 2
        d.restrict_less(3.5, true); // < 3.5 ⇒ <= 3
        assert_eq!(d.values.inf(), Some(2.0));
        assert_eq!(d.values.sup(), Some(3.0));
        d.restrict_neq(&Value::Number(2.0));
        d.restrict_neq(&Value::Number(3.0));
        assert!(!d.is_satisfiable(), "grid {{2,3}} minus both points is empty");
    }

    #[test]
    fn integer_singleton() {
        let mut d = int0to5();
        d.restrict_greater(1.9, false);
        d.restrict_less(2.2, false);
        assert_eq!(d.values.singleton(), Some(2.0));
    }

    #[test]
    fn ordering_on_nominal_empties() {
        let mut d = nominal3();
        d.restrict_less(1.0, true);
        assert!(!d.is_satisfiable());
    }

    #[test]
    fn intersect_nominal() {
        let mut a = nominal3();
        a.restrict_neq(&Value::Nominal(0));
        let mut b = nominal3();
        b.restrict_neq(&Value::Nominal(2));
        a.intersect(&b);
        assert_eq!(a.values.singleton(), Some(1.0));
        assert!(!a.can_null);
    }

    #[test]
    fn intersect_ranges_merges_exclusions() {
        let mut a = real01();
        a.restrict_neq(&Value::Number(0.5));
        let mut b = real01();
        b.restrict_greater(0.4, false);
        b.restrict_less(0.5, false);
        a.intersect(&b);
        // a is now [0.4, 0.5] minus {0.5}: satisfiable.
        assert!(a.is_satisfiable());
        a.restrict_greater(0.5, false);
        // [0.5, 0.5] minus {0.5}: empty.
        assert!(!a.is_satisfiable());
    }

    #[test]
    fn date_domains_are_integer_grids() {
        let mut d = DomainSet::full(&AttrType::Date { min: 10, max: 12 });
        d.restrict_greater(10.0, true);
        d.restrict_less(12.0, true);
        assert_eq!(d.values.singleton(), Some(11.0));
    }
}
