//! # dq-logic — the TDG rule language (sec. 4.1 of the paper)
//!
//! The test data generator of *Systematic Development of Data
//! Mining-Based Data Quality Tools* is grounded in a small logic of
//! **TDG-formulae** over a relation schema:
//!
//! * **atomic formulae** (Def. 1): propositional `A = a`, `A ≠ a`,
//!   `N < n`, `N > n`, `A isnull`, `A isnotnull` and relational
//!   `A = B`, `A ≠ B`, `N < M`, `N > M`;
//! * **formulae** (Def. 2): finite conjunctions and disjunctions;
//! * **rules** (Def. 3): implications `α → β` between formulae.
//!
//! The logic deliberately has no negation operator; instead every
//! formula `α` has a **TDG-negation** `α̃` (Table 1 of the paper) that
//! is true exactly when `α` is false under the NULL-aware semantics.
//! Validity of `α → β` thereby reduces to unsatisfiability of
//! `α ∧ β̃` ([`mod@implies`]).
//!
//! Satisfiability ([`sat`]) follows the paper's *pragmatic* procedure:
//! transform to DNF, then for each conjunct successively restrict
//! per-attribute domain ranges, instantiate links between attributes
//! for relational atoms, and propagate restrictions transitively. The
//! procedure is **sound for UNSAT** (a formula reported unsatisfiable
//! has no model) but may, in rare artificial cases, report SAT for an
//! unsatisfiable formula — the paper documents the same limitation.
//!
//! On top of this the crate implements the semantic hygiene conditions
//! the generator needs: **natural formulae, rules and rule sets**
//! (Defs. 4-6), a NULL-aware record [`eval`]uator, and a small text
//! [`parser`] for writing rules in examples and tests.

pub mod atom;
pub mod dnf;
pub mod domain;
pub mod eval;
pub mod formula;
pub mod implies;
pub mod natural;
pub mod negate;
pub mod pairs;
pub mod parser;
pub mod program;
pub mod sat;

pub use atom::Atom;
pub use dnf::to_dnf;
pub use domain::DomainSet;
pub use eval::{eval_formula, eval_rule, RuleStatus};
pub use formula::{Formula, Rule, RuleSet};
pub use implies::{equivalent, implies, is_contradictory_rule, is_tautological_rule, valid};
pub use natural::{is_natural_formula, is_natural_rule, is_natural_rule_set, rule_pair_conflict};
pub use negate::negate;
pub use pairs::CachedRule;
pub use parser::{parse_formula, parse_rule, ParseError};
pub use program::{AttrMask, CompiledFormula, CompiledRuleSet, RecordView, RuleProgram, NONE_CODE};
pub use sat::{satisfiable, satisfiable_conjunction};
