//! Property-based checks of the TDG logic: the Table-1 negation, the
//! DNF transformation and the pragmatic satisfiability test must agree
//! with the NULL-aware evaluation semantics on arbitrary formulae and
//! records.

use dq_logic::{eval_formula, negate, satisfiable, to_dnf, Atom, Formula};
use dq_table::{Schema, SchemaBuilder, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    SchemaBuilder::new()
        .nominal("a", ["x", "y", "z"])
        .nominal("b", ["x", "y", "z"])
        .numeric("u", 0.0, 100.0)
        .numeric("v", 0.0, 100.0)
        .date_ymd("d", (2000, 1, 1), (2000, 12, 31))
        .build()
        .unwrap()
}

/// Cell strategy per attribute (NULLs included — the semantics under
/// test is exactly the NULL-aware one).
fn value_strategy(attr: usize) -> BoxedStrategy<Value> {
    match attr {
        0 | 1 => prop_oneof![Just(Value::Null), (0u32..3).prop_map(Value::Nominal),].boxed(),
        2 | 3 => prop_oneof![Just(Value::Null), (0.0f64..100.0).prop_map(Value::Number),].boxed(),
        _ => prop_oneof![Just(Value::Null), (10_957i64..11_322).prop_map(Value::Date),].boxed(),
    }
}

fn record_strategy() -> impl Strategy<Value = Vec<Value>> {
    (value_strategy(0), value_strategy(1), value_strategy(2), value_strategy(3), value_strategy(4))
        .prop_map(|(a, b, u, v, d)| vec![a, b, u, v, d])
}

/// Random well-formed atoms over the fixed schema.
fn atom_strategy() -> impl Strategy<Value = Atom> {
    let nominal_attr = 0usize..2;
    let ordered_attr = 2usize..5;
    let threshold = 1.0f64..99.0;
    prop_oneof![
        (nominal_attr.clone(), 0u32..3)
            .prop_map(|(attr, c)| Atom::EqConst { attr, value: Value::Nominal(c) }),
        (nominal_attr.clone(), 0u32..3)
            .prop_map(|(attr, c)| Atom::NeqConst { attr, value: Value::Nominal(c) }),
        (2usize..4, threshold.clone()).prop_map(|(attr, value)| Atom::LessConst { attr, value }),
        (2usize..4, threshold).prop_map(|(attr, value)| Atom::GreaterConst { attr, value }),
        (0usize..5).prop_map(|attr| Atom::IsNull { attr }),
        (0usize..5).prop_map(|attr| Atom::IsNotNull { attr }),
        Just(Atom::EqAttr { left: 0, right: 1 }),
        Just(Atom::NeqAttr { left: 0, right: 1 }),
        (ordered_attr.clone(), ordered_attr.clone())
            .prop_filter("distinct", |(l, r)| l != r)
            .prop_map(|(left, right)| Atom::LessAttr { left, right }),
        (ordered_attr.clone(), ordered_attr)
            .prop_filter("distinct", |(l, r)| l != r)
            .prop_map(|(left, right)| Atom::GreaterAttr { left, right }),
    ]
}

/// Random formulae: atoms plus flat and nested connectives.
fn formula_strategy() -> impl Strategy<Value = Formula> {
    let leaf = atom_strategy().prop_map(Formula::Atom);
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Formula::And),
            proptest::collection::vec(inner, 1..4).prop_map(Formula::Or),
        ]
    })
}

proptest! {
    // The runner is deterministic by default; pinning the seed here
    // additionally insulates this suite from future changes to the
    // workspace-wide default stream. The reduced case count trades
    // coverage for CI speed — bump `cases` locally when hunting for
    // counterexamples.
    #![proptest_config(ProptestConfig {
        cases: 96,
        rng_seed: 0xDA7A_10C1,
        ..ProptestConfig::default()
    })]

    /// Table 1: the TDG-negation is true exactly when the formula is
    /// false — on every record, including NULL-bearing ones.
    #[test]
    fn negation_is_semantic_complement(
        f in formula_strategy(),
        rec in record_strategy(),
    ) {
        let neg = negate(&f);
        prop_assert_eq!(
            eval_formula(&f, &rec),
            !eval_formula(&neg, &rec),
            "formula {:?} on {:?}",
            f,
            rec
        );
    }

    /// Double negation is a semantic no-op.
    #[test]
    fn double_negation_is_identity_semantically(
        f in formula_strategy(),
        rec in record_strategy(),
    ) {
        let nn = negate(&negate(&f));
        prop_assert_eq!(eval_formula(&f, &rec), eval_formula(&nn, &rec));
    }

    /// The DNF transformation preserves the semantics (when it does
    /// not bail out on size).
    #[test]
    fn dnf_preserves_semantics(
        f in formula_strategy(),
        rec in record_strategy(),
    ) {
        if let Some(dnf) = to_dnf(&f) {
            let dnf_true = dnf.iter().any(|conj| {
                conj.iter().all(|atom| eval_formula(&Formula::Atom(*atom), &rec))
            });
            prop_assert_eq!(eval_formula(&f, &rec), dnf_true);
        }
    }

    /// Soundness of the satisfiability test for UNSAT: a formula that
    /// evaluates to true on some record is never reported
    /// unsatisfiable. (The paper allows the converse to fail in rare
    /// cases — SAT may be reported for unsatisfiable formulae.)
    #[test]
    fn unsat_verdicts_are_sound(
        f in formula_strategy(),
        rec in record_strategy(),
    ) {
        let s = schema();
        if eval_formula(&f, &rec) {
            prop_assert!(
                satisfiable(&s, &f),
                "satisfied by {:?} but reported UNSAT: {:?}",
                rec,
                f
            );
        }
    }

    /// Validity via negation: `f ∨ f̃` is true on every record (the
    /// reduction the paper uses for implication checking).
    #[test]
    fn excluded_middle_holds(
        f in formula_strategy(),
        rec in record_strategy(),
    ) {
        let lem = Formula::Or(vec![f.clone(), negate(&f)]);
        prop_assert!(eval_formula(&lem, &rec));
    }
}
