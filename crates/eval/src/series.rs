//! Sweep series: the (x, measures) rows behind each figure of the
//! paper, with CSV and ASCII-chart rendering for the repro binary.

use std::fmt::Write as _;

/// One sweep point: the x value plus named measures.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The swept parameter value (records, rules, pollution factor…).
    pub x: f64,
    /// Named measures at this point, in column order.
    pub measures: Vec<(String, f64)>,
}

/// A named series of sweep points (one figure).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series title (e.g. `fig3: records vs sensitivity`).
    pub title: String,
    /// Name of the x parameter.
    pub x_name: String,
    /// The points, in sweep order.
    pub points: Vec<SweepPoint>,
}

impl Series {
    /// Create an empty series.
    pub fn new(title: impl Into<String>, x_name: impl Into<String>) -> Self {
        Series { title: title.into(), x_name: x_name.into(), points: Vec::new() }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, measures: Vec<(String, f64)>) {
        self.points.push(SweepPoint { x, measures });
    }

    /// The values of one measure across the sweep.
    pub fn column(&self, name: &str) -> Vec<f64> {
        self.points
            .iter()
            .filter_map(|p| p.measures.iter().find(|(n, _)| n == name).map(|&(_, v)| v))
            .collect()
    }

    /// Render as CSV (header + one row per point).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_name);
        if let Some(first) = self.points.first() {
            for (name, _) in &first.measures {
                let _ = write!(out, ",{name}");
            }
        }
        out.push('\n');
        for p in &self.points {
            let _ = write!(out, "{}", trim_float(p.x));
            for (_, v) in &p.measures {
                let _ = write!(out, ",{v:.4}");
            }
            out.push('\n');
        }
        out
    }

    /// Render an ASCII chart of one measure (y scaled to `[0, y_max]`,
    /// `width` columns of bar).
    pub fn to_ascii(&self, measure: &str, y_max: f64, width: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", self.title, measure);
        for p in &self.points {
            let v = p.measures.iter().find(|(n, _)| n == measure).map(|&(_, v)| v).unwrap_or(0.0);
            let filled = ((v / y_max).clamp(0.0, 1.0) * width as f64).round() as usize;
            let _ = writeln!(
                out,
                "{:>10} | {}{} {:.3}",
                trim_float(p.x),
                "█".repeat(filled),
                " ".repeat(width - filled),
                v
            );
        }
        out
    }

    /// Pearson correlation between two measure columns — used for the
    /// paper's claim that "the quality of correction is highly
    /// correlated to sensitivity". `None` if either column is constant
    /// or lengths differ.
    pub fn correlation(&self, a: &str, b: &str) -> Option<f64> {
        let xs = self.column(a);
        let ys = self.column(b);
        if xs.len() != ys.len() || xs.len() < 2 {
            return None;
        }
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let mut sxy = 0.0;
        let mut sxx = 0.0;
        let mut syy = 0.0;
        for (x, y) in xs.iter().zip(&ys) {
            sxy += (x - mx) * (y - my);
            sxx += (x - mx) * (x - mx);
            syy += (y - my) * (y - my);
        }
        if sxx <= 0.0 || syy <= 0.0 {
            return None;
        }
        Some(sxy / (sxx * syy).sqrt())
    }
}

fn trim_float(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Series {
        let mut s = Series::new("fig", "records");
        for (i, x) in [1000.0, 2000.0, 3000.0].iter().enumerate() {
            s.push(
                *x,
                vec![("sensitivity".into(), 0.1 * (i + 1) as f64), ("specificity".into(), 0.99)],
            );
        }
        s
    }

    #[test]
    fn csv_round_trip_shape() {
        let csv = series().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "records,sensitivity,specificity");
        assert!(lines[1].starts_with("1000,0.1000,"));
    }

    #[test]
    fn ascii_chart_scales() {
        let chart = series().to_ascii("sensitivity", 0.3, 10);
        assert!(chart.contains("██████████ 0.300"), "{chart}");
        assert!(chart.lines().count() == 4);
    }

    #[test]
    fn column_extraction() {
        let s = series();
        assert_eq!(s.column("sensitivity").len(), 3);
        assert_eq!(s.column("specificity"), vec![0.99, 0.99, 0.99]);
        assert!(s.column("nope").is_empty());
    }

    #[test]
    fn correlation_detects_monotone_pairs() {
        let mut s = Series::new("c", "x");
        for i in 0..5 {
            let v = i as f64;
            s.push(v, vec![("a".into(), v), ("b".into(), 2.0 * v + 1.0), ("k".into(), 3.0)]);
        }
        assert!((s.correlation("a", "b").unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(s.correlation("a", "k"), None, "constant column has no correlation");
        assert_eq!(s.correlation("a", "missing"), None);
    }
}
