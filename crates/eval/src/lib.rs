//! # dq-eval — the test environment (Figure 2 of the paper)
//!
//! "The test environment justifies selection and adjustment of data
//! mining algorithms": it wires the test data generator (`dq-tdg`),
//! the polluter suite (`dq-pollute`) and the auditing tool (`dq-core`)
//! into the generate → pollute → audit → evaluate pipeline, scores the
//! audit against the pollution log with the measures of sec. 4.3, and
//! packages the paper's experiments (sec. 6) as runnable definitions:
//!
//! * [`environment`] — [`TestEnvironment`]/[`RunResult`], the pipeline;
//! * [`scoring`] — detection confusion matrix + correction matrix
//!   against the ground-truth log;
//! * [`series`] — sweep series with CSV/ASCII rendering;
//! * [`experiments`] — Figures 3/4/5, the classifier comparison, the
//!   ablation of the sec. 5.4 adjustments and the QUIS audit, all at
//!   paper scale ([`Scale::paper`]) or test scale ([`Scale::smoke`]).

pub mod environment;
pub mod experiments;
pub mod scoring;
pub mod series;

pub use environment::{RunResult, TestEnvironment, CORRECTION_TOLERANCE};
pub use experiments::{
    ablation, baseline_schema, classifier_comparison, fig3, fig4, fig5, quis_audit, Baseline,
    Comparison, ComparisonRow, QuisSummary, Scale, KNN_COMPARISON_CAP,
};
pub use scoring::{score_correction, score_detection};
pub use series::{Series, SweepPoint};
