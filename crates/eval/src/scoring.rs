//! Scoring a detection/correction run against the pollution log
//! (sec. 4.3 of the paper).
//!
//! * **Detection**: the 2×2 matrix of truly-corrupted × flagged rows,
//!   summarized by *sensitivity* ("the ratio of the truly found errors
//!   by the number of records that have been corrupted") and
//!   *specificity* ("how many of the error free records have been
//!   marked as such").
//! * **Correction**: the 2×2 matrix of cell correctness before × after
//!   applying the proposed corrections, summarized by the paper's
//!   improvement measure `((c+d) − (b+d)) / (c+d)`.

use dq_core::{AuditReport, Correction};
use dq_pollute::PollutionLog;
use dq_stats::{ConfusionMatrix, CorrectionMatrix};
use dq_table::{AttrType, Table, Value};

/// Build the detection confusion matrix: every dirty row contributes
/// one observation (truly corrupted per the log × flagged per the
/// report). Rows deleted by the duplicator are absent from the dirty
/// table and do not contribute (a record-marking tool cannot flag
/// them).
pub fn score_detection(log: &PollutionLog, report: &AuditReport) -> ConfusionMatrix {
    assert_eq!(log.n_rows(), report.n_rows(), "log and report must describe the same dirty table");
    let mut m = ConfusionMatrix::default();
    for row in 0..log.n_rows() {
        m.record(log.is_row_corrupted(row), report.is_flagged(row));
    }
    m
}

/// Build the correction matrix over **cells**: for every cell of the
/// dirty table, was it correct before the proposed corrections and is
/// it correct after?
///
/// "Correct" means equal to the clean value (the logged `before` for
/// corrupted cells, the cell itself otherwise). Ordered attributes
/// count as corrected when the proposal lands within `tolerance_frac`
/// of the domain extent of the clean value — bin representatives can
/// restore the right region but almost never the exact number.
pub fn score_correction(
    log: &PollutionLog,
    dirty: &Table,
    corrections: &[Correction],
    tolerance_frac: f64,
) -> CorrectionMatrix {
    let schema = dirty.schema();
    let mut m = CorrectionMatrix::default();
    // Index corrections by (row, attr) for O(1) lookup.
    let mut fix: std::collections::HashMap<(usize, usize), Value> =
        std::collections::HashMap::with_capacity(corrections.len());
    for c in corrections {
        fix.insert((c.row, c.attr), c.new);
    }
    for row in 0..dirty.n_rows() {
        for attr in 0..dirty.n_cols() {
            let dirty_v = dirty.get(row, attr);
            let clean_v = log.clean_value_of(row, attr).unwrap_or(dirty_v);
            let after_v = fix.get(&(row, attr)).copied().unwrap_or(dirty_v);
            let correct_before = values_match(&schema.attr(attr).ty, &dirty_v, &clean_v, 0.0);
            let correct_after =
                values_match(&schema.attr(attr).ty, &after_v, &clean_v, tolerance_frac);
            m.record(correct_before, correct_after);
        }
    }
    m
}

/// Value agreement under the attribute type: NULLs match NULLs,
/// nominal codes match exactly, ordered values match within
/// `tolerance_frac` of the domain extent.
fn values_match(ty: &AttrType, a: &Value, b: &Value, tolerance_frac: f64) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        _ => match ty {
            AttrType::Nominal { .. } => a.sql_eq(b) == Some(true),
            AttrType::Numeric { min, max, .. } => ordered_match(a, b, (max - min) * tolerance_frac),
            AttrType::Date { min, max } => ordered_match(a, b, (max - min) as f64 * tolerance_frac),
        },
    }
}

fn ordered_match(a: &Value, b: &Value, tolerance: f64) -> bool {
    match (a.as_numeric(), b.as_numeric()) {
        (Some(x), Some(y)) => (x - y).abs() <= tolerance,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_pollute::{pollute, Polluter, PollutionConfig, PollutionStep};
    use dq_table::SchemaBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dirty_with_log() -> (Table, PollutionLog) {
        let schema = SchemaBuilder::new()
            .nominal("a", ["x", "y", "z"])
            .numeric("n", 0.0, 100.0)
            .build()
            .unwrap();
        let mut clean = Table::new(schema);
        for i in 0..100 {
            clean
                .push_row(&[Value::Nominal((i % 3) as u32), Value::Number((i % 50) as f64)])
                .unwrap();
        }
        let cfg = PollutionConfig {
            steps: vec![PollutionStep {
                polluter: Polluter::NullValue { attr: Some(0) },
                activation: 0.2,
            }],
            factor: 1.0,
        };
        pollute(&clean, &cfg, &mut StdRng::seed_from_u64(1))
    }

    fn report_flagging(rows: &[usize], n: usize) -> AuditReport {
        // Build a minimal report through the public-ish surface: the
        // auditor API normally constructs it; here we use the record
        // confidences directly.
        let mut conf = vec![0.0; n];
        for &r in rows {
            conf[r] = 0.9;
        }
        // AuditReport::new is crate-private; emulate with the auditor…
        // instead, dq-core exposes construction through detect(); for
        // unit scoring we re-use the struct literal via Default.
        AuditReport { findings: Vec::new(), record_confidence: conf, min_confidence: 0.8 }
    }

    #[test]
    fn detection_matrix_counts_all_rows() {
        let (dirty, log) = dirty_with_log();
        let corrupted: Vec<usize> =
            (0..log.n_rows()).filter(|&r| log.is_row_corrupted(r)).collect();
        assert!(!corrupted.is_empty());
        // Perfect detector.
        let report = report_flagging(&corrupted, log.n_rows());
        let m = score_detection(&log, &report);
        assert_eq!(m.sensitivity(), Some(1.0));
        assert_eq!(m.specificity(), Some(1.0));
        assert_eq!(m.total() as usize, dirty.n_rows());
        // Blind detector.
        let report = report_flagging(&[], log.n_rows());
        let m = score_detection(&log, &report);
        assert_eq!(m.sensitivity(), Some(0.0));
        assert_eq!(m.specificity(), Some(1.0));
    }

    #[test]
    fn correction_matrix_rewards_true_fixes() {
        let (dirty, log) = dirty_with_log();
        // Correct every corrupted cell back to its clean value.
        let mut corrections = Vec::new();
        for c in &log.cells {
            corrections.push(dq_core::Correction {
                row: c.dirty_row,
                attr: c.attr,
                old: c.after,
                new: c.before,
                confidence: 1.0,
            });
        }
        let m = score_correction(&log, &dirty, &corrections, 0.05);
        assert_eq!(m.improvement(), Some(1.0), "all errors fixed: {m:?}");
        // No corrections: improvement 0.
        let m = score_correction(&log, &dirty, &[], 0.05);
        assert_eq!(m.improvement(), Some(0.0));
    }

    #[test]
    fn correction_matrix_punishes_breakage() {
        let (dirty, log) = dirty_with_log();
        // "Correct" a clean cell to garbage.
        let clean_row = (0..log.n_rows()).find(|&r| !log.is_row_corrupted(r)).unwrap();
        let breakage = dq_core::Correction {
            row: clean_row,
            attr: 0,
            old: dirty.get(clean_row, 0),
            new: Value::Nominal(2),
            confidence: 1.0,
        };
        let breakage = if dirty.get(clean_row, 0) == Value::Nominal(2) {
            dq_core::Correction { new: Value::Nominal(1), ..breakage }
        } else {
            breakage
        };
        let m = score_correction(&log, &dirty, &[breakage], 0.05);
        let improvement = m.improvement().unwrap();
        assert!(improvement < 0.0, "breaking a clean cell must score negative: {improvement}");
    }

    #[test]
    fn ordered_tolerance_is_respected() {
        let ty = AttrType::Numeric { min: 0.0, max: 100.0, integer: false };
        assert!(values_match(&ty, &Value::Number(52.0), &Value::Number(50.0), 0.05));
        assert!(!values_match(&ty, &Value::Number(60.0), &Value::Number(50.0), 0.05));
        assert!(!values_match(&ty, &Value::Null, &Value::Number(50.0), 0.05));
        assert!(values_match(&ty, &Value::Null, &Value::Null, 0.0));
    }

    #[test]
    #[should_panic(expected = "same dirty table")]
    fn mismatched_sizes_panic() {
        let (_, log) = dirty_with_log();
        let report = report_flagging(&[], 3);
        score_detection(&log, &report);
    }
}
