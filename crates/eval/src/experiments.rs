//! Canned experiment definitions — one per figure/table of the paper's
//! evaluation (sec. 6), at configurable scale.
//!
//! The baseline configuration follows sec. 6.1: "6 nominal attributes
//! with different domain sizes, 1 date type and 1 numeric attribute …
//! one multivariate nominal and 5 univariate start distributions of
//! different kinds … 10000 records based on 100 randomly generated
//! rules … a variety of pollution procedures with different activation
//! probabilities", minimal error confidence fixed at 80%.

use crate::environment::TestEnvironment;
use crate::series::Series;
use dq_core::{
    AssociationAuditConfig, AssociationAuditor, AssociationScoring, AuditConfig, AuditError,
    Auditor,
};
use dq_exec::WorkerPool;
use dq_mining::{C45Config, InducerKind, Pruning, SplitCriterion};
use dq_pollute::{pollute, PollutionConfig};
use dq_quis::{generate_quis, QuisConfig};
use dq_stats::DistributionSpec;
use dq_table::{Schema, SchemaBuilder};
use dq_tdg::{
    generate_rule_set, DataGenConfig, RuleGenConfig, StartDistributions, TestDataGenerator,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Experiment scale: the paper's full parameters or a fast smoke
/// version for tests.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Base record count (paper: 10000).
    pub rows: usize,
    /// Base rule count (paper: 100).
    pub rules: usize,
    /// Record counts swept by Figure 3.
    pub record_points: Vec<usize>,
    /// Rule counts swept by Figure 4.
    pub rule_points: Vec<usize>,
    /// Pollution factors swept by Figure 5.
    pub factor_points: Vec<f64>,
    /// Record count for the classifier comparison (kNN is quadratic).
    pub comparison_rows: usize,
    /// Record count for the QUIS audit (paper: ~200000).
    pub quis_rows: usize,
    /// Replicate runs per sweep point (averaged) — single runs are
    /// noise-dominated because corrupted-row counts are small.
    pub replicates: u64,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for the sweep: independent (sweep-point,
    /// replicate) cells run concurrently — the shared
    /// [`Parallelism`](dq_exec::Parallelism) knob.
    /// [`AUTO`](dq_exec::Parallelism::AUTO) resolves to the available
    /// hardware parallelism (or `DQ_THREADS`);
    /// [`serial`](dq_exec::Parallelism::serial) is the exact legacy
    /// serial order. Every cell reseeds its own RNG, so results are
    /// identical at any thread count.
    pub threads: dq_exec::Parallelism,
}

impl Scale {
    /// The paper's parameters.
    pub fn paper() -> Self {
        Scale {
            rows: 10_000,
            rules: 100,
            record_points: (1..=10).map(|k| k * 1000).collect(),
            rule_points: (0..=10).map(|k| k * 20).collect(),
            factor_points: vec![0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0],
            comparison_rows: 5000,
            quis_rows: 200_000,
            replicates: 5,
            seed: 2003,
            threads: dq_exec::Parallelism::AUTO,
        }
    }

    /// Two orders of magnitude above the paper's sec. 6 scale
    /// (10⁴ → 10⁶ base records): the million-row audit tier. The
    /// quadratic kNN family is excluded from the classifier
    /// comparison above [`KNN_COMPARISON_CAP`] rows; every other
    /// experiment runs unchanged.
    pub fn large() -> Self {
        Scale {
            rows: 1_000_000,
            rules: 100,
            record_points: vec![100_000, 250_000, 500_000, 1_000_000],
            rule_points: vec![0, 50, 100],
            factor_points: vec![1.0, 2.0, 4.0],
            comparison_rows: 100_000,
            quis_rows: 1_000_000,
            replicates: 1,
            seed: 2003,
            threads: dq_exec::Parallelism::AUTO,
        }
    }

    /// The large tier capped for CI smoke: one 10⁵-row point per
    /// sweep, still an order of magnitude above the paper's base
    /// scale, sized to finish inside a CI wall-clock budget.
    pub fn large_smoke() -> Self {
        Scale {
            rows: 100_000,
            rules: 100,
            record_points: vec![100_000],
            rule_points: vec![0, 100],
            factor_points: vec![1.0],
            comparison_rows: 100_000,
            quis_rows: 100_000,
            replicates: 1,
            seed: 2003,
            threads: dq_exec::Parallelism::AUTO,
        }
    }

    /// A fast configuration for tests and smoke runs.
    pub fn smoke() -> Self {
        Scale {
            rows: 1200,
            rules: 15,
            record_points: vec![400, 800, 1200],
            rule_points: vec![0, 8, 15],
            factor_points: vec![1.0, 3.0],
            comparison_rows: 600,
            quis_rows: 4000,
            replicates: 1,
            seed: 2003,
            threads: dq_exec::Parallelism::AUTO,
        }
    }
}

/// The shared baseline configuration of sec. 6.1.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// The 8-attribute benchmark schema.
    pub schema: Arc<Schema>,
    /// Start distributions (1 Bayesian-network group + 5 shaped
    /// univariate distributions; the remaining attributes uniform).
    pub start: StartDistributions,
    /// The audit configuration (80% minimal confidence).
    pub audit: AuditConfig,
    /// The pollution suite at factor 1.
    pub pollution: PollutionConfig,
    /// Replicate runs per sweep point (averaged) — single runs are
    /// noise-dominated because corrupted-row counts are small.
    pub replicates: u64,
    /// Master seed.
    pub seed: u64,
}

/// The sec. 6.1 schema: 6 nominal attributes of different domain
/// sizes, 1 date, 1 numeric.
pub fn baseline_schema() -> Arc<Schema> {
    SchemaBuilder::new()
        .nominal_sized("n3", 3)
        .nominal_sized("n4", 4)
        .nominal_sized("n5", 5)
        .nominal_sized("n6", 6)
        .nominal_sized("n8", 8)
        .nominal_sized("n12", 12)
        .date_ymd("d", (1995, 1, 1), (2003, 12, 31))
        .numeric("x", 0.0, 1000.0)
        .build()
        .expect("baseline schema is well-formed")
}

impl Baseline {
    /// Build the baseline for a master seed.
    pub fn new(seed: u64) -> Self {
        let schema = baseline_schema();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB0F);
        // One multivariate nominal start distribution over the first
        // three nominal attributes…
        let net = dq_bayes::BayesianNetwork::random(&[(0, 3), (1, 4), (2, 5)], 2, &mut rng);
        // …and 5 univariate distributions of different kinds.
        let start = StartDistributions::uniform(&schema)
            .with_network(net)
            .with_spec(3, DistributionSpec::Normal { mean: 0.4, sd: 0.2 })
            .with_spec(4, DistributionSpec::Exponential { rate: 3.0 })
            .with_spec(
                5,
                DistributionSpec::Categorical {
                    weights: vec![8.0, 6.0, 5.0, 4.0, 3.0, 3.0, 2.0, 2.0, 1.0, 1.0, 0.5, 0.5],
                },
            )
            .with_spec(6, DistributionSpec::Normal { mean: 0.6, sd: 0.25 })
            .with_spec(7, DistributionSpec::Exponential { rate: 2.0 });
        Baseline {
            schema,
            start,
            audit: AuditConfig::default(),
            pollution: PollutionConfig::standard(),
            replicates: 1,
            seed,
        }
    }

    /// The rule-generation parameters of the baseline: premises of
    /// exactly 2 atoms. Broad single-atom premises produce rules that
    /// mature (cross the minInst support bound) below 1000 records and
    /// flatten the Figure 3 curve; 3-atom premises cover so few records
    /// that most never mature by 10k. Two-atom premises over this
    /// schema cover between 1/144 and ~1/12 of the records, so rule
    /// supports cross the minInst threshold *throughout* the 1k-10k
    /// sweep — the mechanism behind the rising sensitivity curve in
    /// Figure 3.
    pub fn rule_config(&self, n_rules: usize) -> RuleGenConfig {
        RuleGenConfig {
            n_rules,
            premise: dq_tdg::FormulaShape { min_atoms: 2, max_atoms: 2, p_disjunction: 0.1 },
            max_tries_per_rule: 400,
            ..RuleGenConfig::default()
        }
    }

    /// A generator over this baseline with the given rule/row counts.
    pub fn generator(&self, n_rules: usize, n_rows: usize) -> TestDataGenerator {
        let mut data = DataGenConfig::new(&self.schema, n_rows);
        data.start = self.start.clone();
        TestDataGenerator { schema: self.schema.clone(), rules: self.rule_config(n_rules), data }
    }

    /// The environment at given rule/row counts and pollution factor.
    pub fn environment(&self, n_rules: usize, n_rows: usize, factor: f64) -> TestEnvironment {
        TestEnvironment {
            generator: self.generator(n_rules, n_rows),
            pollution: self.pollution.clone().with_factor(factor),
            audit: self.audit.clone(),
        }
    }
}

/// Average the measure columns over replicate runs.
fn average(points: &[Vec<(String, f64)>]) -> Vec<(String, f64)> {
    let mut out = points[0].clone();
    for p in &points[1..] {
        for (acc, (_, v)) in out.iter_mut().zip(p) {
            acc.1 += v;
        }
    }
    for (_, v) in &mut out {
        *v /= points.len() as f64;
    }
    out
}

/// Fan the independent (sweep-point, replicate) cells of a figure
/// sweep out across [`Scale::threads`] workers and regroup the
/// per-cell measures into one replicate-averaged row per point, in
/// point order. Each cell reseeds its own RNG exactly as the legacy
/// serial loops did, so the fan-out changes wall-clock time only.
/// Inside a cell the audit runs serially (`threads = Some(1)`): the
/// cell level already saturates the pool, and serial inner phases keep
/// the per-cell `induction_secs`/`detection_secs` measures comparable
/// across thread counts.
fn run_cells<P: Sync>(
    scale: &Scale,
    points: &[P],
    cell: impl Fn(&P, u64) -> Result<Vec<(String, f64)>, AuditError> + Sync,
) -> Result<Vec<Vec<(String, f64)>>, AuditError> {
    let cells: Vec<(usize, u64)> =
        (0..points.len()).flat_map(|p| (0..scale.replicates).map(move |rep| (p, rep))).collect();
    let pool = WorkerPool::from_config(scale.threads);
    let results = pool.map_indexed(&cells, |_, &(p, rep)| cell(&points[p], rep));
    let mut averaged = Vec::with_capacity(points.len());
    let mut results = results.into_iter();
    for _ in points {
        let reps: Vec<Vec<(String, f64)>> = (0..scale.replicates)
            .map(|_| results.next().expect("one result per cell"))
            .collect::<Result<_, _>>()?;
        averaged.push(average(&reps));
    }
    Ok(averaged)
}

/// The standard measure columns of a run.
fn measures(r: &crate::environment::RunResult) -> Vec<(String, f64)> {
    vec![
        ("sensitivity".into(), r.sensitivity()),
        ("specificity".into(), r.specificity()),
        ("correction".into(), r.correction_improvement()),
        ("model_rules".into(), r.n_model_rules as f64),
        ("suspicious".into(), r.report.n_suspicious() as f64),
        ("induction_secs".into(), r.induction_secs),
        ("detection_secs".into(), r.detection_secs),
    ]
}

/// **Figure 3** — influence of the number of records on sensitivity.
/// One rule set (of `scale.rules` rules) is generated once and reused
/// across record counts.
pub fn fig3(scale: &Scale) -> Result<Series, AuditError> {
    let baseline = Baseline::new(scale.seed);
    let mut rng = StdRng::seed_from_u64(scale.seed);
    let (rules, _) =
        generate_rule_set(&baseline.schema, &baseline.rule_config(scale.rules), &mut rng);
    let mut series = Series::new(
        format!("fig3: sensitivity vs number of records ({} rules)", rules.len()),
        "records",
    );
    let averaged = run_cells(scale, &scale.record_points, |&n, rep| {
        let mut env = baseline.environment(scale.rules, n, 1.0);
        env.audit.threads = dq_exec::Parallelism::serial();
        // The cell level already saturates the pool; a nested
        // generation pool would only add contention (output is
        // thread-count-invariant either way).
        env.generator.data.threads = dq_exec::Parallelism::serial();
        let mut rng = StdRng::seed_from_u64(scale.seed ^ n as u64 ^ (rep << 32));
        let benchmark = env.generator.generate_with_rules(&rules, &mut rng);
        let (dirty, log) = pollute(&benchmark.clean, &env.pollution, &mut rng);
        Ok(measures(&env.audit_prepared(benchmark, dirty, log)?))
    })?;
    for (&n, avg) in scale.record_points.iter().zip(averaged) {
        series.push(n as f64, avg);
    }
    Ok(series)
}

/// **Figure 4** — influence of the number of rules on sensitivity.
/// Rule sets are nested prefixes of one generated set, so each point
/// strictly adds structure.
pub fn fig4(scale: &Scale) -> Result<Series, AuditError> {
    let baseline = Baseline::new(scale.seed);
    let max_rules = scale.rule_points.iter().copied().max().unwrap_or(0);
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 4);
    let (all_rules, _) =
        generate_rule_set(&baseline.schema, &baseline.rule_config(max_rules), &mut rng);
    let mut series = Series::new(
        format!("fig4: sensitivity vs number of rules ({} records)", scale.rows),
        "rules",
    );
    let ks: Vec<usize> = scale.rule_points.iter().map(|&k| k.min(all_rules.len())).collect();
    let averaged = run_cells(scale, &ks, |&k, rep| {
        let prefix = dq_logic::RuleSet::from_rules(all_rules.rules[..k].to_vec());
        let mut env = baseline.environment(k, scale.rows, 1.0);
        env.audit.threads = dq_exec::Parallelism::serial();
        // As in fig3: serial generation inside already-parallel cells.
        env.generator.data.threads = dq_exec::Parallelism::serial();
        let mut rng = StdRng::seed_from_u64(scale.seed ^ ((k as u64) << 8) ^ (rep << 32));
        let benchmark = env.generator.generate_with_rules(&prefix, &mut rng);
        let (dirty, log) = pollute(&benchmark.clean, &env.pollution, &mut rng);
        Ok(measures(&env.audit_prepared(benchmark, dirty, log)?))
    })?;
    for (&k, avg) in ks.iter().zip(averaged) {
        series.push(k as f64, avg);
    }
    Ok(series)
}

/// **Figure 5** — influence of the pollution factor on sensitivity.
/// One clean benchmark is generated once and re-polluted per factor.
pub fn fig5(scale: &Scale) -> Result<Series, AuditError> {
    let baseline = Baseline::new(scale.seed);
    let env0 = baseline.environment(scale.rules, scale.rows, 1.0);
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 5);
    let benchmark = env0.generator.generate(&mut rng);
    let mut series = Series::new(
        format!(
            "fig5: sensitivity vs pollution factor ({} records, {} rules)",
            scale.rows,
            benchmark.rules.len()
        ),
        "factor",
    );
    let averaged = run_cells(scale, &scale.factor_points, |&factor, rep| {
        let mut env = baseline.environment(scale.rules, scale.rows, factor);
        env.audit.threads = dq_exec::Parallelism::serial();
        let mut rng = StdRng::seed_from_u64(scale.seed ^ (factor * 16.0) as u64 ^ (rep << 32));
        let (dirty, log) = pollute(&benchmark.clean, &env.pollution, &mut rng);
        Ok(measures(&env.audit_prepared(benchmark.clone(), dirty, log)?))
    })?;
    for (&factor, avg) in scale.factor_points.iter().zip(averaged) {
        series.push(factor, avg);
    }
    Ok(series)
}

/// One named configuration in a comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Configuration name.
    pub name: String,
    /// Named measures.
    pub measures: Vec<(String, f64)>,
}

/// A comparison table (classifier families, ablations).
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Table title.
    pub title: String,
    /// One row per configuration.
    pub rows: Vec<ComparisonRow>,
}

impl Comparison {
    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        if let Some(first) = self.rows.first() {
            out.push_str(&format!("{:<28}", "config"));
            for (name, _) in &first.measures {
                out.push_str(&format!("{name:>16}"));
            }
            out.push('\n');
            for row in &self.rows {
                out.push_str(&format!("{:<28}", row.name));
                for (_, v) in &row.measures {
                    out.push_str(&format!("{v:>16.4}"));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Look a measure up by row name.
    pub fn measure(&self, row: &str, measure: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.name == row)?
            .measures
            .iter()
            .find(|(n, _)| n == measure)
            .map(|&(_, v)| v)
    }
}

/// Largest comparison table at which the quadratic kNN family still
/// runs: prediction scans the full training set per record, so 10⁵+
/// rows would cost ~10¹⁰ distance evaluations per audited attribute.
/// [`classifier_comparison`] drops kNN above this cap (the paper's
/// own comparison ran at 5000 rows).
pub const KNN_COMPARISON_CAP: usize = 20_000;

/// **Classifier comparison** (sec. 5: "for the QUIS domain we
/// evaluated different alternatives") — the inducer families plus the
/// Hipp-style association auditor, on one shared benchmark.
pub fn classifier_comparison(scale: &Scale) -> Result<Comparison, AuditError> {
    // The variants run in sequence, so the scale's thread knob flows
    // into the audit phases themselves (results are thread-invariant).
    let mut baseline = Baseline::new(scale.seed);
    baseline.audit.threads = scale.threads;
    let env = baseline.environment(scale.rules, scale.comparison_rows, 1.0);
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xC);
    let benchmark = env.generator.generate(&mut rng);
    let (dirty, log) = pollute(&benchmark.clean, &env.pollution, &mut rng);

    let mut rows = Vec::new();
    let mut kinds: Vec<(String, InducerKind)> = vec![
        ("c4.5 (adjusted)".into(), InducerKind::default()),
        ("naive-bayes".into(), InducerKind::NaiveBayes),
        ("oner".into(), InducerKind::OneR),
        ("zeror".into(), InducerKind::ZeroR),
    ];
    if scale.comparison_rows <= KNN_COMPARISON_CAP {
        // k must exceed minInst (≈35 at 80%/0.95): a k-neighbourhood is
        // the prediction's entire support, and 5 instances can never
        // push the error confidence past the reporting threshold.
        kinds.insert(2, ("knn (k=50)".into(), InducerKind::Knn { k: 50 }));
    }
    for (name, inducer) in kinds {
        let env = TestEnvironment {
            generator: env.generator.clone(),
            pollution: env.pollution.clone(),
            audit: AuditConfig { inducer, ..baseline.audit.clone() },
        };
        let r = env.audit_prepared(benchmark.clone(), dirty.clone(), log.clone())?;
        rows.push(ComparisonRow { name, measures: measures(&r) });
    }
    // The association auditor (both scorings).
    for (name, scoring) in [
        ("association (hipp sum)", AssociationScoring::Sum),
        ("association (max)", AssociationScoring::Max),
    ] {
        let auditor = AssociationAuditor::new(AssociationAuditConfig {
            scoring,
            min_confidence: baseline.audit.min_confidence,
            ..AssociationAuditConfig::default()
        });
        let t0 = Instant::now();
        let (_, report) = auditor.run(&dirty)?;
        let secs = t0.elapsed().as_secs_f64();
        let detection = crate::scoring::score_detection(&log, &report);
        let corrections = dq_core::propose_corrections(&report);
        let correction = crate::scoring::score_correction(
            &log,
            &dirty,
            &corrections,
            crate::environment::CORRECTION_TOLERANCE,
        );
        rows.push(ComparisonRow {
            name: name.into(),
            measures: vec![
                ("sensitivity".into(), detection.sensitivity().unwrap_or(0.0)),
                ("specificity".into(), detection.specificity().unwrap_or(1.0)),
                ("correction".into(), correction.improvement().unwrap_or(0.0)),
                ("model_rules".into(), 0.0),
                ("suspicious".into(), report.n_suspicious() as f64),
                ("induction_secs".into(), secs),
                ("detection_secs".into(), 0.0),
            ],
        });
    }
    Ok(Comparison { title: "classifier comparison (tab-cmp)".into(), rows })
}

/// **Ablation** of the sec. 5.4 adjustments: pruning criterion,
/// minInst pre-pruning, rule deletion, split criterion.
pub fn ablation(scale: &Scale) -> Result<Comparison, AuditError> {
    // As in `classifier_comparison`: the thread knob reaches the audit.
    let mut baseline = Baseline::new(scale.seed);
    baseline.audit.threads = scale.threads;
    let env = baseline.environment(scale.rules, scale.rows, 1.0);
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xAB);
    let benchmark = env.generator.generate(&mut rng);
    let (dirty, log) = pollute(&benchmark.clean, &env.pollution, &mut rng);

    let c45 = |f: &dyn Fn(&mut C45Config)| {
        let mut cfg = C45Config::default();
        f(&mut cfg);
        InducerKind::C45(cfg)
    };
    let variants: Vec<(String, AuditConfig)> = vec![
        ("full (paper adjustments)".into(), baseline.audit.clone()),
        (
            "pruning: none".into(),
            AuditConfig { inducer: c45(&|c| c.pruning = Pruning::None), ..baseline.audit.clone() },
        ),
        (
            "pruning: pessimistic".into(),
            AuditConfig {
                inducer: c45(&|c| c.pruning = Pruning::PessimisticError),
                ..baseline.audit.clone()
            },
        ),
        (
            "pruning: def9 raw".into(),
            AuditConfig {
                inducer: c45(&|c| c.pruning = Pruning::ExpectedErrorConfidenceRaw),
                ..baseline.audit.clone()
            },
        ),
        ("no minInst".into(), AuditConfig { derive_min_inst: false, ..baseline.audit.clone() }),
        (
            "no rule deletion".into(),
            AuditConfig { delete_undetecting_rules: false, ..baseline.audit.clone() },
        ),
        (
            "criterion: info gain".into(),
            AuditConfig {
                inducer: c45(&|c| c.criterion = SplitCriterion::InfoGain),
                ..baseline.audit.clone()
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, audit) in variants {
        let env = TestEnvironment {
            generator: env.generator.clone(),
            pollution: env.pollution.clone(),
            audit,
        };
        let r = env.audit_prepared(benchmark.clone(), dirty.clone(), log.clone())?;
        rows.push(ComparisonRow { name, measures: measures(&r) });
    }
    Ok(Comparison { title: "ablation of the sec. 5.4 adjustments (tab-ablate)".into(), rows })
}

/// Summary of the QUIS audit (sec. 6.2).
#[derive(Debug, Clone)]
pub struct QuisSummary {
    /// Rows in the dirty table.
    pub n_rows: usize,
    /// Structure-induction + detection wall-clock seconds (the paper's
    /// "about 21 minutes on an Athlon 900MHz").
    pub total_secs: f64,
    /// Suspicious records (the paper: "about 6000").
    pub n_suspicious: usize,
    /// Detection sensitivity against the ground-truth log (the paper
    /// could not compute this: "an exact quantification … turned out to
    /// be too expensive").
    pub sensitivity: f64,
    /// Detection specificity against the ground-truth log.
    pub specificity: f64,
    /// Fraction of the top-50 findings that are logged corruptions —
    /// the expert cross-check ("the identification of the deviations
    /// with the highest error confidences is a highly valuable
    /// information").
    pub top50_precision: f64,
    /// The highest finding confidence (the paper's example: 99.95%).
    pub top_confidence: f64,
    /// Rendered top findings.
    pub top_findings: Vec<String>,
    /// Rendered highest-support structure rules.
    pub top_rules: Vec<String>,
}

/// **The QUIS audit** (sec. 6.2) on the synthetic engine table.
pub fn quis_audit(scale: &Scale) -> Result<QuisSummary, AuditError> {
    let cfg = QuisConfig::default().with_rows(scale.quis_rows);
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x9015);
    let b = generate_quis(&cfg, &mut rng);
    let auditor = Auditor::new(AuditConfig { threads: scale.threads, ..AuditConfig::default() });
    let t0 = Instant::now();
    let model = auditor.induce(&b.dirty)?;
    let report = auditor.detect(&model, &b.dirty);
    let total_secs = t0.elapsed().as_secs_f64();
    let detection = crate::scoring::score_detection(&b.log, &report);
    let top = report.top(50);
    let top50_hits = top.iter().filter(|f| b.log.is_row_corrupted(f.row)).count();
    let schema = b.dirty.schema();
    let mut all_rules: Vec<(f64, String)> = Vec::new();
    for m in &model.models {
        for r in &m.rules {
            let label = m.spec.label_of(schema, m.class_attr, r.predicted);
            all_rules.push((r.support, r.render(schema, m.class_attr, &label)));
        }
    }
    all_rules.sort_by(|a, b| b.0.total_cmp(&a.0));
    Ok(QuisSummary {
        n_rows: b.dirty.n_rows(),
        total_secs,
        n_suspicious: report.n_suspicious(),
        sensitivity: detection.sensitivity().unwrap_or(0.0),
        specificity: detection.specificity().unwrap_or(1.0),
        top50_precision: if top.is_empty() { 0.0 } else { top50_hits as f64 / top.len() as f64 },
        top_confidence: report.findings.first().map_or(0.0, |f| f.confidence),
        top_findings: top.iter().take(10).map(|f| f.render(schema)).collect(),
        top_rules: all_rules.into_iter().take(10).map(|(_, r)| r).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_sec61() {
        let s = baseline_schema();
        assert_eq!(s.len(), 8);
        let nominal_sizes: Vec<u64> = s
            .attributes()
            .iter()
            .filter_map(|a| match &a.ty {
                dq_table::AttrType::Nominal { labels } => Some(labels.len() as u64),
                _ => None,
            })
            .collect();
        assert_eq!(nominal_sizes.len(), 6, "6 nominal attributes");
        let mut dedup = nominal_sizes.clone();
        dedup.dedup();
        assert_eq!(dedup, nominal_sizes, "different domain sizes");
        let b = Baseline::new(1);
        assert_eq!(b.start.networks.len(), 1, "one multivariate start distribution");
        assert_eq!(b.audit.min_confidence, 0.8, "80% minimal error confidence");
        assert_eq!(b.pollution.steps.len(), 5, "all five polluters");
    }

    #[test]
    fn fig3_runs_at_smoke_scale() {
        let series = fig3(&Scale::smoke()).unwrap();
        assert_eq!(series.points.len(), 3);
        // Specificity stays high everywhere (the paper's ≈99% claim).
        for s in series.column("specificity") {
            assert!(s > 0.9, "specificity {s}");
        }
        // CSV renders with all columns.
        assert!(series.to_csv().starts_with("records,sensitivity,specificity"));
    }

    #[test]
    fn fig4_rules_add_detectable_structure() {
        let series = fig4(&Scale::smoke()).unwrap();
        let sens = series.column("sensitivity");
        // The only structure at 0 rules is the Bayesian-network start
        // distribution; TDG rules must add detectable constraints on
        // top ("the more constraints are imposed on the data the easier
        // it is to identify errors").
        let last = *sens.last().unwrap();
        assert!(last >= sens[0], "sensitivity must not fall as rules are added: {sens:?}");
    }

    #[test]
    fn fig5_more_pollution_lowers_sensitivity_eventually() {
        let series = fig5(&Scale::smoke()).unwrap();
        assert_eq!(series.points.len(), 2);
        // Not asserting monotonicity at smoke scale — just integrity.
        for p in &series.points {
            assert!(p.measures.iter().all(|(_, v)| v.is_finite()));
        }
    }

    #[test]
    fn comparison_and_ablation_run_at_smoke_scale() {
        let cmp = classifier_comparison(&Scale::smoke()).unwrap();
        assert_eq!(cmp.rows.len(), 7);
        assert!(cmp.measure("zeror", "sensitivity").is_some());
        assert!(cmp.render().contains("c4.5"));
        let abl = ablation(&Scale::smoke()).unwrap();
        assert_eq!(abl.rows.len(), 7);
        assert!(abl.measure("full (paper adjustments)", "specificity").unwrap() > 0.9);
    }

    #[test]
    fn comparison_drops_quadratic_knn_above_the_cap() {
        let below = classifier_comparison(&Scale::smoke()).unwrap();
        assert!(below.rows.iter().any(|r| r.name.starts_with("knn")));
        let scale = Scale { comparison_rows: KNN_COMPARISON_CAP + 1, rules: 15, ..Scale::smoke() };
        let above = classifier_comparison(&scale).unwrap();
        assert!(above.rows.iter().all(|r| !r.name.starts_with("knn")));
        assert_eq!(above.rows.len(), below.rows.len() - 1);
    }

    #[test]
    fn large_tiers_stay_at_or_above_one_hundred_thousand_rows() {
        for scale in [Scale::large(), Scale::large_smoke()] {
            assert!(scale.rows >= 100_000);
            assert!(scale.comparison_rows >= 100_000);
            assert!(scale.record_points.iter().all(|&n| n >= 100_000));
            // kNN cannot survive the tier — the comparison must cap it.
            assert!(scale.comparison_rows > KNN_COMPARISON_CAP);
        }
        assert_eq!(Scale::large().rows, 100 * Scale::paper().rows);
    }

    #[test]
    fn sweep_results_are_identical_at_any_thread_count() {
        let serial = Scale { threads: 1.into(), ..Scale::smoke() };
        let parallel = Scale { threads: 4.into(), ..Scale::smoke() };
        let s3 = fig3(&serial).unwrap();
        let p3 = fig3(&parallel).unwrap();
        // Timing columns differ run to run; compare the deterministic
        // quality measures instead of whole-series equality.
        for col in ["sensitivity", "specificity", "correction", "model_rules", "suspicious"] {
            assert_eq!(s3.column(col), p3.column(col), "fig3 column {col}");
            assert!(!s3.column(col).is_empty(), "fig3 column {col} exists");
        }
        let s5 = fig5(&serial).unwrap();
        let p5 = fig5(&parallel).unwrap();
        for col in ["sensitivity", "specificity", "suspicious"] {
            assert_eq!(s5.column(col), p5.column(col), "fig5 column {col}");
        }
    }

    #[test]
    fn quis_audit_smoke() {
        let s = quis_audit(&Scale::smoke()).unwrap();
        assert!(s.n_rows >= 3900);
        assert!(s.n_suspicious > 0, "the audit must flag something");
        assert!(s.specificity > 0.95, "specificity {}", s.specificity);
        assert!(s.top_confidence > 0.9, "top confidence {}", s.top_confidence);
        assert!(!s.top_rules.is_empty());
        // The expert cross-check: most top findings are real errors.
        assert!(s.top50_precision > 0.6, "top-50 precision {}", s.top50_precision);
    }
}
