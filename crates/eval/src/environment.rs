//! The test environment of Figure 2: generate → pollute → audit →
//! evaluate.
//!
//! "The test environment justifies selection and adjustment of data
//! mining algorithms. It generates artificial data that simulate
//! structural characteristics of the application database, pollutes
//! this data in a controlled and logged procedure, runs the data
//! auditing tool and evaluates its performance by comparing the
//! deviations of the dirty from the clean database with the detected
//! errors."

use crate::scoring::{score_correction, score_detection};
use dq_core::{propose_corrections, AuditConfig, AuditError, Auditor};
use dq_pollute::{pollute, PollutionConfig, PollutionLog};
use dq_stats::{ConfusionMatrix, CorrectionMatrix};
use dq_table::Table;
use dq_tdg::{GeneratedBenchmark, TestDataGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Tolerance (as a domain-extent fraction) for counting an ordered-
/// attribute correction as successful.
pub const CORRECTION_TOLERANCE: f64 = 0.05;

/// A full benchmark pipeline: generator + polluter suite + auditor.
#[derive(Debug, Clone)]
pub struct TestEnvironment {
    /// The artificial test data generator (sec. 4.1).
    pub generator: TestDataGenerator,
    /// The controlled corruption suite (sec. 4.2).
    pub pollution: PollutionConfig,
    /// The audit tool under test (sec. 5).
    pub audit: AuditConfig,
}

/// Everything a benchmark run produces.
#[derive(Debug)]
pub struct RunResult {
    /// The generated clean benchmark (schema, rules, clean table).
    pub benchmark: GeneratedBenchmark,
    /// The polluted table the audit ran on.
    pub dirty: Table,
    /// Ground-truth pollution log.
    pub log: PollutionLog,
    /// Structure-model size (rules across attributes).
    pub n_model_rules: usize,
    /// The audit report.
    pub report: dq_core::AuditReport,
    /// Detection scores (sec. 4.3).
    pub detection: ConfusionMatrix,
    /// Correction scores (sec. 4.3).
    pub correction: CorrectionMatrix,
    /// Wall-clock seconds of structure induction.
    pub induction_secs: f64,
    /// Wall-clock seconds of deviation detection.
    pub detection_secs: f64,
}

impl RunResult {
    /// Sensitivity (0 when no row was corrupted).
    pub fn sensitivity(&self) -> f64 {
        self.detection.sensitivity().unwrap_or(0.0)
    }

    /// Specificity (1 when every row was corrupted).
    pub fn specificity(&self) -> f64 {
        self.detection.specificity().unwrap_or(1.0)
    }

    /// The paper's quality-of-correction improvement (0 when nothing
    /// was corrupted).
    pub fn correction_improvement(&self) -> f64 {
        self.correction.improvement().unwrap_or(0.0)
    }
}

impl TestEnvironment {
    /// Execute the full pipeline with a seeded RNG.
    pub fn run(&self, seed: u64) -> Result<RunResult, AuditError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let benchmark = self.generator.generate(&mut rng);
        let (dirty, log) = pollute(&benchmark.clean, &self.pollution, &mut rng);
        self.audit_prepared(benchmark, dirty, log)
    }

    /// Execute the audit/scoring half on an already generated and
    /// polluted benchmark (used by sweeps that vary only the audit
    /// configuration).
    pub fn audit_prepared(
        &self,
        benchmark: GeneratedBenchmark,
        dirty: Table,
        log: PollutionLog,
    ) -> Result<RunResult, AuditError> {
        let auditor = Auditor::new(self.audit.clone());
        let t0 = Instant::now();
        let model = auditor.induce(&dirty)?;
        let induction_secs = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let report = auditor.detect(&model, &dirty);
        let detection_secs = t1.elapsed().as_secs_f64();
        let detection = score_detection(&log, &report);
        let corrections = propose_corrections(&report);
        let correction = score_correction(&log, &dirty, &corrections, CORRECTION_TOLERANCE);
        Ok(RunResult {
            benchmark,
            dirty,
            log,
            n_model_rules: model.n_rules(),
            report,
            detection,
            correction,
            induction_secs,
            detection_secs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_table::SchemaBuilder;

    fn small_environment() -> TestEnvironment {
        let schema = SchemaBuilder::new()
            .nominal("a", ["v1", "v2", "v3", "v4"])
            .nominal("b", ["v1", "v2", "v3", "v4"])
            .nominal("c", ["w1", "w2", "w3"])
            .numeric("n", 0.0, 100.0)
            .build()
            .unwrap();
        TestEnvironment {
            generator: TestDataGenerator::new(schema, 12, 3000),
            pollution: PollutionConfig::standard(),
            audit: AuditConfig::default(),
        }
    }

    #[test]
    fn pipeline_runs_end_to_end() {
        let env = small_environment();
        let r = env.run(11).unwrap();
        assert_eq!(r.benchmark.clean.n_rows(), 3000);
        assert_eq!(r.log.n_rows(), r.dirty.n_rows());
        assert_eq!(r.report.n_rows(), r.dirty.n_rows());
        // The detection matrix covers every dirty row.
        assert_eq!(r.detection.total() as usize, r.dirty.n_rows());
        // Scores are well-formed probabilities.
        assert!((0.0..=1.0).contains(&r.sensitivity()));
        assert!((0.0..=1.0).contains(&r.specificity()));
        assert!(r.induction_secs >= 0.0 && r.detection_secs >= 0.0);
    }

    #[test]
    fn specificity_is_high_at_80_percent_confidence() {
        // The paper: "This leads to high values for specificity of
        // about 99% in all parameter settings described."
        let env = small_environment();
        let r = env.run(12).unwrap();
        assert!(r.specificity() > 0.95, "specificity {}", r.specificity());
    }

    #[test]
    fn runs_are_reproducible() {
        let env = small_environment();
        let a = env.run(13).unwrap();
        let b = env.run(13).unwrap();
        assert_eq!(a.detection, b.detection);
        assert_eq!(a.n_model_rules, b.n_model_rules);
        assert_eq!(a.report.findings.len(), b.report.findings.len());
    }

    #[test]
    fn detects_corruption_of_known_structure() {
        // Deterministic variant: a hand-written, trivially learnable
        // dependency plus targeted corruption of its consequent. The
        // audit must recover some of the corrupted rows.
        use dq_pollute::{Polluter, PollutionStep};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let env = small_environment();
        let rule = dq_logic::parse_rule(&env.generator.schema, "a = v1 -> c = w2").unwrap();
        let mut rng = StdRng::seed_from_u64(14);
        let benchmark =
            env.generator.generate_with_rules(&dq_logic::RuleSet::from_rules(vec![rule]), &mut rng);
        let targeted = PollutionConfig {
            steps: vec![PollutionStep {
                polluter: Polluter::WrongValue {
                    attr: Some(2),
                    dist: dq_stats::DistributionSpec::Uniform,
                },
                activation: 0.02,
            }],
            factor: 1.0,
        };
        let (dirty, log) = dq_pollute::pollute(&benchmark.clean, &targeted, &mut rng);
        let r = env.audit_prepared(benchmark, dirty, log).unwrap();
        assert!(
            r.detection.tp > 0,
            "no true positives: sens={} rules={} findings={}",
            r.sensitivity(),
            r.n_model_rules,
            r.report.findings.len()
        );
        assert!(r.specificity() > 0.95);
    }
}
