//! `dq induce` — off-line structure induction: CSV in, model file out.

use crate::args::{CliError, Flags};
use crate::io_util::{load_schema, load_table, say};
use dq_core::{AuditConfig, Auditor};
use std::path::Path;
use std::time::Instant;

pub const USAGE: &str = "dq induce --schema F.dqs --input data.csv --model out.dqm \
[--min-confidence X] [--level X] [--bins N] [--threads N]";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &["schema", "input", "model", "min-confidence", "level", "bins", "threads"],
    )?;
    let schema = load_schema(flags.require("schema")?)?;
    let table = load_table(schema.clone(), flags.require("input")?)?;
    let model_path = Path::new(flags.require("model")?).to_path_buf();
    let config = AuditConfig {
        min_confidence: flags.parse_or("min-confidence", 0.8)?,
        level: flags.parse_or("level", 0.95)?,
        bins: flags.parse_or("bins", 8)?,
        threads: flags.parse_positive_opt("threads")?.into(),
        ..AuditConfig::default()
    };

    let auditor = Auditor::new(config);
    let t0 = Instant::now();
    let model = auditor.induce(&table).map_err(|e| e.to_string())?;
    let secs = t0.elapsed().as_secs_f64();
    model.save_to_path(&schema, &model_path).map_err(|e| e.to_string())?;

    say!(
        "induced structure model from {} rows in {secs:.2}s: {} attribute models, {} rules \
         (minInst {:.0}), schema fingerprint {:016x}",
        table.n_rows(),
        model.models.len(),
        model.n_rules(),
        model.min_inst,
        schema.fingerprint(),
    );
    say!("saved to {}", model_path.display());
    Ok(())
}
