//! Shared file plumbing for the subcommands.

/// A `println!` that ignores a closed stdout (e.g. `dq … | head`), so
/// pipelines can stop reading without a broken-pipe panic.
macro_rules! say {
    ($($t:tt)*) => {
        $crate::io_util::print_ignoring_pipe(format_args!($($t)*))
    };
}
pub(crate) use say;

/// The `say!` backend.
pub fn print_ignoring_pipe(args: std::fmt::Arguments<'_>) {
    use std::io::Write as _;
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{args}");
}

use dq_pollute::PollutionLog;
use dq_table::{read_schema, Schema, Table, TableError};
use std::fs::File;
use std::io::{BufReader, Write};
use std::path::Path;
use std::sync::Arc;

/// Human-facing error text with the file path attached.
pub(crate) fn at(path: &Path, e: impl std::fmt::Display) -> String {
    format!("{}: {e}", path.display())
}

/// Create a file for streaming writes, creating parent directories —
/// the open half of [`write_table`] for paths that go through a
/// [`dq_table::CsvWriter`] batch by batch.
pub fn create_file(path: &Path) -> Result<File, String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| at(parent, e))?;
        }
    }
    File::create(path).map_err(|e| at(path, e))
}

/// Load a `.dqs` schema file.
pub fn load_schema(path: &str) -> Result<Arc<Schema>, String> {
    let path = Path::new(path);
    let file = File::open(path).map_err(|e| at(path, e))?;
    read_schema(BufReader::new(file)).map_err(|e| at(path, e))
}

/// Load a whole CSV file against a schema (for training-sized data;
/// `dq detect` streams instead).
pub fn load_table(schema: Arc<Schema>, path: &str) -> Result<Table, String> {
    let path = Path::new(path);
    let file = File::open(path).map_err(|e| at(path, e))?;
    dq_table::read_csv(schema, BufReader::new(file)).map_err(|e| at(path, e))
}

/// Write a whole string to a file, creating parent directories.
pub fn write_file(path: &Path, content: &str) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| at(parent, e))?;
        }
    }
    let mut f = File::create(path).map_err(|e| at(path, e))?;
    f.write_all(content.as_bytes()).map_err(|e| at(path, e))
}

/// Write a table as CSV to a file.
pub fn write_table(table: &Table, path: &Path) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| at(parent, e))?;
        }
    }
    let file = File::create(path).map_err(|e| at(path, e))?;
    dq_table::write_csv(table, file).map_err(|e: TableError| at(path, e))
}

/// Render a pollution log's cell corruptions as CSV — the ground
/// truth a generated benchmark's detections are scored against. The
/// checkpointed pipeline streams the same bytes incrementally through
/// [`PollutionLog::render_cells_csv`].
pub fn log_to_csv(log: &PollutionLog, schema: &Schema) -> String {
    let mut out = String::from(dq_pollute::CELLS_CSV_HEADER);
    log.render_cells_csv(schema, 0, &mut out);
    out
}
