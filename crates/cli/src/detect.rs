//! `dq detect` — streaming deviation detection against a saved model.
//!
//! Three input shapes share one command:
//!
//! * a CSV file streams through [`dq_table::CsvChunkReader`] in
//!   `--chunk-rows` batches into
//!   [`dq_core::Auditor::detect_stream_partial`], so a file (much)
//!   larger than RAM audits at O(chunk) memory with a report
//!   byte-identical to the in-memory path;
//! * a *directory* as `--input` is opened as a
//!   [`dq_table::PagedTable`] spill (the `dq generate --paged-dirty`
//!   output) and scanned page by page — a torn or partially-committed
//!   spill is rejected up front with the manifest-level error instead
//!   of silently auditing a truncated relation;
//! * `--server ADDR --model-name NAME` skips the local model entirely
//!   and posts the CSV to a running `dq serve` daemon's
//!   `/audit/{name}/stream` endpoint via
//!   [`dq_serve::client::post_with_retry`] — queue-full `503`s back
//!   off and retry (honoring `Retry-After`), a *draining* server fails
//!   immediately with a distinct error, because it will not come back.
//!
//! A mid-stream failure (a bad CSV cell three million rows in) does
//! not discard the scan: the report and corrections files are written
//! over every complete chunk before the failure, the summary marks the
//! scan partial, and the error — carrying the table layer's 1-based
//! line number — goes to stderr with exit code 1.
//!
//! Two robustness modes extend that:
//!
//! * `--quarantine FILE` routes malformed CSV rows to a dead-letter
//!   file (1-based line number, the typed parse error, the raw line)
//!   instead of aborting the scan; `--max-bad-rows N` bounds the
//!   budget, and overflowing it exits with the distinct code 3;
//! * `--checkpoint DIR` journals the scan cursor and spills findings +
//!   per-row confidences to binary sidecars at every
//!   `--checkpoint-every`-batch boundary, so `--resume` continues a
//!   killed audit with a final report byte-identical to an
//!   uninterrupted one.

use crate::args::{CliError, Flags};
use crate::checkpoint::{config_fingerprint, jerr, start_job, Start};
use crate::io_util::{load_schema, say, write_file};
use dq_core::{
    corrections_to_csv, propose_corrections, AuditConfig, AuditEngine, AuditError, Auditor,
    Finding, StructureModel,
};
use dq_job::{fnv1a, resume_file, CheckpointDir, CountingWriter, Journal, Watermark};
use dq_serve::client::{post_with_retry, RetryPolicy, Unavailable};
use dq_table::{BatchSource, CsvChunkReader, PagedTable, QuarantinedRow, TableError, Value};
use std::fs::File;
use std::io::{BufReader, Write};
use std::net::ToSocketAddrs;
use std::path::Path;
use std::time::Instant;

pub const USAGE: &str = "dq detect --schema F.dqs --model m.dqm --input data.csv|paged-dir \
[--report report.csv] [--corrections c.csv] [--chunk-rows N] [--threads N] [--top N] \
[--quarantine bad.tsv --max-bad-rows N] [--checkpoint DIR] [--resume] [--checkpoint-every N]
       dq detect --server HOST:PORT --model-name NAME --input data.csv [--report report.csv] \
[--retries N]";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse_with_switches(
        args,
        &[
            "schema",
            "model",
            "input",
            "report",
            "corrections",
            "chunk-rows",
            "threads",
            "top",
            "server",
            "model-name",
            "retries",
            "quarantine",
            "max-bad-rows",
            "checkpoint",
            "checkpoint-every",
        ],
        &["resume"],
    )?;
    if let Some(server) = flags.get("server") {
        return remote(&flags, server);
    }
    let schema = load_schema(flags.require("schema")?)?;
    let model_path = flags.require("model")?;
    let model = StructureModel::load_from_path(&schema, model_path)
        .map_err(|e| format!("{model_path}: {e}"))?;
    let input = flags.require("input")?;
    let chunk_rows: usize = flags.parse_positive_or("chunk-rows", 4096)?;
    let threads = flags.parse_positive_opt("threads")?;
    let top: usize = flags.parse_or("top", 10)?;
    let quarantine = flags.get("quarantine").map(|p| Path::new(p).to_path_buf());
    let max_bad_rows: Option<usize> = flags.parse_opt("max-bad-rows")?;
    let checkpoint = flags.get("checkpoint").map(|d| Path::new(d).to_path_buf());
    let every: usize = flags.parse_positive_or("checkpoint-every", 16)?;
    let resume = flags.has("resume");

    if max_bad_rows.is_some() && quarantine.is_none() {
        return Err(CliError::Usage(format!(
            "--max-bad-rows bounds the --quarantine budget; pass both\nusage: {USAGE}"
        )));
    }
    if (resume || flags.get("checkpoint-every").is_some()) && checkpoint.is_none() {
        return Err(CliError::Usage(format!(
            "--resume/--checkpoint-every need --checkpoint DIR\nusage: {USAGE}"
        )));
    }
    if quarantine.is_some() && checkpoint.is_some() {
        return Err(CliError::Usage(format!(
            "--quarantine and --checkpoint are mutually exclusive: a checkpointed scan must \
             be deterministic in its row numbering, a quarantining scan deliberately is not\n\
             usage: {USAGE}"
        )));
    }
    if quarantine.is_some() && Path::new(input).is_dir() {
        return Err(CliError::Usage(format!(
            "--quarantine routes malformed CSV rows; a paged directory has no raw rows to \
             quarantine\nusage: {USAGE}"
        )));
    }

    if let Some(ckpt_dir) = checkpoint {
        return checkpointed(
            &flags, schema, model, model_path, input, chunk_rows, threads, top, &ckpt_dir, resume,
            every,
        );
    }

    let auditor = Auditor::new(AuditConfig { threads: threads.into(), ..AuditConfig::default() });
    let t0 = Instant::now();
    // A directory is a paged spill; a file is a CSV stream. Opening the
    // spill validates its manifest first, so a torn commit (crash
    // mid-`finish`) fails here with the manifest's own error rather
    // than auditing a partial relation.
    let (report, stream_error, quarantined) = if Path::new(input).is_dir() {
        let paged = PagedTable::open(input, schema.clone()).map_err(|e| format!("{input}: {e}"))?;
        let (report, error) = auditor.detect_stream_partial(&model, paged.batches());
        (report, error, Vec::new())
    } else {
        let file = File::open(input).map_err(|e| format!("{input}: {e}"))?;
        let mut batches = CsvChunkReader::new(schema.clone(), BufReader::new(file), chunk_rows)
            .map_err(|e| format!("{input}: {e}"))?;
        if quarantine.is_some() {
            batches = batches.with_quarantine(max_bad_rows.unwrap_or(usize::MAX));
        }
        let (report, error) = auditor.detect_stream_partial(&model, &mut batches);
        (report, error, batches.take_quarantined())
    };
    let secs = t0.elapsed().as_secs_f64();

    // Flush what was audited even when the stream failed mid-way: a
    // partial report over millions of clean rows beats an empty file.
    if let Some(path) = flags.get("report") {
        write_file(Path::new(path), &report.to_csv(&schema))?;
    }
    if let Some(path) = flags.get("corrections") {
        let corrections = propose_corrections(&report);
        write_file(Path::new(path), &corrections_to_csv(&corrections, &schema))?;
    }
    // The dead-letter file is written even when the budget overflowed:
    // the rows captured up to the budget are exactly the evidence the
    // operator needs to decide what to do next.
    if let Some(path) = &quarantine {
        write_file(path, &render_dead_letters(&quarantined))?;
    }

    say!(
        "scanned {} rows in {secs:.2}s ({} per chunk{}): {} suspicious rows, {} findings at \
         min confidence {}",
        report.n_rows(),
        chunk_rows,
        if stream_error.is_some() { ", PARTIAL — the stream failed" } else { "" },
        report.n_suspicious(),
        report.findings.len(),
        report.min_confidence,
    );
    if let Some(path) = &quarantine {
        say!("quarantined {} malformed row(s) to {}", quarantined.len(), path.display());
    }
    if top > 0 && !report.findings.is_empty() {
        say!("top findings:");
        say!("{}", report.render_top(&schema, top));
    }
    match stream_error {
        Some(AuditError::Table(TableError::QuarantineBudget { max_bad_rows, line })) => {
            Err(CliError::Budget(format!(
                "{input}: more than {max_bad_rows} malformed rows (line {line} overflowed the \
                 budget); the report covers the {} rows scanned before the overflow and the \
                 dead-letter file holds the first {} malformed rows",
                report.n_rows(),
                quarantined.len(),
            )))
        }
        Some(e) => Err(CliError::Runtime(format!(
            "{input}: {e} (the report covers the {} complete rows before the failure)",
            report.n_rows()
        ))),
        None => Ok(()),
    }
}

/// Render quarantined rows as a tab-separated dead-letter file:
/// `line<TAB>error<TAB>raw row`, one per malformed row.
fn render_dead_letters(rows: &[QuarantinedRow]) -> String {
    let mut out = String::new();
    for row in rows {
        out.push_str(&format!("{}\t{}\t{}\n", row.line, row.error, row.raw));
    }
    out
}

// ---------------------------------------------------------------------------
// Checkpointed detection
// ---------------------------------------------------------------------------

/// Byte length of one encoded finding record in `findings.bin`.
const FINDING_RECORD: usize = 50;

fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => {
            out.push(0);
            out.extend_from_slice(&0u64.to_le_bytes());
        }
        Value::Nominal(code) => {
            out.push(1);
            out.extend_from_slice(&u64::from(*code).to_le_bytes());
        }
        Value::Number(x) => {
            out.push(2);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Date(d) => {
            out.push(3);
            out.extend_from_slice(&(*d as u64).to_le_bytes());
        }
    }
}

fn decode_value(tag: u8, payload: u64) -> Result<Value, String> {
    Ok(match tag {
        0 => Value::Null,
        1 => Value::Nominal(u32::try_from(payload).map_err(|_| "nominal code overflow")?),
        2 => Value::Number(f64::from_bits(payload)),
        3 => Value::Date(payload as i64),
        other => return Err(format!("unknown value tag {other}")),
    })
}

/// Encode one finding as a fixed 50-byte record: row, attr, observed,
/// proposed, confidence bits, support bits (all little-endian; values
/// as tag byte + 8-byte payload).
fn encode_finding(f: &Finding, out: &mut Vec<u8>) {
    out.extend_from_slice(&(f.row as u64).to_le_bytes());
    out.extend_from_slice(&(f.attr as u64).to_le_bytes());
    encode_value(&f.observed, out);
    encode_value(&f.proposed, out);
    out.extend_from_slice(&f.confidence.to_bits().to_le_bytes());
    out.extend_from_slice(&f.support.to_bits().to_le_bytes());
}

fn decode_findings(bytes: &[u8]) -> Result<Vec<Finding>, String> {
    if bytes.len() % FINDING_RECORD != 0 {
        return Err(format!(
            "{} bytes is not a whole number of {FINDING_RECORD}-byte records",
            bytes.len()
        ));
    }
    let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
    let mut findings = Vec::with_capacity(bytes.len() / FINDING_RECORD);
    for record in 0..bytes.len() / FINDING_RECORD {
        let base = record * FINDING_RECORD;
        findings.push(Finding {
            row: u64_at(base) as usize,
            attr: u64_at(base + 8) as usize,
            observed: decode_value(bytes[base + 16], u64_at(base + 17))?,
            proposed: decode_value(bytes[base + 25], u64_at(base + 26))?,
            confidence: f64::from_bits(u64_at(base + 34)),
            support: f64::from_bits(u64_at(base + 42)),
        });
    }
    Ok(findings)
}

/// Load a sidecar file and split it at its journaled watermark: the
/// committed prefix is decoded state, anything past it is an
/// uncommitted tail a crashed incarnation left (truncated by the
/// subsequent [`resume_file`]). Shorter than the watermark is the same
/// loud refusal `resume_file` raises.
fn committed_sidecar(path: &Path, watermark: u64) -> Result<Vec<u8>, CliError> {
    let bytes =
        std::fs::read(path).map_err(|e| CliError::Runtime(format!("{}: {e}", path.display())))?;
    if (bytes.len() as u64) < watermark {
        return Err(jerr(dq_job::JobError::OutputTruncated {
            path: path.display().to_string(),
            len: bytes.len() as u64,
            watermark,
        }));
    }
    let mut bytes = bytes;
    bytes.truncate(watermark as usize);
    Ok(bytes)
}

/// The checkpointed scan state shared by the CSV and paged input
/// shapes.
struct ScanState {
    engine: AuditEngine,
    findings: Vec<Finding>,
    confidences: Vec<f64>,
    rows_scanned: usize,
    findings_out: CountingWriter<File>,
    confidence_out: CountingWriter<File>,
    journal: Journal,
    ckpt: CheckpointDir,
    every: usize,
}

impl ScanState {
    fn commit(&mut self, done: bool) -> Result<(), CliError> {
        let dir = self.ckpt.dir().display().to_string();
        self.findings_out.flush().map_err(|e| CliError::Runtime(format!("{dir}: {e}")))?;
        self.confidence_out.flush().map_err(|e| CliError::Runtime(format!("{dir}: {e}")))?;
        self.journal.cursor_rows = self.rows_scanned as u64;
        self.journal.set_counter("findings", self.findings.len() as u64);
        self.journal.set_output("findings.bin", Watermark::Bytes(self.findings_out.count()));
        self.journal.set_output("confidence.bits", Watermark::Bytes(self.confidence_out.count()));
        self.journal.done = done;
        self.ckpt.save(&self.journal).map_err(jerr)
    }

    /// Drain `batches`, spilling findings and confidences as they
    /// accumulate and committing every `every` batches. Returns the
    /// stream error, if any — complete batches before it are already
    /// committed.
    fn scan(&mut self, mut batches: impl BatchSource) -> Result<Option<AuditError>, CliError> {
        let mut record_buf = Vec::new();
        let mut since_commit = 0usize;
        loop {
            match batches.next_batch() {
                Ok(Some(batch)) => {
                    let (findings, confidences) = self.engine.scan_batch(&batch, self.rows_scanned);
                    self.rows_scanned += batch.n_rows();
                    record_buf.clear();
                    for f in &findings {
                        encode_finding(f, &mut record_buf);
                    }
                    self.findings_out
                        .write_all(&record_buf)
                        .map_err(|e| CliError::Runtime(format!("findings.bin: {e}")))?;
                    record_buf.clear();
                    for c in &confidences {
                        record_buf.extend_from_slice(&c.to_bits().to_le_bytes());
                    }
                    self.confidence_out
                        .write_all(&record_buf)
                        .map_err(|e| CliError::Runtime(format!("confidence.bits: {e}")))?;
                    self.findings.extend(findings);
                    self.confidences.extend(confidences);
                    since_commit += 1;
                    if since_commit >= self.every {
                        self.commit(false)?;
                        since_commit = 0;
                    }
                }
                Ok(None) => return Ok(None),
                // Commit the complete batches scanned so far: the
                // resume point is the failure's doorstep, not the last
                // periodic commit.
                Err(e) => {
                    self.commit(false)?;
                    return Ok(Some(e.into()));
                }
            }
        }
    }
}

/// `dq detect --checkpoint`: scan with a journal, spilling incremental
/// state to `findings.bin` + `confidence.bits` sidecars in the
/// checkpoint directory, and assemble the final report from the
/// accumulated parts — byte-identical to an uninterrupted scan.
#[allow(clippy::too_many_arguments)]
fn checkpointed(
    flags: &Flags,
    schema: std::sync::Arc<dq_table::Schema>,
    model: StructureModel,
    model_path: &str,
    input: &str,
    chunk_rows: usize,
    threads: Option<usize>,
    top: usize,
    ckpt_dir: &Path,
    resume: bool,
    every: usize,
) -> Result<(), CliError> {
    // The model bytes ARE the config: a model retrained between
    // incarnations changes every confidence, so its content hash (not
    // its path) anchors the fingerprint. `--threads`/`--top` are
    // excluded — they never change the scan's bytes.
    let model_bytes = std::fs::read(model_path).map_err(|e| format!("{model_path}: {e}"))?;
    let config = config_fingerprint(&[
        ("stage", "detect".to_string()),
        ("model", format!("{:016x}", fnv1a(&model_bytes))),
        ("chunk-rows", chunk_rows.to_string()),
        ("paged", Path::new(input).is_dir().to_string()),
    ]);
    let ckpt = CheckpointDir::create(ckpt_dir).map_err(jerr)?;
    let journal = match start_job(&ckpt, resume, "detect", config, schema.fingerprint())? {
        Start::Fresh => Journal::new("detect", config, schema.fingerprint()),
        Start::Resume(journal) => journal,
        Start::AlreadyDone => {
            say!("checkpoint {}: job is already done — nothing to resume", ckpt_dir.display());
            return Ok(());
        }
    };
    let resuming = journal.cursor_rows > 0 || journal.output("findings.bin").is_some();
    let findings_path = ckpt.dir().join("findings.bin");
    let confidence_path = ckpt.dir().join("confidence.bits");

    let cursor = journal.cursor_rows as usize;
    let (findings, confidences, findings_out, confidence_out);
    if resuming {
        let bytes_watermark = |name: &str| -> Result<u64, CliError> {
            match journal.output(name) {
                Some(Watermark::Bytes(n)) => Ok(n),
                _ => Err(CliError::Runtime(format!(
                    "journal has no byte watermark for sidecar `{name}`; refusing to resume"
                ))),
            }
        };
        let find_wm = bytes_watermark("findings.bin")?;
        let conf_wm = bytes_watermark("confidence.bits")?;
        if conf_wm != cursor as u64 * 8 {
            return Err(CliError::Runtime(format!(
                "confidence.bits watermark ({conf_wm} bytes) disagrees with the cursor \
                 ({cursor} rows); the checkpoint is inconsistent — refusing to resume"
            )));
        }
        let torn = |path: &Path, detail: String| {
            jerr(dq_job::JobError::Torn { path: path.display().to_string(), detail })
        };
        findings = decode_findings(&committed_sidecar(&findings_path, find_wm)?)
            .map_err(|detail| torn(&findings_path, detail))?;
        confidences = committed_sidecar(&confidence_path, conf_wm)?
            .chunks_exact(8)
            .map(|chunk| f64::from_bits(u64::from_le_bytes(chunk.try_into().expect("8 bytes"))))
            .collect::<Vec<f64>>();
        findings_out =
            CountingWriter::new(resume_file(&findings_path, find_wm).map_err(jerr)?, find_wm);
        confidence_out =
            CountingWriter::new(resume_file(&confidence_path, conf_wm).map_err(jerr)?, conf_wm);
    } else {
        findings = Vec::new();
        confidences = Vec::new();
        findings_out = CountingWriter::new(
            File::create(&findings_path)
                .map_err(|e| format!("{}: {e}", findings_path.display()))?,
            0,
        );
        confidence_out = CountingWriter::new(
            File::create(&confidence_path)
                .map_err(|e| format!("{}: {e}", confidence_path.display()))?,
            0,
        );
    }

    let engine = AuditEngine::new(model, schema.clone()).with_threads(threads);
    let mut state = ScanState {
        engine,
        findings,
        confidences,
        rows_scanned: cursor,
        findings_out,
        confidence_out,
        journal,
        ckpt,
        every,
    };
    // Cursor-zero (or restored-state) commit before scanning: a crash
    // anywhere after this leaves a journal to resume from.
    state.commit(false)?;

    let t0 = Instant::now();
    let stream_error = if Path::new(input).is_dir() {
        let paged = PagedTable::open(input, schema.clone()).map_err(|e| format!("{input}: {e}"))?;
        if cursor % paged.page_rows() != 0 {
            return Err(CliError::Runtime(format!(
                "cursor {cursor} is not a page boundary of {} ({}-row pages); the checkpoint \
                 does not belong to this spill — refusing to resume",
                input,
                paged.page_rows()
            )));
        }
        state.scan(paged.batches_from(cursor / paged.page_rows()))?
    } else {
        let file = File::open(input).map_err(|e| format!("{input}: {e}"))?;
        let mut batches = CsvChunkReader::new(schema.clone(), BufReader::new(file), chunk_rows)
            .map_err(|e| format!("{input}: {e}"))?;
        batches.skip_data_rows(cursor).map_err(|e| format!("{input}: {e}"))?;
        state.scan(batches)?
    };
    let secs = t0.elapsed().as_secs_f64();

    let report = state.engine.report_from_parts(state.findings.clone(), state.confidences.clone());
    if let Some(path) = flags.get("report") {
        write_file(Path::new(path), &report.to_csv(&schema))?;
    }
    if let Some(path) = flags.get("corrections") {
        let corrections = propose_corrections(&report);
        write_file(Path::new(path), &corrections_to_csv(&corrections, &schema))?;
    }
    if stream_error.is_none() {
        state.commit(true)?;
    }

    say!(
        "scanned {} rows in {secs:.2}s ({} per chunk{}): {} suspicious rows, {} findings at \
         min confidence {}",
        report.n_rows(),
        chunk_rows,
        if stream_error.is_some() { ", PARTIAL — the stream failed" } else { "" },
        report.n_suspicious(),
        report.findings.len(),
        report.min_confidence,
    );
    if top > 0 && !report.findings.is_empty() {
        say!("top findings:");
        say!("{}", report.render_top(&schema, top));
    }
    match stream_error {
        Some(e) => Err(CliError::Runtime(format!(
            "{input}: {e} (the report covers the {} complete rows before the failure; the \
             checkpoint in {} resumes from there)",
            report.n_rows(),
            ckpt_dir.display(),
        ))),
        None => Ok(()),
    }
}

/// The client mode: ship the CSV to a `dq serve` daemon and let its
/// resident model audit it. Backpressure is handled here so scripts
/// don't have to: queue-full `503`s retry with bounded backoff, a
/// draining server fails fast with its own message.
fn remote(flags: &Flags, server: &str) -> Result<(), CliError> {
    let name = flags.require("model-name")?;
    let input = flags.require("input")?;
    let retries: u32 = flags.parse_or("retries", RetryPolicy::default().max_attempts)?;
    for local in [
        "schema",
        "model",
        "corrections",
        "chunk-rows",
        "threads",
        "top",
        "quarantine",
        "max-bad-rows",
        "checkpoint",
        "checkpoint-every",
    ] {
        if flags.get(local).is_some() {
            return Err(CliError::Usage(format!(
                "--{local} is a local-audit flag; with --server the daemon's resident model \
                 does the scan\nusage: {USAGE}"
            )));
        }
    }
    if flags.has("resume") {
        return Err(CliError::Usage(format!(
            "--resume is a local-audit flag; with --server the daemon's resident model does \
             the scan\nusage: {USAGE}"
        )));
    }
    let addr = server
        .to_socket_addrs()
        .map_err(|e| format!("{server}: {e}"))?
        .next()
        .ok_or_else(|| format!("{server}: resolved to no address"))?;
    let body = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;

    let policy = RetryPolicy { max_attempts: retries.max(1), ..RetryPolicy::default() };
    let t0 = Instant::now();
    let response = post_with_retry(addr, &format!("/audit/{name}/stream"), &[], &body, &policy)
        .map_err(|e| format!("{server}: {e}"))?;
    let secs = t0.elapsed().as_secs_f64();

    match response.unavailable() {
        Some(Unavailable::Draining) => {
            return Err(CliError::Runtime(format!(
                "{server}: server is draining and refuses new audits — it is shutting down; \
                 point --server at another instance"
            )));
        }
        Some(Unavailable::QueueFull { retry_after }) => {
            let advice = match retry_after {
                Some(secs) => format!(" (server advises Retry-After: {secs}s)"),
                None => String::new(),
            };
            return Err(CliError::Runtime(format!(
                "{server}: connection queue full after {retries} attempt(s){advice} — \
                 the server is overloaded, retry later or raise --retries"
            )));
        }
        None => {}
    }
    if response.status != 200 {
        return Err(CliError::Runtime(format!(
            "{server}: HTTP {} — {}",
            response.status,
            response.body_str().trim_end()
        )));
    }

    let report_csv = response.body_str();
    match flags.get("report") {
        Some(path) => write_file(Path::new(path), report_csv)?,
        None => say!("{}", report_csv.trim_end()),
    }
    // Data rows in the report body (header excluded) are findings.
    let findings = report_csv.lines().skip(1).filter(|l| !l.is_empty()).count();
    say!("audited `{name}` on {server} in {secs:.2}s: {findings} finding(s)");
    Ok(())
}
