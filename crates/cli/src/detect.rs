//! `dq detect` — streaming deviation detection against a saved model.
//!
//! Three input shapes share one command:
//!
//! * a CSV file streams through [`dq_table::CsvChunkReader`] in
//!   `--chunk-rows` batches into
//!   [`dq_core::Auditor::detect_stream_partial`], so a file (much)
//!   larger than RAM audits at O(chunk) memory with a report
//!   byte-identical to the in-memory path;
//! * a *directory* as `--input` is opened as a
//!   [`dq_table::PagedTable`] spill (the `dq generate --paged-dirty`
//!   output) and scanned page by page — a torn or partially-committed
//!   spill is rejected up front with the manifest-level error instead
//!   of silently auditing a truncated relation;
//! * `--server ADDR --model-name NAME` skips the local model entirely
//!   and posts the CSV to a running `dq serve` daemon's
//!   `/audit/{name}/stream` endpoint via
//!   [`dq_serve::client::post_with_retry`] — queue-full `503`s back
//!   off and retry (honoring `Retry-After`), a *draining* server fails
//!   immediately with a distinct error, because it will not come back.
//!
//! A mid-stream failure (a bad CSV cell three million rows in) does
//! not discard the scan: the report and corrections files are written
//! over every complete chunk before the failure, the summary marks the
//! scan partial, and the error — carrying the table layer's 1-based
//! line number — goes to stderr with exit code 1.

use crate::args::{CliError, Flags};
use crate::io_util::{load_schema, say, write_file};
use dq_core::{corrections_to_csv, propose_corrections, AuditConfig, Auditor, StructureModel};
use dq_serve::client::{post_with_retry, RetryPolicy, Unavailable};
use dq_table::{CsvChunkReader, PagedTable};
use std::fs::File;
use std::io::BufReader;
use std::net::ToSocketAddrs;
use std::path::Path;
use std::time::Instant;

pub const USAGE: &str = "dq detect --schema F.dqs --model m.dqm --input data.csv|paged-dir \
[--report report.csv] [--corrections c.csv] [--chunk-rows N] [--threads N] [--top N]
       dq detect --server HOST:PORT --model-name NAME --input data.csv [--report report.csv] \
[--retries N]";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &[
            "schema",
            "model",
            "input",
            "report",
            "corrections",
            "chunk-rows",
            "threads",
            "top",
            "server",
            "model-name",
            "retries",
        ],
    )?;
    if let Some(server) = flags.get("server") {
        return remote(&flags, server);
    }
    let schema = load_schema(flags.require("schema")?)?;
    let model_path = flags.require("model")?;
    let model = StructureModel::load_from_path(&schema, model_path)
        .map_err(|e| format!("{model_path}: {e}"))?;
    let input = flags.require("input")?;
    let chunk_rows: usize = flags.parse_positive_or("chunk-rows", 4096)?;
    let threads = flags.parse_positive_opt("threads")?;
    let top: usize = flags.parse_or("top", 10)?;

    let auditor = Auditor::new(AuditConfig { threads: threads.into(), ..AuditConfig::default() });
    let t0 = Instant::now();
    // A directory is a paged spill; a file is a CSV stream. Opening the
    // spill validates its manifest first, so a torn commit (crash
    // mid-`finish`) fails here with the manifest's own error rather
    // than auditing a partial relation.
    let (report, stream_error) = if Path::new(input).is_dir() {
        let paged = PagedTable::open(input, schema.clone()).map_err(|e| format!("{input}: {e}"))?;
        auditor.detect_stream_partial(&model, paged.batches())
    } else {
        let file = File::open(input).map_err(|e| format!("{input}: {e}"))?;
        let batches = CsvChunkReader::new(schema.clone(), BufReader::new(file), chunk_rows)
            .map_err(|e| format!("{input}: {e}"))?;
        auditor.detect_stream_partial(&model, batches)
    };
    let secs = t0.elapsed().as_secs_f64();

    // Flush what was audited even when the stream failed mid-way: a
    // partial report over millions of clean rows beats an empty file.
    if let Some(path) = flags.get("report") {
        write_file(Path::new(path), &report.to_csv(&schema))?;
    }
    if let Some(path) = flags.get("corrections") {
        let corrections = propose_corrections(&report);
        write_file(Path::new(path), &corrections_to_csv(&corrections, &schema))?;
    }

    say!(
        "scanned {} rows in {secs:.2}s ({} per chunk{}): {} suspicious rows, {} findings at \
         min confidence {}",
        report.n_rows(),
        chunk_rows,
        if stream_error.is_some() { ", PARTIAL — the stream failed" } else { "" },
        report.n_suspicious(),
        report.findings.len(),
        report.min_confidence,
    );
    if top > 0 && !report.findings.is_empty() {
        say!("top findings:");
        say!("{}", report.render_top(&schema, top));
    }
    match stream_error {
        Some(e) => Err(CliError::Runtime(format!(
            "{input}: {e} (the report covers the {} complete rows before the failure)",
            report.n_rows()
        ))),
        None => Ok(()),
    }
}

/// The client mode: ship the CSV to a `dq serve` daemon and let its
/// resident model audit it. Backpressure is handled here so scripts
/// don't have to: queue-full `503`s retry with bounded backoff, a
/// draining server fails fast with its own message.
fn remote(flags: &Flags, server: &str) -> Result<(), CliError> {
    let name = flags.require("model-name")?;
    let input = flags.require("input")?;
    let retries: u32 = flags.parse_or("retries", RetryPolicy::default().max_attempts)?;
    for local in ["schema", "model", "corrections", "chunk-rows", "threads", "top"] {
        if flags.get(local).is_some() {
            return Err(CliError::Usage(format!(
                "--{local} is a local-audit flag; with --server the daemon's resident model \
                 does the scan\nusage: {USAGE}"
            )));
        }
    }
    let addr = server
        .to_socket_addrs()
        .map_err(|e| format!("{server}: {e}"))?
        .next()
        .ok_or_else(|| format!("{server}: resolved to no address"))?;
    let body = std::fs::read(input).map_err(|e| format!("{input}: {e}"))?;

    let policy = RetryPolicy { max_attempts: retries.max(1), ..RetryPolicy::default() };
    let t0 = Instant::now();
    let response = post_with_retry(addr, &format!("/audit/{name}/stream"), &[], &body, &policy)
        .map_err(|e| format!("{server}: {e}"))?;
    let secs = t0.elapsed().as_secs_f64();

    match response.unavailable() {
        Some(Unavailable::Draining) => {
            return Err(CliError::Runtime(format!(
                "{server}: server is draining and refuses new audits — it is shutting down; \
                 point --server at another instance"
            )));
        }
        Some(Unavailable::QueueFull { retry_after }) => {
            let advice = match retry_after {
                Some(secs) => format!(" (server advises Retry-After: {secs}s)"),
                None => String::new(),
            };
            return Err(CliError::Runtime(format!(
                "{server}: connection queue full after {retries} attempt(s){advice} — \
                 the server is overloaded, retry later or raise --retries"
            )));
        }
        None => {}
    }
    if response.status != 200 {
        return Err(CliError::Runtime(format!(
            "{server}: HTTP {} — {}",
            response.status,
            response.body_str().trim_end()
        )));
    }

    let report_csv = response.body_str();
    match flags.get("report") {
        Some(path) => write_file(Path::new(path), report_csv)?,
        None => say!("{}", report_csv.trim_end()),
    }
    // Data rows in the report body (header excluded) are findings.
    let findings = report_csv.lines().skip(1).filter(|l| !l.is_empty()).count();
    say!("audited `{name}` on {server} in {secs:.2}s: {findings} finding(s)");
    Ok(())
}
