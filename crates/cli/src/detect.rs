//! `dq detect` — streaming deviation detection against a saved model.
//!
//! The input CSV is never fully materialized: it flows through
//! [`dq_table::CsvChunkReader`] in `--chunk-rows` batches into
//! [`dq_core::Auditor::detect_stream_partial`], so a file (much)
//! larger than RAM audits at O(chunk) memory with a report
//! byte-identical to the in-memory path.
//!
//! A mid-stream failure (a bad CSV cell three million rows in) does
//! not discard the scan: the report and corrections files are written
//! over every complete chunk before the failure, the summary marks the
//! scan partial, and the error — carrying the table layer's 1-based
//! line number — goes to stderr with exit code 1.

use crate::args::{CliError, Flags};
use crate::io_util::{load_schema, say, write_file};
use dq_core::{corrections_to_csv, propose_corrections, AuditConfig, Auditor, StructureModel};
use dq_table::CsvChunkReader;
use std::fs::File;
use std::io::BufReader;
use std::path::Path;
use std::time::Instant;

pub const USAGE: &str = "dq detect --schema F.dqs --model m.dqm --input data.csv \
[--report report.csv] [--corrections c.csv] [--chunk-rows N] [--threads N] [--top N]";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &["schema", "model", "input", "report", "corrections", "chunk-rows", "threads", "top"],
    )?;
    let schema = load_schema(flags.require("schema")?)?;
    let model_path = flags.require("model")?;
    let model = StructureModel::load_from_path(&schema, model_path)
        .map_err(|e| format!("{model_path}: {e}"))?;
    let input = flags.require("input")?;
    let chunk_rows: usize = flags.parse_positive_or("chunk-rows", 4096)?;
    let threads = flags.parse_positive_opt("threads")?;
    let top: usize = flags.parse_or("top", 10)?;

    let file = File::open(input).map_err(|e| format!("{input}: {e}"))?;
    let batches = CsvChunkReader::new(schema.clone(), BufReader::new(file), chunk_rows)
        .map_err(|e| format!("{input}: {e}"))?;
    let auditor = Auditor::new(AuditConfig { threads: threads.into(), ..AuditConfig::default() });
    let t0 = Instant::now();
    let (report, stream_error) = auditor.detect_stream_partial(&model, batches);
    let secs = t0.elapsed().as_secs_f64();

    // Flush what was audited even when the stream failed mid-way: a
    // partial report over millions of clean rows beats an empty file.
    if let Some(path) = flags.get("report") {
        write_file(Path::new(path), &report.to_csv(&schema))?;
    }
    if let Some(path) = flags.get("corrections") {
        let corrections = propose_corrections(&report);
        write_file(Path::new(path), &corrections_to_csv(&corrections, &schema))?;
    }

    say!(
        "scanned {} rows in {secs:.2}s ({} per chunk{}): {} suspicious rows, {} findings at \
         min confidence {}",
        report.n_rows(),
        chunk_rows,
        if stream_error.is_some() { ", PARTIAL — the stream failed" } else { "" },
        report.n_suspicious(),
        report.findings.len(),
        report.min_confidence,
    );
    if top > 0 && !report.findings.is_empty() {
        say!("top findings:");
        say!("{}", report.render_top(&schema, top));
    }
    match stream_error {
        Some(e) => Err(CliError::Runtime(format!(
            "{input}: {e} (the report covers the {} complete rows before the failure)",
            report.n_rows()
        ))),
        None => Ok(()),
    }
}
