//! `dq generate` — write benchmark datasets (schema + clean + dirty +
//! ground-truth log) to a directory.

use crate::args::{CliError, Flags};
use crate::io_util::{log_to_csv, say, write_file, write_table};
use dq_eval::Baseline;
use dq_pollute::pollute;
use dq_quis::{generate_quis, QuisConfig};
use dq_table::render_schema;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

pub const USAGE: &str = "dq generate <tdg|quis> --out DIR [--rows N] [--seed N] [--factor X] \
                         [--rules N --threads N (tdg only)]";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let (kind, rest) = args
        .split_first()
        .ok_or_else(|| CliError::Usage(format!("generate needs a dataset kind\nusage: {USAGE}")))?;
    match kind.as_str() {
        "tdg" => tdg(rest),
        "quis" => quis(rest),
        other => Err(CliError::Usage(format!(
            "unknown dataset kind `{other}` (expected `tdg` or `quis`)"
        ))),
    }
}

/// The sec. 6.1 artificial benchmark: rule-structured data over the
/// 8-attribute baseline schema, polluted by the standard suite.
fn tdg(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["out", "rows", "rules", "seed", "factor", "threads"])?;
    let out = Path::new(flags.require("out")?).to_path_buf();
    let rows: usize = flags.parse_or("rows", 10_000)?;
    let rules: usize = flags.parse_or("rules", 30)?;
    let seed: u64 = flags.parse_or("seed", 2003)?;
    let factor: f64 = flags.parse_or("factor", 1.0)?;
    let threads: Option<usize> = flags.parse_positive_opt("threads")?;

    let baseline = Baseline::new(seed);
    let mut env = baseline.environment(rules, rows, factor);
    // Generation is byte-identical at any worker count (chunk-seeded
    // RNG streams), so the knob only changes wall-clock time.
    env.generator.data.threads = threads;
    let mut rng = StdRng::seed_from_u64(seed);
    let benchmark = env.generator.generate(&mut rng);
    let (dirty, log) = pollute(&benchmark.clean, &env.pollution, &mut rng);

    let schema = &benchmark.schema;
    write_file(&out.join("schema.dqs"), &render_schema(schema).map_err(|e| e.to_string())?)?;
    write_table(&benchmark.clean, &out.join("clean.csv"))?;
    write_table(&dirty, &out.join("dirty.csv"))?;
    write_file(&out.join("pollution-log.csv"), &log_to_csv(&log, schema))?;
    let rules_text: String = benchmark.rules.iter().map(|r| r.render(schema) + "\n").collect();
    write_file(&out.join("rules.txt"), &rules_text)?;

    say!(
        "generated tdg benchmark in {}: {} clean rows, {} dirty rows ({} corrupted), {} rules",
        out.display(),
        benchmark.clean.n_rows(),
        dirty.n_rows(),
        log.n_corrupted_rows(),
        benchmark.rules.len(),
    );
    say!("files: schema.dqs clean.csv dirty.csv pollution-log.csv rules.txt");
    Ok(())
}

/// The sec. 6.2 QUIS-like engine-composition benchmark.
fn quis(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["out", "rows", "seed", "factor"])?;
    let out = Path::new(flags.require("out")?).to_path_buf();
    let rows: usize = flags.parse_or("rows", 200_000)?;
    let seed: u64 = flags.parse_or("seed", 2003)?;
    let factor: f64 = flags.parse_or("factor", 1.0)?;

    let mut cfg = QuisConfig::default().with_rows(rows);
    cfg.pollution.factor = factor;
    let b = generate_quis(&cfg, &mut StdRng::seed_from_u64(seed));

    let schema = b.clean.schema().clone();
    write_file(&out.join("schema.dqs"), &render_schema(&schema).map_err(|e| e.to_string())?)?;
    write_table(&b.clean, &out.join("clean.csv"))?;
    write_table(&b.dirty, &out.join("dirty.csv"))?;
    write_file(&out.join("pollution-log.csv"), &log_to_csv(&b.log, &schema))?;

    say!(
        "generated quis benchmark in {}: {} clean rows, {} dirty rows ({} corrupted)",
        out.display(),
        b.clean.n_rows(),
        b.dirty.n_rows(),
        b.log.n_corrupted_rows(),
    );
    say!("files: schema.dqs clean.csv dirty.csv pollution-log.csv");
    Ok(())
}
