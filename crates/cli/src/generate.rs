//! `dq generate` — write benchmark datasets (schema + clean + dirty +
//! ground-truth log) to a directory.

use crate::args::{CliError, Flags};
use crate::io_util::{at, create_file, log_to_csv, say, write_file, write_table};
use dq_eval::{Baseline, TestEnvironment};
use dq_pollute::{pollute, PolluteStream};
use dq_quis::{generate_quis, QuisConfig};
use dq_table::{render_schema, BatchSource, CsvWriter, PagedWriter, Schema, Table, TableError};
use dq_tdg::{generate_rule_set, GenerateStream};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

pub const USAGE: &str = "dq generate <tdg|quis> --out DIR [--rows N] [--seed N] [--factor X] \
                         [--threads N] [--rules N --stream-chunk-rows N --paged-dirty DIR (tdg \
                         only)]";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let (kind, rest) = args
        .split_first()
        .ok_or_else(|| CliError::Usage(format!("generate needs a dataset kind\nusage: {USAGE}")))?;
    match kind.as_str() {
        "tdg" => tdg(rest),
        "quis" => quis(rest),
        other => Err(CliError::Usage(format!(
            "unknown dataset kind `{other}` (expected `tdg` or `quis`)"
        ))),
    }
}

/// The sec. 6.1 artificial benchmark: rule-structured data over the
/// 8-attribute baseline schema, polluted by the standard suite.
fn tdg(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &["out", "rows", "rules", "seed", "factor", "threads", "stream-chunk-rows", "paged-dirty"],
    )?;
    let out = Path::new(flags.require("out")?).to_path_buf();
    let rows: usize = flags.parse_or("rows", 10_000)?;
    let rules: usize = flags.parse_or("rules", 30)?;
    let seed: u64 = flags.parse_or("seed", 2003)?;
    let factor: f64 = flags.parse_or("factor", 1.0)?;
    let threads: Option<usize> = flags.parse_positive_opt("threads")?;
    let stream_chunk_rows: Option<usize> = flags.parse_positive_opt("stream-chunk-rows")?;
    let paged_dirty = flags.get("paged-dirty").map(|d| Path::new(d).to_path_buf());

    let baseline = Baseline::new(seed);
    let mut env = baseline.environment(rules, rows, factor);
    // Generation is byte-identical at any worker count (chunk-seeded
    // RNG streams), so the knob only changes wall-clock time.
    env.generator.data.threads = threads.into();
    if let Some(chunk_rows) = stream_chunk_rows {
        return tdg_streamed(&env, &out, seed, chunk_rows, paged_dirty.as_deref());
    }
    if paged_dirty.is_some() {
        return Err(CliError::Usage(format!(
            "--paged-dirty spills during streaming; it needs --stream-chunk-rows\nusage: {USAGE}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let benchmark = env.generator.generate(&mut rng);
    let (dirty, log) = pollute(&benchmark.clean, &env.pollution, &mut rng);

    let schema = &benchmark.schema;
    write_file(&out.join("schema.dqs"), &render_schema(schema).map_err(|e| e.to_string())?)?;
    write_table(&benchmark.clean, &out.join("clean.csv"))?;
    write_table(&dirty, &out.join("dirty.csv"))?;
    write_file(&out.join("pollution-log.csv"), &log_to_csv(&log, schema))?;
    let rules_text: String = benchmark.rules.iter().map(|r| r.render(schema) + "\n").collect();
    write_file(&out.join("rules.txt"), &rules_text)?;

    say!(
        "generated tdg benchmark in {}: {} clean rows, {} dirty rows ({} corrupted), {} rules",
        out.display(),
        benchmark.clean.n_rows(),
        dirty.n_rows(),
        log.n_corrupted_rows(),
        benchmark.rules.len(),
    );
    say!("files: schema.dqs clean.csv dirty.csv pollution-log.csv rules.txt");
    Ok(())
}

/// A [`BatchSource`] pass-through that appends every batch to a CSV
/// writer — how the streamed pipeline writes `clean.csv` while
/// pollution consumes the very same batches, in one pass.
struct TeeCsv<S, W: Write> {
    inner: S,
    writer: CsvWriter<W>,
    done: bool,
}

impl<S: BatchSource, W: Write> BatchSource for TeeCsv<S, W> {
    fn schema(&self) -> &Arc<Schema> {
        self.inner.schema()
    }

    fn next_batch(&mut self) -> Result<Option<Table>, TableError> {
        if self.done {
            return Ok(None);
        }
        match self.inner.next_batch() {
            Ok(Some(batch)) => {
                if let Err(e) = self.writer.write_batch(&batch) {
                    self.done = true;
                    return Err(e);
                }
                Ok(Some(batch))
            }
            Ok(None) => {
                self.done = true;
                Ok(None)
            }
            Err(e) => {
                self.done = true;
                Err(e)
            }
        }
    }

    fn rows_emitted(&self) -> usize {
        self.inner.rows_emitted()
    }

    fn row_count_hint(&self) -> Option<usize> {
        self.inner.row_count_hint()
    }
}

/// The O(chunk)-memory tdg path: rule generation as usual, then the
/// clean table streams from [`GenerateStream`] through a clean-CSV
/// tee into [`PolluteStream`] and out to the dirty CSV — one pass,
/// never holding more than a few chunks. Byte-identical to the
/// in-memory path at every `--stream-chunk-rows`/`--threads` setting:
/// generation is chunk-seeded, pollution consumes its RNG in
/// clean-row order, and [`CsvWriter`] streams exactly what
/// `write_table` materializes.
fn tdg_streamed(
    env: &TestEnvironment,
    out: &Path,
    seed: u64,
    chunk_rows: usize,
    paged_dirty: Option<&Path>,
) -> Result<(), CliError> {
    let schema = env.generator.schema.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let (rules, _rule_report) = generate_rule_set(&schema, &env.generator.rules, &mut rng);

    write_file(&out.join("schema.dqs"), &render_schema(&schema).map_err(|e| e.to_string())?)?;
    let rules_text: String = rules.iter().map(|r| r.render(&schema) + "\n").collect();
    write_file(&out.join("rules.txt"), &rules_text)?;

    let generator =
        GenerateStream::new(schema.clone(), rules.clone(), env.generator.data.clone(), &mut rng)
            .with_batch_rows(chunk_rows);
    let clean_path = out.join("clean.csv");
    let clean_writer = CsvWriter::new(schema.clone(), create_file(&clean_path)?)
        .map_err(|e| at(&clean_path, e))?;
    let dirty_path = out.join("dirty.csv");
    let mut dirty_writer = CsvWriter::new(schema.clone(), create_file(&dirty_path)?)
        .map_err(|e| at(&dirty_path, e))?;

    // The optional paged spill writes the dirty relation a second
    // time, page by page as batches stream past — the out-of-core
    // form `dq detect --input DIR` reopens. Its manifest only commits
    // in `finish()`, so a crash mid-stream leaves a directory
    // `PagedTable::open` rejects instead of a silently short table.
    let mut paged_writer = match paged_dirty {
        Some(dir) => {
            Some(PagedWriter::create(dir, schema.clone(), chunk_rows).map_err(|e| at(dir, e))?)
        }
        None => None,
    };
    let tee = TeeCsv { inner: generator, writer: clean_writer, done: false };
    let mut stream = PolluteStream::new(tee, env.pollution.clone(), &mut rng);
    let mut dirty_rows = 0usize;
    loop {
        match stream.next_batch() {
            Ok(Some(batch)) => {
                dirty_writer.write_batch(&batch).map_err(|e| at(&dirty_path, e))?;
                if let Some(w) = paged_writer.as_mut() {
                    w.append_batch(&batch)
                        .map_err(|e| at(paged_dirty.expect("writer implies dir"), e))?;
                }
                dirty_rows += batch.n_rows();
            }
            Ok(None) => break,
            Err(e) => return Err(CliError::Runtime(format!("streamed generation: {e}"))),
        }
    }
    dirty_writer.finish().map_err(|e| at(&dirty_path, e))?;
    if let Some(w) = paged_writer {
        let dir = paged_dirty.expect("writer implies dir");
        w.finish().map_err(|e| at(dir, e))?;
        say!("spilled dirty relation to paged directory {}", dir.display());
    }
    let clean_rows = stream.clean_rows_seen();
    let (tee, log) = stream.into_parts();
    tee.writer.finish().map_err(|e| at(&clean_path, e))?;
    write_file(&out.join("pollution-log.csv"), &log_to_csv(&log, &schema))?;

    say!(
        "generated tdg benchmark in {} (streamed, {chunk_rows}-row chunks): {} clean rows, \
         {} dirty rows ({} corrupted), {} rules",
        out.display(),
        clean_rows,
        dirty_rows,
        log.n_corrupted_rows(),
        rules.len(),
    );
    say!("files: schema.dqs clean.csv dirty.csv pollution-log.csv rules.txt");
    Ok(())
}

/// The sec. 6.2 QUIS-like engine-composition benchmark.
fn quis(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["out", "rows", "seed", "factor", "threads"])?;
    let out = Path::new(flags.require("out")?).to_path_buf();
    let rows: usize = flags.parse_or("rows", 200_000)?;
    let seed: u64 = flags.parse_or("seed", 2003)?;
    let factor: f64 = flags.parse_or("factor", 1.0)?;
    // The QUIS generator is one sequential RNG walk; the flag is
    // validated for CLI uniformity only.
    let _threads: Option<usize> = flags.parse_positive_opt("threads")?;

    let mut cfg = QuisConfig::default().with_rows(rows);
    cfg.pollution.factor = factor;
    let b = generate_quis(&cfg, &mut StdRng::seed_from_u64(seed));

    let schema = b.clean.schema().clone();
    write_file(&out.join("schema.dqs"), &render_schema(&schema).map_err(|e| e.to_string())?)?;
    write_table(&b.clean, &out.join("clean.csv"))?;
    write_table(&b.dirty, &out.join("dirty.csv"))?;
    write_file(&out.join("pollution-log.csv"), &log_to_csv(&b.log, &schema))?;

    say!(
        "generated quis benchmark in {}: {} clean rows, {} dirty rows ({} corrupted)",
        out.display(),
        b.clean.n_rows(),
        b.dirty.n_rows(),
        b.log.n_corrupted_rows(),
    );
    say!("files: schema.dqs clean.csv dirty.csv pollution-log.csv");
    Ok(())
}
