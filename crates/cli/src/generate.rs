//! `dq generate` — write benchmark datasets (schema + clean + dirty +
//! ground-truth log) to a directory.

use crate::args::{CliError, Flags};
use crate::checkpoint::{config_fingerprint, jerr, start_job, Start};
use crate::io_util::{at, create_file, log_to_csv, say, write_file, write_table};
use dq_eval::{Baseline, TestEnvironment};
use dq_job::{resume_file, CheckpointDir, CountingWriter, Journal, Watermark};
use dq_pollute::{pollute, PolluteStream, CELLS_CSV_HEADER};
use dq_quis::{generate_quis, QuisConfig};
use dq_table::{
    render_schema, BatchSource, CsvChunkReader, CsvWriter, PagedWriter, Schema, Table, TableError,
};
use dq_tdg::{generate_rule_set, GenerateStream};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs::File;
use std::io::{BufReader, Write};
use std::path::Path;
use std::sync::Arc;

pub const USAGE: &str = "dq generate <tdg|quis> --out DIR [--rows N] [--seed N] [--factor X] \
                         [--threads N] [--rules N --stream-chunk-rows N --paged-dirty DIR \
                         --checkpoint DIR --resume --checkpoint-every N (tdg only)]";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let (kind, rest) = args
        .split_first()
        .ok_or_else(|| CliError::Usage(format!("generate needs a dataset kind\nusage: {USAGE}")))?;
    match kind.as_str() {
        "tdg" => tdg(rest),
        "quis" => quis(rest),
        other => Err(CliError::Usage(format!(
            "unknown dataset kind `{other}` (expected `tdg` or `quis`)"
        ))),
    }
}

/// Checkpointing knobs of a streamed generate run.
struct CkptOpts {
    dir: std::path::PathBuf,
    resume: bool,
    /// Commit a journal every this many dirty batches.
    every: usize,
    /// Fingerprint of the flags that shape the output bytes.
    config: u64,
}

/// The sec. 6.1 artificial benchmark: rule-structured data over the
/// 8-attribute baseline schema, polluted by the standard suite.
fn tdg(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse_with_switches(
        args,
        &[
            "out",
            "rows",
            "rules",
            "seed",
            "factor",
            "threads",
            "stream-chunk-rows",
            "paged-dirty",
            "checkpoint",
            "checkpoint-every",
        ],
        &["resume"],
    )?;
    let out = Path::new(flags.require("out")?).to_path_buf();
    let rows: usize = flags.parse_or("rows", 10_000)?;
    let rules: usize = flags.parse_or("rules", 30)?;
    let seed: u64 = flags.parse_or("seed", 2003)?;
    let factor: f64 = flags.parse_or("factor", 1.0)?;
    let threads: Option<usize> = flags.parse_positive_opt("threads")?;
    let stream_chunk_rows: Option<usize> = flags.parse_positive_opt("stream-chunk-rows")?;
    let paged_dirty = flags.get("paged-dirty").map(|d| Path::new(d).to_path_buf());
    let checkpoint = flags.get("checkpoint").map(|d| Path::new(d).to_path_buf());
    let checkpoint_every: usize = flags.parse_positive_or("checkpoint-every", 16)?;
    let resume = flags.has("resume");
    if (resume || flags.get("checkpoint-every").is_some()) && checkpoint.is_none() {
        return Err(CliError::Usage(format!(
            "--resume/--checkpoint-every need --checkpoint DIR\nusage: {USAGE}"
        )));
    }

    let baseline = Baseline::new(seed);
    let mut env = baseline.environment(rules, rows, factor);
    // Generation is byte-identical at any worker count (chunk-seeded
    // RNG streams), so the knob only changes wall-clock time.
    env.generator.data.threads = threads.into();
    if let Some(chunk_rows) = stream_chunk_rows {
        // The config fingerprint covers exactly the flags that shape
        // the output bytes; `--threads` is excluded on purpose
        // (resuming under a different worker count is safe).
        let ckpt = checkpoint.map(|dir| CkptOpts {
            dir,
            resume,
            every: checkpoint_every,
            config: config_fingerprint(&[
                ("stage", "generate tdg".into()),
                ("rows", rows.to_string()),
                ("rules", rules.to_string()),
                ("seed", seed.to_string()),
                ("factor", factor.to_string()),
                ("chunk-rows", chunk_rows.to_string()),
                ("paged", paged_dirty.is_some().to_string()),
            ]),
        });
        return tdg_streamed(&env, &out, seed, chunk_rows, paged_dirty.as_deref(), ckpt);
    }
    if paged_dirty.is_some() {
        return Err(CliError::Usage(format!(
            "--paged-dirty spills during streaming; it needs --stream-chunk-rows\nusage: {USAGE}"
        )));
    }
    if checkpoint.is_some() {
        return Err(CliError::Usage(format!(
            "--checkpoint journals the streamed path; it needs --stream-chunk-rows\nusage: {USAGE}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let benchmark = env.generator.generate(&mut rng);
    let (dirty, log) = pollute(&benchmark.clean, &env.pollution, &mut rng);

    let schema = &benchmark.schema;
    write_file(&out.join("schema.dqs"), &render_schema(schema).map_err(|e| e.to_string())?)?;
    write_table(&benchmark.clean, &out.join("clean.csv"))?;
    write_table(&dirty, &out.join("dirty.csv"))?;
    write_file(&out.join("pollution-log.csv"), &log_to_csv(&log, schema))?;
    let rules_text: String = benchmark.rules.iter().map(|r| r.render(schema) + "\n").collect();
    write_file(&out.join("rules.txt"), &rules_text)?;

    say!(
        "generated tdg benchmark in {}: {} clean rows, {} dirty rows ({} corrupted), {} rules",
        out.display(),
        benchmark.clean.n_rows(),
        dirty.n_rows(),
        log.n_corrupted_rows(),
        benchmark.rules.len(),
    );
    say!("files: schema.dqs clean.csv dirty.csv pollution-log.csv rules.txt");
    Ok(())
}

/// A [`BatchSource`] pass-through that appends every batch to a CSV
/// writer — how the streamed pipeline writes `clean.csv` while
/// pollution consumes the very same batches, in one pass.
struct TeeCsv<S, W: Write> {
    inner: S,
    writer: CsvWriter<W>,
    done: bool,
}

impl<S: BatchSource, W: Write> BatchSource for TeeCsv<S, W> {
    fn schema(&self) -> &Arc<Schema> {
        self.inner.schema()
    }

    fn next_batch(&mut self) -> Result<Option<Table>, TableError> {
        if self.done {
            return Ok(None);
        }
        match self.inner.next_batch() {
            Ok(Some(batch)) => {
                if let Err(e) = self.writer.write_batch(&batch) {
                    self.done = true;
                    return Err(e);
                }
                Ok(Some(batch))
            }
            Ok(None) => {
                self.done = true;
                Ok(None)
            }
            Err(e) => {
                self.done = true;
                Err(e)
            }
        }
    }

    fn rows_emitted(&self) -> usize {
        self.inner.rows_emitted()
    }

    fn row_count_hint(&self) -> Option<usize> {
        self.inner.row_count_hint()
    }
}

/// The concrete stream of the streamed tdg path: generator → clean-CSV
/// tee → pollution, with every flat output behind a byte counter.
type CleanTee = TeeCsv<GenerateStream, CountingWriter<File>>;
type TdgStream = PolluteStream<CleanTee, StdRng>;

/// Flush every flat writer (their bytes reach the kernel) and commit a
/// journal vouching for exactly what was flushed — the commit protocol
/// of `dq_job`. `corrupted_base` carries the corrupted-row count of
/// previous incarnations (the in-memory log only covers this one).
#[allow(clippy::too_many_arguments)]
fn commit_generate(
    ckpt: &mut CheckpointDir,
    journal: &mut Journal,
    stream: &mut TdgStream,
    dirty_writer: &mut CsvWriter<CountingWriter<File>>,
    log_out: &mut CountingWriter<File>,
    paged_pages: Option<u64>,
    corrupted_base: u64,
    paths: (&Path, &Path, &Path),
    done: bool,
) -> Result<(), CliError> {
    let (clean_path, dirty_path, log_path) = paths;
    stream.source_mut().writer.flush().map_err(|e| at(clean_path, e))?;
    dirty_writer.flush().map_err(|e| at(dirty_path, e))?;
    log_out.flush().map_err(|e| at(log_path, e))?;
    journal.cursor_rows = stream.clean_rows_seen() as u64;
    journal.rng = Some(stream.rng().state());
    journal.set_counter("dirty_rows", stream.rows_emitted() as u64);
    journal.set_counter("corrupted_rows", corrupted_base + stream.log().n_corrupted_rows() as u64);
    journal.set_output("clean.csv", Watermark::Bytes(stream.source_mut().writer.get_ref().count()));
    journal.set_output("dirty.csv", Watermark::Bytes(dirty_writer.get_ref().count()));
    journal.set_output("pollution-log.csv", Watermark::Bytes(log_out.count()));
    if let Some(pages) = paged_pages {
        journal.set_output("paged", Watermark::Pages(pages));
    }
    journal.done = done;
    ckpt.save(journal).map_err(jerr)
}

/// The O(chunk)-memory tdg path: rule generation as usual, then the
/// clean table streams from [`GenerateStream`] through a clean-CSV
/// tee into [`PolluteStream`] and out to the dirty CSV — one pass,
/// never holding more than a few chunks. Byte-identical to the
/// in-memory path at every `--stream-chunk-rows`/`--threads` setting:
/// generation is chunk-seeded, pollution consumes its RNG in
/// clean-row order, and [`CsvWriter`] streams exactly what
/// `write_table` materializes.
///
/// With `--checkpoint DIR` the run journals its progress (clean-row
/// cursor, pollution-RNG state, per-output byte/page watermarks) at
/// every `--checkpoint-every`-batch boundary; `--resume` continues a
/// killed run from the journal, producing outputs byte-identical to an
/// uninterrupted one — see `dq_job` for the protocol.
fn tdg_streamed(
    env: &TestEnvironment,
    out: &Path,
    seed: u64,
    chunk_rows: usize,
    paged_dirty: Option<&Path>,
    ckpt_opts: Option<CkptOpts>,
) -> Result<(), CliError> {
    let schema = env.generator.schema.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let (rules, _rule_report) = generate_rule_set(&schema, &env.generator.rules, &mut rng);

    // Start decision: fresh, resume, or nothing left to do.
    let mut ckpt = None;
    let mut resumed: Option<Journal> = None;
    if let Some(opts) = &ckpt_opts {
        let dir = CheckpointDir::create(&opts.dir).map_err(jerr)?;
        match start_job(&dir, opts.resume, "generate", opts.config, schema.fingerprint())? {
            Start::Fresh => {}
            Start::Resume(journal) => resumed = Some(journal),
            Start::AlreadyDone => {
                say!("checkpoint {}: job is already done — nothing to resume", opts.dir.display());
                return Ok(());
            }
        }
        ckpt = Some(dir);
    }

    // The small artifacts are pure functions of config+seed: rewriting
    // them on resume reproduces the same bytes.
    write_file(&out.join("schema.dqs"), &render_schema(&schema).map_err(|e| e.to_string())?)?;
    let rules_text: String = rules.iter().map(|r| r.render(&schema) + "\n").collect();
    write_file(&out.join("rules.txt"), &rules_text)?;

    let mut generator =
        GenerateStream::new(schema.clone(), rules.clone(), env.generator.data.clone(), &mut rng)
            .with_batch_rows(chunk_rows);
    let clean_path = out.join("clean.csv");
    let dirty_path = out.join("dirty.csv");
    let log_path = out.join("pollution-log.csv");
    let bytes_watermark = |journal: &Journal, name: &str| -> Result<u64, CliError> {
        match journal.output(name) {
            Some(Watermark::Bytes(n)) => Ok(n),
            _ => Err(CliError::Runtime(format!(
                "journal has no byte watermark for output `{name}`; refusing to resume"
            ))),
        }
    };

    // Open every output either fresh or at its journaled watermark,
    // and position the streams at the journal's cursor.
    let cursor;
    let dirty_base;
    let corrupted_base;
    let prng;
    let clean_writer;
    let mut dirty_writer;
    let mut log_out;
    let mut paged_writer;
    match &resumed {
        None => {
            cursor = 0;
            dirty_base = 0;
            corrupted_base = 0;
            // Hand pollution its own RNG at exactly the state the
            // borrowed one reached — the byte-identical continuation
            // of the in-memory path's single RNG walk.
            prng = StdRng::from_state(rng.state());
            clean_writer =
                CsvWriter::new(schema.clone(), CountingWriter::new(create_file(&clean_path)?, 0))
                    .map_err(|e| at(&clean_path, e))?;
            dirty_writer =
                CsvWriter::new(schema.clone(), CountingWriter::new(create_file(&dirty_path)?, 0))
                    .map_err(|e| at(&dirty_path, e))?;
            let mut header_out = CountingWriter::new(create_file(&log_path)?, 0);
            header_out.write_all(CELLS_CSV_HEADER.as_bytes()).map_err(|e| at(&log_path, e))?;
            log_out = header_out;
            paged_writer = match paged_dirty {
                Some(dir) => Some(
                    PagedWriter::create(dir, schema.clone(), chunk_rows).map_err(|e| at(dir, e))?,
                ),
                None => None,
            };
        }
        Some(journal) => {
            cursor = journal.cursor_rows as usize;
            dirty_base = journal.counter("dirty_rows").unwrap_or(0) as usize;
            corrupted_base = journal.counter("corrupted_rows").unwrap_or(0);
            let state = journal.rng.ok_or_else(|| {
                CliError::Runtime("journal records no rng state; refusing to resume".to_string())
            })?;
            prng = StdRng::from_state(state);
            generator
                .seek_to_row(cursor)
                .map_err(|e| CliError::Runtime(format!("seeking generator: {e}")))?;
            let clean_wm = bytes_watermark(journal, "clean.csv")?;
            clean_writer = CsvWriter::append(
                schema.clone(),
                CountingWriter::new(resume_file(&clean_path, clean_wm).map_err(jerr)?, clean_wm),
            );
            let dirty_wm = bytes_watermark(journal, "dirty.csv")?;
            dirty_writer = CsvWriter::append(
                schema.clone(),
                CountingWriter::new(resume_file(&dirty_path, dirty_wm).map_err(jerr)?, dirty_wm),
            );
            let log_wm = bytes_watermark(journal, "pollution-log.csv")?;
            log_out = CountingWriter::new(resume_file(&log_path, log_wm).map_err(jerr)?, log_wm);
            paged_writer = match paged_dirty {
                Some(dir) => {
                    let pages = match journal.output("paged") {
                        Some(Watermark::Pages(n)) => n as usize,
                        _ => {
                            return Err(CliError::Runtime(
                                "journal has no page watermark for the paged spill; \
                                 refusing to resume"
                                    .to_string(),
                            ));
                        }
                    };
                    let mut writer = PagedWriter::resume(dir, schema.clone(), chunk_rows, pages)
                        .map_err(|e| at(dir, e))?;
                    // The spill's partial page died with the process;
                    // refill it from the committed dirty.csv tail
                    // (already truncated to its watermark above).
                    let committed = pages * chunk_rows;
                    if dirty_base > committed {
                        let tail = File::open(&dirty_path).map_err(|e| at(&dirty_path, e))?;
                        let mut reader =
                            CsvChunkReader::new(schema.clone(), BufReader::new(tail), chunk_rows)
                                .map_err(|e| at(&dirty_path, e))?;
                        reader.skip_data_rows(committed).map_err(|e| at(&dirty_path, e))?;
                        while let Some(batch) =
                            reader.next_batch().map_err(|e| at(&dirty_path, e))?
                        {
                            writer.append_batch(&batch).map_err(|e| at(dir, e))?;
                        }
                        if writer.n_pages() != pages
                            || writer.pending_rows() != dirty_base - committed
                        {
                            return Err(CliError::Runtime(format!(
                                "{}: refilled {} pending rows over {} pages, journal expected \
                                 {} over {} — dirty.csv disagrees with the journal",
                                dir.display(),
                                writer.pending_rows(),
                                writer.n_pages(),
                                dirty_base - committed,
                                pages,
                            )));
                        }
                    }
                    Some(writer)
                }
                None => None,
            };
        }
    }

    let tee = TeeCsv { inner: generator, writer: clean_writer, done: false };
    let mut stream: TdgStream =
        PolluteStream::resume(tee, env.pollution.clone(), prng, cursor, dirty_base);
    let mut journal = match resumed {
        Some(journal) => journal,
        None => Journal::new(
            "generate",
            ckpt_opts.as_ref().map_or(0, |o| o.config),
            schema.fingerprint(),
        ),
    };
    let every = ckpt_opts.as_ref().map_or(usize::MAX, |o| o.every);
    let paths = (clean_path.as_path(), dirty_path.as_path(), log_path.as_path());

    // Commit before the first batch: a fresh run gets a cursor-zero
    // journal (so a crash anywhere leaves something to resume), a
    // resumed run re-commits the state it restored.
    if let Some(dir) = ckpt.as_mut() {
        let pages = paged_writer.as_ref().map(|w| w.n_pages() as u64);
        commit_generate(
            dir,
            &mut journal,
            &mut stream,
            &mut dirty_writer,
            &mut log_out,
            pages,
            corrupted_base,
            paths,
            false,
        )?;
    }

    let mut cells_rendered = 0usize;
    let mut batches_since_commit = 0usize;
    let mut cells_buf = String::new();
    loop {
        match stream.next_batch() {
            Ok(Some(batch)) => {
                dirty_writer.write_batch(&batch).map_err(|e| at(&dirty_path, e))?;
                if let Some(w) = paged_writer.as_mut() {
                    w.append_batch(&batch)
                        .map_err(|e| at(paged_dirty.expect("writer implies dir"), e))?;
                }
                // Stream the ground-truth log as it accumulates; the
                // concatenation is byte-identical to a one-shot
                // rendering at the end.
                cells_buf.clear();
                stream.log().render_cells_csv(&schema, cells_rendered, &mut cells_buf);
                cells_rendered = stream.log().cells.len();
                log_out.write_all(cells_buf.as_bytes()).map_err(|e| at(&log_path, e))?;
                batches_since_commit += 1;
                if batches_since_commit >= every {
                    if let Some(dir) = ckpt.as_mut() {
                        let pages = paged_writer.as_ref().map(|w| w.n_pages() as u64);
                        commit_generate(
                            dir,
                            &mut journal,
                            &mut stream,
                            &mut dirty_writer,
                            &mut log_out,
                            pages,
                            corrupted_base,
                            paths,
                            false,
                        )?;
                    }
                    batches_since_commit = 0;
                }
            }
            Ok(None) => break,
            Err(e) => {
                return Err(CliError::Runtime(format!(
                    "{}: streamed generation: {e}",
                    clean_path.display()
                )));
            }
        }
    }
    dirty_writer.flush().map_err(|e| at(&dirty_path, e))?;
    let dirty_bytes = dirty_writer.get_ref().count();
    dirty_writer.finish().map_err(|e| at(&dirty_path, e))?;
    let mut paged_pages = None;
    if let Some(w) = paged_writer {
        let dir = paged_dirty.expect("writer implies dir");
        let spilled = w.finish().map_err(|e| at(dir, e))?;
        paged_pages = Some(spilled.n_pages() as u64);
        say!("spilled dirty relation to paged directory {}", dir.display());
    }
    let clean_rows = stream.clean_rows_seen();
    let dirty_rows = stream.rows_emitted();
    let corrupted = corrupted_base + stream.log().n_corrupted_rows() as u64;
    let rng_state = stream.rng().state();
    let (tee, _log) = stream.into_parts();
    let mut clean_writer = tee.writer;
    clean_writer.flush().map_err(|e| at(&clean_path, e))?;
    let clean_bytes = clean_writer.get_ref().count();
    clean_writer.finish().map_err(|e| at(&clean_path, e))?;
    log_out.flush().map_err(|e| at(&log_path, e))?;

    // The closing commit: everything is on disk, mark the job done so
    // a re-resume is a no-op instead of a re-run.
    if let Some(dir) = ckpt.as_mut() {
        journal.cursor_rows = clean_rows as u64;
        journal.rng = Some(rng_state);
        journal.set_counter("dirty_rows", dirty_rows as u64);
        journal.set_counter("corrupted_rows", corrupted);
        journal.set_output("clean.csv", Watermark::Bytes(clean_bytes));
        journal.set_output("dirty.csv", Watermark::Bytes(dirty_bytes));
        journal.set_output("pollution-log.csv", Watermark::Bytes(log_out.count()));
        if let Some(pages) = paged_pages {
            journal.set_output("paged", Watermark::Pages(pages));
        }
        journal.done = true;
        dir.save(&journal).map_err(jerr)?;
    }

    say!(
        "generated tdg benchmark in {} (streamed, {chunk_rows}-row chunks): {} clean rows, \
         {} dirty rows ({} corrupted), {} rules",
        out.display(),
        clean_rows,
        dirty_rows,
        corrupted,
        rules.len(),
    );
    say!("files: schema.dqs clean.csv dirty.csv pollution-log.csv rules.txt");
    Ok(())
}

/// The sec. 6.2 QUIS-like engine-composition benchmark.
fn quis(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["out", "rows", "seed", "factor", "threads"])?;
    let out = Path::new(flags.require("out")?).to_path_buf();
    let rows: usize = flags.parse_or("rows", 200_000)?;
    let seed: u64 = flags.parse_or("seed", 2003)?;
    let factor: f64 = flags.parse_or("factor", 1.0)?;
    // The QUIS generator is one sequential RNG walk; the flag is
    // validated for CLI uniformity only.
    let _threads: Option<usize> = flags.parse_positive_opt("threads")?;

    let mut cfg = QuisConfig::default().with_rows(rows);
    cfg.pollution.factor = factor;
    let b = generate_quis(&cfg, &mut StdRng::seed_from_u64(seed));

    let schema = b.clean.schema().clone();
    write_file(&out.join("schema.dqs"), &render_schema(&schema).map_err(|e| e.to_string())?)?;
    write_table(&b.clean, &out.join("clean.csv"))?;
    write_table(&b.dirty, &out.join("dirty.csv"))?;
    write_file(&out.join("pollution-log.csv"), &log_to_csv(&b.log, &schema))?;

    say!(
        "generated quis benchmark in {}: {} clean rows, {} dirty rows ({} corrupted)",
        out.display(),
        b.clean.n_rows(),
        b.dirty.n_rows(),
        b.log.n_corrupted_rows(),
    );
    say!("files: schema.dqs clean.csv dirty.csv pollution-log.csv");
    Ok(())
}
