//! A tiny, std-only `--flag value` parser.
//!
//! Almost every `dq` flag takes exactly one value; a subcommand may
//! additionally declare bare *switches* (`--resume`) that take none.
//! There are no positional arguments past the subcommand and no
//! combined short forms. Unknown flags are rejected against the
//! subcommand's allow-list so a typo fails loudly instead of silently
//! running with defaults.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// A subcommand failure, typed by who got it wrong — the *invocation*
/// (exit code 2) or the *run* (exit code 1). Exit codes derive from
/// this variant, never from sniffing the message text (a runtime
/// message like ``missing header field `config.flag-nulls` `` must
/// not read as a usage error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// The invocation is malformed (unknown flag, missing value, …).
    Usage(String),
    /// The invocation is fine but the work failed (I/O, bad data,
    /// fingerprint mismatch, …).
    Runtime(String),
    /// A declared error budget was exhausted (`dq detect
    /// --max-bad-rows`): the run is degraded rather than broken, and
    /// scripts need to tell the two apart — exit code 3.
    Budget(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Runtime(m) | CliError::Budget(m) => f.write_str(m),
        }
    }
}

/// Plain-string errors (the file plumbing, `e.to_string()` mappings)
/// are runtime failures by default.
impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Runtime(message)
    }
}

/// Parsed flags of one subcommand invocation.
#[derive(Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parse `--key value` pairs, validating against `allowed` (flag
    /// names without the `--` prefix).
    pub fn parse(args: &[String], allowed: &[&str]) -> Result<Flags, CliError> {
        Flags::parse_with_switches(args, allowed, &[])
    }

    /// Parse `--key value` pairs plus bare `--switch` flags that take
    /// no value (`switches`, also without the `--` prefix).
    pub fn parse_with_switches(
        args: &[String],
        allowed: &[&str],
        switches: &[&str],
    ) -> Result<Flags, CliError> {
        let mut values = HashMap::new();
        let mut seen_switches = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| CliError::Usage(format!("expected a `--flag`, got `{arg}`")))?;
            if switches.contains(&key) {
                if seen_switches.iter().any(|s| s == key) {
                    return Err(CliError::Usage(format!("flag `--{key}` given twice")));
                }
                seen_switches.push(key.to_string());
                continue;
            }
            if !allowed.contains(&key) {
                let all: Vec<String> =
                    allowed.iter().chain(switches).map(|a| format!("--{a}")).collect();
                return Err(CliError::Usage(format!(
                    "unknown flag `--{key}` (expected one of: {})",
                    all.join(", ")
                )));
            }
            let value = it
                .next()
                .ok_or_else(|| CliError::Usage(format!("flag `--{key}` is missing its value")))?;
            if values.insert(key.to_string(), value.clone()).is_some() {
                return Err(CliError::Usage(format!("flag `--{key}` given twice")));
            }
        }
        Ok(Flags { values, switches: seen_switches })
    }

    /// The flag's raw value, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Was the bare switch present?
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// A required string flag.
    pub fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key).ok_or_else(|| CliError::Usage(format!("missing required flag `--{key}`")))
    }

    /// An optional typed flag with a default.
    pub fn parse_or<T: FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse::<T>()
                .map_err(|_| CliError::Usage(format!("flag `--{key}`: cannot parse `{raw}`"))),
        }
    }

    /// An optional typed flag without a default (`None` when absent).
    pub fn parse_opt<T: FromStr>(&self, key: &str) -> Result<Option<T>, CliError> {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("flag `--{key}`: cannot parse `{raw}`"))),
        }
    }

    /// An optional count flag that must be ≥ 1 when given (`None` when
    /// absent). The libraries clamp zero to a working value, but an
    /// explicit `--threads 0` or `--chunk-rows 0` on the command line
    /// is always a typo — reject it as a usage error instead of
    /// silently running with something else.
    pub fn parse_positive_opt(&self, key: &str) -> Result<Option<usize>, CliError> {
        match self.parse_opt::<usize>(key)? {
            Some(0) => Err(CliError::Usage(format!("flag `--{key}` must be at least 1, got `0`"))),
            other => Ok(other),
        }
    }

    /// A count flag with a default; an explicit `0` is a usage error.
    pub fn parse_positive_or(&self, key: &str, default: usize) -> Result<usize, CliError> {
        Ok(self.parse_positive_opt(key)?.unwrap_or(default))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_typed_flags_with_defaults() {
        let f =
            Flags::parse(&args(&["--rows", "500", "--out", "/tmp/x"]), &["rows", "out", "seed"])
                .unwrap();
        assert_eq!(f.parse_or("rows", 10usize).unwrap(), 500);
        assert_eq!(f.parse_or("seed", 7u64).unwrap(), 7);
        assert_eq!(f.require("out").unwrap(), "/tmp/x");
        assert_eq!(f.parse_opt::<usize>("seed").unwrap(), None);
    }

    #[test]
    fn zero_counts_are_usage_errors() {
        let f = Flags::parse(&args(&["--threads", "0"]), &["threads", "chunk-rows"]).unwrap();
        match f.parse_positive_opt("threads") {
            Err(CliError::Usage(m)) => assert!(m.contains("--threads"), "{m}"),
            other => panic!("expected a usage error, got {other:?}"),
        }
        // Absent flags keep their defaults; valid values pass through.
        assert_eq!(f.parse_positive_opt("chunk-rows").unwrap(), None);
        assert_eq!(f.parse_positive_or("chunk-rows", 4096).unwrap(), 4096);
        let ok = Flags::parse(&args(&["--chunk-rows", "257"]), &["chunk-rows"]).unwrap();
        assert_eq!(ok.parse_positive_or("chunk-rows", 4096).unwrap(), 257);
        let zero = Flags::parse(&args(&["--chunk-rows", "0"]), &["chunk-rows"]).unwrap();
        assert!(matches!(zero.parse_positive_or("chunk-rows", 4096), Err(CliError::Usage(_))));
    }

    #[test]
    fn switches_take_no_value() {
        let f = Flags::parse_with_switches(
            &args(&["--resume", "--checkpoint", "ck"]),
            &["checkpoint"],
            &["resume"],
        )
        .unwrap();
        assert!(f.has("resume"));
        assert!(!f.has("verbose"));
        assert_eq!(f.require("checkpoint").unwrap(), "ck");
        // A switch given twice, or an unknown flag, still fails loudly.
        assert!(matches!(
            Flags::parse_with_switches(&args(&["--resume", "--resume"]), &[], &["resume"]),
            Err(CliError::Usage(_))
        ));
        let err = Flags::parse_with_switches(&args(&["--nope", "1"]), &["rows"], &["resume"]);
        match err {
            Err(CliError::Usage(m)) => assert!(m.contains("--resume"), "{m}"),
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_invocations() {
        assert!(Flags::parse(&args(&["rows", "5"]), &["rows"]).is_err());
        assert!(Flags::parse(&args(&["--rows"]), &["rows"]).is_err());
        assert!(Flags::parse(&args(&["--nope", "5"]), &["rows"]).is_err());
        assert!(Flags::parse(&args(&["--rows", "5", "--rows", "6"]), &["rows"]).is_err());
        let f = Flags::parse(&args(&["--rows", "abc"]), &["rows"]).unwrap();
        assert!(f.parse_or("rows", 1usize).is_err());
        assert!(f.require("out").is_err());
    }
}
