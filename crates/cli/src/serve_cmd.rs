//! `dq serve` — the long-lived audit daemon.
//!
//! Loads every `<name>.dqm` / `<name>.dqs` pair under `--models` into
//! resident [`dq_serve`] engines and answers audit requests over
//! HTTP/1.1 until told to stop: `SIGTERM`/`SIGINT` drain the in-flight
//! audits and exit 0 rather than killing the process mid-scan. Routes
//! and knobs are documented in `dq_serve::server`; the short version:
//!
//! ```text
//! curl localhost:7700/health
//! curl localhost:7700/stats
//! curl --data-binary @data.csv localhost:7700/audit/calls/stream
//! curl --data-binary '404,911'  localhost:7700/audit/calls/record
//! ```

use crate::args::{CliError, Flags};
use crate::io_util::say;
use dq_serve::signal::signal_name;
use dq_serve::{ModelRegistry, ServeConfig, Server, TerminationSignal};
use std::time::Duration;

pub const USAGE: &str = "dq serve --models DIR --addr HOST:PORT \
[--workers N] [--queue-depth N] [--chunk-rows N] [--threads N] \
[--read-timeout-secs N] [--write-timeout-secs N] [--deadline-secs N] [--retry-after-secs N]";

/// `0` disables a timeout knob; anything else is a duration in seconds.
fn timeout_flag(
    flags: &Flags,
    name: &str,
    default: Option<Duration>,
) -> Result<Option<Duration>, CliError> {
    match flags.parse_opt::<u64>(name)? {
        None => Ok(default),
        Some(0) => Ok(None),
        Some(secs) => Ok(Some(Duration::from_secs(secs))),
    }
}

pub fn run(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &[
            "models",
            "addr",
            "workers",
            "queue-depth",
            "chunk-rows",
            "threads",
            "read-timeout-secs",
            "write-timeout-secs",
            "deadline-secs",
            "retry-after-secs",
        ],
    )?;
    let models = flags.require("models")?;
    let addr = flags.require("addr")?;
    let defaults = ServeConfig::default();
    let config = ServeConfig {
        workers: flags.parse_positive_or("workers", defaults.workers)?,
        queue_depth: flags.parse_positive_or("queue-depth", defaults.queue_depth)?,
        chunk_rows: flags.parse_positive_or("chunk-rows", defaults.chunk_rows)?,
        read_timeout: timeout_flag(&flags, "read-timeout-secs", defaults.read_timeout)?,
        write_timeout: timeout_flag(&flags, "write-timeout-secs", defaults.write_timeout)?,
        request_deadline: timeout_flag(&flags, "deadline-secs", defaults.request_deadline)?,
        retry_after_secs: flags.parse_or("retry-after-secs", defaults.retry_after_secs)?,
        ..defaults
    };
    // Default is serial per request: concurrency comes from the worker
    // fan-out, not from sharding each scan.
    let detect_threads =
        dq_exec::Parallelism::explicit(flags.parse_positive_opt("threads")?.unwrap_or(1));
    let registry =
        ModelRegistry::load_dir_with_threads(models, detect_threads).map_err(|e| e.to_string())?;
    let server = Server::bind(addr, registry, config).map_err(|e| format!("{addr}: {e}"))?;
    say!("serving {} model(s) on http://{}", server.registry().len(), server.addr());
    for entry in server.registry().entries() {
        say!("  {}  {}", entry.fingerprint_hex(), entry.name);
    }
    // Graceful shutdown: SIGTERM/SIGINT drain in-flight audits and
    // exit 0 instead of killing the process mid-scan. If the handlers
    // cannot be installed (non-Unix, exotic sandbox), the daemon still
    // serves — it just dies the old-fashioned way.
    match TerminationSignal::install() {
        Ok(term) => {
            let signum = term.wait();
            say!("{}: draining in-flight audits and shutting down", signal_name(signum));
            server.shutdown();
            say!("drained; bye");
        }
        Err(e) => {
            say!("warning: {e}; serving without graceful shutdown");
            server.join();
        }
    }
    Ok(())
}
