//! `dq` — the data-quality audit pipeline from a shell.
//!
//! Every layer of the workspace is reachable without writing Rust:
//!
//! ```text
//! dq generate tdg --out bench --rows 10000      # sec. 4: test data generator
//! dq pollute --schema bench/schema.dqs …        # sec. 4.2: controlled corruption
//! dq induce --schema … --model bench/model.dqm  # sec. 5: structure induction
//! dq detect --schema … --model … --input …      # sec. 5: streaming detection
//! dq serve --models DIR --addr 127.0.0.1:7700   # detection as a daemon
//! dq eval --rows 5000                           # Figure 2: the full loop, scored
//! ```
//!
//! `induce` is the train-once half (off-line, in-memory); `detect` is
//! the audit-forever half (streamed, bounded memory, byte-identical to
//! the in-memory path); `serve` keeps a directory of models resident
//! and answers the same audits over HTTP. Exit codes: 0 success,
//! 1 runtime failure, 2 usage error, 3 exhausted error budget
//! (`dq detect --max-bad-rows`).
//!
//! The streaming stages (`generate tdg --stream-chunk-rows`,
//! `pollute`, `detect`) all accept `--checkpoint DIR` to journal their
//! progress at chunk-commit boundaries and `--resume` to continue a
//! killed run with byte-identical outputs — see `dq_job` for the
//! journal and [`checkpoint`] for the shared CLI glue.

mod args;
mod checkpoint;
mod detect;
mod eval_cmd;
mod generate;
mod induce;
mod io_util;
mod pollute_cmd;
mod serve_cmd;

use crate::args::CliError;
use crate::io_util::say;
use std::process::ExitCode;

const USAGE: &str = "dq — data mining-based data quality tools (VLDB 2003)

usage: dq <command> [flags]

commands:
  generate   write a benchmark dataset (schema, clean/dirty CSV, ground truth)
  pollute    corrupt a clean CSV with the standard suite, logging the truth
  induce     induce a structure model from a CSV and save it (train once)
  detect     stream a CSV through a saved model (audit forever)
  serve      keep a directory of models resident, audit over HTTP
  eval       run one generate -> pollute -> audit -> score cycle

command usage:
";

fn usage() -> String {
    format!(
        "{USAGE}  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n",
        generate::USAGE,
        pollute_cmd::USAGE,
        induce::USAGE,
        detect::USAGE,
        serve_cmd::USAGE,
        eval_cmd::USAGE
    )
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "generate" => generate::run(rest),
        "pollute" => pollute_cmd::run(rest),
        "induce" => induce::run(rest),
        "detect" => detect::run(rest),
        "serve" => serve_cmd::run(rest),
        "eval" => eval_cmd::run(rest),
        "help" | "--help" | "-h" => {
            say!("{}", usage());
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown command `{other}`\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("dq {command}: {error}");
            match error {
                CliError::Usage(_) => ExitCode::from(2),
                CliError::Runtime(_) => ExitCode::FAILURE,
                CliError::Budget(_) => ExitCode::from(3),
            }
        }
    }
}
