//! Shared glue between the subcommands and the `dq_job` journal.
//!
//! Each checkpointed stage (`generate`, `pollute`, `detect`) owns its
//! resume mechanics — seeking its stream, reopening its outputs at
//! their watermarks — but they all start the same way: derive a config
//! fingerprint from the flags that shape the output bytes, open the
//! checkpoint directory, and decide between a fresh run, a resume, and
//! a no-op (the journal says `done`). That decision tree, and its
//! refusal messages, live here so every stage behaves identically.

use crate::args::CliError;
use dq_job::{fnv1a, CheckpointDir, JobError, Journal};

/// Fingerprint a canonical `key=value` rendering of the flags that
/// shape a job's output bytes. Flags that only change wall-clock time
/// (`--threads`) or presentation (`--top`) are deliberately excluded
/// by the callers: resuming under a different thread count is safe and
/// allowed, resuming under a different seed is not.
pub fn config_fingerprint(parts: &[(&str, String)]) -> u64 {
    let text: String = parts.iter().map(|(key, value)| format!("{key}={value}\n")).collect();
    fnv1a(text.as_bytes())
}

/// How a checkpointed invocation begins.
#[derive(Debug)]
pub enum Start {
    /// No journal: run from scratch (writing the first journal at the
    /// first commit).
    Fresh,
    /// A committed `running` journal to continue from.
    Resume(Journal),
    /// The journal says the job already finished — resuming is a
    /// no-op, exit 0.
    AlreadyDone,
}

/// The shared start-of-job decision: validate the journal (or its
/// absence) against the `--resume` switch and this invocation's
/// identity. Every refusal is loud and typed — a torn journal, a
/// mutated config, a journal that belongs to another stage — and none
/// of them ever degrades into a silent restart from zero.
pub fn start_job(
    ckpt: &CheckpointDir,
    resume: bool,
    kind: &str,
    config: u64,
    schema: u64,
) -> Result<Start, CliError> {
    if !resume {
        if ckpt.has_journal() {
            return Err(CliError::Runtime(format!(
                "{}: a journal already exists; pass --resume to continue the job, or delete \
                 the checkpoint directory to restart it from scratch",
                ckpt.journal_path().display()
            )));
        }
        return Ok(Start::Fresh);
    }
    let journal = match ckpt.load() {
        Ok(journal) => journal,
        Err(JobError::Missing(path)) => {
            return Err(CliError::Runtime(format!(
                "--resume: no journal at `{path}` — run without --resume to start the job"
            )));
        }
        Err(e) => return Err(jerr(e)),
    };
    journal.validate(kind, config, schema).map_err(jerr)?;
    if journal.done {
        return Ok(Start::AlreadyDone);
    }
    Ok(Start::Resume(journal))
}

/// Checkpoint-layer failures are runtime errors (exit 1), never usage.
pub fn jerr(e: JobError) -> CliError {
    CliError::Runtime(e.to_string())
}
