//! `dq pollute` — corrupt a clean CSV with the standard suite and
//! write the ground-truth log.
//!
//! Runs chunk-at-a-time: the input streams through a
//! [`CsvChunkReader`] into a [`PolluteStream`] and straight out to the
//! dirty CSV, so a file (much) larger than RAM pollutes at O(chunk)
//! memory. Chunking never changes the bytes — the polluter consumes
//! its RNG strictly in clean-row order — so `--chunk-rows` is purely a
//! memory knob.

use crate::args::{CliError, Flags};
use crate::io_util::{at, create_file, load_schema, log_to_csv, say, write_file};
use dq_pollute::{PolluteStream, PollutionConfig};
use dq_table::{BatchSource, CsvChunkReader, CsvWriter};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs::File;
use std::io::BufReader;
use std::path::Path;

pub const USAGE: &str = "dq pollute --schema F.dqs --input clean.csv --output dirty.csv \
                         [--log L.csv] [--factor X] [--seed N] [--chunk-rows N] [--threads N]";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(
        args,
        &["schema", "input", "output", "log", "factor", "seed", "chunk-rows", "threads"],
    )?;
    let schema = load_schema(flags.require("schema")?)?;
    let input = Path::new(flags.require("input")?).to_path_buf();
    let output = Path::new(flags.require("output")?).to_path_buf();
    let factor: f64 = flags.parse_or("factor", 1.0)?;
    let seed: u64 = flags.parse_or("seed", 2003)?;
    let chunk_rows: usize = flags.parse_positive_or("chunk-rows", 4096)?;
    // Pollution consumes one RNG in clean-row order, so it always runs
    // serial; the flag is validated for CLI uniformity only.
    let _threads: Option<usize> = flags.parse_positive_opt("threads")?;

    let file = File::open(&input).map_err(|e| at(&input, e))?;
    let reader = CsvChunkReader::new(schema.clone(), BufReader::new(file), chunk_rows)
        .map_err(|e| at(&input, e))?;
    let config = PollutionConfig::standard().with_factor(factor);
    let mut stream = PolluteStream::new(reader, config, StdRng::seed_from_u64(seed));
    let mut writer =
        CsvWriter::new(schema.clone(), create_file(&output)?).map_err(|e| at(&output, e))?;
    loop {
        match stream.next_batch() {
            Ok(Some(batch)) => writer.write_batch(&batch).map_err(|e| at(&output, e))?,
            Ok(None) => break,
            Err(e) => return Err(CliError::Runtime(at(&input, e))),
        }
    }
    writer.finish().map_err(|e| at(&output, e))?;

    let clean_rows = stream.clean_rows_seen();
    let dirty_rows = stream.rows_emitted();
    let log = stream.into_log();
    if let Some(log_path) = flags.get("log") {
        write_file(Path::new(log_path), &log_to_csv(&log, &schema))?;
    }
    say!(
        "polluted {clean_rows} rows -> {dirty_rows} rows ({} corrupted, prevalence {:.2}%) \
         at factor {factor}",
        log.n_corrupted_rows(),
        log.prevalence() * 100.0,
    );
    Ok(())
}
