//! `dq pollute` — corrupt a clean CSV with the standard suite and
//! write the ground-truth log.
//!
//! Runs chunk-at-a-time: the input streams through a
//! [`CsvChunkReader`] into a [`PolluteStream`] and straight out to the
//! dirty CSV, so a file (much) larger than RAM pollutes at O(chunk)
//! memory. Chunking never changes the bytes — the polluter consumes
//! its RNG strictly in clean-row order — so `--chunk-rows` is purely a
//! memory knob.
//!
//! With `--checkpoint DIR` the run journals its clean-row cursor, RNG
//! state, and output watermarks at every `--checkpoint-every`-batch
//! boundary; `--resume` continues a killed run byte-identically (the
//! input is re-opened and seeked to the cursor, the outputs truncated
//! to their committed watermarks).

use crate::args::{CliError, Flags};
use crate::checkpoint::{config_fingerprint, jerr, start_job, Start};
use crate::io_util::{at, create_file, load_schema, say};
use dq_job::{resume_file, CheckpointDir, CountingWriter, Journal, Watermark};
use dq_pollute::{PolluteStream, PollutionConfig, CELLS_CSV_HEADER};
use dq_table::{BatchSource, CsvChunkReader, CsvWriter};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs::File;
use std::io::{BufReader, Write};
use std::path::Path;

pub const USAGE: &str = "dq pollute --schema F.dqs --input clean.csv --output dirty.csv \
                         [--log L.csv] [--factor X] [--seed N] [--chunk-rows N] [--threads N] \
                         [--checkpoint DIR] [--resume] [--checkpoint-every N]";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse_with_switches(
        args,
        &[
            "schema",
            "input",
            "output",
            "log",
            "factor",
            "seed",
            "chunk-rows",
            "threads",
            "checkpoint",
            "checkpoint-every",
        ],
        &["resume"],
    )?;
    let schema = load_schema(flags.require("schema")?)?;
    let input = Path::new(flags.require("input")?).to_path_buf();
    let output = Path::new(flags.require("output")?).to_path_buf();
    let log_path = flags.get("log").map(|p| Path::new(p).to_path_buf());
    let factor: f64 = flags.parse_or("factor", 1.0)?;
    let seed: u64 = flags.parse_or("seed", 2003)?;
    let chunk_rows: usize = flags.parse_positive_or("chunk-rows", 4096)?;
    // Pollution consumes one RNG in clean-row order, so it always runs
    // serial; the flag is validated for CLI uniformity only.
    let _threads: Option<usize> = flags.parse_positive_opt("threads")?;
    let checkpoint = flags.get("checkpoint").map(|d| Path::new(d).to_path_buf());
    let every: usize = flags.parse_positive_or("checkpoint-every", 16)?;
    let resume = flags.has("resume");
    if (resume || flags.get("checkpoint-every").is_some()) && checkpoint.is_none() {
        return Err(CliError::Usage(format!(
            "--resume/--checkpoint-every need --checkpoint DIR\nusage: {USAGE}"
        )));
    }

    // Flags that shape the output bytes; `--threads` is excluded (it
    // never changes them), the input path is vouched for by the schema
    // fingerprint plus the cursor-vs-file checks on resume.
    let config = config_fingerprint(&[
        ("stage", "pollute".to_string()),
        ("factor", factor.to_string()),
        ("seed", seed.to_string()),
        ("chunk-rows", chunk_rows.to_string()),
        ("log", log_path.is_some().to_string()),
    ]);
    let mut ckpt = None;
    let mut resumed: Option<Journal> = None;
    if let Some(dir) = &checkpoint {
        let handle = CheckpointDir::create(dir).map_err(jerr)?;
        match start_job(&handle, resume, "pollute", config, schema.fingerprint())? {
            Start::Fresh => {}
            Start::Resume(journal) => resumed = Some(journal),
            Start::AlreadyDone => {
                say!("checkpoint {}: job is already done — nothing to resume", dir.display());
                return Ok(());
            }
        }
        ckpt = Some(handle);
    }

    let file = File::open(&input).map_err(|e| at(&input, e))?;
    let mut reader = CsvChunkReader::new(schema.clone(), BufReader::new(file), chunk_rows)
        .map_err(|e| at(&input, e))?;
    let config_pollution = PollutionConfig::standard().with_factor(factor);

    let bytes_watermark = |journal: &Journal, name: &str| -> Result<u64, CliError> {
        match journal.output(name) {
            Some(Watermark::Bytes(n)) => Ok(n),
            _ => Err(CliError::Runtime(format!(
                "journal has no byte watermark for output `{name}`; refusing to resume"
            ))),
        }
    };
    let cursor;
    let dirty_base;
    let corrupted_base;
    let rng;
    let mut writer;
    let mut log_out;
    match &resumed {
        None => {
            cursor = 0;
            dirty_base = 0;
            corrupted_base = 0;
            rng = StdRng::seed_from_u64(seed);
            writer = CsvWriter::new(schema.clone(), CountingWriter::new(create_file(&output)?, 0))
                .map_err(|e| at(&output, e))?;
            log_out = match &log_path {
                Some(path) => {
                    let mut out = CountingWriter::new(create_file(path)?, 0);
                    out.write_all(CELLS_CSV_HEADER.as_bytes()).map_err(|e| at(path, e))?;
                    Some(out)
                }
                None => None,
            };
        }
        Some(journal) => {
            cursor = journal.cursor_rows as usize;
            dirty_base = journal.counter("dirty_rows").unwrap_or(0) as usize;
            corrupted_base = journal.counter("corrupted_rows").unwrap_or(0);
            let state = journal.rng.ok_or_else(|| {
                CliError::Runtime("journal records no rng state; refusing to resume".to_string())
            })?;
            rng = StdRng::from_state(state);
            reader.skip_data_rows(cursor).map_err(|e| at(&input, e))?;
            let dirty_wm = bytes_watermark(journal, "dirty.csv")?;
            writer = CsvWriter::append(
                schema.clone(),
                CountingWriter::new(resume_file(&output, dirty_wm).map_err(jerr)?, dirty_wm),
            );
            log_out = match &log_path {
                Some(path) => {
                    let log_wm = bytes_watermark(journal, "log.csv")?;
                    Some(CountingWriter::new(resume_file(path, log_wm).map_err(jerr)?, log_wm))
                }
                None => None,
            };
        }
    }

    let mut stream = PolluteStream::resume(reader, config_pollution, rng, cursor, dirty_base);
    let mut journal = match resumed {
        Some(journal) => journal,
        None => Journal::new("pollute", config, schema.fingerprint()),
    };

    let mut cells_rendered = 0usize;
    let mut cells_buf = String::new();
    let mut batches_since_commit = 0usize;
    let commit = |stream: &mut PolluteStream<CsvChunkReader<BufReader<File>>, StdRng>,
                  writer: &mut CsvWriter<CountingWriter<File>>,
                  log_out: &mut Option<CountingWriter<File>>,
                  journal: &mut Journal,
                  ckpt: &mut CheckpointDir,
                  done: bool|
     -> Result<(), CliError> {
        writer.flush().map_err(|e| at(&output, e))?;
        if let Some(out) = log_out.as_mut() {
            out.flush().map_err(|e| at(log_path.as_ref().expect("log_out implies path"), e))?;
        }
        journal.cursor_rows = stream.clean_rows_seen() as u64;
        journal.rng = Some(stream.rng().state());
        journal.set_counter("dirty_rows", stream.rows_emitted() as u64);
        journal
            .set_counter("corrupted_rows", corrupted_base + stream.log().n_corrupted_rows() as u64);
        journal.set_output("dirty.csv", Watermark::Bytes(writer.get_ref().count()));
        if let Some(out) = log_out.as_ref() {
            journal.set_output("log.csv", Watermark::Bytes(out.count()));
        }
        journal.done = done;
        ckpt.save(journal).map_err(jerr)
    };

    // Cursor-zero commit: a crash anywhere after this leaves a journal
    // to resume from.
    if let Some(handle) = ckpt.as_mut() {
        commit(&mut stream, &mut writer, &mut log_out, &mut journal, handle, false)?;
    }
    loop {
        match stream.next_batch() {
            Ok(Some(batch)) => {
                writer.write_batch(&batch).map_err(|e| at(&output, e))?;
                if let Some(out) = log_out.as_mut() {
                    cells_buf.clear();
                    stream.log().render_cells_csv(&schema, cells_rendered, &mut cells_buf);
                    cells_rendered = stream.log().cells.len();
                    out.write_all(cells_buf.as_bytes())
                        .map_err(|e| at(log_path.as_ref().expect("log_out implies path"), e))?;
                }
                batches_since_commit += 1;
                if batches_since_commit >= every {
                    if let Some(handle) = ckpt.as_mut() {
                        commit(
                            &mut stream,
                            &mut writer,
                            &mut log_out,
                            &mut journal,
                            handle,
                            false,
                        )?;
                    }
                    batches_since_commit = 0;
                }
            }
            Ok(None) => break,
            Err(e) => return Err(CliError::Runtime(at(&input, e))),
        }
    }
    if let Some(handle) = ckpt.as_mut() {
        commit(&mut stream, &mut writer, &mut log_out, &mut journal, handle, true)?;
    } else {
        writer.flush().map_err(|e| at(&output, e))?;
        if let Some(out) = log_out.as_mut() {
            out.flush().map_err(|e| at(log_path.as_ref().expect("log_out implies path"), e))?;
        }
    }

    let clean_rows = stream.clean_rows_seen();
    let dirty_rows = stream.rows_emitted();
    let corrupted = corrupted_base + stream.log().n_corrupted_rows() as u64;
    let prevalence = if dirty_rows == 0 { 0.0 } else { corrupted as f64 / dirty_rows as f64 };
    say!(
        "polluted {clean_rows} rows -> {dirty_rows} rows ({corrupted} corrupted, prevalence \
         {:.2}%) at factor {factor}",
        prevalence * 100.0,
    );
    Ok(())
}
