//! `dq pollute` — corrupt a clean CSV with the standard suite and
//! write the ground-truth log.

use crate::args::{CliError, Flags};
use crate::io_util::{load_schema, load_table, log_to_csv, say, write_file, write_table};
use dq_pollute::{pollute, PollutionConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;

pub const USAGE: &str =
    "dq pollute --schema F.dqs --input clean.csv --output dirty.csv [--log L.csv] [--factor X] [--seed N]";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["schema", "input", "output", "log", "factor", "seed"])?;
    let schema = load_schema(flags.require("schema")?)?;
    let clean = load_table(schema.clone(), flags.require("input")?)?;
    let output = Path::new(flags.require("output")?).to_path_buf();
    let factor: f64 = flags.parse_or("factor", 1.0)?;
    let seed: u64 = flags.parse_or("seed", 2003)?;

    let config = PollutionConfig::standard().with_factor(factor);
    let (dirty, log) = pollute(&clean, &config, &mut StdRng::seed_from_u64(seed));
    write_table(&dirty, &output)?;
    if let Some(log_path) = flags.get("log") {
        write_file(Path::new(log_path), &log_to_csv(&log, &schema))?;
    }
    say!(
        "polluted {} rows -> {} rows ({} corrupted, prevalence {:.2}%) at factor {factor}",
        clean.n_rows(),
        dirty.n_rows(),
        log.n_corrupted_rows(),
        log.prevalence() * 100.0,
    );
    Ok(())
}
