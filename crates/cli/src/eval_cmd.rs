//! `dq eval` — one full test-environment cycle (Figure 2): generate →
//! pollute → audit → score against the ground truth.

use crate::args::{CliError, Flags};
use crate::io_util::say;
use dq_eval::Baseline;

pub const USAGE: &str = "dq eval [--rows N] [--rules N] [--seed N] [--factor X] [--threads N]";

pub fn run(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, &["rows", "rules", "seed", "factor", "threads"])?;
    let rows: usize = flags.parse_or("rows", 5000)?;
    let rules: usize = flags.parse_or("rules", 20)?;
    let seed: u64 = flags.parse_or("seed", 2003)?;
    let factor: f64 = flags.parse_or("factor", 1.0)?;

    let baseline = Baseline::new(seed);
    let mut env = baseline.environment(rules, rows, factor);
    env.audit.threads = flags.parse_positive_opt("threads")?.into();
    let result = env.run(seed).map_err(|e| e.to_string())?;

    say!(
        "evaluated {} dirty rows ({} corrupted) against {} ground-truth rules",
        result.dirty.n_rows(),
        result.log.n_corrupted_rows(),
        result.benchmark.rules.len(),
    );
    say!(
        "structure model: {} rules; induction {:.2}s, detection {:.2}s",
        result.n_model_rules,
        result.induction_secs,
        result.detection_secs,
    );
    say!(
        "sensitivity {:.4}  specificity {:.4}  correction improvement {:.4}",
        result.sensitivity(),
        result.specificity(),
        result.correction_improvement(),
    );
    Ok(())
}
