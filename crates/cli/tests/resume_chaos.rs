//! Chaos suite for the checkpoint/resume layer: kill `dq` with abort
//! (true `kill -9` semantics — no destructors, no flushes) at over a
//! hundred seeded commit-boundary kill points across `generate`,
//! `pollute`, and `detect`, resume each victim, and assert every
//! output file is byte-identical to an uninterrupted run. Plus the
//! resume edge cases (mutated config, done job, torn journal, missing
//! journal), the quarantine dead-letter path with its error-budget
//! exit code, and the `dq serve` SIGTERM drain.
//!
//! Kill points use the `dq_job` crash knobs:
//! `DQ_CRASH_BEFORE_COMMIT=k` aborts immediately before the k-th
//! journal save (data flushed, journal stale),
//! `DQ_CRASH_AFTER_COMMITS=k` immediately after it (journal fresh,
//! later data lost). A 2000-row run at `--stream-chunk-rows 64
//! --checkpoint-every 1` commits ~34 times, so the sampled k values
//! cover first, dense-early, mid, and final commits of each stage.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!("dq-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Run `dq` with the crash knobs scrubbed from the inherited
/// environment and `env` applied on top.
fn dq_env(args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dq"));
    cmd.args(args).env_remove("DQ_CRASH_BEFORE_COMMIT").env_remove("DQ_CRASH_AFTER_COMMITS");
    for (key, value) in env {
        cmd.env(key, value);
    }
    cmd.output().expect("spawn dq")
}

fn dq(args: &[&str]) -> Output {
    dq_env(args, &[])
}

fn dq_ok(args: &[&str]) -> String {
    let out = dq(args);
    assert!(
        out.status.success(),
        "dq {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn bytes(path: &str) -> Vec<u8> {
    std::fs::read(Path::new(path)).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn assert_file_eq(reference: &str, got: &str, context: &str) {
    assert!(
        bytes(reference) == bytes(got),
        "{context}: `{got}` differs from reference `{reference}`"
    );
}

/// Sorted file names of a directory (for paged-spill comparison).
fn dir_files(dir: &str) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read_dir {dir}: {e}"))
        .map(|entry| entry.expect("dir entry").file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    names
}

fn assert_dir_eq(reference: &str, got: &str, context: &str) {
    let names = dir_files(reference);
    assert_eq!(names, dir_files(got), "{context}: paged file sets differ");
    for name in &names {
        assert_file_eq(&format!("{reference}/{name}"), &format!("{got}/{name}"), context);
    }
}

const GENERATE_OUTPUTS: &[&str] =
    &["schema.dqs", "clean.csv", "dirty.csv", "pollution-log.csv", "rules.txt"];

/// Sampled kill points: dense over the early commits (initial commit +
/// first batches, where resume state is smallest), then spaced through
/// the middle, ending at the final/done commit of a ~34-save run.
const KILL_AFTER: &[u64] = &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 15, 20, 25, 30, 33, 34];
/// `BEFORE=1` would abort before the very first save and leave no
/// journal at all (that case is `resume_without_journal_is_refused`),
/// so the BEFORE samples start at 2.
const KILL_BEFORE: &[u64] = &[2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 16, 21, 26, 31, 34];

/// One crash-then-resume cycle: run `crash_args` with a crash knob set,
/// and unless the knob was beyond the run's save count (run finished),
/// resume with `resume_args`. Returns whether the victim actually
/// crashed.
fn crash_and_resume(crash_args: &[&str], resume_args: &[&str], knob: (&str, u64)) -> bool {
    let (var, k) = knob;
    let out = dq_env(crash_args, &[(var, &k.to_string())]);
    if out.status.success() {
        return false;
    }
    let resumed = dq(resume_args);
    assert!(
        resumed.status.success(),
        "resume after {var}={k} failed:\nstderr: {}",
        stderr_of(&resumed)
    );
    true
}

#[test]
fn generate_killed_anywhere_resumes_byte_identical() {
    let dir = TempDir::new("gen");
    let reference = dir.path("ref");
    let ref_paged = dir.path("ref-paged");
    dq_ok(&[
        "generate",
        "tdg",
        "--out",
        &reference,
        "--rows",
        "2000",
        "--rules",
        "6",
        "--seed",
        "11",
        "--stream-chunk-rows",
        "64",
        "--paged-dirty",
        &ref_paged,
    ]);

    let mut crashes = 0;
    for (var, ks) in
        [("DQ_CRASH_AFTER_COMMITS", KILL_AFTER), ("DQ_CRASH_BEFORE_COMMIT", KILL_BEFORE)]
    {
        for &k in ks {
            let tag = format!("{}-{k}", if var.contains("AFTER") { "after" } else { "before" });
            let out = dir.path(&format!("out-{tag}"));
            let paged = dir.path(&format!("paged-{tag}"));
            let ckpt = dir.path(&format!("ckpt-{tag}"));
            let base = [
                "generate",
                "tdg",
                "--out",
                &out,
                "--rows",
                "2000",
                "--rules",
                "6",
                "--seed",
                "11",
                "--stream-chunk-rows",
                "64",
                "--paged-dirty",
                &paged,
                "--checkpoint",
                &ckpt,
                "--checkpoint-every",
                "1",
            ];
            let mut resume_args = base.to_vec();
            resume_args.push("--resume");
            if crash_and_resume(&base, &resume_args, (var, k)) {
                crashes += 1;
            }
            let context = format!("generate {var}={k}");
            for file in GENERATE_OUTPUTS {
                assert_file_eq(&format!("{reference}/{file}"), &format!("{out}/{file}"), &context);
            }
            assert_dir_eq(&ref_paged, &paged, &context);
        }
    }
    assert!(crashes >= 30, "expected ≥30 real generate crashes, got {crashes}");
}

#[test]
fn pollute_killed_anywhere_resumes_byte_identical() {
    let dir = TempDir::new("pol");
    let data = dir.path("data");
    dq_ok(&["generate", "tdg", "--out", &data, "--rows", "2000", "--rules", "6", "--seed", "11"]);
    let schema = format!("{data}/schema.dqs");
    let clean = format!("{data}/clean.csv");
    let ref_dirty = dir.path("ref-dirty.csv");
    let ref_log = dir.path("ref-log.csv");
    dq_ok(&[
        "pollute",
        "--schema",
        &schema,
        "--input",
        &clean,
        "--output",
        &ref_dirty,
        "--log",
        &ref_log,
        "--factor",
        "1.5",
        "--seed",
        "23",
        "--chunk-rows",
        "64",
    ]);

    let mut crashes = 0;
    for (var, ks) in
        [("DQ_CRASH_AFTER_COMMITS", KILL_AFTER), ("DQ_CRASH_BEFORE_COMMIT", KILL_BEFORE)]
    {
        for &k in ks {
            let tag = format!("{}-{k}", if var.contains("AFTER") { "after" } else { "before" });
            let dirty = dir.path(&format!("dirty-{tag}.csv"));
            let log = dir.path(&format!("log-{tag}.csv"));
            let ckpt = dir.path(&format!("ckpt-{tag}"));
            let base = [
                "pollute",
                "--schema",
                &schema,
                "--input",
                &clean,
                "--output",
                &dirty,
                "--log",
                &log,
                "--factor",
                "1.5",
                "--seed",
                "23",
                "--chunk-rows",
                "64",
                "--checkpoint",
                &ckpt,
                "--checkpoint-every",
                "1",
            ];
            let mut resume_args = base.to_vec();
            resume_args.push("--resume");
            if crash_and_resume(&base, &resume_args, (var, k)) {
                crashes += 1;
            }
            let context = format!("pollute {var}={k}");
            assert_file_eq(&ref_dirty, &dirty, &context);
            assert_file_eq(&ref_log, &log, &context);
        }
    }
    assert!(crashes >= 30, "expected ≥30 real pollute crashes, got {crashes}");
}

#[test]
fn detect_killed_anywhere_resumes_byte_identical() {
    let dir = TempDir::new("det");
    let data = dir.path("data");
    dq_ok(&["generate", "tdg", "--out", &data, "--rows", "2000", "--rules", "6", "--seed", "11"]);
    let schema = format!("{data}/schema.dqs");
    let model = dir.path("model.dqm");
    dq_ok(&[
        "induce",
        "--schema",
        &schema,
        "--input",
        &format!("{data}/clean.csv"),
        "--model",
        &model,
    ]);
    let dirty = format!("{data}/dirty.csv");
    let ref_report = dir.path("ref-report.csv");
    let ref_corr = dir.path("ref-corr.csv");
    dq_ok(&[
        "detect",
        "--schema",
        &schema,
        "--model",
        &model,
        "--input",
        &dirty,
        "--report",
        &ref_report,
        "--corrections",
        &ref_corr,
        "--chunk-rows",
        "64",
        "--top",
        "0",
    ]);

    let mut crashes = 0;
    for (var, ks) in
        [("DQ_CRASH_AFTER_COMMITS", KILL_AFTER), ("DQ_CRASH_BEFORE_COMMIT", KILL_BEFORE)]
    {
        for &k in ks {
            let tag = format!("{}-{k}", if var.contains("AFTER") { "after" } else { "before" });
            let report = dir.path(&format!("report-{tag}.csv"));
            let corr = dir.path(&format!("corr-{tag}.csv"));
            let ckpt = dir.path(&format!("ckpt-{tag}"));
            let base = [
                "detect",
                "--schema",
                &schema,
                "--model",
                &model,
                "--input",
                &dirty,
                "--report",
                &report,
                "--corrections",
                &corr,
                "--chunk-rows",
                "64",
                "--top",
                "0",
                "--checkpoint",
                &ckpt,
                "--checkpoint-every",
                "1",
            ];
            let mut resume_args = base.to_vec();
            resume_args.push("--resume");
            if crash_and_resume(&base, &resume_args, (var, k)) {
                crashes += 1;
            }
            let context = format!("detect {var}={k}");
            assert_file_eq(&ref_report, &report, &context);
            assert_file_eq(&ref_corr, &corr, &context);
        }
    }
    assert!(crashes >= 30, "expected ≥30 real detect crashes, got {crashes}");
}

/// A job that gets killed repeatedly — crash, resume into another
/// crash, resume into a third — still converges to byte-identical
/// outputs.
#[test]
fn multi_crash_chain_converges() {
    let dir = TempDir::new("chain");
    let reference = dir.path("ref");
    dq_ok(&[
        "generate",
        "tdg",
        "--out",
        &reference,
        "--rows",
        "2000",
        "--rules",
        "6",
        "--seed",
        "11",
        "--stream-chunk-rows",
        "64",
    ]);

    let out = dir.path("out");
    let ckpt = dir.path("ckpt");
    let base = [
        "generate",
        "tdg",
        "--out",
        &out,
        "--rows",
        "2000",
        "--rules",
        "6",
        "--seed",
        "11",
        "--stream-chunk-rows",
        "64",
        "--checkpoint",
        &ckpt,
        "--checkpoint-every",
        "1",
    ];
    let mut resume_args = base.to_vec();
    resume_args.push("--resume");

    let first = dq_env(&base, &[("DQ_CRASH_AFTER_COMMITS", "3")]);
    assert!(!first.status.success(), "first incarnation should crash");
    let second = dq_env(&resume_args, &[("DQ_CRASH_AFTER_COMMITS", "7")]);
    assert!(!second.status.success(), "second incarnation should crash");
    let third = dq_env(&resume_args, &[("DQ_CRASH_BEFORE_COMMIT", "5")]);
    assert!(!third.status.success(), "third incarnation should crash");
    let last = dq(&resume_args);
    assert!(last.status.success(), "final resume failed: {}", stderr_of(&last));

    for file in GENERATE_OUTPUTS {
        assert_file_eq(
            &format!("{reference}/{file}"),
            &format!("{out}/{file}"),
            "multi-crash chain",
        );
    }
}

/// Pollute args for the edge-case tests, against a tiny generated
/// dataset; `seed` is the mutable knob the fingerprint must notice.
fn edge_pollute_args<'a>(
    schema: &'a str,
    clean: &'a str,
    dirty: &'a str,
    ckpt: &'a str,
    seed: &'a str,
) -> Vec<&'a str> {
    vec![
        "pollute",
        "--schema",
        schema,
        "--input",
        clean,
        "--output",
        dirty,
        "--seed",
        seed,
        "--chunk-rows",
        "64",
        "--checkpoint",
        ckpt,
        "--checkpoint-every",
        "1",
    ]
}

#[test]
fn resume_edge_cases_are_loud_refusals() {
    let dir = TempDir::new("edges");
    let data = dir.path("data");
    dq_ok(&["generate", "tdg", "--out", &data, "--rows", "500", "--rules", "4", "--seed", "3"]);
    let schema = format!("{data}/schema.dqs");
    let clean = format!("{data}/clean.csv");
    let dirty = dir.path("dirty.csv");
    let ckpt = dir.path("ckpt");
    let journal = format!("{ckpt}/job.dqj");

    // --resume with no journal: refused, pointing at a fresh start.
    let out = dq(&{
        let mut a = edge_pollute_args(&schema, &clean, &dirty, &ckpt, "5");
        a.push("--resume");
        a
    });
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("no journal"), "unexpected stderr: {}", stderr_of(&out));

    // Crash a run mid-way to get a live journal.
    let out = dq_env(
        &edge_pollute_args(&schema, &clean, &dirty, &ckpt, "5"),
        &[("DQ_CRASH_AFTER_COMMITS", "3")],
    );
    assert!(!out.status.success(), "victim should crash");

    // Same command again without --resume: refused, never overwritten.
    let journal_before = bytes(&journal);
    let out = dq(&edge_pollute_args(&schema, &clean, &dirty, &ckpt, "5"));
    assert!(!out.status.success());
    assert!(
        stderr_of(&out).contains("journal already exists"),
        "unexpected stderr: {}",
        stderr_of(&out)
    );
    assert_eq!(journal_before, bytes(&journal), "refusal must not touch the journal");

    // Mutated config (different --seed) on resume: typed fingerprint
    // refusal, not a silent restart.
    let out = dq(&{
        let mut a = edge_pollute_args(&schema, &clean, &dirty, &ckpt, "6");
        a.push("--resume");
        a
    });
    assert!(!out.status.success());
    assert!(
        stderr_of(&out).contains("config fingerprint mismatch"),
        "unexpected stderr: {}",
        stderr_of(&out)
    );

    // A torn journal (truncated mid-write) is refused loudly. Work on
    // a copy so the real journal stays usable.
    let torn = bytes(&journal);
    std::fs::write(&journal, &torn[..torn.len() - 3]).expect("tear journal");
    let out = dq(&{
        let mut a = edge_pollute_args(&schema, &clean, &dirty, &ckpt, "5");
        a.push("--resume");
        a
    });
    assert!(!out.status.success());
    assert!(stderr_of(&out).contains("torn or corrupt"), "unexpected stderr: {}", stderr_of(&out));
    std::fs::write(&journal, &torn).expect("restore journal");

    // Healthy journal resumes to completion…
    let out = dq(&{
        let mut a = edge_pollute_args(&schema, &clean, &dirty, &ckpt, "5");
        a.push("--resume");
        a
    });
    assert!(out.status.success(), "resume failed: {}", stderr_of(&out));

    // …and resuming a done job is a no-op success.
    let out = dq(&{
        let mut a = edge_pollute_args(&schema, &clean, &dirty, &ckpt, "5");
        a.push("--resume");
        a
    });
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("already done"),
        "unexpected stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn quarantine_routes_malformed_rows_and_enforces_budget() {
    let dir = TempDir::new("quar");
    let data = dir.path("data");
    dq_ok(&["generate", "tdg", "--out", &data, "--rows", "800", "--rules", "4", "--seed", "9"]);
    let schema = format!("{data}/schema.dqs");
    let model = dir.path("model.dqm");
    dq_ok(&[
        "induce",
        "--schema",
        &schema,
        "--input",
        &format!("{data}/clean.csv"),
        "--model",
        &model,
    ]);

    // Plant two malformed rows (wrong arity) into the dirty table.
    let dirty = std::fs::read_to_string(format!("{data}/dirty.csv")).expect("read dirty");
    let mut mangled = String::new();
    for (i, line) in dirty.lines().enumerate() {
        // 1-based physical lines 5 and 50 (header is line 1).
        if i + 1 == 5 || i + 1 == 50 {
            mangled.push_str("oops,not,enough\n");
        } else {
            mangled.push_str(line);
            mangled.push('\n');
        }
    }
    let bad = dir.path("bad.csv");
    std::fs::write(&bad, mangled).expect("write mangled csv");

    // Unbounded budget: the scan completes (exit 0), the dead-letter
    // file holds both rows with their 1-based lines and raw text.
    let dead = dir.path("dead.tsv");
    let out = dq_ok(&[
        "detect",
        "--schema",
        &schema,
        "--model",
        &model,
        "--input",
        &bad,
        "--chunk-rows",
        "64",
        "--top",
        "0",
        "--quarantine",
        &dead,
    ]);
    assert!(out.contains("quarantined 2 malformed row(s)"), "got: {out}");
    let dead_rows = std::fs::read_to_string(&dead).expect("read dead letters");
    let lines: Vec<&str> = dead_rows.lines().collect();
    assert_eq!(lines.len(), 2, "dead letters: {dead_rows}");
    assert!(lines[0].starts_with("5\t") && lines[0].ends_with("\toops,not,enough"));
    assert!(lines[1].starts_with("50\t") && lines[1].ends_with("\toops,not,enough"));

    // A budget of 1: the second malformed row overflows it — distinct
    // exit code 3, and the rows captured so far are still written.
    let dead1 = dir.path("dead1.tsv");
    let out = dq(&[
        "detect",
        "--schema",
        &schema,
        "--model",
        &model,
        "--input",
        &bad,
        "--chunk-rows",
        "64",
        "--top",
        "0",
        "--quarantine",
        &dead1,
        "--max-bad-rows",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(3), "stderr: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("malformed rows"), "unexpected stderr: {}", stderr_of(&out));
    let dead_rows = std::fs::read_to_string(&dead1).expect("read dead letters");
    assert_eq!(dead_rows.lines().count(), 1, "dead letters: {dead_rows}");
}

/// SIGTERM mid-soak makes `dq serve` drain and exit 0 — pinned here by
/// starting a real daemon, auditing once, and killing it politely.
#[cfg(unix)]
#[test]
fn serve_drains_and_exits_cleanly_on_sigterm() {
    use std::io::{BufRead, BufReader, Read, Write};

    let dir = TempDir::new("sigterm");
    let data = dir.path("data");
    dq_ok(&["generate", "tdg", "--out", &data, "--rows", "500", "--rules", "4", "--seed", "13"]);
    let models = dir.path("models");
    std::fs::create_dir_all(&models).expect("models dir");
    dq_ok(&[
        "induce",
        "--schema",
        &format!("{data}/schema.dqs"),
        "--input",
        &format!("{data}/clean.csv"),
        "--model",
        &format!("{models}/demo.dqm"),
    ]);
    std::fs::copy(format!("{data}/schema.dqs"), format!("{models}/demo.dqs")).expect("copy schema");

    let mut child = Command::new(env!("CARGO_BIN_EXE_dq"))
        .args(["serve", "--models", &models, "--addr", "127.0.0.1:0"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn dq serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));

    // First line announces the bound address: `serving 1 model(s) on
    // http://127.0.0.1:PORT`.
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("read banner");
    let addr =
        banner.rsplit("http://").next().map(str::trim).expect("address in banner").to_string();

    // One real audit mid-soak, so the drain has served traffic.
    let mut sock = std::net::TcpStream::connect(&addr).expect("connect");
    sock.write_all(b"GET /health HTTP/1.1\r\nHost: dq\r\nConnection: close\r\n\r\n")
        .expect("send health check");
    let mut response = String::new();
    sock.read_to_string(&mut response).expect("read health response");
    assert!(response.starts_with("HTTP/1.1 200"), "health said: {response}");

    let killed =
        Command::new("kill").args(["-TERM", &child.id().to_string()]).status().expect("run kill");
    assert!(killed.success(), "kill -TERM failed");

    let status = child.wait().expect("wait for serve");
    assert!(status.success(), "serve exited {status:?} instead of draining to 0");
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).expect("drain stdout");
    assert!(rest.contains("draining"), "missing drain message: {rest}");
    assert!(rest.contains("drained; bye"), "missing drain completion: {rest}");
}
