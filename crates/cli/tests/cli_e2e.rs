//! End-to-end exercise of the `dq` binary: generate → pollute →
//! induce → detect → eval in a temp directory, including the
//! chunk-size/thread invariance of the streamed report and the schema
//! fingerprint guard.

use std::path::{Path, PathBuf};
use std::process::Command;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!("dq-e2e-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn dq(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dq")).args(args).output().expect("spawn dq")
}

fn dq_ok(args: &[&str]) -> String {
    let out = dq(args);
    assert!(
        out.status.success(),
        "dq {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

fn read(path: &str) -> String {
    std::fs::read_to_string(Path::new(path)).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn full_pipeline_round_trips() {
    let dir = TempDir::new("pipeline");
    let schema = dir.path("schema.dqs");
    let model = dir.path("model.dqm");

    let out = dq_ok(&[
        "generate",
        "tdg",
        "--out",
        &dir.path(""),
        "--rows",
        "1500",
        "--rules",
        "10",
        "--seed",
        "42",
    ]);
    assert!(out.contains("generated tdg benchmark"), "got: {out}");
    for file in ["schema.dqs", "clean.csv", "dirty.csv", "pollution-log.csv", "rules.txt"] {
        assert!(Path::new(&dir.path(file)).exists(), "{file} missing");
    }

    // Re-pollute the clean table at a higher factor.
    let out = dq_ok(&[
        "pollute",
        "--schema",
        &schema,
        "--input",
        &dir.path("clean.csv"),
        "--output",
        &dir.path("dirty2.csv"),
        "--log",
        &dir.path("log2.csv"),
        "--factor",
        "2.0",
        "--seed",
        "7",
    ]);
    assert!(out.contains("polluted 1500 rows"), "got: {out}");
    assert!(read(&dir.path("log2.csv")).starts_with("dirty_row,attribute,polluter,before,after"));

    // Train once…
    let out = dq_ok(&[
        "induce",
        "--schema",
        &schema,
        "--input",
        &dir.path("dirty.csv"),
        "--model",
        &model,
    ]);
    assert!(out.contains("saved to"), "got: {out}");
    assert!(read(&model).starts_with("dq-structure-model v1\n"));

    // …audit forever: the streamed report is identical across chunk
    // sizes and thread counts.
    let mut reports = Vec::new();
    for (tag, chunk, threads) in
        [("a", "1", "1"), ("b", "97", "1"), ("c", "4096", "2"), ("d", "100000", "4")]
    {
        let report = dir.path(&format!("report-{tag}.csv"));
        let corrections = dir.path(&format!("corr-{tag}.csv"));
        dq_ok(&[
            "detect",
            "--schema",
            &schema,
            "--model",
            &model,
            "--input",
            &dir.path("dirty.csv"),
            "--report",
            &report,
            "--corrections",
            &corrections,
            "--chunk-rows",
            chunk,
            "--threads",
            threads,
            "--top",
            "0",
        ]);
        reports.push((read(&report), read(&corrections)));
    }
    for (r, c) in &reports[1..] {
        assert_eq!(r, &reports[0].0, "reports must be byte-identical across chunking/threads");
        assert_eq!(c, &reports[0].1, "corrections must be byte-identical too");
    }
    assert!(reports[0].0.starts_with("row,attribute,observed,proposed,confidence,support"));

    // The scored loop runs.
    let out = dq_ok(&["eval", "--rows", "1200", "--rules", "8", "--seed", "3"]);
    assert!(out.contains("sensitivity"), "got: {out}");
}

#[test]
fn detect_refuses_the_wrong_relation() {
    let dir = TempDir::new("fingerprint");
    dq_ok(&[
        "generate",
        "tdg",
        "--out",
        &dir.path(""),
        "--rows",
        "400",
        "--rules",
        "6",
        "--seed",
        "1",
    ]);
    dq_ok(&[
        "induce",
        "--schema",
        &dir.path("schema.dqs"),
        "--input",
        &dir.path("dirty.csv"),
        "--model",
        &dir.path("model.dqm"),
    ]);
    // A QUIS schema is a different relation.
    dq_ok(&["generate", "quis", "--out", &dir.path("other"), "--rows", "300", "--seed", "1"]);
    let out = dq(&[
        "detect",
        "--schema",
        &dir.path("other/schema.dqs"),
        "--model",
        &dir.path("model.dqm"),
        "--input",
        &dir.path("other/dirty.csv"),
    ]);
    assert_eq!(out.status.code(), Some(1), "fingerprint mismatch must be a runtime failure");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fingerprint"), "got: {stderr}");

    // A corrupted model file is a *runtime* failure (exit 1) even when
    // the error message mentions a word like `flag` — exit codes come
    // from the typed error, not message sniffing.
    let model_text = std::fs::read_to_string(dir.path("model.dqm")).unwrap();
    let corrupted: String = model_text
        .lines()
        .filter(|l| !l.starts_with("config.flag-nulls"))
        .map(|l| format!("{l}\n"))
        .collect();
    std::fs::write(dir.path("model-broken.dqm"), corrupted).unwrap();
    let out = dq(&[
        "detect",
        "--schema",
        &dir.path("schema.dqs"),
        "--model",
        &dir.path("model-broken.dqm"),
        "--input",
        &dir.path("dirty.csv"),
    ]);
    assert_eq!(out.status.code(), Some(1), "corrupted model must be a runtime failure");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("config.flag-nulls"),
        "got: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn usage_errors_exit_2() {
    let out = dq(&[]);
    assert_eq!(out.status.code(), Some(2));
    let out = dq(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let out = dq(&["induce", "--nope", "x"]);
    assert_eq!(out.status.code(), Some(2));
    let out = dq(&["generate", "tdg"]); // missing --out
    assert_eq!(out.status.code(), Some(2));
    let out = dq(&["help"]);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn detect_flushes_the_partial_report_on_a_mid_stream_error() {
    let dir = TempDir::new("partial");
    let schema = dir.path("schema.dqs");
    let model = dir.path("model.dqm");
    dq_ok(&[
        "generate",
        "tdg",
        "--out",
        &dir.path(""),
        "--rows",
        "600",
        "--rules",
        "6",
        "--seed",
        "9",
    ]);
    dq_ok(&["induce", "--schema", &schema, "--input", &dir.path("dirty.csv"), "--model", &model]);

    // Corrupt one cell of data row 320 (physical CSV line 322: the
    // header is line 1). With --chunk-rows 64 the first five chunks
    // (rows 0..320) are complete; the failing chunk is discarded.
    let text = read(&dir.path("dirty.csv"));
    let lines: Vec<&str> = text.lines().collect();
    let bad_index = 321; // lines[0] is the header; data row 320
    let mut corrupted: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    let mut cells: Vec<&str> = lines[bad_index].split(',').collect();
    cells[0] = "@@bad@@";
    corrupted[bad_index] = cells.join(",");
    std::fs::write(dir.path("corrupted.csv"), corrupted.join("\n") + "\n").unwrap();
    // The ground truth: a clean run over exactly the complete prefix.
    std::fs::write(dir.path("prefix.csv"), lines[..=320].join("\n") + "\n").unwrap();
    dq_ok(&[
        "detect",
        "--schema",
        &schema,
        "--model",
        &model,
        "--input",
        &dir.path("prefix.csv"),
        "--report",
        &dir.path("expected-report.csv"),
        "--corrections",
        &dir.path("expected-corrections.csv"),
        "--chunk-rows",
        "64",
        "--top",
        "0",
    ]);

    let out = dq(&[
        "detect",
        "--schema",
        &schema,
        "--model",
        &model,
        "--input",
        &dir.path("corrupted.csv"),
        "--report",
        &dir.path("partial-report.csv"),
        "--corrections",
        &dir.path("partial-corrections.csv"),
        "--chunk-rows",
        "64",
        "--top",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(1), "a mid-stream error is a runtime failure");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 322"), "stderr must carry the 1-based CSV line: {stderr}");
    assert!(stderr.contains("320 complete rows"), "got: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PARTIAL"), "the summary must mark the scan partial: {stdout}");
    assert!(stdout.contains("scanned 320 rows"), "got: {stdout}");

    // The flushed partial files equal the clean run over the prefix.
    assert_eq!(read(&dir.path("partial-report.csv")), read(&dir.path("expected-report.csv")));
    assert_eq!(
        read(&dir.path("partial-corrections.csv")),
        read(&dir.path("expected-corrections.csv"))
    );
}

#[test]
fn paged_dirty_spill_round_trips_and_a_torn_spill_is_refused() {
    let dir = TempDir::new("paged");
    let schema = dir.path("schema.dqs");
    let model = dir.path("model.dqm");
    let paged = dir.path("dirty-paged");

    // --paged-dirty only makes sense while streaming.
    let out = dq(&["generate", "tdg", "--out", &dir.path(""), "--paged-dirty", &paged]);
    assert_eq!(out.status.code(), Some(2), "paged spill without streaming is a usage error");

    let out = dq_ok(&[
        "generate",
        "tdg",
        "--out",
        &dir.path(""),
        "--rows",
        "1500",
        "--rules",
        "10",
        "--seed",
        "42",
        "--stream-chunk-rows",
        "97",
        "--paged-dirty",
        &paged,
    ]);
    assert!(out.contains("spilled dirty relation"), "got: {out}");
    dq_ok(&["induce", "--schema", &schema, "--input", &dir.path("dirty.csv"), "--model", &model]);

    // Auditing the paged spill reports exactly what the CSV does.
    dq_ok(&[
        "detect",
        "--schema",
        &schema,
        "--model",
        &model,
        "--input",
        &paged,
        "--report",
        &dir.path("report-paged.csv"),
        "--top",
        "0",
    ]);
    dq_ok(&[
        "detect",
        "--schema",
        &schema,
        "--model",
        &model,
        "--input",
        &dir.path("dirty.csv"),
        "--report",
        &dir.path("report-csv.csv"),
        "--top",
        "0",
    ]);
    assert_eq!(read(&dir.path("report-paged.csv")), read(&dir.path("report-csv.csv")));

    // Tear the spill the way a crash before the manifest commit
    // would: pages on disk, no manifest. The audit must refuse with a
    // typed error naming the manifest, not scan a short relation.
    std::fs::remove_file(Path::new(&paged).join("manifest.dqpm")).unwrap();
    let out = dq(&["detect", "--schema", &schema, "--model", &model, "--input", &paged]);
    assert_eq!(out.status.code(), Some(1), "a torn spill is a runtime failure");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("manifest"), "the refusal must name the manifest: {stderr}");
}

#[test]
fn remote_detect_rejects_local_audit_flags() {
    // --server hands the scan to the daemon's resident model; mixing
    // in local-model flags is a usage error, caught before any I/O.
    let out = dq(&[
        "detect",
        "--server",
        "127.0.0.1:1",
        "--model-name",
        "x",
        "--input",
        "nope.csv",
        "--model",
        "m.dqm",
    ]);
    assert_eq!(out.status.code(), Some(2), "got: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--model is a local-audit flag"), "got: {stderr}");
}
