//! Property-based checks of the statistical substrate: the interval
//! bounds and error-confidence measures must satisfy the monotonicity
//! and ordering properties the auditing tool's guarantees rest on.

use dq_stats::{
    asymptotic_error_confidence, entropy, error_confidence, expected_error_confidence, gain_ratio,
    info_gain, left_bound, max_error_confidence, right_bound, wilson_interval,
};
use proptest::prelude::*;

fn proportion() -> impl Strategy<Value = f64> {
    0.0f64..=1.0
}

fn sample_size() -> impl Strategy<Value = f64> {
    1.0f64..100_000.0
}

fn counts(max_card: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..5_000.0, 2..=max_card)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// The Wilson interval always contains the observed proportion and
    /// stays inside [0, 1].
    #[test]
    fn interval_contains_p_and_is_bounded(p in proportion(), n in sample_size()) {
        let (l, r) = wilson_interval(p, n, 0.95);
        prop_assert!(l <= p + 1e-9 && p <= r + 1e-9, "({l}, {r}) vs {p}");
        prop_assert!((0.0..=1.0).contains(&l) && (0.0..=1.0).contains(&r));
        prop_assert!(l <= r);
    }

    /// Bounds tighten monotonically with the sample size — "the
    /// influence of the sample size to the calculation of the error
    /// confidence".
    #[test]
    fn interval_tightens_with_n(p in proportion(), n in 1.0f64..10_000.0, k in 2.0f64..10.0) {
        let (l1, r1) = wilson_interval(p, n, 0.95);
        let (l2, r2) = wilson_interval(p, n * k, 0.95);
        prop_assert!(r2 - l2 <= r1 - l1 + 1e-12);
    }

    /// Higher confidence levels widen the interval.
    #[test]
    fn interval_widens_with_level(p in proportion(), n in sample_size()) {
        let (l90, r90) = wilson_interval(p, n, 0.90);
        let (l99, r99) = wilson_interval(p, n, 0.99);
        prop_assert!(l99 <= l90 + 1e-12 && r90 <= r99 + 1e-12);
    }

    /// Error confidence is a probability, zero on the predicted class,
    /// and never exceeds its asymptotic (interval-free) value.
    #[test]
    fn error_confidence_is_bounded_by_asymptotic(cs in counts(6), obs in 0usize..6) {
        prop_assume!(obs < cs.len());
        let ec = error_confidence(&cs, obs, 0.95);
        prop_assert!((0.0..=1.0).contains(&ec));
        let asym = asymptotic_error_confidence(&cs, obs);
        prop_assert!(ec <= asym + 1e-9, "interval {ec} must not exceed asymptotic {asym}");
        let predicted = dq_stats::argmax(&cs);
        if obs == predicted {
            prop_assert_eq!(ec, 0.0);
        }
    }

    /// Error confidence grows with support at fixed proportions.
    #[test]
    fn error_confidence_grows_with_support(cs in counts(5), obs in 0usize..5, k in 2.0f64..50.0) {
        prop_assume!(obs < cs.len());
        prop_assume!(cs.iter().sum::<f64>() > 0.0);
        let scaled: Vec<f64> = cs.iter().map(|c| c * k).collect();
        prop_assert!(
            error_confidence(&scaled, obs, 0.95) + 1e-9 >= error_confidence(&cs, obs, 0.95)
        );
    }

    /// The maximum achievable error confidence dominates every
    /// observable one, and the expected error confidence is a convex
    /// combination below it.
    #[test]
    fn confidence_measures_are_ordered(cs in counts(6)) {
        let max = max_error_confidence(&cs, 0.95);
        for obs in 0..cs.len() {
            prop_assert!(error_confidence(&cs, obs, 0.95) <= max + 1e-12);
        }
        let expected = expected_error_confidence(&cs, 0.95);
        prop_assert!((0.0..=1.0).contains(&expected));
        prop_assert!(expected <= max + 1e-12);
    }

    /// Entropy is bounded by log2(k) and zero exactly for pure
    /// distributions.
    #[test]
    fn entropy_bounds(cs in counts(8)) {
        let h = entropy(&cs);
        let k = cs.iter().filter(|&&c| c > 0.0).count();
        prop_assert!(h >= -1e-12);
        if k > 0 {
            prop_assert!(h <= (k as f64).log2() + 1e-9);
        }
        if k <= 1 {
            prop_assert!(h.abs() < 1e-12);
        }
    }

    /// Information gain of any two-way partition of the parent is
    /// non-negative and bounded by the parent entropy; the gain ratio
    /// stays within [0, ~1] for proper partitions.
    #[test]
    fn gain_is_nonnegative_and_bounded(
        parent in counts(5),
        split in proptest::collection::vec(proportion(), 5),
    ) {
        // Partition the parent cell-wise by the split fractions.
        let a: Vec<f64> = parent.iter().zip(&split).map(|(c, f)| c * f).collect();
        let b: Vec<f64> = parent.iter().zip(&split).map(|(c, f)| c * (1.0 - f)).collect();
        let parts = vec![a, b];
        let g = info_gain(&parent, &parts);
        prop_assert!(g >= -1e-9, "gain {g}");
        prop_assert!(g <= entropy(&parent) + 1e-9);
        let gr = gain_ratio(&parent, &parts);
        prop_assert!(gr >= -1e-9);
    }

    /// leftBound/rightBound are consistent with the two-sided interval.
    #[test]
    fn bounds_match_interval(p in proportion(), n in sample_size()) {
        let (l, r) = wilson_interval(p, n, 0.95);
        prop_assert_eq!(left_bound(p, n, 0.95), l);
        prop_assert_eq!(right_bound(p, n, 0.95), r);
    }
}
