//! Binomial-proportion confidence intervals.
//!
//! The paper leans on two interval bounds (it never names the interval
//! construction):
//!
//! * `rightBound(p, n)` — "the right bound of the confidence interval
//!   for the true probability of occurrence given the observed
//!   probability p and a sample size of n" — used by the pessimistic
//!   classification error (sec. 5.1.2);
//! * `leftBound(p, n)` — its lower mirror — used together with
//!   `rightBound` in the error confidence (Def. 7).
//!
//! We use the **Wilson score interval**: it is defined for every `n ≥ 1`
//! (including `p = 0` and `p = 1`, where the Wald interval collapses),
//! always stays inside `[0, 1]`, and both bounds converge monotonically
//! towards `p` as `n` grows — exactly the behaviour the paper's error
//! confidence needs (more supporting instances ⇒ higher confidence).
//! C4.5's own pruning uses the same family of upper confidence bounds.

use crate::quantile::normal_quantile;

/// Two-sided Wilson score interval for an observed proportion.
///
/// * `p` — observed proportion in `[0, 1]`,
/// * `n` — sample size (fractional sizes allowed: C4.5 distributes
///   instances with missing values fractionally, so leaf "counts" are
///   weights),
/// * `level` — two-sided confidence level in `(0, 1)`, e.g. `0.95`.
///
/// Returns `(left, right)`. For `n = 0` the interval is the vacuous
/// `(0, 1)`: with no evidence, every proportion is possible.
pub fn wilson_interval(p: f64, n: f64, level: f64) -> (f64, f64) {
    assert!((0.0..=1.0).contains(&p), "proportion out of range: {p}");
    assert!(n >= 0.0, "negative sample size: {n}");
    assert!(level > 0.0 && level < 1.0, "confidence level out of range: {level}");
    if n == 0.0 {
        return (0.0, 1.0);
    }
    let z = normal_quantile(0.5 + level / 2.0);
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// The paper's `leftBound(p, n)` at the given confidence level.
pub fn left_bound(p: f64, n: f64, level: f64) -> f64 {
    wilson_interval(p, n, level).0
}

/// The paper's `rightBound(p, n)` at the given confidence level.
pub fn right_bound(p: f64, n: f64, level: f64) -> f64 {
    wilson_interval(p, n, level).1
}

/// Error confidence wrt one classifier (Def. 7 of the paper).
///
/// Given the predicted class distribution as weighted counts and the
/// observed class `c`, with `ĉ` the majority (predicted) class:
///
/// ```text
/// errorConf(P, c) = max(0, leftBound(P(ĉ), n) − rightBound(P(c), n))
/// ```
///
/// The counts-based signature keeps callers honest about the support
/// `n` (the number of training instances the prediction is based on):
/// `n` is the sum of `counts`. Returns 0 when the observed class *is*
/// the predicted one, when `n = 0`, or when the bounds overlap.
pub fn error_confidence(counts: &[f64], observed: usize, level: f64) -> f64 {
    let n: f64 = counts.iter().sum();
    if n <= 0.0 || observed >= counts.len() {
        return 0.0;
    }
    let predicted = argmax(counts);
    if predicted == observed {
        return 0.0;
    }
    let p_pred = counts[predicted] / n;
    let p_obs = counts[observed] / n;
    (left_bound(p_pred, n, level) - right_bound(p_obs, n, level)).max(0.0)
}

/// Expected error confidence of a leaf (Def. 9 of the paper): the
/// class-frequency-weighted average of the error confidences its own
/// instances would score against its prediction:
///
/// ```text
/// expErrorConf = Σ_c |S_{C=c}|/|S| · errorConf(P, c)
/// ```
///
/// This is the integrated pruning criterion of sec. 5.4 — a subtree is
/// replaced by a leaf whenever that *raises* the expected error
/// confidence.
pub fn expected_error_confidence(counts: &[f64], level: f64) -> f64 {
    let n: f64 = counts.iter().sum();
    if n <= 0.0 {
        return 0.0;
    }
    let mut acc = 0.0;
    for (c, &cnt) in counts.iter().enumerate() {
        if cnt > 0.0 {
            acc += cnt / n * error_confidence(counts, c, level);
        }
    }
    acc
}

/// The *asymptotic* error confidence: the raw difference
/// `max(0, P(ĉ) − P(c))` that motivates Def. 7 in sec. 5.2 ("the last
/// example motivates the idea of utilizing the difference
/// P(ĉ) − P(c)"), before the interval bounds discount small samples.
/// It is what Def. 7 converges to as the support grows, and — being
/// independent of the sample size — the right yardstick when two
/// differently-sized instance sets must be compared on *proportions*
/// alone (the integrated pruning uses it to tell genuine explanation
/// apart from mere dilution).
pub fn asymptotic_error_confidence(counts: &[f64], observed: usize) -> f64 {
    let n: f64 = counts.iter().sum();
    if n <= 0.0 || observed >= counts.len() {
        return 0.0;
    }
    let predicted = argmax(counts);
    if predicted == observed {
        return 0.0;
    }
    ((counts[predicted] - counts[observed]) / n).max(0.0)
}

/// The highest error confidence any *observable* class could score
/// against this prediction: `max_{c ≠ ĉ} errorConf(P, c)`.
///
/// This is the detection capability of a leaf / rule. The paper deletes
/// rules "that … cannot contribute to an error detection" (sec. 5.4);
/// a rule cannot contribute exactly when this maximum is zero (or below
/// the user's minimal error confidence — the effect behind the jump at
/// 6000 records in Figure 3: smaller training sets only produce rules
/// below the limit, which are deleted).
pub fn max_error_confidence(counts: &[f64], level: f64) -> f64 {
    let n: f64 = counts.iter().sum();
    if n <= 0.0 || counts.len() < 2 {
        return 0.0;
    }
    let predicted = argmax(counts);
    // errorConf is antitone in P(c); the best detectable class is the
    // rarest non-predicted one.
    let mut best = 0.0f64;
    for (c, _) in counts.iter().enumerate() {
        if c != predicted {
            best = best.max(error_confidence(counts, c, level));
        }
    }
    best
}

/// Index of the maximal count (ties resolve to the first maximum —
/// deterministic, like C4.5's majority-class choice).
pub fn argmax(counts: &[f64]) -> usize {
    let mut best = 0;
    for (i, &c) in counts.iter().enumerate().skip(1) {
        if c > counts[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEVEL: f64 = 0.95;

    #[test]
    fn interval_contains_p() {
        for &(p, n) in &[(0.0, 5.0), (0.2, 10.0), (0.5, 3.0), (1.0, 100.0)] {
            let (l, r) = wilson_interval(p, n, LEVEL);
            assert!(l <= p + 1e-12 && p <= r + 1e-12, "({l}, {r}) must contain {p}");
            assert!((0.0..=1.0).contains(&l));
            assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn zero_sample_is_vacuous() {
        assert_eq!(wilson_interval(0.3, 0.0, LEVEL), (0.0, 1.0));
    }

    #[test]
    fn bounds_tighten_with_n() {
        let mut prev_width = f64::INFINITY;
        for n in [1.0, 2.0, 5.0, 10.0, 100.0, 10_000.0] {
            let (l, r) = wilson_interval(0.7, n, LEVEL);
            let width = r - l;
            assert!(width < prev_width, "width must shrink with n");
            prev_width = width;
        }
        // And in the limit both bounds converge to p.
        let (l, r) = wilson_interval(0.7, 1e12, LEVEL);
        assert!((l - 0.7).abs() < 1e-4 && (r - 0.7).abs() < 1e-4);
    }

    #[test]
    fn left_bound_of_certainty_grows_with_n() {
        // A pure leaf (p = 1) becomes more trustworthy as it gets more
        // instances — this is what makes the paper's error confidence
        // reward large supporting populations.
        let mut prev = 0.0;
        for n in [1.0, 4.0, 16.0, 64.0, 16_118.0] {
            let l = left_bound(1.0, n, LEVEL);
            assert!(l > prev, "leftBound(1, n) must grow with n");
            prev = l;
        }
        // With 16118 instances (the paper's BRV=404 → GBM=901 rule) the
        // lower bound is extremely close to 1: the 99.95% confidence
        // the paper reports for the deviating record.
        assert!(left_bound(1.0, 16_118.0, LEVEL) > 0.999);
    }

    #[test]
    fn higher_level_widens_interval() {
        let (l90, r90) = wilson_interval(0.4, 20.0, 0.90);
        let (l99, r99) = wilson_interval(0.4, 20.0, 0.99);
        assert!(l99 < l90 && r99 > r90);
    }

    #[test]
    fn wald_comparison_sanity() {
        // For large n and mid-range p, Wilson ≈ Wald.
        let n: f64 = 100_000.0;
        let p: f64 = 0.37;
        let z = normal_quantile(0.975);
        let wald = z * (p * (1.0 - p) / n).sqrt();
        let (l, r) = wilson_interval(p, n, 0.95);
        assert!((r - p - wald).abs() < 1e-5);
        assert!((p - l - wald).abs() < 1e-5);
    }

    #[test]
    fn fractional_sample_sizes_are_accepted() {
        // C4.5 fractional instance weights produce non-integer n.
        let (l, r) = wilson_interval(0.5, 2.5, LEVEL);
        assert!(l > 0.0 && r < 1.0 || (l, r) != (0.0, 1.0));
    }

    #[test]
    fn error_confidence_basics() {
        // Observed class == predicted class → no error evidence.
        assert_eq!(error_confidence(&[8.0, 2.0], 0, LEVEL), 0.0);
        // Tiny sample → bounds overlap → zero confidence.
        assert_eq!(error_confidence(&[1.0, 1.0], 1, LEVEL), 0.0);
        // Large, pure sample with one deviation → near 1.
        let mut counts = vec![16_117.0, 1.0];
        assert!(error_confidence(&counts, 1, LEVEL) > 0.99);
        // Confidence grows with support at fixed proportions.
        counts = vec![80.0, 20.0];
        let small = error_confidence(&counts, 1, LEVEL);
        let big = error_confidence(&[8000.0, 2000.0], 1, LEVEL);
        assert!(big > small);
        // Out-of-range observed class is harmless.
        assert_eq!(error_confidence(&[5.0, 5.0], 9, LEVEL), 0.0);
        assert_eq!(error_confidence(&[], 0, LEVEL), 0.0);
    }

    #[test]
    fn error_confidence_separates_the_papers_distributions() {
        // Sec. 5.2 motivates P(ĉ) − P(c) over 1 − P(c) with
        // P1 = (0.2, 0.2, 0.2, 0.1, 0.3) vs P2 = (0.2, 0.8, 0, 0, 0),
        // first class observed: the error is more apparent in P2.
        let n = 1000.0;
        let p1: Vec<f64> = [0.2, 0.2, 0.2, 0.1, 0.3].iter().map(|p| p * n).collect();
        let p2: Vec<f64> = [0.2, 0.8, 0.0, 0.0, 0.0].iter().map(|p| p * n).collect();
        assert!(error_confidence(&p2, 0, LEVEL) > error_confidence(&p1, 0, LEVEL));
        // And P(ĉ) alone fails on (0, 0.1, 0.9) vs (0.1, 0, 0.9):
        // observing class 0 must score higher for the first.
        let q1: Vec<f64> = [0.0, 0.1, 0.9].iter().map(|p| p * n).collect();
        let q2: Vec<f64> = [0.1, 0.0, 0.9].iter().map(|p| p * n).collect();
        assert!(error_confidence(&q1, 0, LEVEL) > error_confidence(&q2, 0, LEVEL));
    }

    #[test]
    fn expected_error_confidence_prefers_informative_leaves() {
        // A pure leaf has zero expected error confidence *about its own
        // instances* — none of them deviates.
        assert_eq!(expected_error_confidence(&[50.0, 0.0], LEVEL), 0.0);
        // A leaf with a small contamination expects some error mass.
        let some = expected_error_confidence(&[49.0, 1.0], LEVEL);
        assert!(some > 0.0);
        // An even leaf offers no error evidence at all.
        assert_eq!(expected_error_confidence(&[25.0, 25.0], LEVEL), 0.0);
        // Empty leaf.
        assert_eq!(expected_error_confidence(&[], LEVEL), 0.0);
    }

    #[test]
    fn max_error_confidence_measures_detection_capability() {
        // A large pure leaf is maximally capable of flagging deviations.
        assert!(max_error_confidence(&[16_118.0, 0.0], LEVEL) > 0.99);
        // A tiny pure leaf cannot flag anything confidently.
        assert!(max_error_confidence(&[1.0, 0.0], LEVEL) < 0.5);
        // A balanced leaf can never fire.
        assert_eq!(max_error_confidence(&[50.0, 50.0], LEVEL), 0.0);
        // Degenerate shapes.
        assert_eq!(max_error_confidence(&[10.0], LEVEL), 0.0);
        assert_eq!(max_error_confidence(&[], LEVEL), 0.0);
        // Capability grows with support at fixed proportions.
        let small = max_error_confidence(&[9.0, 1.0], LEVEL);
        let big = max_error_confidence(&[900.0, 100.0], LEVEL);
        assert!(big > small);
    }

    #[test]
    fn argmax_breaks_ties_deterministically() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[2.0]), 0);
    }

    #[test]
    #[should_panic(expected = "proportion out of range")]
    fn rejects_bad_proportion() {
        wilson_interval(1.5, 10.0, LEVEL);
    }

    #[test]
    #[should_panic(expected = "confidence level out of range")]
    fn rejects_bad_level() {
        wilson_interval(0.5, 10.0, 1.0);
    }
}
