//! User-parameterizable sampling distributions over attribute domains.
//!
//! "Our system offers uniform, normal and exponential distributions
//! that can be parameterized by the user" (sec. 4.1.4). These are the
//! *univariate start distributions* of the test data generator; the
//! multivariate ones live in `dq-bayes`.
//!
//! A [`DistributionSpec`] is resolved against an attribute's declared
//! domain ([`dq_table::AttrType`]): samples are clamped into the domain
//! and snapped to the domain's grid (integer numeric, date days,
//! nominal codes).

use dq_table::{AttrType, Value};
use rand::Rng;

/// A sampling distribution, parameterized in *normalized domain
/// coordinates*: positions are fractions of the domain extent in
/// `[0, 1]`, so the same spec works for a 5-label nominal attribute and
/// a `[0, 10_000]` numeric one.
#[derive(Debug, Clone, PartialEq)]
pub enum DistributionSpec {
    /// Uniform over the whole domain.
    Uniform,
    /// Normal with mean and standard deviation given as domain
    /// fractions (e.g. `mean: 0.5, sd: 0.15` concentrates around the
    /// domain center). Samples are clamped into the domain.
    Normal {
        /// Mean position as a fraction of the domain extent.
        mean: f64,
        /// Standard deviation as a fraction of the domain extent.
        sd: f64,
    },
    /// Exponential decaying from the domain minimum; `rate` is the
    /// decay rate per domain extent (higher = more mass near the
    /// minimum). Samples are clamped into the domain.
    Exponential {
        /// Decay rate per domain extent.
        rate: f64,
    },
    /// Explicit per-code weights for nominal attributes (normalized
    /// internally; must match the label count when sampled).
    Categorical {
        /// Relative weight of each nominal code.
        weights: Vec<f64>,
    },
}

impl DistributionSpec {
    /// Draw one value for an attribute of type `ty`.
    ///
    /// Panics if a [`DistributionSpec::Categorical`] spec is applied to
    /// a non-nominal attribute or its weight vector does not match the
    /// label count — these are configuration errors, caught eagerly by
    /// `dq-tdg`'s config validation.
    pub fn sample<R: Rng + ?Sized>(&self, ty: &AttrType, rng: &mut R) -> Value {
        match ty {
            AttrType::Nominal { labels } => {
                let n = labels.len();
                let idx = match self {
                    DistributionSpec::Uniform => rng.gen_range(0..n),
                    DistributionSpec::Normal { mean, sd } => {
                        let x = sample_normal(rng, *mean, *sd) * n as f64;
                        (x.floor().max(0.0) as usize).min(n - 1)
                    }
                    DistributionSpec::Exponential { rate } => {
                        let x = sample_exponential(rng, *rate) * n as f64;
                        (x.floor().max(0.0) as usize).min(n - 1)
                    }
                    DistributionSpec::Categorical { weights } => {
                        assert_eq!(
                            weights.len(),
                            n,
                            "categorical weights must match the label count"
                        );
                        weighted_choice(rng, weights)
                    }
                };
                Value::Nominal(idx as u32)
            }
            AttrType::Numeric { min, max, integer } => {
                let x = self.sample_unit(rng);
                let v = min + x * (max - min);
                let v = if *integer { v.round() } else { v };
                Value::Number(v.clamp(*min, *max))
            }
            AttrType::Date { min, max } => {
                let x = self.sample_unit(rng);
                let span = (max - min) as f64;
                let d = *min + (x * span).round() as i64;
                Value::Date(d.clamp(*min, *max))
            }
        }
    }

    /// Draw a position in `[0, 1]` (clamped).
    fn sample_unit<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            DistributionSpec::Uniform => rng.gen::<f64>(),
            DistributionSpec::Normal { mean, sd } => sample_normal(rng, *mean, *sd),
            DistributionSpec::Exponential { rate } => sample_exponential(rng, *rate),
            DistributionSpec::Categorical { .. } => {
                panic!("categorical distributions apply to nominal attributes only")
            }
        }
    }
}

/// Normal sample via Box–Muller, clamped to `[0, 1]`.
fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mean + sd * z).clamp(0.0, 1.0)
}

/// Exponential sample via inverse CDF, scaled by `1/rate`, clamped to
/// `[0, 1]`.
fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    let rate = if rate <= 0.0 { 1.0 } else { rate };
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    (-u.ln() / rate).clamp(0.0, 1.0)
}

/// Index drawn proportionally to `weights` (all weights must be
/// non-negative; an all-zero vector falls back to index 0).
pub fn weighted_choice<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    debug_assert!(weights.iter().all(|w| *w >= 0.0), "negative weight");
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return 0;
    }
    let mut x = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn uniform_nominal_covers_domain() {
        let ty = AttrType::Nominal { labels: (0..5).map(|i| format!("l{i}")).collect() };
        let mut seen = [false; 5];
        let mut r = rng();
        for _ in 0..500 {
            match DistributionSpec::Uniform.sample(&ty, &mut r) {
                Value::Nominal(c) => seen[c as usize] = true,
                v => panic!("unexpected value {v:?}"),
            }
        }
        assert!(seen.iter().all(|&s| s), "all 5 codes should appear in 500 draws");
    }

    #[test]
    fn numeric_samples_stay_in_domain() {
        let ty = AttrType::Numeric { min: -3.0, max: 7.0, integer: false };
        let mut r = rng();
        for spec in [
            DistributionSpec::Uniform,
            DistributionSpec::Normal { mean: 0.5, sd: 0.5 },
            DistributionSpec::Exponential { rate: 2.0 },
        ] {
            for _ in 0..200 {
                match spec.sample(&ty, &mut r) {
                    Value::Number(x) => assert!((-3.0..=7.0).contains(&x)),
                    v => panic!("unexpected value {v:?}"),
                }
            }
        }
    }

    #[test]
    fn integer_attribute_snaps_to_grid() {
        let ty = AttrType::Numeric { min: 0.0, max: 10.0, integer: true };
        let mut r = rng();
        for _ in 0..100 {
            match DistributionSpec::Uniform.sample(&ty, &mut r) {
                Value::Number(x) => assert_eq!(x.fract(), 0.0),
                v => panic!("unexpected value {v:?}"),
            }
        }
    }

    #[test]
    fn date_samples_stay_in_domain() {
        let ty = AttrType::Date { min: 100, max: 200 };
        let mut r = rng();
        for _ in 0..100 {
            match (DistributionSpec::Normal { mean: 0.2, sd: 0.4 }).sample(&ty, &mut r) {
                Value::Date(d) => assert!((100..=200).contains(&d)),
                v => panic!("unexpected value {v:?}"),
            }
        }
    }

    #[test]
    fn normal_concentrates_around_mean() {
        let ty = AttrType::Numeric { min: 0.0, max: 1.0, integer: false };
        let spec = DistributionSpec::Normal { mean: 0.5, sd: 0.1 };
        let mut r = rng();
        let mut sum = 0.0;
        let n = 2000;
        for _ in 0..n {
            if let Value::Number(x) = spec.sample(&ty, &mut r) {
                sum += x;
            }
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn exponential_skews_to_minimum() {
        let ty = AttrType::Numeric { min: 0.0, max: 1.0, integer: false };
        let spec = DistributionSpec::Exponential { rate: 5.0 };
        let mut r = rng();
        let n = 2000;
        let below = (0..n)
            .filter(|_| matches!(spec.sample(&ty, &mut r), Value::Number(x) if x < 0.2))
            .count();
        // P(X < 0.2) for Exp(5) is 1 - e^-1 ≈ 0.63.
        assert!(below as f64 / n as f64 > 0.5);
    }

    #[test]
    fn categorical_respects_weights() {
        let ty = AttrType::Nominal { labels: vec!["a".into(), "b".into(), "c".into()] };
        let spec = DistributionSpec::Categorical { weights: vec![0.0, 3.0, 1.0] };
        let mut counts = [0usize; 3];
        let mut r = rng();
        for _ in 0..4000 {
            if let Value::Nominal(c) = spec.sample(&ty, &mut r) {
                counts[c as usize] += 1;
            }
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((2.0..4.5).contains(&ratio), "expected ≈3:1, got {ratio}");
    }

    #[test]
    fn weighted_choice_degenerate() {
        let mut r = rng();
        assert_eq!(weighted_choice(&mut r, &[0.0, 0.0]), 0);
        assert_eq!(weighted_choice(&mut r, &[0.0, 1.0]), 1);
    }

    #[test]
    #[should_panic(expected = "categorical weights must match")]
    fn categorical_weight_mismatch_panics() {
        let ty = AttrType::Nominal { labels: vec!["a".into(), "b".into()] };
        let mut r = rng();
        DistributionSpec::Categorical { weights: vec![1.0] }.sample(&ty, &mut r);
    }

    #[test]
    #[should_panic(expected = "nominal attributes only")]
    fn categorical_on_numeric_panics() {
        let ty = AttrType::Numeric { min: 0.0, max: 1.0, integer: false };
        let mut r = rng();
        DistributionSpec::Categorical { weights: vec![1.0] }.sample(&ty, &mut r);
    }
}
