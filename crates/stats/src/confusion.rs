//! The 2×2 evaluation matrices of sec. 4.3.
//!
//! Detection is summarized by a confusion matrix whose rows are the
//! ground truth from the pollution log and whose columns are the tool's
//! opinion; the paper's headline measures are **sensitivity** (truly
//! found errors / corrupted records) and **specificity** (error-free
//! records marked as such / error-free records). The paper favours
//! sensitivity over recall "as it is independent from the prevalence".
//!
//! Correction is summarized by a second 2×2 matrix counting record
//! correctness before and after applying the proposed corrections; the
//! paper's improvement measure is `((c+d)-(b+d))/(c+d)`.

/// Detection confusion matrix.
///
/// Terminology follows the paper exactly: a *positive* is a corrupted
/// record, so `tp` counts corrupted records flagged by the tool and
/// `fn_` corrupted records the tool missed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Corrupted records flagged as errors.
    pub tp: u64,
    /// Clean records flagged as errors (false alarms).
    pub fp: u64,
    /// Corrupted records not flagged (missed errors).
    pub fn_: u64,
    /// Clean records not flagged.
    pub tn: u64,
}

impl ConfusionMatrix {
    /// Accumulate one observation.
    pub fn record(&mut self, truly_corrupted: bool, flagged: bool) {
        match (truly_corrupted, flagged) {
            (true, true) => self.tp += 1,
            (true, false) => self.fn_ += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Merge another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Sensitivity = tp / (tp + fn): the ratio of truly found errors to
    /// corrupted records. `None` when nothing was corrupted.
    pub fn sensitivity(&self) -> Option<f64> {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Specificity = tn / (tn + fp): how many of the error-free records
    /// have been marked as such. `None` when nothing was clean.
    pub fn specificity(&self) -> Option<f64> {
        ratio(self.tn, self.tn + self.fp)
    }

    /// Precision = tp / (tp + fp). `None` when nothing was flagged.
    pub fn precision(&self) -> Option<f64> {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall — identical to sensitivity; provided because the
    /// information-retrieval literature the paper cites uses the term.
    pub fn recall(&self) -> Option<f64> {
        self.sensitivity()
    }

    /// Accuracy = (tp + tn) / total.
    pub fn accuracy(&self) -> Option<f64> {
        ratio(self.tp + self.tn, self.total())
    }

    /// Prevalence = (tp + fn) / total — the total ratio of errors in
    /// the table, which the paper notes sensitivity is independent of.
    pub fn prevalence(&self) -> Option<f64> {
        ratio(self.tp + self.fn_, self.total())
    }

    /// F1 = harmonic mean of precision and sensitivity.
    pub fn f1(&self) -> Option<f64> {
        let p = self.precision()?;
        let r = self.sensitivity()?;
        if p + r == 0.0 {
            Some(0.0)
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }
}

/// Correction quality matrix (sec. 4.3): record correctness before
/// (rows) and after (columns) applying the proposed corrections.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorrectionMatrix {
    /// Correct before, correct after (untouched or harmlessly touched).
    pub a: u64,
    /// Correct before, **incorrect** after (correction damage).
    pub b: u64,
    /// Incorrect before, correct after (successful repair).
    pub c: u64,
    /// Incorrect before, incorrect after (failed repair).
    pub d: u64,
}

impl CorrectionMatrix {
    /// Accumulate one record.
    pub fn record(&mut self, correct_before: bool, correct_after: bool) {
        match (correct_before, correct_after) {
            (true, true) => self.a += 1,
            (true, false) => self.b += 1,
            (false, true) => self.c += 1,
            (false, false) => self.d += 1,
        }
    }

    /// The paper's improvement measure: the difference between the
    /// number of errors before (`c + d`) and after (`b + d`) the
    /// correction, normalized by the number of errors before:
    /// `((c+d) - (b+d)) / (c+d)`.
    ///
    /// 1 means every error was repaired and none introduced; negative
    /// values mean the correction made things worse. `None` when there
    /// were no errors to begin with.
    pub fn improvement(&self) -> Option<f64> {
        let before = self.c + self.d;
        if before == 0 {
            return None;
        }
        let after = self.b + self.d;
        Some((before as f64 - after as f64) / before as f64)
    }
}

fn ratio(num: u64, den: u64) -> Option<f64> {
    if den == 0 {
        None
    } else {
        Some(num as f64 / den as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfusionMatrix {
        // 10 corrupted (7 found), 90 clean (3 false alarms).
        ConfusionMatrix { tp: 7, fn_: 3, fp: 3, tn: 87 }
    }

    #[test]
    fn detection_measures() {
        let m = sample();
        assert_eq!(m.total(), 100);
        assert!((m.sensitivity().unwrap() - 0.7).abs() < 1e-12);
        assert!((m.specificity().unwrap() - 0.9666666666666667).abs() < 1e-12);
        assert!((m.precision().unwrap() - 0.7).abs() < 1e-12);
        assert_eq!(m.recall(), m.sensitivity());
        assert!((m.accuracy().unwrap() - 0.94).abs() < 1e-12);
        assert!((m.prevalence().unwrap() - 0.1).abs() < 1e-12);
        assert!((m.f1().unwrap() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn record_and_merge() {
        let mut m = ConfusionMatrix::default();
        m.record(true, true);
        m.record(true, false);
        m.record(false, true);
        m.record(false, false);
        assert_eq!(m, ConfusionMatrix { tp: 1, fn_: 1, fp: 1, tn: 1 });
        let mut m2 = m;
        m2.merge(&m);
        assert_eq!(m2.total(), 8);
    }

    #[test]
    fn degenerate_denominators_are_none() {
        let empty = ConfusionMatrix::default();
        assert_eq!(empty.sensitivity(), None);
        assert_eq!(empty.specificity(), None);
        assert_eq!(empty.precision(), None);
        assert_eq!(empty.accuracy(), None);
        let all_clean = ConfusionMatrix { tn: 5, ..Default::default() };
        assert_eq!(all_clean.sensitivity(), None);
        assert_eq!(all_clean.specificity(), Some(1.0));
    }

    #[test]
    fn sensitivity_is_prevalence_independent() {
        // Same detector behaviour at two prevalences → same sensitivity.
        let low = ConfusionMatrix { tp: 8, fn_: 2, fp: 10, tn: 980 };
        let high = ConfusionMatrix { tp: 400, fn_: 100, fp: 5, tn: 495 };
        assert!((low.sensitivity().unwrap() - high.sensitivity().unwrap()).abs() < 1e-12);
        assert!(low.prevalence().unwrap() < high.prevalence().unwrap());
        // While precision swings wildly with prevalence.
        assert!(low.precision().unwrap() < high.precision().unwrap());
    }

    #[test]
    fn correction_improvement() {
        // 10 errors; 6 repaired, 4 failed, 1 clean record damaged.
        let m = CorrectionMatrix { a: 89, b: 1, c: 6, d: 4 };
        // before = 10, after = 5 → improvement 0.5.
        assert!((m.improvement().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn correction_can_degrade() {
        // 2 errors, none repaired, 5 clean records damaged.
        let m = CorrectionMatrix { a: 10, b: 5, c: 0, d: 2 };
        assert!((m.improvement().unwrap() - (2.0 - 7.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn correction_no_errors_is_none() {
        let m = CorrectionMatrix { a: 10, b: 1, c: 0, d: 0 };
        assert_eq!(m.improvement(), None);
    }

    #[test]
    fn correction_record() {
        let mut m = CorrectionMatrix::default();
        m.record(false, true);
        m.record(false, false);
        m.record(true, true);
        m.record(true, false);
        assert_eq!(m, CorrectionMatrix { a: 1, b: 1, c: 1, d: 1 });
        assert_eq!(m.improvement(), Some(0.0));
    }
}
