//! Standard normal quantile (inverse CDF).

/// Inverse of the standard normal CDF, Φ⁻¹(p).
///
/// Peter Acklam's rational approximation (relative error < 1.15e-9 over
/// the open unit interval) — far more precision than any confidence
/// bound in this workspace needs.
///
/// Panics on `p <= 0` or `p >= 1` — callers clamp their confidence
/// levels to the open interval.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_quantile requires p in (0,1), got {p}");

    // Coefficients for the three regions of Acklam's approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Complementary error function, via the classic Numerical Recipes
/// Chebyshev fit (absolute error < 1.2e-7 — ample for CDF reporting).
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal CDF, Φ(x) (exposed for tests and for callers that
/// need p-values).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_quantiles() {
        // Reference values from standard normal tables.
        let cases = [
            (0.5, 0.0),
            (0.975, 1.959963984540054),
            (0.95, 1.6448536269514722),
            (0.9, 1.2815515655446004),
            (0.995, 2.5758293035489004),
            (0.8, 0.8416212335729143),
        ];
        for (p, z) in cases {
            assert!(
                (normal_quantile(p) - z).abs() < 1e-8,
                "quantile({p}) = {} != {z}",
                normal_quantile(p)
            );
        }
    }

    #[test]
    fn symmetry() {
        for p in [0.01, 0.1, 0.3, 0.45] {
            assert!((normal_quantile(p) + normal_quantile(1.0 - p)).abs() < 1e-9);
        }
    }

    #[test]
    fn tails() {
        assert!(normal_quantile(1e-10) < -6.0);
        assert!(normal_quantile(1.0 - 1e-10) > 6.0);
    }

    #[test]
    fn cdf_inverts_quantile() {
        for p in [0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999] {
            assert!((normal_cdf(normal_quantile(p)) - p).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1)")]
    fn rejects_degenerate_p() {
        normal_quantile(1.0);
    }
}
