//! # dq-stats — statistical substrate for data auditing
//!
//! Small, dependency-light statistics used throughout the workspace:
//!
//! * [`ci`] — binomial proportion confidence intervals. The paper's
//!   `leftBound(p, n)` / `rightBound(p, n)` (used in pessimistic error
//!   pruning, sec. 5.1.2, and in the error confidence, Def. 7) are
//!   implemented with the Wilson score interval, which is well defined
//!   for small samples and tightens monotonically with `n` — the
//!   property the paper's error confidence exploits ("the influence of
//!   the sample size to the calculation of the error confidence").
//! * [`mod@entropy`] — entropy, information gain, split information and
//!   gain ratio over class-count vectors (ID3/C4.5, sec. 5.1).
//! * [`dist`] — user-parameterizable sampling distributions (uniform,
//!   normal, exponential, categorical) over attribute domains, the
//!   univariate start distributions of the test data generator
//!   (sec. 4.1.4).
//! * [`confusion`] — the 2×2 detection matrix with sensitivity and
//!   specificity, and the 2×2 correction matrix with the paper's
//!   quality-of-correction measure (sec. 4.3).
//! * [`quantile`] — the standard normal quantile function used by the
//!   interval code.

pub mod ci;
pub mod confusion;
pub mod dist;
pub mod entropy;
pub mod quantile;

pub use ci::{
    argmax, asymptotic_error_confidence, error_confidence, expected_error_confidence, left_bound,
    max_error_confidence, right_bound, wilson_interval,
};
pub use confusion::{ConfusionMatrix, CorrectionMatrix};
pub use dist::{weighted_choice, DistributionSpec};
pub use entropy::{entropy, gain_ratio, info_gain, split_info};
pub use quantile::normal_quantile;
