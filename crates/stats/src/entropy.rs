//! Entropy-family impurity measures for decision-tree induction
//! (sec. 5.1 of the paper).
//!
//! All functions take *weighted* class counts (`f64`), because C4.5
//! distributes instances with missing values fractionally over
//! branches, making counts non-integral.

/// Shannon entropy (bits) of a class distribution given as counts.
/// Zero counts contribute nothing; an empty or all-zero vector has
/// entropy 0.
pub fn entropy(counts: &[f64]) -> f64 {
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &c in counts {
        if c > 0.0 {
            let p = c / total;
            h -= p * p.log2();
        }
    }
    h
}

/// Information gain of a partition (ID3's split criterion):
/// `entr(S) − Σ |S_j|/|S| · entr(S_j)` where `parts[j]` holds the class
/// counts of partition `j`.
pub fn info_gain(parent: &[f64], parts: &[Vec<f64>]) -> f64 {
    let total: f64 = parent.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut remainder = 0.0;
    for part in parts {
        let size: f64 = part.iter().sum();
        if size > 0.0 {
            remainder += size / total * entropy(part);
        }
    }
    entropy(parent) - remainder
}

/// Split information (C4.5): the entropy of the partition *sizes*,
/// used to penalize splits with many small branches.
pub fn split_info(parts: &[Vec<f64>]) -> f64 {
    let sizes: Vec<f64> = parts.iter().map(|p| p.iter().sum()).collect();
    entropy(&sizes)
}

/// Gain ratio (C4.5's split criterion): information gain divided by
/// split information. Returns 0 when the split information vanishes
/// (all instances in one branch), where the ratio is undefined and the
/// split is useless anyway.
pub fn gain_ratio(parent: &[f64], parts: &[Vec<f64>]) -> f64 {
    let si = split_info(parts);
    if si <= 1e-12 {
        return 0.0;
    }
    info_gain(parent, parts) / si
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_basics() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[0.0, 0.0]), 0.0);
        assert_eq!(entropy(&[10.0]), 0.0);
        assert!((entropy(&[5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert!((entropy(&[1.0, 1.0, 1.0, 1.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_is_maximal_for_uniform() {
        let uniform = entropy(&[3.0, 3.0, 3.0]);
        let skewed = entropy(&[7.0, 1.0, 1.0]);
        assert!(uniform > skewed);
        assert!((uniform - 3f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn perfect_split_gains_full_entropy() {
        let parent = [4.0, 4.0];
        let parts = vec![vec![4.0, 0.0], vec![0.0, 4.0]];
        assert!((info_gain(&parent, &parts) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn useless_split_gains_nothing() {
        let parent = [4.0, 4.0];
        let parts = vec![vec![2.0, 2.0], vec![2.0, 2.0]];
        assert!(info_gain(&parent, &parts).abs() < 1e-12);
    }

    #[test]
    fn gain_ratio_penalizes_many_way_splits() {
        // Quinlan's motivating case: splitting 8 instances into 8
        // singleton branches has perfect gain but huge split info.
        let parent = [4.0, 4.0];
        let many: Vec<Vec<f64>> =
            (0..8).map(|i| if i < 4 { vec![1.0, 0.0] } else { vec![0.0, 1.0] }).collect();
        let two = vec![vec![4.0, 0.0], vec![0.0, 4.0]];
        assert!(info_gain(&parent, &many) >= info_gain(&parent, &two) - 1e-12);
        assert!(gain_ratio(&parent, &many) < gain_ratio(&parent, &two));
    }

    #[test]
    fn degenerate_split_info_yields_zero_ratio() {
        let parent = [4.0, 4.0];
        let parts = vec![vec![4.0, 4.0], vec![0.0, 0.0]];
        assert_eq!(gain_ratio(&parent, &parts), 0.0);
    }

    #[test]
    fn fractional_counts_are_fine() {
        let parent = [2.5, 2.5];
        let parts = vec![vec![2.5, 0.0], vec![0.0, 2.5]];
        assert!((info_gain(&parent, &parts) - 1.0).abs() < 1e-12);
    }
}
