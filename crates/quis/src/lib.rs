//! # dq-quis — the synthetic QUIS engine-composition substrate
//!
//! The paper's real-world evaluation (sec. 6.2) audits an excerpt of
//! QUIS, DaimlerChrysler's 70 GB proprietary quality-information
//! system: "a table … that describes the composition of all industry
//! engines manufactured by Mercedes-Benz. It contains 8 attributes and
//! about 200000 records." That data is unavailable, so this crate
//! builds its public stand-in:
//!
//! * [`schema`] — the 8-attribute engine schema (mostly nominal, one
//!   numeric, one date — the attribute mix the paper describes), with
//!   the `BRV`/`GBM`/`KBM` codes from the paper's example rules;
//! * [`mod@families`] — the generative ground truth: engine families whose
//!   fixed code combinations embed the published dependencies
//!   `BRV = 404 → GBM = 901` (support ≈ 16118 at 200k rows) and
//!   `KBM = 01 ∧ GBM = 901 → BRV = 501` (support ≈ 9530), plus
//!   plant/series/displacement/date structure;
//! * [`generator`] — clean-table sampling and error injection through
//!   the `dq-pollute` suite, so every audit finding can be verified
//!   against a ground-truth log (which the real QUIS audit could not:
//!   "an exact quantification of real-world sensitivity and
//!   specificity by domain experts turned out to be too expensive").

pub mod families;
pub mod generator;
pub mod schema;

pub use families::{families, power_class_of, Family};
pub use generator::{default_pollution, generate_quis, QuisBenchmark, QuisConfig};
pub use schema::{attr, engine_schema};
