//! The synthetic engine-composition schema.
//!
//! Stand-in for the QUIS table of sec. 6.2: "a table of the QUIS
//! database that describes the composition of all industry engines
//! manufactured by Mercedes-Benz. It contains 8 attributes … The
//! attributes code the model category of each individual engine and
//! its production date." The attribute names `BRV`, `GBM`, `KBM` are
//! taken from the paper's example rules; the rest follow the
//! description (mostly nominal, one date, one numeric).

use dq_table::{Schema, SchemaBuilder};
use std::sync::Arc;

/// Engine model-series codes (`BRV`). Includes the paper's `404` and
/// `501`.
pub const BRV_CODES: [&str; 12] =
    ["401", "402", "403", "404", "407", "501", "541", "601", "602", "611", "904", "906"];

/// Base engine model codes (`GBM`). Includes the paper's `901` and the
/// deviating `911`.
pub const GBM_CODES: [&str; 8] = ["901", "902", "904", "911", "912", "921", "932", "941"];

/// Component/variant codes (`KBM`). Includes the paper's `01`.
pub const KBM_CODES: [&str; 8] = ["01", "02", "03", "04", "05", "07", "09", "11"];

/// Manufacturing plant codes.
pub const PLANT_CODES: [&str; 6] = ["B10", "B20", "M05", "M07", "U30", "U44"];

/// Sales series codes.
pub const SERIES_CODES: [&str; 5] = ["IND", "MAR", "GEN", "AGG", "PWR"];

/// Power-class codes (derived from displacement).
pub const POWER_CODES: [&str; 6] = ["P040", "P075", "P110", "P180", "P250", "P400"];

/// Attribute indices into the engine schema, in declaration order.
pub mod attr {
    /// Model series (`BRV`).
    pub const BRV: usize = 0;
    /// Base engine model (`GBM`).
    pub const GBM: usize = 1;
    /// Component code (`KBM`).
    pub const KBM: usize = 2;
    /// Manufacturing plant.
    pub const PLANT: usize = 3;
    /// Sales series.
    pub const SERIES: usize = 4;
    /// Power class.
    pub const POWER: usize = 5;
    /// Displacement in cm³ (numeric).
    pub const DISPLACEMENT: usize = 6;
    /// Production date.
    pub const PROD_DATE: usize = 7;
}

/// Build the 8-attribute engine-composition schema.
pub fn engine_schema() -> Arc<Schema> {
    SchemaBuilder::new()
        .nominal("brv", BRV_CODES)
        .nominal("gbm", GBM_CODES)
        .nominal("kbm", KBM_CODES)
        .nominal("plant", PLANT_CODES)
        .nominal("series", SERIES_CODES)
        .nominal("power", POWER_CODES)
        .integer("displacement", 600.0, 16_000.0)
        .date_ymd("prod_date", (1990, 1, 1), (2002, 12, 31))
        .build()
        .expect("engine schema is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_paper_description() {
        let s = engine_schema();
        assert_eq!(s.len(), 8, "8 attributes like the QUIS table");
        // Mostly nominal, one numeric, one date.
        let nominal = s.attributes().iter().filter(|a| !a.ty.is_ordered()).count();
        assert_eq!(nominal, 6);
        assert_eq!(s.index_of("brv"), Some(attr::BRV));
        assert_eq!(s.index_of("prod_date"), Some(attr::PROD_DATE));
        // The paper's codes are present.
        assert_eq!(s.attr(attr::BRV).code("404"), Some(3));
        assert_eq!(s.attr(attr::BRV).code("501"), Some(5));
        assert_eq!(s.attr(attr::GBM).code("901"), Some(0));
        assert_eq!(s.attr(attr::GBM).code("911"), Some(3));
        assert_eq!(s.attr(attr::KBM).code("01"), Some(0));
    }
}
