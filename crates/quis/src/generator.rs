//! The synthetic QUIS benchmark generator.
//!
//! QUIS itself is 70 GB of proprietary DaimlerChrysler warranty data;
//! this generator produces the closest public equivalent of the
//! engine-composition excerpt audited in sec. 6.2: ~200k records over
//! 8 attributes whose joint distribution follows the family catalogue
//! (strong nominal dependencies, a date and a numeric attribute), plus
//! "coding errors, misspellings, typing errors, \[and\] data load
//! process failures" injected by the `dq-pollute` suite with a known
//! ground-truth log. The audit tool sees the same *shape* of data the
//! paper describes, and every detection can be verified.

use crate::families::{families, power_class_of, Family};
use crate::schema::{attr, engine_schema};
use dq_pollute::{pollute, Polluter, PollutionConfig, PollutionLog, PollutionStep};
use dq_stats::{weighted_choice, DistributionSpec};
use dq_table::{date::days_from_civil, Table, Value};
use rand::Rng;

/// Configuration of the QUIS benchmark.
#[derive(Debug, Clone)]
pub struct QuisConfig {
    /// Number of clean records (the paper's excerpt has ~200k).
    pub n_rows: usize,
    /// Error-injection suite (defaults mimic "coding errors,
    /// misspellings, typing errors, or data load process failures" at
    /// a few percent prevalence).
    pub pollution: PollutionConfig,
}

impl Default for QuisConfig {
    fn default() -> Self {
        QuisConfig { n_rows: 200_000, pollution: default_pollution() }
    }
}

impl QuisConfig {
    /// A scaled-down benchmark (same structure, fewer rows).
    pub fn with_rows(mut self, n_rows: usize) -> Self {
        self.n_rows = n_rows;
        self
    }
}

/// The QUIS-specific pollution suite: coding errors on the model
/// category codes, load-failure NULLs anywhere, displacement
/// truncation, plant/series column mix-ups, occasional duplicates.
pub fn default_pollution() -> PollutionConfig {
    PollutionConfig {
        steps: vec![
            PollutionStep {
                polluter: Polluter::WrongValue { attr: None, dist: DistributionSpec::Uniform },
                activation: 0.012,
            },
            PollutionStep { polluter: Polluter::NullValue { attr: None }, activation: 0.006 },
            PollutionStep {
                polluter: Polluter::Limiter {
                    attr: Some(attr::DISPLACEMENT),
                    lower_frac: 0.05,
                    upper_frac: 0.85,
                },
                activation: 0.004,
            },
            PollutionStep {
                polluter: Polluter::Switcher { attrs: Some((attr::PLANT, attr::SERIES)) },
                activation: 0.003,
            },
            PollutionStep { polluter: Polluter::Duplicator { p_delete: 0.25 }, activation: 0.002 },
        ],
        factor: 1.0,
    }
}

/// A generated QUIS benchmark: dirty table + ground truth.
#[derive(Debug, Clone)]
pub struct QuisBenchmark {
    /// The clean table (before error injection).
    pub clean: Table,
    /// The dirty table the audit runs on.
    pub dirty: Table,
    /// Ground-truth pollution log.
    pub log: PollutionLog,
}

/// Generate a QUIS benchmark.
pub fn generate_quis<R: Rng + ?Sized>(config: &QuisConfig, rng: &mut R) -> QuisBenchmark {
    let schema = engine_schema();
    let fams = families();
    let weights: Vec<f64> = fams.iter().map(|f| f.weight).collect();
    let mut clean = Table::with_capacity(schema.clone(), config.n_rows);
    let mut record = vec![Value::Null; schema.len()];
    for _ in 0..config.n_rows {
        let fam = &fams[weighted_choice(rng, &weights)];
        fill_record(fam, &mut record, rng);
        clean.push_row(&record).expect("generated record matches schema");
    }
    let (dirty, log) = pollute(&clean, &config.pollution, rng);
    QuisBenchmark { clean, dirty, log }
}

fn fill_record<R: Rng + ?Sized>(fam: &Family, record: &mut [Value], rng: &mut R) {
    record[attr::BRV] = Value::Nominal(fam.brv);
    record[attr::GBM] = Value::Nominal(fam.gbm);
    record[attr::KBM] = Value::Nominal(fam.kbm[rng.gen_range(0..fam.kbm.len())]);
    let plant_weights: Vec<f64> = fam.plants.iter().map(|&(_, w)| w).collect();
    record[attr::PLANT] = Value::Nominal(fam.plants[weighted_choice(rng, &plant_weights)].0);
    record[attr::SERIES] = Value::Nominal(fam.series);
    let displacement = rng.gen_range(fam.displacement.0..=fam.displacement.1);
    record[attr::DISPLACEMENT] = Value::Number(displacement as f64);
    record[attr::POWER] = Value::Nominal(power_class_of(displacement));
    let base = days_from_civil(1990, 1, 1);
    let day = base + rng.gen_range(fam.prod_window_days.0..=fam.prod_window_days.1);
    record[attr::PROD_DATE] = Value::Date(day);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_logic::{eval::violations, parse_rule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> QuisBenchmark {
        let cfg = QuisConfig::default().with_rows(20_000);
        generate_quis(&cfg, &mut StdRng::seed_from_u64(42))
    }

    #[test]
    fn clean_data_follows_the_paper_rules() {
        let b = small();
        let schema = b.clean.schema();
        let rule1 = parse_rule(schema, "brv = 404 -> gbm = 901").unwrap();
        let rule2 = parse_rule(schema, "kbm = 01 and gbm = 901 -> brv = 501").unwrap();
        assert!(violations(&rule1, &b.clean).is_empty());
        assert!(violations(&rule2, &b.clean).is_empty());
        // The premises occur with roughly the paper's share.
        let n404 = b.clean.count_where(attr::BRV, |v| v == Value::Nominal(3));
        let share = n404 as f64 / b.clean.n_rows() as f64;
        assert!((share - 0.0806).abs() < 0.01, "BRV=404 share {share}");
    }

    #[test]
    fn dirty_data_violates_some_rules() {
        let b = small();
        let schema = b.dirty.schema();
        let rule1 = parse_rule(schema, "brv = 404 -> gbm = 901").unwrap();
        let viols = violations(&rule1, &b.dirty);
        assert!(!viols.is_empty(), "pollution should break the headline rule somewhere");
        // Each violating row is a logged corruption.
        for r in viols {
            assert!(b.log.is_row_corrupted(r), "row {r} violates the rule but is not in the log");
        }
    }

    #[test]
    fn prevalence_in_the_paper_ballpark() {
        let b = small();
        let p = b.log.prevalence();
        // The paper flags ~6000 of 200k (3%); our injection sits in the
        // same few-percent band.
        assert!((0.01..0.08).contains(&p), "prevalence {p}");
    }

    #[test]
    fn power_class_tracks_displacement_in_clean_data() {
        let b = small();
        for r in (0..b.clean.n_rows()).step_by(97) {
            let d = b.clean.get(r, attr::DISPLACEMENT).as_numeric().unwrap() as i64;
            assert_eq!(b.clean.get(r, attr::POWER), Value::Nominal(power_class_of(d)), "row {r}");
        }
    }

    #[test]
    fn generation_is_reproducible_and_scalable() {
        let cfg = QuisConfig::default().with_rows(500);
        let a = generate_quis(&cfg, &mut StdRng::seed_from_u64(7));
        let b = generate_quis(&cfg, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.clean.n_rows(), 500);
        assert_eq!(a.dirty.n_rows(), b.dirty.n_rows());
        for r in (0..a.dirty.n_rows()).step_by(13) {
            assert_eq!(a.dirty.row(r), b.dirty.row(r));
        }
    }

    #[test]
    fn clean_table_is_domain_clean() {
        let b = small();
        assert!(b.clean.domain_violations().is_empty());
    }
}
