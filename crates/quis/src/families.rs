//! Engine families: the generative ground truth of the synthetic QUIS
//! table.
//!
//! "Domain experts had defined some characteristic domain dependencies
//! over the QUIS schema" (sec. 3.2) — here those dependencies are
//! encoded as *families*: each family fixes the model-series code
//! (`BRV`), the base engine model (`GBM`), the admissible component
//! codes (`KBM`), a plant mix, a sales series, a displacement range
//! and a production window. Two families reproduce the paper's example
//! rules with matching supports at 200k rows:
//!
//! * `BRV = 404 → GBM = 901` (≈ 16118 records at 200k);
//! * `KBM = 01 ∧ GBM = 901 → BRV = 501` (≈ 9530 records at 200k).

/// One engine family.
#[derive(Debug, Clone)]
pub struct Family {
    /// Sampling weight (relative share of production volume).
    pub weight: f64,
    /// `BRV` code index.
    pub brv: u32,
    /// `GBM` code index.
    pub gbm: u32,
    /// Admissible `KBM` code indices (uniform within).
    pub kbm: &'static [u32],
    /// Plant code indices with weights.
    pub plants: &'static [(u32, f64)],
    /// Sales-series code index.
    pub series: u32,
    /// Displacement range in cm³ (inclusive).
    pub displacement: (i64, i64),
    /// Production window as day numbers relative to 1990-01-01.
    pub prod_window_days: (i64, i64),
}

/// Indices into the code lists of [`crate::schema`]; keep in sync with
/// the `*_CODES` constants there.
mod code {
    pub const BRV_404: u32 = 3;
    pub const BRV_501: u32 = 5;
    pub const GBM_901: u32 = 0;
    pub const KBM_01: u32 = 0;
}

/// The family catalogue. Weights sum to 1 (checked in tests).
pub fn families() -> Vec<Family> {
    use code::*;
    vec![
        // The paper's first rule: BRV 404, always GBM 901, KBM ≠ 01.
        Family {
            weight: 0.0806, // ≈ 16118 / 200_000
            brv: BRV_404,
            gbm: GBM_901,
            kbm: &[1, 2, 3],
            plants: &[(0, 0.7), (1, 0.3)],
            series: 0,
            displacement: (1800, 2400),
            prod_window_days: (730, 2920), // 1992-1998
        },
        // The paper's second rule: KBM 01 ∧ GBM 901 ⇒ BRV 501.
        Family {
            weight: 0.0477, // ≈ 9530 / 200_000
            brv: BRV_501,
            gbm: GBM_901,
            kbm: &[KBM_01],
            plants: &[(2, 0.6), (3, 0.4)],
            series: 1,
            displacement: (2400, 3200),
            prod_window_days: (1095, 3650), // 1993-2000
        },
        Family {
            weight: 0.10,
            brv: 0, // 401
            gbm: 1, // 902
            kbm: &[1, 2],
            plants: &[(0, 0.5), (4, 0.5)],
            series: 2,
            displacement: (600, 1400),
            prod_window_days: (0, 1825),
        },
        Family {
            weight: 0.12,
            brv: 1, // 402
            gbm: 2, // 904
            kbm: &[2, 3, 4],
            plants: &[(1, 1.0)],
            series: 2,
            displacement: (1200, 2000),
            prod_window_days: (365, 2555),
        },
        Family {
            weight: 0.11,
            brv: 2, // 403
            gbm: 3, // 911
            kbm: &[0, 4],
            plants: &[(2, 0.8), (5, 0.2)],
            series: 3,
            displacement: (2800, 4200),
            prod_window_days: (1460, 3285),
        },
        Family {
            weight: 0.10,
            brv: 4, // 407
            gbm: 4, // 912
            kbm: &[5, 6],
            plants: &[(3, 1.0)],
            series: 3,
            displacement: (3800, 6000),
            prod_window_days: (1825, 4015),
        },
        Family {
            weight: 0.09,
            brv: 6, // 541
            gbm: 5, // 921
            kbm: &[1, 5],
            plants: &[(4, 0.5), (5, 0.5)],
            series: 4,
            displacement: (5500, 9000),
            prod_window_days: (2190, 4380),
        },
        Family {
            weight: 0.09,
            brv: 7, // 601
            gbm: 6, // 932
            kbm: &[3, 7],
            plants: &[(0, 0.3), (2, 0.7)],
            series: 0,
            displacement: (900, 1600),
            prod_window_days: (0, 2190),
        },
        Family {
            weight: 0.08,
            brv: 8, // 602
            gbm: 6, // 932 (shares GBM with 601 — non-functional BRV↔GBM)
            kbm: &[2, 6],
            plants: &[(1, 0.6), (5, 0.4)],
            series: 1,
            displacement: (1600, 2600),
            prod_window_days: (1095, 3285),
        },
        Family {
            weight: 0.07,
            brv: 9, // 611
            gbm: 7, // 941
            kbm: &[0, 1, 2],
            plants: &[(4, 1.0)],
            series: 4,
            displacement: (9000, 14_000),
            prod_window_days: (2555, 4745),
        },
        Family {
            weight: 0.06,
            brv: 10, // 904
            gbm: 4,  // 912 (shares GBM with 407)
            kbm: &[4, 5],
            plants: &[(3, 0.5), (5, 0.5)],
            series: 3,
            displacement: (4200, 7000),
            prod_window_days: (2920, 4745),
        },
        Family {
            weight: 0.0517,
            brv: 11, // 906
            gbm: 5,  // 921 (shares GBM with 541)
            kbm: &[6, 7],
            plants: &[(2, 0.4), (4, 0.6)],
            series: 4,
            displacement: (10_000, 16_000),
            prod_window_days: (3285, 4745),
        },
    ]
}

/// Deterministic power class from displacement — the numeric→nominal
/// dependency the auditor should rediscover.
pub fn power_class_of(displacement_ccm: i64) -> u32 {
    match displacement_ccm {
        ..=1400 => 0,
        1401..=2400 => 1,
        2401..=3800 => 2,
        3801..=6500 => 3,
        6501..=10_000 => 4,
        _ => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{attr, engine_schema};

    #[test]
    fn weights_sum_to_one() {
        let total: f64 = families().iter().map(|f| f.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
    }

    #[test]
    fn paper_rules_hold_in_the_catalogue() {
        let fams = families();
        let schema = engine_schema();
        let brv404 = schema.attr(attr::BRV).code("404").unwrap();
        let brv501 = schema.attr(attr::BRV).code("501").unwrap();
        let gbm901 = schema.attr(attr::GBM).code("901").unwrap();
        let kbm01 = schema.attr(attr::KBM).code("01").unwrap();
        for f in &fams {
            // BRV = 404 → GBM = 901.
            if f.brv == brv404 {
                assert_eq!(f.gbm, gbm901);
                assert!(!f.kbm.contains(&kbm01), "404 must avoid KBM 01");
            }
            // KBM = 01 ∧ GBM = 901 → BRV = 501.
            if f.gbm == gbm901 && f.kbm.contains(&kbm01) {
                assert_eq!(f.brv, brv501);
            }
        }
        // Both premise families exist.
        assert!(fams.iter().any(|f| f.brv == brv404));
        assert!(fams.iter().any(|f| f.brv == brv501 && f.kbm == [kbm01]));
    }

    #[test]
    fn catalogue_is_schema_consistent() {
        let fams = families();
        let schema = engine_schema();
        for f in &fams {
            assert!(f.brv < 12 && f.gbm < 8 && f.series < 5);
            assert!(f.kbm.iter().all(|&k| k < 8));
            assert!(f.plants.iter().all(|&(p, w)| p < 6 && w > 0.0));
            let (lo, hi) = f.displacement;
            assert!((600..=16_000).contains(&lo) && lo <= hi && hi <= 16_000);
            let (d0, d1) = f.prod_window_days;
            assert!(d0 <= d1 && d1 <= 4745);
        }
        let _ = schema; // schema bounds asserted via literals above
    }

    #[test]
    fn power_classes_cover_all_codes() {
        let mut seen = [false; 6];
        for d in (600..=16_000).step_by(100) {
            seen[power_class_of(d) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        assert_eq!(power_class_of(600), 0);
        assert_eq!(power_class_of(16_000), 5);
    }
}
