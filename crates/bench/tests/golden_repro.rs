//! Golden regression test for the `repro` binary's figure/table
//! numbers.
//!
//! The parallel audit engine (and every future refactor) must not
//! silently drift the paper reproduction. This suite pins the key
//! numbers two ways:
//!
//! 1. the experiment functions `repro` calls are evaluated at a small
//!    fixed scale and compared line-by-line against the snapshot in
//!    `tests/golden/repro_golden.txt` (timing measures excluded — they
//!    are the only legitimately nondeterministic outputs);
//! 2. the actual `repro` binary is executed (`--smoke fig3`) and its
//!    CSV rows are checked against the same deterministic values.
//!
//! Regenerate the snapshot after an *intentional* change with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p dq_bench --test golden_repro
//! ```

use dq_eval::{ablation, classifier_comparison, fig3, fig4, fig5, quis_audit, Scale, Series};
use std::fmt::Write as _;
use std::path::PathBuf;

/// The fixed scale behind the snapshot — small enough for CI, large
/// enough that every experiment exercises real structure.
fn golden_scale() -> Scale {
    Scale {
        rows: 800,
        rules: 10,
        record_points: vec![300, 800],
        rule_points: vec![0, 10],
        factor_points: vec![1.0, 3.0],
        comparison_rows: 500,
        quis_rows: 2500,
        replicates: 1,
        seed: 2003,
        threads: dq_exec::Parallelism::AUTO,
    }
}

fn golden_path() -> PathBuf {
    // The workspace-root snapshot directory, from this crate's manifest.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/repro_golden.txt")
}

/// `true` for measures whose values are wall-clock timings.
fn is_timing(name: &str) -> bool {
    name.ends_with("_secs")
}

/// Canonical, timing-free rendering of a sweep series.
fn render_series(s: &Series) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## {}", s.title);
    for p in &s.points {
        let _ = write!(out, "{}={}", s.x_name, p.x);
        for (name, v) in &p.measures {
            if !is_timing(name) {
                let _ = write!(out, " {name}={v:.6}");
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// The full snapshot document.
fn render_snapshot(scale: &Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# golden repro numbers (timings excluded)");
    let _ = writeln!(
        out,
        "# scale: rows={} rules={} quis_rows={} seed={}",
        scale.rows, scale.rules, scale.quis_rows, scale.seed
    );
    out.push_str(&render_series(&fig3(scale).expect("fig3 runs")));
    out.push_str(&render_series(&fig4(scale).expect("fig4 runs")));
    out.push_str(&render_series(&fig5(scale).expect("fig5 runs")));
    for comparison in [
        classifier_comparison(scale).expect("comparison runs"),
        ablation(scale).expect("ablation runs"),
    ] {
        let _ = writeln!(out, "## {}", comparison.title);
        for row in &comparison.rows {
            let _ = write!(out, "{}:", row.name);
            for (name, v) in &row.measures {
                if !is_timing(name) {
                    let _ = write!(out, " {name}={v:.6}");
                }
            }
            let _ = writeln!(out);
        }
    }
    let q = quis_audit(scale).expect("quis audit runs");
    let _ = writeln!(out, "## quis audit (sec. 6.2)");
    let _ = writeln!(out, "n_rows={}", q.n_rows);
    let _ = writeln!(out, "n_suspicious={}", q.n_suspicious);
    let _ = writeln!(out, "sensitivity={:.6}", q.sensitivity);
    let _ = writeln!(out, "specificity={:.6}", q.specificity);
    let _ = writeln!(out, "top50_precision={:.6}", q.top50_precision);
    let _ = writeln!(out, "top_confidence={:.6}", q.top_confidence);
    for r in &q.top_rules {
        let _ = writeln!(out, "rule: {r}");
    }
    out
}

#[test]
fn repro_numbers_match_the_golden_snapshot() {
    let actual = render_snapshot(&golden_scale());
    let path = golden_path();
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()));
    for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
        assert_eq!(a, e, "golden drift at line {} of {}", i + 1, path.display());
    }
    assert_eq!(actual.lines().count(), expected.lines().count(), "golden snapshot length changed");
}

#[test]
fn repro_binary_reproduces_the_deterministic_fig3_columns() {
    // Run the real binary at smoke scale and check its CSV rows open
    // with the exact (records, sensitivity, specificity, correction)
    // values the library computes — the timing columns further right
    // are the only part allowed to vary.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--smoke", "fig3"])
        .output()
        .expect("repro binary runs");
    assert!(out.status.success(), "repro exited with {:?}", out.status);
    let stdout = String::from_utf8(out.stdout).expect("repro output is UTF-8");
    assert!(stdout.contains("records,sensitivity,specificity"), "CSV header missing:\n{stdout}");
    let series = fig3(&Scale::smoke()).expect("fig3 runs");
    for p in &series.points {
        let mut prefix = format!("{}", p.x as u64);
        for (name, v) in p.measures.iter().take(3) {
            assert!(!is_timing(name));
            let _ = write!(prefix, ",{v:.4}");
        }
        assert!(
            stdout.lines().any(|l| l.starts_with(&prefix)),
            "expected a CSV row starting with `{prefix}` in repro output:\n{stdout}"
        );
    }
}
