//! Structure-induction scaling: the offline phase of the audit
//! ("the time-consuming structure induction can be prepared off-line").
//! One C4.5 model per attribute, at growing record counts, on the
//! sec. 6.1 baseline and the synthetic QUIS table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dq_bench::{baseline_fixture, quis_fixture};

fn induction_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("induction/baseline");
    for &n in &[1_000usize, 5_000, 10_000] {
        let fixture = baseline_fixture(n, 100, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(n), &fixture, |b, f| {
            b.iter(|| f.induce())
        });
    }
    group.finish();
}

fn induction_quis(c: &mut Criterion) {
    let mut group = c.benchmark_group("induction/quis");
    for &n in &[10_000usize, 50_000] {
        let fixture = quis_fixture(n, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(n), &fixture, |b, f| {
            b.iter(|| f.induce())
        });
    }
    group.finish();
}

criterion_group!(benches, induction_baseline, induction_quis);
criterion_main!(benches);
