//! Structure-induction scaling: the offline phase of the audit
//! ("the time-consuming structure induction can be prepared off-line").
//! One C4.5 model per attribute, at growing record counts, on the
//! sec. 6.1 baseline and the synthetic QUIS table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dq_bench::{baseline_fixture, quis_fixture};
use dq_core::{AuditConfig, Auditor};

fn induction_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("induction/baseline");
    for &n in &[1_000usize, 5_000, 10_000] {
        let fixture = baseline_fixture(n, 100, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(n), &fixture, |b, f| {
            b.iter(|| f.induce())
        });
    }
    group.finish();
}

fn induction_quis(c: &mut Criterion) {
    let mut group = c.benchmark_group("induction/quis");
    for &n in &[10_000usize, 50_000] {
        let fixture = quis_fixture(n, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(n), &fixture, |b, f| {
            b.iter(|| f.induce())
        });
    }
    group.finish();
}

/// The parallel fan-out (one C4.5 induction per attribute across the
/// `dq_exec` pool) against the exact serial path (`threads = Some(1)`),
/// on the large fixtures. Equivalence of the *results* is proven by
/// `tests/parallel_equivalence.rs`; this measures the wall-clock side.
fn induction_thread_scaling(c: &mut Criterion) {
    for (name, fixture, rows) in [
        ("induction/threads/baseline-10k", baseline_fixture(10_000, 100, 42), 10_000u64),
        ("induction/threads/quis-50k", quis_fixture(50_000, 42), 50_000),
    ] {
        let mut group = c.benchmark_group(name);
        for &threads in &[1usize, 2, 4, 8] {
            let auditor =
                Auditor::new(AuditConfig { threads: threads.into(), ..AuditConfig::default() });
            group.throughput(Throughput::Elements(rows));
            group.sample_size(10);
            group.bench_with_input(BenchmarkId::from_parameter(threads), &auditor, |b, a| {
                b.iter(|| a.induce(&fixture.dirty).expect("fixture tables are auditable"))
            });
        }
        group.finish();
    }
}

/// The columnar **presorted** induction (PR 4's hot-path rewrite)
/// against the retained row-at-a-time reference implementation, single
/// threaded so the measured gap is purely the algorithmic/layout change
/// (per-node re-sorts and `Value` cell access vs one-off presort and
/// dense columns). Outputs are byte-identical — pinned by
/// `tests/columnar_equivalence.rs`; this measures the wall-clock side.
fn induction_presort(c: &mut Criterion) {
    for (name, fixture, rows) in [
        ("induction/presort/baseline-10k", baseline_fixture(10_000, 100, 42), 10_000u64),
        ("induction/presort/quis-50k", quis_fixture(50_000, 42), 50_000),
    ] {
        let auditor = Auditor::new(AuditConfig { threads: 1.into(), ..AuditConfig::default() });
        let mut group = c.benchmark_group(name);
        group.throughput(Throughput::Elements(rows));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter("reference"), &auditor, |b, a| {
            b.iter(|| a.induce_reference(&fixture.dirty).expect("fixture tables are auditable"))
        });
        group.bench_with_input(BenchmarkId::from_parameter("presorted"), &auditor, |b, a| {
            b.iter(|| a.induce(&fixture.dirty).expect("fixture tables are auditable"))
        });
        group.finish();
    }
}

/// SPRINT-style intra-attribute split search (the numeric boundary-cut
/// scan and the nominal count-matrix accumulation shard across the
/// pool *inside* every tree node) against the serial split search.
/// Per-attribute fan-out is pinned to one thread on both sides so the
/// measured gap is the intra-node parallelism alone — the axis that
/// keeps scaling once workers outnumber attributes. Outputs are
/// byte-identical at every thread count (pinned by the dq_mining
/// `parallel_induction` test and dq_core's `split_threads` test);
/// the same-run `reference` sibling makes the speedup a ratio that
/// survives runner-speed changes.
fn induction_split_parallel(c: &mut Criterion) {
    let fixture = quis_fixture(50_000, 42);
    let mut group = c.benchmark_group("induction/parallel/quis-50k");
    group.throughput(Throughput::Elements(50_000));
    group.sample_size(10);
    let reference = Auditor::new(AuditConfig { threads: 1.into(), ..AuditConfig::default() });
    group.bench_with_input(BenchmarkId::from_parameter("reference"), &reference, |b, a| {
        b.iter(|| a.induce(&fixture.dirty).expect("fixture tables are auditable"))
    });
    for &split in &[2usize, 4] {
        let auditor = Auditor::new(AuditConfig {
            threads: 1.into(),
            split_threads: split.into(),
            ..AuditConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("split-{split}")),
            &auditor,
            |b, a| b.iter(|| a.induce(&fixture.dirty).expect("fixture tables are auditable")),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    induction_baseline,
    induction_quis,
    induction_presort,
    induction_thread_scaling,
    induction_split_parallel
);
criterion_main!(benches);
