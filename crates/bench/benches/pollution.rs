//! Pollution-pipeline throughput (sec. 4.2): the five-polluter suite
//! over growing tables and pollution factors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dq_eval::Baseline;
use dq_pollute::{pollute, PollutionConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pollution(c: &mut Criterion) {
    let baseline = Baseline::new(5);
    let mut rng = StdRng::seed_from_u64(5);
    let benchmark = baseline.generator(50, 10_000).generate(&mut rng);
    let mut group = c.benchmark_group("pollution/standard");
    for &factor in &[1.0f64, 5.0] {
        let cfg = PollutionConfig::standard().with_factor(factor);
        group.throughput(Throughput::Elements(benchmark.clean.n_rows() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(factor), &cfg, |b, cfg| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(9);
                pollute(&benchmark.clean, cfg, &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, pollution);
criterion_main!(benches);
