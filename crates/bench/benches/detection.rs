//! Deviation-detection scaling: the online phase of the audit ("new
//! data can be checked for deviations and loaded quickly"). The
//! structure model is induced once per size; the measurement covers
//! record checking only.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dq_bench::{baseline_fixture, quis_fixture};
use dq_core::{AssociationAuditConfig, AssociationAuditor, AuditConfig, Auditor};

fn detection_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("detection/baseline");
    for &n in &[1_000usize, 5_000, 10_000] {
        let fixture = baseline_fixture(n, 100, 42);
        let model = fixture.induce();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &(&fixture, &model), |b, (f, m)| {
            b.iter(|| f.auditor.detect(m, &f.dirty))
        });
    }
    group.finish();
}

fn detection_quis(c: &mut Criterion) {
    let mut group = c.benchmark_group("detection/quis");
    for &n in &[10_000usize, 50_000] {
        let fixture = quis_fixture(n, 42);
        let model = fixture.induce();
        group.throughput(Throughput::Elements(n as u64));
        group.sample_size(20);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(&fixture, &model), |b, (f, m)| {
            b.iter(|| f.auditor.detect(m, &f.dirty))
        });
    }
    group.finish();
}

/// The sharded record scan (one row chunk per worker) against the
/// exact serial path (`threads = Some(1)`), on the large fixtures. The
/// structure model is induced once and shared — detection output is
/// identical at every thread count (see `tests/parallel_equivalence.rs`).
fn detection_thread_scaling(c: &mut Criterion) {
    for (name, fixture, rows) in [
        ("detection/threads/baseline-10k", baseline_fixture(10_000, 100, 42), 10_000u64),
        ("detection/threads/quis-50k", quis_fixture(50_000, 42), 50_000),
    ] {
        let model = fixture.induce();
        let mut group = c.benchmark_group(name);
        for &threads in &[1usize, 2, 4, 8] {
            let auditor =
                Auditor::new(AuditConfig { threads: threads.into(), ..AuditConfig::default() });
            group.throughput(Throughput::Elements(rows));
            group.sample_size(10);
            group.bench_with_input(BenchmarkId::from_parameter(threads), &auditor, |b, a| {
                b.iter(|| a.detect(&model, &fixture.dirty))
            });
        }
        group.finish();
    }
}

/// The flattened-tree columnar scan (PR 4's hot-path rewrite) against
/// the retained row-at-a-time reference scan (per-row `Vec<Value>`
/// materialization, boxed-node walks, a count allocation per
/// prediction), single threaded so the measured gap is purely the
/// layout change. Reports are byte-identical — pinned by
/// `tests/columnar_equivalence.rs`.
fn detection_flat(c: &mut Criterion) {
    for (name, fixture, rows) in [
        ("detection/flat/baseline-10k", baseline_fixture(10_000, 100, 42), 10_000u64),
        ("detection/flat/quis-50k", quis_fixture(50_000, 42), 50_000),
    ] {
        let model = fixture.induce();
        let auditor = Auditor::new(AuditConfig { threads: 1.into(), ..AuditConfig::default() });
        let mut group = c.benchmark_group(name);
        group.throughput(Throughput::Elements(rows));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter("reference"), &auditor, |b, a| {
            b.iter(|| a.detect_reference(&model, &fixture.dirty))
        });
        group.bench_with_input(BenchmarkId::from_parameter("flat"), &auditor, |b, a| {
            b.iter(|| a.detect(&model, &fixture.dirty))
        });
        group.finish();
    }
}

/// The association auditor's compiled violation programs (the mined
/// rules lowered once onto `dq_logic::program`, records checked
/// through coded `RecordView`s) against the retained interpreted
/// `Apriori::violated` item walk, single threaded. Reports are
/// byte-identical — pinned by `tests/audit_program_equivalence.rs`;
/// the same-run `reference` sibling turns the speedup into a
/// runner-independent ratio.
fn detection_association(c: &mut Criterion) {
    for (name, fixture, rows) in [
        ("detection/association/baseline-10k", baseline_fixture(10_000, 100, 42), 10_000u64),
        ("detection/association/quis-50k", quis_fixture(50_000, 42), 50_000),
    ] {
        let auditor = AssociationAuditor::new(AssociationAuditConfig {
            threads: 1.into(),
            ..AssociationAuditConfig::default()
        });
        let (miner, _) = auditor.run(&fixture.dirty).expect("fixture tables are minable");
        let mut group = c.benchmark_group(name);
        group.throughput(Throughput::Elements(rows));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter("reference"), &auditor, |b, a| {
            b.iter(|| a.detect_reference(&miner, &fixture.dirty))
        });
        group.bench_with_input(BenchmarkId::from_parameter("compiled"), &auditor, |b, a| {
            b.iter(|| a.detect(&miner, &fixture.dirty))
        });
        group.finish();
    }
}

criterion_group!(
    benches,
    detection_baseline,
    detection_quis,
    detection_flat,
    detection_thread_scaling,
    detection_association
);
criterion_main!(benches);
