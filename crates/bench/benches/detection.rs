//! Deviation-detection scaling: the online phase of the audit ("new
//! data can be checked for deviations and loaded quickly"). The
//! structure model is induced once per size; the measurement covers
//! record checking only.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dq_bench::{baseline_fixture, quis_fixture};

fn detection_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("detection/baseline");
    for &n in &[1_000usize, 5_000, 10_000] {
        let fixture = baseline_fixture(n, 100, 42);
        let model = fixture.induce();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &(&fixture, &model), |b, (f, m)| {
            b.iter(|| f.auditor.detect(m, &f.dirty))
        });
    }
    group.finish();
}

fn detection_quis(c: &mut Criterion) {
    let mut group = c.benchmark_group("detection/quis");
    for &n in &[10_000usize, 50_000] {
        let fixture = quis_fixture(n, 42);
        let model = fixture.induce();
        group.throughput(Throughput::Elements(n as u64));
        group.sample_size(20);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(&fixture, &model), |b, (f, m)| {
            b.iter(|| f.auditor.detect(m, &f.dirty))
        });
    }
    group.finish();
}

criterion_group!(benches, detection_baseline, detection_quis);
criterion_main!(benches);
