//! Satisfiability / naturality checking costs (sec. 4.1.3) — the inner
//! loop of rule generation ("as we will see … it is expensive to check
//! this condition").

use criterion::{criterion_group, criterion_main, Criterion};
use dq_eval::baseline_schema;
use dq_logic::{is_natural_rule, is_natural_rule_set, satisfiable};
use dq_tdg::{AtomSampler, AtomWeights, FormulaShape};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sat_and_naturality(c: &mut Criterion) {
    let schema = baseline_schema();
    let sampler = AtomSampler::new(&schema, AtomWeights::default());
    let shape = FormulaShape { min_atoms: 2, max_atoms: 3, p_disjunction: 0.2 };
    let mut rng = StdRng::seed_from_u64(3);
    let formulas: Vec<_> =
        (0..64).map(|_| sampler.sample_formula(&schema, &shape, &mut rng)).collect();
    c.bench_function("logic/satisfiable_x64", |b| {
        b.iter(|| formulas.iter().filter(|f| satisfiable(&schema, f)).count())
    });

    let rules: Vec<dq_logic::Rule> = {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = dq_tdg::RuleGenConfig { n_rules: 20, ..dq_tdg::RuleGenConfig::default() };
        dq_tdg::generate_rule_set(&schema, &cfg, &mut rng).0.rules
    };
    c.bench_function("logic/is_natural_rule_x20", |b| {
        b.iter(|| rules.iter().filter(|r| is_natural_rule(&schema, r)).count())
    });
    c.bench_function("logic/is_natural_rule_set_20", |b| {
        b.iter(|| is_natural_rule_set(&schema, &rules))
    });
}

criterion_group!(benches, sat_and_naturality);
criterion_main!(benches);
