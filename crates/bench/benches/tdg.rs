//! Test-data-generator throughput: natural-rule-set generation and
//! rule-repair data generation (sec. 4.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dq_eval::Baseline;
use dq_tdg::generate_rule_set;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rule_generation(c: &mut Criterion) {
    let baseline = Baseline::new(7);
    let mut group = c.benchmark_group("tdg/rules");
    for &n in &[20usize, 100] {
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                generate_rule_set(&baseline.schema, &baseline.rule_config(n), &mut rng)
            })
        });
    }
    group.finish();
}

fn data_generation(c: &mut Criterion) {
    let baseline = Baseline::new(7);
    let mut rng = StdRng::seed_from_u64(7);
    let (rules, _) = generate_rule_set(&baseline.schema, &baseline.rule_config(100), &mut rng);
    let mut group = c.benchmark_group("tdg/data");
    for &n in &[1_000usize, 10_000] {
        let generator = baseline.generator(100, n);
        group.throughput(Throughput::Elements(n as u64));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(n), &generator, |b, g| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(11);
                g.generate_with_rules(rules.clone(), &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, rule_generation, data_generation);
criterion_main!(benches);
