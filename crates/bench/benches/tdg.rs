//! Test-data-generator throughput: natural-rule-set generation and
//! rule-repair data generation (sec. 4.1).
//!
//! `tdg/rules/*` and `tdg/data/*` time the shipped fast paths (memoized
//! pairwise hygiene, compiled rule programs); the `*-reference` twins
//! time the retained uncached/interpreted paths, which are pinned
//! byte-identical to the fast ones by the equivalence suites. The rule
//! set is built once outside the timed closures, so `tdg/data/*`
//! measures generation only.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dq_eval::Baseline;
use dq_table::BatchSource;
use dq_tdg::{generate_rule_set, generate_rule_set_reference, GenerateStream};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rule_generation(c: &mut Criterion) {
    let baseline = Baseline::new(7);
    let mut group = c.benchmark_group("tdg/rules");
    for &n in &[20usize, 100] {
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                generate_rule_set(&baseline.schema, &baseline.rule_config(n), &mut rng)
            })
        });
    }
    group.finish();
    let mut group = c.benchmark_group("tdg/rules-reference");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter(100), &100usize, |b, &n| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            generate_rule_set_reference(&baseline.schema, &baseline.rule_config(n), &mut rng)
        })
    });
    group.finish();
}

fn data_generation(c: &mut Criterion) {
    let baseline = Baseline::new(7);
    let mut rng = StdRng::seed_from_u64(7);
    let (rules, _) = generate_rule_set(&baseline.schema, &baseline.rule_config(100), &mut rng);
    let mut group = c.benchmark_group("tdg/data");
    // The 1k/10k tiers run single-threaded so their medians track the
    // compiled-evaluation speedup alone; the million-row tier uses the
    // configured default (DQ_THREADS / available cores).
    for &n in &[1_000usize, 10_000, 1_000_000] {
        let mut generator = baseline.generator(100, n);
        if n < 1_000_000 {
            generator.data.threads = 1.into();
        }
        group.throughput(Throughput::Elements(n as u64));
        group.sample_size(if n >= 1_000_000 { 3 } else { 10 });
        group.bench_with_input(BenchmarkId::from_parameter(n), &generator, |b, g| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(11);
                g.generate_with_rules(&rules, &mut rng)
            })
        });
    }
    group.finish();
    // The streamed generator at the million-row tier: drain
    // GenerateStream batch by batch, holding O(chunk) memory. Compare
    // against tdg/data/1000000 to price the streaming redesign.
    let mut group = c.benchmark_group("tdg/stream");
    let generator = baseline.generator(100, 1_000_000);
    group.throughput(Throughput::Elements(1_000_000));
    group.sample_size(3);
    group.bench_with_input(BenchmarkId::from_parameter(1_000_000), &generator, |b, g| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(11);
            let mut stream =
                GenerateStream::new(g.schema.clone(), rules.clone(), g.data.clone(), &mut rng);
            let mut rows = 0usize;
            while let Some(batch) = stream.next_batch().expect("generation cannot fail") {
                rows += batch.n_rows();
            }
            rows
        })
    });
    group.finish();
    // The same streamed drain, checkpointed: a `dq-job v1` journal
    // (cursor + RNG state) fsyncs every 16 batches, exactly what `dq
    // generate --checkpoint --checkpoint-every 16` adds to the hot
    // loop. Compare against tdg/stream/1000000 to price kill-anywhere
    // resumability; the target is <5% overhead.
    let mut group = c.benchmark_group("tdg/stream-checkpointed");
    let generator = baseline.generator(100, 1_000_000);
    let ckpt_root = std::env::temp_dir().join(format!("dq-bench-ckpt-{}", std::process::id()));
    group.throughput(Throughput::Elements(1_000_000));
    group.sample_size(3);
    group.bench_with_input(BenchmarkId::from_parameter(1_000_000), &generator, |b, g| {
        b.iter(|| {
            let mut ckpt =
                dq_job::CheckpointDir::create(&ckpt_root).expect("create checkpoint dir");
            let mut journal = dq_job::Journal::new("bench", 0, g.schema.fingerprint());
            let mut rng = StdRng::seed_from_u64(11);
            let mut stream =
                GenerateStream::new(g.schema.clone(), rules.clone(), g.data.clone(), &mut rng);
            let mut rows = 0usize;
            let mut batches = 0usize;
            while let Some(batch) = stream.next_batch().expect("generation cannot fail") {
                rows += batch.n_rows();
                batches += 1;
                if batches % 16 == 0 {
                    journal.cursor_rows = rows as u64;
                    journal.set_output("clean.csv", dq_job::Watermark::Bytes(rows as u64));
                    ckpt.save(&journal).expect("journal save");
                }
            }
            journal.done = true;
            ckpt.save(&journal).expect("final save");
            rows
        })
    });
    let _ = std::fs::remove_dir_all(&ckpt_root);
    group.finish();
    let mut group = c.benchmark_group("tdg/data-reference");
    let generator = baseline.generator(100, 10_000);
    group.throughput(Throughput::Elements(10_000));
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter(10_000), &generator, |b, g| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(11);
            g.generate_with_rules_reference(&rules, &mut rng)
        })
    });
    group.finish();
}

criterion_group!(benches, rule_generation, data_generation);
criterion_main!(benches);
