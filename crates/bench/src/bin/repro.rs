//! `repro` — regenerate every figure and table of the paper's
//! evaluation (sec. 6).
//!
//! ```text
//! repro [--smoke] [--large] [--threads N] [fig3] [fig4] [fig5] [compare] [ablation] [quis] [all]
//! ```
//!
//! With no experiment argument, `all` is assumed. `--smoke` runs the
//! reduced test scale instead of the paper scale (10k records, 100
//! rules, 200k-row QUIS table). `--large` runs the million-row tier
//! (10⁵–10⁶-row sweeps, two orders above the paper); `--large --smoke`
//! caps that tier at one 10⁵-row point per sweep for CI wall-clock
//! budgets. `--threads N` fixes the sweep worker count (`--threads 1`
//! is the exact legacy serial order); the default uses every hardware
//! thread. The figure/table numbers are identical at every thread
//! count — see `tests/golden/`.

use dq_eval::{ablation, classifier_comparison, fig3, fig4, fig5, quis_audit, Scale, Series};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let large = args.iter().any(|a| a == "--large");
    let mut threads: Option<usize> = None;
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        match args.get(i + 1).and_then(|v| v.parse().ok()) {
            Some(n) => threads = Some(n),
            None => {
                eprintln!("--threads needs a positive integer (got {:?})", args.get(i + 1));
                std::process::exit(2);
            }
        }
    }
    let mut skip_next = false;
    let mut wanted: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--threads" {
                skip_next = true;
                return false;
            }
            *a != "--smoke" && *a != "--large"
        })
        .collect();
    if wanted.is_empty() || wanted.contains(&"all") {
        wanted = vec!["fig3", "fig4", "fig5", "compare", "ablation", "quis"];
    }
    let mut scale = match (large, smoke) {
        (true, true) => Scale::large_smoke(),
        (true, false) => Scale::large(),
        (false, true) => Scale::smoke(),
        (false, false) => Scale::paper(),
    };
    if let Some(n) = threads {
        scale.threads = n.into();
    }
    println!(
        "# repro — Systematic Development of Data Mining-Based Data Quality Tools (VLDB 2003)"
    );
    println!(
        "# scale: {} records, {} rules, QUIS {} rows, {} replicate(s), seed {}, {} sweep thread(s)\n",
        scale.rows,
        scale.rules,
        scale.quis_rows,
        scale.replicates,
        scale.seed,
        scale.threads.resolve()
    );
    for experiment in wanted {
        match experiment {
            "fig3" => print_series(
                &fig3(&scale).expect("fig3 runs"),
                "sensitivity",
                "Figure 3 — influence of the number of records on sensitivity",
            ),
            "fig4" => print_series(
                &fig4(&scale).expect("fig4 runs"),
                "sensitivity",
                "Figure 4 — influence of the number of rules on sensitivity",
            ),
            "fig5" => print_series(
                &fig5(&scale).expect("fig5 runs"),
                "sensitivity",
                "Figure 5 — influence of the pollution factor on sensitivity",
            ),
            "compare" => {
                println!(
                    "## Classifier comparison (sec. 5 'we evaluated different alternatives')\n"
                );
                println!("{}", classifier_comparison(&scale).expect("comparison runs").render());
            }
            "ablation" => {
                println!("## Ablation of the sec. 5.4 adjustments\n");
                println!("{}", ablation(&scale).expect("ablation runs").render());
            }
            "quis" => print_quis(&scale),
            other => {
                eprintln!("unknown experiment `{other}` (try fig3|fig4|fig5|compare|ablation|quis)")
            }
        }
    }
}

fn print_series(series: &Series, headline: &str, title: &str) {
    println!("## {title}\n");
    println!("{}", series.to_csv());
    println!("{}", series.to_ascii(headline, 0.5, 40));
    if let Some(r) = series.correlation("sensitivity", "correction") {
        println!("correlation(sensitivity, correction) = {r:.3}\n");
    }
}

fn print_quis(scale: &Scale) {
    println!("## QUIS audit (sec. 6.2)\n");
    let s = quis_audit(scale).expect("quis audit runs");
    println!("rows audited:        {}", s.n_rows);
    println!("total wall-clock:    {:.1}s (paper: ~21 min on an Athlon 900MHz)", s.total_secs);
    println!("suspicious records:  {} (paper: ~6000 of 200k)", s.n_suspicious);
    println!(
        "sensitivity:         {:.3} (vs ground-truth log; unavailable to the paper)",
        s.sensitivity
    );
    println!("specificity:         {:.4}", s.specificity);
    println!("top-50 precision:    {:.2}", s.top50_precision);
    println!("top confidence:      {:.4} (paper's example: 0.9995)", s.top_confidence);
    println!("\nhighest-support structure rules:");
    for r in &s.top_rules {
        println!("  {r}");
    }
    println!("\ntop findings:");
    for f in &s.top_findings {
        println!("  {f}");
    }
    println!();
}
