//! # dq-bench — benchmark fixtures for the criterion benches and the
//! `repro` binary.
//!
//! The benches measure the pieces whose cost the paper discusses
//! ("only data mining algorithms that scale well with the size of
//! training sets can be employed"; the QUIS audit "lasted about 21
//! minutes on an Athlon 900MHz"): structure induction, deviation
//! detection, test data generation, the satisfiability test and the
//! pollution pipeline. This crate only hosts shared fixture builders;
//! the measurements live in `benches/` and the figure/table
//! regeneration in `src/bin/repro.rs`.

use dq_core::{AuditConfig, Auditor, StructureModel};
use dq_pollute::{pollute, PollutionConfig, PollutionLog};
use dq_table::Table;
use dq_tdg::TestDataGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A ready-to-audit fixture: dirty table + log + auditor.
pub struct AuditFixture {
    /// The polluted table.
    pub dirty: Table,
    /// Ground-truth log.
    pub log: PollutionLog,
    /// The auditor under measurement.
    pub auditor: Auditor,
}

/// Build the sec. 6.1 baseline benchmark at the given size.
pub fn baseline_fixture(n_rows: usize, n_rules: usize, seed: u64) -> AuditFixture {
    let baseline = dq_eval::Baseline::new(seed);
    let generator: TestDataGenerator = baseline.generator(n_rules, n_rows);
    let mut rng = StdRng::seed_from_u64(seed);
    let benchmark = generator.generate(&mut rng);
    let (dirty, log) = pollute(&benchmark.clean, &PollutionConfig::standard(), &mut rng);
    AuditFixture { dirty, log, auditor: Auditor::new(AuditConfig::default()) }
}

/// Build the synthetic QUIS fixture at the given size.
pub fn quis_fixture(n_rows: usize, seed: u64) -> AuditFixture {
    let cfg = dq_quis::QuisConfig::default().with_rows(n_rows);
    let mut rng = StdRng::seed_from_u64(seed);
    let b = dq_quis::generate_quis(&cfg, &mut rng);
    AuditFixture { dirty: b.dirty, log: b.log, auditor: Auditor::new(AuditConfig::default()) }
}

impl AuditFixture {
    /// Induce the structure model (the expensive offline phase).
    pub fn induce(&self) -> StructureModel {
        self.auditor.induce(&self.dirty).expect("fixture tables are auditable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build_and_audit() {
        let f = baseline_fixture(400, 8, 1);
        assert_eq!(f.log.n_rows(), f.dirty.n_rows());
        let model = f.induce();
        let report = f.auditor.detect(&model, &f.dirty);
        assert_eq!(report.n_rows(), f.dirty.n_rows());
        let q = quis_fixture(500, 2);
        assert!(q.dirty.n_rows() >= 490);
    }

    /// Benchmarks compare timings across sizes, so the same (size,
    /// seed) pair must rebuild the identical fixture every time.
    #[test]
    fn fixtures_are_deterministic_per_seed() {
        let a = baseline_fixture(300, 6, 9);
        let b = baseline_fixture(300, 6, 9);
        assert_eq!(a.dirty.n_rows(), b.dirty.n_rows());
        assert_eq!(a.log.n_corrupted_rows(), b.log.n_corrupted_rows());
        let ra = a.auditor.detect(&a.induce(), &a.dirty);
        let rb = b.auditor.detect(&b.induce(), &b.dirty);
        assert_eq!(ra.n_suspicious(), rb.n_suspicious());

        let c = baseline_fixture(300, 6, 10);
        let differs = c.dirty.n_rows() != a.dirty.n_rows()
            || c.log.n_corrupted_rows() != a.log.n_corrupted_rows();
        assert!(differs, "different seeds should corrupt differently");
    }

    /// The bench matrix sweeps sizes; fixtures must track the
    /// requested scale (pollution may add/remove a few rows).
    #[test]
    fn fixtures_scale_with_requested_rows() {
        for &(rows, lo) in &[(200usize, 180usize), (800, 760)] {
            let f = baseline_fixture(rows, 6, 3);
            assert!(
                f.dirty.n_rows() >= lo && f.dirty.n_rows() <= rows + rows / 10,
                "requested {rows} rows, built {}",
                f.dirty.n_rows()
            );
        }
    }
}
