//! The pollution pipeline: apply a suite of polluters, each with an
//! activation probability, to a clean table.
//!
//! "Components in the test environment, each parameterized with an
//! activation probability, simulate the strategies … of different
//! forms of data pollution" (sec. 4.2). The common **pollution factor**
//! scales all activation probabilities at once — the x-axis of
//! Figure 5.

use crate::log::PollutionLog;
use crate::polluter::{duplicator_action, Polluter, RowAction};
use dq_stats::DistributionSpec;
use dq_table::{Table, Value};
use rand::Rng;

/// One step of the pipeline: a polluter plus its activation
/// probability.
#[derive(Debug, Clone, PartialEq)]
pub struct PollutionStep {
    /// The polluter.
    pub polluter: Polluter,
    /// Per-record activation probability (before the factor).
    pub activation: f64,
}

/// A full pollution suite.
#[derive(Debug, Clone, PartialEq)]
pub struct PollutionConfig {
    /// The steps, applied in order per record.
    pub steps: Vec<PollutionStep>,
    /// Common multiplier on all activation probabilities (Figure 5's
    /// pollution factor). Effective probabilities are clamped to
    /// `[0, 1]`.
    pub factor: f64,
}

impl PollutionConfig {
    /// An empty suite (no pollution).
    pub fn none() -> Self {
        PollutionConfig { steps: Vec::new(), factor: 1.0 }
    }

    /// The default five-polluter suite used by the experiments: "we …
    /// apply a variety of pollution procedures with different
    /// activation probabilities". Random attributes, wrong values drawn
    /// uniformly, limiter cutting the outer 10% tails, occasional
    /// duplicates with a 30% delete share.
    pub fn standard() -> Self {
        PollutionConfig {
            steps: vec![
                PollutionStep {
                    polluter: Polluter::WrongValue { attr: None, dist: DistributionSpec::Uniform },
                    activation: 0.020,
                },
                PollutionStep { polluter: Polluter::NullValue { attr: None }, activation: 0.012 },
                PollutionStep {
                    polluter: Polluter::Limiter { attr: None, lower_frac: 0.1, upper_frac: 0.9 },
                    activation: 0.010,
                },
                PollutionStep { polluter: Polluter::Switcher { attrs: None }, activation: 0.006 },
                PollutionStep {
                    polluter: Polluter::Duplicator { p_delete: 0.3 },
                    activation: 0.004,
                },
            ],
            factor: 1.0,
        }
    }

    /// The suite with a different pollution factor (builder style).
    pub fn with_factor(mut self, factor: f64) -> Self {
        self.factor = factor;
        self
    }

    /// The sum of effective activation probabilities — a rough expected
    /// number of polluter strikes per record.
    pub fn expected_strikes(&self) -> f64 {
        self.steps.iter().map(|s| (s.activation * self.factor).clamp(0.0, 1.0)).sum()
    }
}

/// Pollute `clean`, returning the dirty table and the ground-truth log.
///
/// Each clean record passes every step in order; cell polluters mutate
/// it in place, the duplicator decides whether it is emitted once,
/// twice (second copy flagged as the error) or not at all.
pub fn pollute<R: Rng + ?Sized>(
    clean: &Table,
    config: &PollutionConfig,
    rng: &mut R,
) -> (Table, PollutionLog) {
    let mut log = PollutionLog::default();
    let dirty = pollute_chunk(clean, 0, config, &mut log, rng);
    (dirty, log)
}

/// The chunk-at-a-time pollution core [`pollute`] (one chunk covering
/// the whole table) and [`crate::PolluteStream`] (one call per source
/// batch) share: pollute the rows of `clean` — globally rows
/// `clean_row_offset..clean_row_offset + clean.n_rows()` of the
/// logical relation — appending to a shared `log` whose dirty-row and
/// clean-row indices stay global (the same offset merge
/// `detect_stream` applies to finding rows). Returns the dirty rows
/// this chunk contributes, in order.
///
/// The RNG is consumed strictly in clean-row order, so chunking never
/// changes the byte stream: concatenating the returned chunks equals
/// an unchunked [`pollute`] over the concatenated input.
pub(crate) fn pollute_chunk<R: Rng + ?Sized>(
    clean: &Table,
    clean_row_offset: usize,
    config: &PollutionConfig,
    log: &mut PollutionLog,
    rng: &mut R,
) -> Table {
    let schema = clean.schema();
    let mut dirty = Table::with_capacity(schema.clone(), clean.n_rows());
    let mut record: Vec<Value> = Vec::with_capacity(clean.n_cols());
    for r in 0..clean.n_rows() {
        clean.row_into(r, &mut record);
        let mut action = RowAction::Keep;
        let mut changes: Vec<(usize, Value, Value, crate::polluter::PolluterKind)> = Vec::new();
        for step in &config.steps {
            let p = (step.activation * config.factor).clamp(0.0, 1.0);
            if p <= 0.0 || rng.gen::<f64>() >= p {
                continue;
            }
            match &step.polluter {
                Polluter::Duplicator { p_delete } => {
                    // Last duplicator activation wins; duplicate+delete
                    // on one record collapses to delete.
                    action = match (action, duplicator_action(*p_delete, rng)) {
                        (RowAction::Delete, _) | (_, RowAction::Delete) => RowAction::Delete,
                        _ => RowAction::Duplicate,
                    };
                }
                other => {
                    for (attr, before, after) in other.apply_cells(schema, &mut record, rng) {
                        changes.push((attr, before, after, other.kind()));
                    }
                }
            }
        }
        // The ground truth is the *net* deviation of the dirty record
        // from the clean one: when several polluters touch a cell they
        // can cancel out (a wrong value swapped back by the switcher),
        // and a cancelled cell is not an error. Attribute each net
        // change to the last polluter that touched the cell.
        let mut net: Vec<(usize, Value, Value, crate::polluter::PolluterKind)> = Vec::new();
        for (attr, new_v) in record.iter().enumerate() {
            let old_v = clean.get(r, attr);
            let differs =
                old_v.sql_eq(new_v) != Some(true) && !(old_v.is_null() && new_v.is_null());
            if differs {
                let kind = changes
                    .iter()
                    .rev()
                    .find(|&&(a, ..)| a == attr)
                    .map(|&(.., k)| k)
                    .expect("a differing cell was touched by some polluter");
                net.push((attr, old_v, *new_v, kind));
            }
        }
        match action {
            RowAction::Delete => log.log_deletion(clean_row_offset + r),
            RowAction::Keep | RowAction::Duplicate => {
                let dirty_row = log.push_row(clean_row_offset + r, false);
                dirty.push_row_lenient(&record).expect("polluted record keeps cell kinds");
                for &(attr, before, after, kind) in &net {
                    log.log_cell(dirty_row, attr, kind, before, after);
                }
                if action == RowAction::Duplicate {
                    let dup_row = log.push_row(clean_row_offset + r, true);
                    dirty.push_row_lenient(&record).expect("duplicate record keeps cell kinds");
                    // The copy carries the same cell corruptions.
                    for &(attr, before, after, kind) in &net {
                        log.log_cell(dup_row, attr, kind, before, after);
                    }
                }
            }
        }
    }
    dirty
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polluter::PolluterKind;
    use dq_table::SchemaBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn clean_table(n: usize) -> Table {
        let schema = SchemaBuilder::new()
            .nominal("a", ["x", "y", "z"])
            .nominal("b", ["x", "y", "z"])
            .numeric("n", 0.0, 100.0)
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..n {
            t.push_row(&[
                Value::Nominal((i % 3) as u32),
                Value::Nominal(((i + 1) % 3) as u32),
                Value::Number((i % 100) as f64),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn no_pollution_is_identity() {
        let clean = clean_table(50);
        let mut rng = StdRng::seed_from_u64(1);
        let (dirty, log) = pollute(&clean, &PollutionConfig::none(), &mut rng);
        assert_eq!(dirty.n_rows(), 50);
        assert_eq!(log.n_corrupted_rows(), 0);
        for r in 0..50 {
            assert_eq!(dirty.row(r), clean.row(r));
        }
    }

    #[test]
    fn log_matches_table_diff() {
        let clean = clean_table(500);
        let cfg = PollutionConfig::standard().with_factor(3.0);
        let mut rng = StdRng::seed_from_u64(2);
        let (dirty, log) = pollute(&clean, &cfg, &mut rng);
        assert_eq!(log.n_rows(), dirty.n_rows());
        // Every logged cell corruption is observable in the dirty
        // table, and every differing cell is logged (for non-duplicate
        // rows).
        for (dr, prov) in log.provenance.iter().enumerate() {
            for a in 0..clean.n_cols() {
                let clean_v = clean.get(prov.clean_row, a);
                let dirty_v = dirty.get(dr, a);
                let differs = clean_v.sql_eq(&dirty_v) != Some(true)
                    && !(clean_v.is_null() && dirty_v.is_null());
                assert_eq!(
                    differs,
                    log.is_cell_corrupted(dr, a),
                    "row {dr} attr {a}: diff {differs} but log disagrees"
                );
            }
        }
        assert!(log.n_corrupted_rows() > 0, "factor 3 must corrupt something");
    }

    #[test]
    fn duplicates_and_deletions_change_row_count() {
        let clean = clean_table(2000);
        let cfg = PollutionConfig {
            steps: vec![PollutionStep {
                polluter: Polluter::Duplicator { p_delete: 0.5 },
                activation: 0.2,
            }],
            factor: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let (dirty, log) = pollute(&clean, &cfg, &mut rng);
        let dups = log.provenance.iter().filter(|p| p.duplicate).count();
        let dels = log.deleted_clean_rows.len();
        assert!(dups > 100, "dups {dups}");
        assert!(dels > 100, "dels {dels}");
        assert_eq!(dirty.n_rows(), 2000 - dels + dups);
        // Duplicate rows equal their source row.
        for (dr, prov) in log.provenance.iter().enumerate() {
            if prov.duplicate {
                assert_eq!(dirty.row(dr), clean.row(prov.clean_row));
            }
        }
    }

    #[test]
    fn factor_scales_corruption() {
        let clean = clean_table(2000);
        let mut rng = StdRng::seed_from_u64(4);
        let (_, log1) = pollute(&clean, &PollutionConfig::standard(), &mut rng);
        let (_, log4) = pollute(&clean, &PollutionConfig::standard().with_factor(4.0), &mut rng);
        assert!(
            log4.n_corrupted_rows() > 2 * log1.n_corrupted_rows(),
            "factor 4: {} vs factor 1: {}",
            log4.n_corrupted_rows(),
            log1.n_corrupted_rows()
        );
    }

    #[test]
    fn expected_strikes_accounts_for_factor_and_clamp() {
        let cfg = PollutionConfig {
            steps: vec![
                PollutionStep { polluter: Polluter::NullValue { attr: None }, activation: 0.4 },
                PollutionStep { polluter: Polluter::NullValue { attr: None }, activation: 0.8 },
            ],
            factor: 2.0,
        };
        // 0.8 and clamp(1.6) = 1.0.
        assert!((cfg.expected_strikes() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn targeted_pollution_hits_the_right_attribute() {
        let clean = clean_table(300);
        let cfg = PollutionConfig {
            steps: vec![PollutionStep {
                polluter: Polluter::NullValue { attr: Some(2) },
                activation: 1.0,
            }],
            factor: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let (dirty, log) = pollute(&clean, &cfg, &mut rng);
        assert_eq!(dirty.count_where(2, |v| v.is_null()), 300);
        assert_eq!(log.cells.len(), 300);
        assert!(log.cells.iter().all(|c| c.attr == 2 && c.polluter == PolluterKind::NullValue));
        // Clean values recoverable from the log.
        assert_eq!(log.clean_value_of(0, 2), Some(clean.get(0, 2)));
    }

    #[test]
    fn pollution_is_reproducible() {
        let clean = clean_table(400);
        let cfg = PollutionConfig::standard().with_factor(2.0);
        let (d1, l1) = pollute(&clean, &cfg, &mut StdRng::seed_from_u64(6));
        let (d2, l2) = pollute(&clean, &cfg, &mut StdRng::seed_from_u64(6));
        assert_eq!(d1.n_rows(), d2.n_rows());
        assert_eq!(l1.cells.len(), l2.cells.len());
        for r in 0..d1.n_rows() {
            assert_eq!(d1.row(r), d2.row(r));
        }
    }

    #[test]
    fn empty_table_pollutes_to_empty() {
        let schema: Arc<_> = SchemaBuilder::new().nominal("a", ["x"]).build().unwrap();
        let clean = Table::new(schema);
        let mut rng = StdRng::seed_from_u64(7);
        let (dirty, log) = pollute(&clean, &PollutionConfig::standard(), &mut rng);
        assert_eq!(dirty.n_rows(), 0);
        assert_eq!(log.n_rows(), 0);
    }
}
