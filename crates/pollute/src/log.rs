//! The pollution log: the ground truth every benchmark run scores
//! against.
//!
//! The test environment "pollutes this data in a controlled and logged
//! procedure … and evaluates its performance by comparing the
//! deviations of the dirty from the clean database with the detected
//! errors" (sec. 4). The log keeps cell-level corruption records plus
//! row provenance that survives duplication and deletion.

use crate::polluter::PolluterKind;
use dq_table::{AttrIdx, RowIdx, Schema, Value};

/// Header line of the cell-corruption CSV rendering
/// ([`PollutionLog::render_cells_csv`]) — the `pollution-log.csv`
/// format `dq generate` emits.
pub const CELLS_CSV_HEADER: &str = "dirty_row,attribute,polluter,before,after\n";

/// Where a dirty row came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowProvenance {
    /// The clean row this dirty row descends from.
    pub clean_row: RowIdx,
    /// `true` if this row is the extra copy made by the duplicator
    /// (the copy itself is the data error, not the original).
    pub duplicate: bool,
}

/// One logged cell corruption.
#[derive(Debug, Clone, PartialEq)]
pub struct CellCorruption {
    /// Row index in the *dirty* table.
    pub dirty_row: RowIdx,
    /// Corrupted attribute.
    pub attr: AttrIdx,
    /// Which polluter struck.
    pub polluter: PolluterKind,
    /// Cell value before corruption.
    pub before: Value,
    /// Cell value after corruption (must differ from `before`).
    pub after: Value,
}

/// The full log of one pollution run.
#[derive(Debug, Clone, Default)]
pub struct PollutionLog {
    /// Provenance of every dirty row (indexed by dirty row).
    pub provenance: Vec<RowProvenance>,
    /// All cell corruptions, in application order.
    pub cells: Vec<CellCorruption>,
    /// Clean rows the duplicator deleted (absent from the dirty table;
    /// they cannot be flagged by a record-marking audit and are
    /// excluded from the record-level confusion matrix).
    pub deleted_clean_rows: Vec<RowIdx>,
    /// Per dirty row: was it corrupted (any cell event or duplicate)?
    corrupted: Vec<bool>,
    /// Global dirty-row index of this log's first row. Zero except for
    /// logs continuing a resumed stream (see
    /// [`PollutionLog::with_base`]).
    base: RowIdx,
}

impl PollutionLog {
    /// An empty log whose first dirty row has global index `base` —
    /// the continuation log of a resumed pollution stream whose
    /// previous incarnation already committed `base` dirty rows. Cell
    /// events carry global `dirty_row` indices, so a streamed
    /// `pollution-log.csv` concatenates identically to an
    /// uninterrupted run's. Local accounting (`n_rows`, `prevalence`,
    /// the scoring APIs) covers only this incarnation's rows; scoring
    /// assumes a base of zero.
    pub fn with_base(base: RowIdx) -> Self {
        PollutionLog { base, ..PollutionLog::default() }
    }

    pub(crate) fn push_row(&mut self, clean_row: RowIdx, duplicate: bool) -> RowIdx {
        self.provenance.push(RowProvenance { clean_row, duplicate });
        self.corrupted.push(duplicate);
        self.base + self.provenance.len() - 1
    }

    pub(crate) fn log_cell(
        &mut self,
        dirty_row: RowIdx,
        attr: AttrIdx,
        polluter: PolluterKind,
        before: Value,
        after: Value,
    ) {
        debug_assert!(before.sql_eq(&after) != Some(true), "corruption must change the value");
        self.cells.push(CellCorruption { dirty_row, attr, polluter, before, after });
        self.corrupted[dirty_row - self.base] = true;
    }

    pub(crate) fn log_deletion(&mut self, clean_row: RowIdx) {
        self.deleted_clean_rows.push(clean_row);
    }

    /// `true` if the dirty row carries any corruption (cell event or
    /// duplicate provenance). `dirty_row` is a global index (offset by
    /// the base for continuation logs).
    pub fn is_row_corrupted(&self, dirty_row: RowIdx) -> bool {
        self.corrupted[dirty_row - self.base]
    }

    /// Number of corrupted rows in the dirty table.
    pub fn n_corrupted_rows(&self) -> usize {
        self.corrupted.iter().filter(|&&c| c).count()
    }

    /// Number of rows in the dirty table.
    pub fn n_rows(&self) -> usize {
        self.provenance.len()
    }

    /// Corruptions of one dirty row.
    pub fn cells_of(&self, dirty_row: RowIdx) -> impl Iterator<Item = &CellCorruption> {
        self.cells.iter().filter(move |c| c.dirty_row == dirty_row)
    }

    /// Was this specific cell corrupted?
    pub fn is_cell_corrupted(&self, dirty_row: RowIdx, attr: AttrIdx) -> bool {
        self.cells.iter().any(|c| c.dirty_row == dirty_row && c.attr == attr)
    }

    /// The clean value of a cell (what a perfect correction would
    /// restore): the logged `before` if the cell was corrupted.
    pub fn clean_value_of(&self, dirty_row: RowIdx, attr: AttrIdx) -> Option<Value> {
        self.cells.iter().find(|c| c.dirty_row == dirty_row && c.attr == attr).map(|c| c.before)
    }

    /// Prevalence: fraction of dirty rows that are corrupted.
    pub fn prevalence(&self) -> f64 {
        if self.provenance.is_empty() {
            0.0
        } else {
            self.n_corrupted_rows() as f64 / self.provenance.len() as f64
        }
    }

    /// Render cell corruptions `cells[from..]` as CSV lines (no
    /// header; see [`CELLS_CSV_HEADER`]) — the `pollution-log.csv`
    /// body `dq generate` writes. Rendering from a cursor lets a
    /// checkpointed job stream the log incrementally and still
    /// concatenate byte-identically to a one-shot rendering.
    pub fn render_cells_csv(&self, schema: &Schema, from: usize, out: &mut String) {
        use std::fmt::Write as _;
        for c in &self.cells[from..] {
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                c.dirty_row,
                schema.attr(c.attr).name,
                c.polluter,
                schema.display_value(c.attr, &c.before),
                schema.display_value(c.attr, &c.after),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_accounting() {
        let mut log = PollutionLog::default();
        let r0 = log.push_row(0, false);
        let r1 = log.push_row(1, false);
        let r2 = log.push_row(1, true); // duplicate of clean row 1
        assert_eq!((r0, r1, r2), (0, 1, 2));
        assert!(!log.is_row_corrupted(0));
        assert!(log.is_row_corrupted(2), "duplicates are corrupted rows");
        log.log_cell(0, 3, PolluterKind::WrongValue, Value::Nominal(1), Value::Nominal(2));
        assert!(log.is_row_corrupted(0));
        assert_eq!(log.n_corrupted_rows(), 2);
        assert_eq!(log.n_rows(), 3);
        assert!((log.prevalence() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cell_lookup_and_clean_value() {
        let mut log = PollutionLog::default();
        log.push_row(0, false);
        log.log_cell(0, 1, PolluterKind::NullValue, Value::Number(5.0), Value::Null);
        assert!(log.is_cell_corrupted(0, 1));
        assert!(!log.is_cell_corrupted(0, 0));
        assert_eq!(log.clean_value_of(0, 1), Some(Value::Number(5.0)));
        assert_eq!(log.clean_value_of(0, 0), None);
        assert_eq!(log.cells_of(0).count(), 1);
    }

    #[test]
    fn deletions_are_tracked_separately() {
        let mut log = PollutionLog::default();
        log.push_row(0, false);
        log.log_deletion(1);
        assert_eq!(log.deleted_clean_rows, vec![1]);
        assert_eq!(log.n_rows(), 1);
    }

    #[test]
    fn empty_log_prevalence() {
        assert_eq!(PollutionLog::default().prevalence(), 0.0);
    }
}
