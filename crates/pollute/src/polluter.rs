//! The five polluters of sec. 4.2.
//!
//! Each polluter "simulate\[s\] the strategies for identification and
//! analysis of different forms of data pollution as defined by Dasu
//! and Hernandez": wrong values (coding/typing errors), missing values
//! (load failures), limited values (truncation), switched attributes
//! (column mix-ups) and duplicated/deleted records.
//!
//! A polluter application either *changes* the record (and is logged)
//! or is a no-op (e.g. nulling an already-NULL cell, limiting an
//! in-range value) — no-ops are **not** logged, so the pollution log
//! contains genuine deviations from the clean database only.

use dq_stats::DistributionSpec;
use dq_table::{AttrIdx, AttrType, Schema, Value};
use rand::Rng;

/// Discriminates the polluter families in logs and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolluterKind {
    /// Wrong-value polluter.
    WrongValue,
    /// Null-value polluter.
    NullValue,
    /// Limiter.
    Limiter,
    /// Switcher.
    Switcher,
    /// Duplicator (both its duplicate and delete actions).
    Duplicator,
}

impl std::fmt::Display for PolluterKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PolluterKind::WrongValue => "wrong-value",
            PolluterKind::NullValue => "null-value",
            PolluterKind::Limiter => "limiter",
            PolluterKind::Switcher => "switcher",
            PolluterKind::Duplicator => "duplicator",
        };
        f.write_str(s)
    }
}

/// A configured polluter.
#[derive(Debug, Clone, PartialEq)]
pub enum Polluter {
    /// Assign a new value to an attribute "according to a probability
    /// distribution defined in the same way as in section 4.1.4".
    WrongValue {
        /// Target attribute; `None` picks a random attribute per
        /// application.
        attr: Option<AttrIdx>,
        /// Distribution of replacement values.
        dist: DistributionSpec,
    },
    /// Replace a value by NULL.
    NullValue {
        /// Target attribute; `None` picks a random attribute.
        attr: Option<AttrIdx>,
    },
    /// Cut off a numerical (or date) value at a bound. The bounds are
    /// given as fractions of the attribute's domain extent; values
    /// outside `[lower_frac, upper_frac]` are clamped to the bound.
    Limiter {
        /// Target attribute; `None` picks a random ordered attribute.
        attr: Option<AttrIdx>,
        /// Lower cut position as a domain fraction.
        lower_frac: f64,
        /// Upper cut position as a domain fraction.
        upper_frac: f64,
    },
    /// Switch the values of two attributes (column mix-up). The pair
    /// must be of the same value kind so the cells stay representable;
    /// mismatched domains (e.g. codes from a larger label set) are the
    /// *point* — they simulate coding errors.
    Switcher {
        /// Attribute pair; `None` picks a random same-kind pair.
        attrs: Option<(AttrIdx, AttrIdx)>,
    },
    /// Duplicate (or delete) the record.
    Duplicator {
        /// Probability that an activation deletes instead of
        /// duplicating.
        p_delete: f64,
    },
}

impl Polluter {
    /// The polluter's kind tag.
    pub fn kind(&self) -> PolluterKind {
        match self {
            Polluter::WrongValue { .. } => PolluterKind::WrongValue,
            Polluter::NullValue { .. } => PolluterKind::NullValue,
            Polluter::Limiter { .. } => PolluterKind::Limiter,
            Polluter::Switcher { .. } => PolluterKind::Switcher,
            Polluter::Duplicator { .. } => PolluterKind::Duplicator,
        }
    }

    /// Apply the polluter to a record buffer. Returns the cell changes
    /// made (empty when the application was a no-op). Row-level actions
    /// (duplicate/delete) are signalled through [`RowAction`] instead.
    pub(crate) fn apply_cells<R: Rng + ?Sized>(
        &self,
        schema: &Schema,
        record: &mut [Value],
        rng: &mut R,
    ) -> Vec<(AttrIdx, Value, Value)> {
        match self {
            Polluter::WrongValue { attr, dist } => {
                let a = attr.unwrap_or_else(|| rng.gen_range(0..schema.len()));
                let before = record[a];
                // Draw until the value actually differs (bounded; a
                // single-value domain cannot be wrong-value-polluted).
                for _ in 0..16 {
                    let after = dist.sample(&schema.attr(a).ty, rng);
                    if after.sql_eq(&before) != Some(true) && !(before.is_null() && after.is_null())
                    {
                        record[a] = after;
                        return vec![(a, before, after)];
                    }
                }
                Vec::new()
            }
            Polluter::NullValue { attr } => {
                let a = attr.unwrap_or_else(|| rng.gen_range(0..schema.len()));
                let before = record[a];
                if before.is_null() {
                    return Vec::new();
                }
                record[a] = Value::Null;
                vec![(a, before, Value::Null)]
            }
            Polluter::Limiter { attr, lower_frac, upper_frac } => {
                let a = match attr {
                    Some(a) => *a,
                    None => match random_ordered_attr(schema, rng) {
                        Some(a) => a,
                        None => return Vec::new(),
                    },
                };
                let ty = &schema.attr(a).ty;
                let (lo, hi) = match ty {
                    AttrType::Numeric { min, max, .. } => (*min, *max),
                    AttrType::Date { min, max } => (*min as f64, *max as f64),
                    AttrType::Nominal { .. } => return Vec::new(),
                };
                let cut_lo = lo + lower_frac * (hi - lo);
                let cut_hi = lo + upper_frac * (hi - lo);
                let before = record[a];
                let Some(x) = before.as_numeric() else {
                    return Vec::new();
                };
                let cut = x.clamp(cut_lo.min(cut_hi), cut_lo.max(cut_hi));
                if cut == x {
                    return Vec::new();
                }
                let after = match ty {
                    AttrType::Date { .. } => Value::Date(cut.round() as i64),
                    _ => Value::Number(cut),
                };
                if after.sql_eq(&before) == Some(true) {
                    return Vec::new();
                }
                record[a] = after;
                vec![(a, before, after)]
            }
            Polluter::Switcher { attrs } => {
                let pair = match attrs {
                    Some(p) => Some(*p),
                    None => random_same_kind_pair(schema, rng),
                };
                let Some((a, b)) = pair else {
                    return Vec::new();
                };
                let (va, vb) = (record[a], record[b]);
                if va.sql_eq(&vb) == Some(true) || (va.is_null() && vb.is_null()) {
                    return Vec::new();
                }
                record[a] = vb;
                record[b] = va;
                vec![(a, va, vb), (b, vb, va)]
            }
            // Row-level; handled by the pipeline.
            Polluter::Duplicator { .. } => Vec::new(),
        }
    }
}

/// Row-level outcome of a duplicator activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RowAction {
    /// Keep the (possibly cell-polluted) record once.
    Keep,
    /// Emit the record twice; the second copy is the error.
    Duplicate,
    /// Drop the record.
    Delete,
}

pub(crate) fn duplicator_action<R: Rng + ?Sized>(p_delete: f64, rng: &mut R) -> RowAction {
    if rng.gen::<f64>() < p_delete {
        RowAction::Delete
    } else {
        RowAction::Duplicate
    }
}

fn random_ordered_attr<R: Rng + ?Sized>(schema: &Schema, rng: &mut R) -> Option<AttrIdx> {
    let ordered: Vec<AttrIdx> =
        (0..schema.len()).filter(|&a| schema.attr(a).ty.is_ordered()).collect();
    if ordered.is_empty() {
        None
    } else {
        Some(ordered[rng.gen_range(0..ordered.len())])
    }
}

fn random_same_kind_pair<R: Rng + ?Sized>(
    schema: &Schema,
    rng: &mut R,
) -> Option<(AttrIdx, AttrIdx)> {
    let mut pairs = Vec::new();
    for a in 0..schema.len() {
        for b in (a + 1)..schema.len() {
            let same = matches!(
                (&schema.attr(a).ty, &schema.attr(b).ty),
                (AttrType::Nominal { .. }, AttrType::Nominal { .. })
                    | (AttrType::Numeric { .. }, AttrType::Numeric { .. })
                    | (AttrType::Date { .. }, AttrType::Date { .. })
            );
            if same {
                pairs.push((a, b));
            }
        }
    }
    if pairs.is_empty() {
        None
    } else {
        Some(pairs[rng.gen_range(0..pairs.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_table::SchemaBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> std::sync::Arc<Schema> {
        SchemaBuilder::new()
            .nominal("a", ["x", "y", "z"])
            .nominal("b", ["x", "y"])
            .numeric("n", 0.0, 100.0)
            .date_ymd("d", (2000, 1, 1), (2001, 1, 1))
            .build()
            .unwrap()
    }

    fn record() -> Vec<Value> {
        vec![Value::Nominal(2), Value::Nominal(0), Value::Number(50.0), Value::Date(11_000)]
    }

    #[test]
    fn wrong_value_always_changes() {
        let s = schema();
        let p = Polluter::WrongValue { attr: Some(0), dist: DistributionSpec::Uniform };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let mut rec = record();
            let changes = p.apply_cells(&s, &mut rec, &mut rng);
            assert_eq!(changes.len(), 1);
            let (a, before, after) = changes[0];
            assert_eq!(a, 0);
            assert_eq!(before, Value::Nominal(2));
            assert_ne!(after, before);
            assert_eq!(rec[0], after);
        }
    }

    #[test]
    fn wrong_value_single_label_domain_is_noop() {
        let s = SchemaBuilder::new().nominal("only", ["just-one"]).build().unwrap();
        let p = Polluter::WrongValue { attr: Some(0), dist: DistributionSpec::Uniform };
        let mut rng = StdRng::seed_from_u64(2);
        let mut rec = vec![Value::Nominal(0)];
        assert!(p.apply_cells(&s, &mut rec, &mut rng).is_empty());
        assert_eq!(rec[0], Value::Nominal(0));
    }

    #[test]
    fn null_value_pollutes_once() {
        let s = schema();
        let p = Polluter::NullValue { attr: Some(2) };
        let mut rng = StdRng::seed_from_u64(3);
        let mut rec = record();
        let changes = p.apply_cells(&s, &mut rec, &mut rng);
        assert_eq!(changes, vec![(2, Value::Number(50.0), Value::Null)]);
        assert!(rec[2].is_null());
        // Nulling again is a no-op (not a new corruption).
        assert!(p.apply_cells(&s, &mut rec, &mut rng).is_empty());
    }

    #[test]
    fn limiter_clamps_tails_only() {
        let s = schema();
        let p = Polluter::Limiter { attr: Some(2), lower_frac: 0.2, upper_frac: 0.8 };
        let mut rng = StdRng::seed_from_u64(4);
        // In-range value: no-op.
        let mut rec = record();
        assert!(p.apply_cells(&s, &mut rec, &mut rng).is_empty());
        // Tail value: clamped to the cut.
        rec[2] = Value::Number(95.0);
        let changes = p.apply_cells(&s, &mut rec, &mut rng);
        assert_eq!(changes, vec![(2, Value::Number(95.0), Value::Number(80.0))]);
        assert_eq!(rec[2], Value::Number(80.0));
    }

    #[test]
    fn limiter_rounds_dates_to_days() {
        let s = schema();
        let p = Polluter::Limiter { attr: Some(3), lower_frac: 0.5, upper_frac: 1.0 };
        let mut rng = StdRng::seed_from_u64(5);
        let mut rec = record();
        rec[3] = Value::Date(10_958); // below the midpoint cut
        let changes = p.apply_cells(&s, &mut rec, &mut rng);
        assert_eq!(changes.len(), 1);
        assert!(matches!(rec[3], Value::Date(_)));
    }

    #[test]
    fn switcher_swaps_and_reports_both_cells() {
        let s = schema();
        let p = Polluter::Switcher { attrs: Some((0, 1)) };
        let mut rng = StdRng::seed_from_u64(6);
        let mut rec = record();
        let changes = p.apply_cells(&s, &mut rec, &mut rng);
        assert_eq!(changes.len(), 2);
        assert_eq!(rec[0], Value::Nominal(0));
        // Code 2 is out of b's 2-label domain — exactly the kind of
        // coding error the audit should catch.
        assert_eq!(rec[1], Value::Nominal(2));
    }

    #[test]
    fn switcher_equal_values_is_noop() {
        let s = schema();
        let p = Polluter::Switcher { attrs: Some((0, 1)) };
        let mut rng = StdRng::seed_from_u64(7);
        let mut rec = record();
        rec[1] = Value::Nominal(2);
        assert!(p.apply_cells(&s, &mut rec, &mut rng).is_empty());
    }

    #[test]
    fn random_pair_selection_respects_kinds() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..50 {
            let (a, b) = random_same_kind_pair(&s, &mut rng).unwrap();
            assert_eq!((a, b), (0, 1), "only the two nominals are same-kind here");
        }
        // A schema without same-kind pairs yields None.
        let lonely =
            SchemaBuilder::new().nominal("a", ["x"]).numeric("n", 0.0, 1.0).build().unwrap();
        assert_eq!(random_same_kind_pair(&lonely, &mut rng), None);
    }

    #[test]
    fn duplicator_action_split() {
        let mut rng = StdRng::seed_from_u64(9);
        let actions: Vec<RowAction> = (0..1000).map(|_| duplicator_action(0.3, &mut rng)).collect();
        let deletes = actions.iter().filter(|&&a| a == RowAction::Delete).count();
        assert!((250..350).contains(&deletes), "deletes {deletes}");
        assert!(actions.iter().all(|&a| a != RowAction::Keep));
    }

    #[test]
    fn kinds_render() {
        assert_eq!(PolluterKind::WrongValue.to_string(), "wrong-value");
        assert_eq!(PolluterKind::Duplicator.to_string(), "duplicator");
        let p = Polluter::NullValue { attr: None };
        assert_eq!(p.kind(), PolluterKind::NullValue);
    }
}
