//! Rule-violation accounting over polluted tables.
//!
//! The test environment's contract is that pollution is the *only*
//! source of rule violations: the generator emits a table following
//! its rule set, the polluter corrupts some cells, and every row that
//! now violates a rule must be a logged corruption. This module checks
//! that contract at scale — the rule set is compiled once into a
//! [`CompiledRuleSet`] and every record is scanned with the flat
//! programs instead of re-walking formula trees per rule.

use crate::log::PollutionLog;
use dq_logic::{CompiledRuleSet, RuleSet};
use dq_table::{Table, Value};

/// Per-rule violation counts over `table` (index-aligned with the rule
/// set), via compiled rule programs.
pub fn count_violations(table: &Table, rules: &RuleSet) -> Vec<usize> {
    let compiled = CompiledRuleSet::compile(rules, table.n_cols());
    let mut counts = vec![0usize; rules.len()];
    let mut buf: Vec<Value> = Vec::with_capacity(table.n_cols());
    for r in 0..table.n_rows() {
        table.row_into(r, &mut buf);
        for (i, count) in counts.iter_mut().enumerate() {
            if compiled.program(i).violates(&buf) {
                *count += 1;
            }
        }
    }
    counts
}

/// Rows of `table` violating at least one rule, via compiled rule
/// programs.
pub fn violating_rows(table: &Table, rules: &RuleSet) -> Vec<usize> {
    let compiled = CompiledRuleSet::compile(rules, table.n_cols());
    let mut out = Vec::new();
    let mut buf: Vec<Value> = Vec::with_capacity(table.n_cols());
    for r in 0..table.n_rows() {
        table.row_into(r, &mut buf);
        if (0..compiled.len()).any(|i| compiled.program(i).violates(&buf)) {
            out.push(r);
        }
    }
    out
}

/// Check the pollution contract: every row of `dirty` that violates a
/// rule must be corrupted according to `log` (cell corruption on the
/// row, or the row being a duplicator copy). Returns the violating
/// rows that the log does **not** explain — non-empty means either the
/// clean table did not follow the rules or the log is incomplete.
pub fn unexplained_violations(dirty: &Table, rules: &RuleSet, log: &PollutionLog) -> Vec<usize> {
    violating_rows(dirty, rules).into_iter().filter(|&r| !log.is_row_corrupted(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{pollute, PollutionConfig};
    use dq_logic::eval::violations_reference;
    use dq_logic::parse_rule;
    use dq_table::{SchemaBuilder, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (Table, RuleSet) {
        let schema = SchemaBuilder::new()
            .nominal("a", ["x", "y", "z"])
            .nominal("b", ["x", "y", "z"])
            .numeric("n", 0.0, 100.0)
            .build()
            .unwrap();
        let mut t = Table::new(schema.clone());
        for i in 0..400 {
            t.push_row(&[
                Value::Nominal((i % 3) as u32),
                Value::Nominal((i % 3) as u32), // a = b everywhere
                Value::Number((i % 50) as f64), // n < 50 everywhere
            ])
            .unwrap();
        }
        let rules = RuleSet::from_rules(vec![
            parse_rule(&schema, "a = x -> b = x").unwrap(),
            parse_rule(&schema, "a = y -> n < 50").unwrap(),
        ]);
        (t, rules)
    }

    #[test]
    fn clean_table_has_no_violations() {
        let (clean, rules) = fixture();
        assert_eq!(count_violations(&clean, &rules), vec![0, 0]);
        assert!(violating_rows(&clean, &rules).is_empty());
    }

    #[test]
    fn counts_match_the_interpreted_scan() {
        let (clean, rules) = fixture();
        let (dirty, _) = pollute(
            &clean,
            &PollutionConfig::standard().with_factor(6.0),
            &mut StdRng::seed_from_u64(5),
        );
        let counts = count_violations(&dirty, &rules);
        for (i, rule) in rules.iter().enumerate() {
            assert_eq!(counts[i], violations_reference(rule, &dirty).len(), "rule {i}");
        }
        // violating_rows = union of the per-rule interpreted scans.
        let mut expected: Vec<usize> =
            rules.iter().flat_map(|r| violations_reference(r, &dirty)).collect();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(violating_rows(&dirty, &rules), expected);
    }

    #[test]
    fn pollution_explains_every_violation() {
        let (clean, rules) = fixture();
        let (dirty, log) = pollute(
            &clean,
            &PollutionConfig::standard().with_factor(4.0),
            &mut StdRng::seed_from_u64(7),
        );
        // The clean table followed the rules, so every violating dirty
        // row must trace back to a logged corruption.
        assert!(unexplained_violations(&dirty, &rules, &log).is_empty());
        // And the suite at factor 4 does break the structure somewhere.
        assert!(!violating_rows(&dirty, &rules).is_empty());
    }
}
