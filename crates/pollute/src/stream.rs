//! [`PolluteStream`]: chunk-at-a-time pollution over any
//! [`BatchSource`].
//!
//! The streaming counterpart of [`pollute`](crate::pollute): wrap a
//! clean batch source (a [`GenerateStream`], a CSV reader, a paged
//! table) and drain dirty batches from it, holding only one chunk of
//! each in memory. Because the pollution core consumes its RNG
//! strictly in clean-row order, the concatenated dirty batches — and
//! the accumulated [`PollutionLog`], whose clean-row and dirty-row
//! indices are global — are byte-identical to an in-memory
//! `pollute` over the concatenated input, for every chunking.
//!
//! [`GenerateStream`]: https://docs.rs/dq_tdg

use crate::log::PollutionLog;
use crate::pipeline::{pollute_chunk, PollutionConfig};
use dq_table::{BatchSource, Schema, Table, TableError};
use rand::Rng;
use std::sync::Arc;

/// A [`BatchSource`] of dirty batches: each clean batch pulled from
/// `source` is polluted as one chunk. The ground-truth log is complete
/// once the stream is drained ([`PolluteStream::log`] /
/// [`PolluteStream::into_log`]).
pub struct PolluteStream<S, R> {
    source: S,
    config: PollutionConfig,
    rng: R,
    log: PollutionLog,
    clean_rows_seen: usize,
    rows_emitted: usize,
    done: bool,
}

impl<S: BatchSource, R: Rng> PolluteStream<S, R> {
    /// Pollute everything `source` will emit, drawing from `rng`. The
    /// RNG is owned: pollution must be the only consumer while the
    /// stream drains, exactly as `pollute` borrows one exclusively.
    pub fn new(source: S, config: PollutionConfig, rng: R) -> Self {
        PolluteStream {
            source,
            config,
            rng,
            log: PollutionLog::default(),
            clean_rows_seen: 0,
            rows_emitted: 0,
            done: false,
        }
    }

    /// Continue a pollution stream a previous incarnation left off —
    /// the resume path of a checkpointed job. `source` must already be
    /// positioned at clean row `clean_rows_seen` (the journal's
    /// cursor), `rng` rebuilt from the journaled generator state, and
    /// `dirty_rows` is how many dirty rows the previous incarnation
    /// already committed (the continuation log's base, and this
    /// stream's starting emitted count). The pollution core draws its
    /// RNG strictly in clean-row order, so the continued stream's
    /// bytes — and the continuation log's global indices — are exactly
    /// what an uninterrupted stream would have produced from there.
    pub fn resume(
        source: S,
        config: PollutionConfig,
        rng: R,
        clean_rows_seen: usize,
        dirty_rows: usize,
    ) -> Self {
        PolluteStream {
            source,
            config,
            rng,
            log: PollutionLog::with_base(dirty_rows),
            clean_rows_seen,
            rows_emitted: dirty_rows,
            done: false,
        }
    }

    /// The ground-truth log accumulated so far — complete (equal to
    /// the in-memory [`pollute`](crate::pollute) log) once
    /// `next_batch` has returned `Ok(None)`.
    pub fn log(&self) -> &PollutionLog {
        &self.log
    }

    /// The owned RNG — a checkpointing job reads its state here at
    /// each commit, so a resumed incarnation can rebuild it.
    pub fn rng(&self) -> &R {
        &self.rng
    }

    /// The inner source, mutably — a checkpointing job flushes a tee'd
    /// writer through this at each commit without ending the stream.
    pub fn source_mut(&mut self) -> &mut S {
        &mut self.source
    }

    /// Consume the stream, returning the accumulated log.
    pub fn into_log(self) -> PollutionLog {
        self.log
    }

    /// Consume the stream, returning the inner source and the log —
    /// for callers that need the source back (a tee'd writer to
    /// close, a reader whose position matters).
    pub fn into_parts(self) -> (S, PollutionLog) {
        (self.source, self.log)
    }

    /// Clean rows consumed from the source so far.
    pub fn clean_rows_seen(&self) -> usize {
        self.clean_rows_seen
    }
}

impl<S: std::fmt::Debug, R> std::fmt::Debug for PolluteStream<S, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolluteStream")
            .field("source", &self.source)
            .field("config", &self.config)
            .field("clean_rows_seen", &self.clean_rows_seen)
            .field("rows_emitted", &self.rows_emitted)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl<S: BatchSource, R: Rng> BatchSource for PolluteStream<S, R> {
    fn schema(&self) -> &Arc<Schema> {
        self.source.schema()
    }

    fn next_batch(&mut self) -> Result<Option<Table>, TableError> {
        if self.done {
            return Ok(None);
        }
        // A chunk whose every row the duplicator deletes pollutes to
        // an empty table; the contract forbids empty batches, so keep
        // pulling until something survives or the source ends.
        loop {
            let clean = match self.source.next_batch() {
                Ok(Some(batch)) => batch,
                Ok(None) => {
                    self.done = true;
                    return Ok(None);
                }
                Err(e) => {
                    self.done = true;
                    return Err(e);
                }
            };
            let offset = self.clean_rows_seen;
            self.clean_rows_seen += clean.n_rows();
            let dirty = pollute_chunk(&clean, offset, &self.config, &mut self.log, &mut self.rng);
            if dirty.is_empty() {
                continue;
            }
            self.rows_emitted += dirty.n_rows();
            return Ok(Some(dirty));
        }
    }

    fn rows_emitted(&self) -> usize {
        self.rows_emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{pollute, PollutionStep};
    use crate::polluter::Polluter;
    use dq_table::{ReplaySource, SchemaBuilder, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn clean_table(n: usize) -> Table {
        let schema = SchemaBuilder::new()
            .nominal("a", ["x", "y", "z"])
            .nominal("b", ["x", "y", "z"])
            .numeric("n", 0.0, 100.0)
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..n {
            t.push_row(&[
                Value::Nominal((i % 3) as u32),
                Value::Nominal(((i + 1) % 3) as u32),
                Value::Number((i % 100) as f64),
            ])
            .unwrap();
        }
        t
    }

    fn csv(table: &Table) -> String {
        let mut buf = Vec::new();
        dq_table::write_csv(table, &mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    /// Drain a stream into one table, checking the batch contract.
    fn drain<S: BatchSource>(mut s: S) -> Table {
        let mut out = Table::new(s.schema().clone());
        while let Some(batch) = s.next_batch().unwrap() {
            assert!(!batch.is_empty(), "batches must never be empty");
            out.append_rows(&batch).unwrap();
            assert_eq!(s.rows_emitted(), out.n_rows());
        }
        assert!(matches!(s.next_batch(), Ok(None)), "must fuse at end");
        out
    }

    #[test]
    fn chunked_pollution_equals_unchunked() {
        let clean = clean_table(997);
        let cfg = PollutionConfig::standard().with_factor(3.0);
        let (dirty_ref, log_ref) = pollute(&clean, &cfg, &mut StdRng::seed_from_u64(42));
        for chunk_rows in [1usize, 7, 64, 997, 5000] {
            let mut stream = PolluteStream::new(
                clean.batches(chunk_rows),
                cfg.clone(),
                StdRng::seed_from_u64(42),
            );
            let dirty = drain(&mut stream);
            assert_eq!(stream.clean_rows_seen(), clean.n_rows());
            assert_eq!(csv(&dirty), csv(&dirty_ref), "chunk_rows={chunk_rows}");
            let log = stream.into_log();
            assert_eq!(log.provenance, log_ref.provenance, "chunk_rows={chunk_rows}");
            assert_eq!(log.cells, log_ref.cells, "chunk_rows={chunk_rows}");
            assert_eq!(
                log.deleted_clean_rows, log_ref.deleted_clean_rows,
                "chunk_rows={chunk_rows}"
            );
            assert_eq!(log.n_corrupted_rows(), log_ref.n_corrupted_rows());
            for r in 0..log.n_rows() {
                assert_eq!(log.is_row_corrupted(r), log_ref.is_row_corrupted(r), "row {r}");
            }
        }
    }

    #[test]
    fn resume_continues_the_exact_stream_and_log() {
        let clean = clean_table(997);
        let cfg = PollutionConfig::standard().with_factor(3.0);
        let (dirty_ref, log_ref) = pollute(&clean, &cfg, &mut StdRng::seed_from_u64(42));

        // First incarnation: five 64-row chunks, then the "crash". At
        // the commit boundary we hold exactly what a journal records:
        // clean cursor, dirty watermark, RNG state.
        let mut first =
            PolluteStream::new(clean.batches(64), cfg.clone(), StdRng::seed_from_u64(42));
        let mut dirty = Table::new(clean.schema().clone());
        for _ in 0..5 {
            dirty.append_rows(&first.next_batch().unwrap().unwrap()).unwrap();
        }
        let cursor = first.clean_rows_seen();
        let watermark = dirty.n_rows();
        let rng_state = first.rng().state();
        let mut cells = first.log().cells.clone();

        // Second incarnation: reposition the source and continue.
        let tail = clean.slice_rows(cursor, clean.n_rows()).unwrap();
        let mut resumed = PolluteStream::resume(
            tail.batches(64),
            cfg,
            StdRng::from_state(rng_state),
            cursor,
            watermark,
        );
        while let Some(batch) = resumed.next_batch().unwrap() {
            dirty.append_rows(&batch).unwrap();
        }
        assert_eq!(resumed.rows_emitted(), dirty.n_rows());
        assert_eq!(csv(&dirty), csv(&dirty_ref), "resumed dirty rows must be byte-identical");
        cells.extend(resumed.log().cells.iter().cloned());
        assert_eq!(cells, log_ref.cells, "concatenated logs must equal the uninterrupted log");
        assert!(
            resumed.log().provenance.iter().all(|p| p.clean_row >= cursor),
            "continuation provenance is global"
        );
    }

    #[test]
    fn all_deleted_chunks_are_skipped_not_emitted() {
        let clean = clean_table(40);
        // p_delete = 1 and activation 1: every record is deleted.
        let cfg = PollutionConfig {
            steps: vec![PollutionStep {
                polluter: Polluter::Duplicator { p_delete: 1.0 },
                activation: 1.0,
            }],
            factor: 1.0,
        };
        let mut stream = PolluteStream::new(clean.batches(8), cfg, StdRng::seed_from_u64(7));
        assert!(stream.next_batch().unwrap().is_none());
        assert_eq!(stream.rows_emitted(), 0);
        assert_eq!(stream.clean_rows_seen(), 40);
        assert_eq!(stream.log().deleted_clean_rows.len(), 40);
    }

    #[test]
    fn source_errors_propagate_and_fuse() {
        let clean = clean_table(10);
        let schema = clean.schema().clone();
        let good = clean.slice_rows(0, 5).unwrap();
        let source = ReplaySource::new(schema, vec![Ok(good), Err(TableError::Csv("torn".into()))]);
        let mut stream =
            PolluteStream::new(source, PollutionConfig::standard(), StdRng::seed_from_u64(1));
        let first = stream.next_batch().unwrap().expect("first batch survives");
        assert!(first.n_rows() > 0);
        assert!(matches!(stream.next_batch(), Err(TableError::Csv(_))));
        assert!(matches!(stream.next_batch(), Ok(None)), "fused after error");
        // The log still covers the rows polluted before the tear.
        assert_eq!(stream.log().n_rows(), first.n_rows());
    }
}
