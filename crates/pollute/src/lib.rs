//! # dq-pollute — controlled data corruption (sec. 4.2 of the paper)
//!
//! The test environment of *Systematic Development of Data
//! Mining-Based Data Quality Tools* "pollutes … data in a controlled
//! and logged procedure". This crate provides the five polluter
//! families of the paper —
//!
//! * **wrong value** (new value drawn from a distribution),
//! * **null value** (cell replaced by NULL),
//! * **limiter** (numeric/date value cut off at a bound),
//! * **switcher** (two attributes' values swapped),
//! * **duplicator** (record duplicated or deleted),
//!
//! — each wrapped in a [`PollutionStep`] with an activation
//! probability, combined into a [`PollutionConfig`] whose common
//! *pollution factor* scales all probabilities at once (the x-axis of
//! Figure 5), and executed by [`pollute`], which returns the dirty
//! table together with the ground-truth [`PollutionLog`] — or
//! streamed chunk-at-a-time over any `BatchSource` by
//! [`PolluteStream`], byte-identically and at O(chunk) memory.

pub mod log;
pub mod pipeline;
pub mod polluter;
pub mod stream;
pub mod violations;

pub use log::{CellCorruption, PollutionLog, RowProvenance, CELLS_CSV_HEADER};
pub use pipeline::{pollute, PollutionConfig, PollutionStep};
pub use polluter::{Polluter, PolluterKind};
pub use stream::PolluteStream;
pub use violations::{count_violations, unexplained_violations, violating_rows};
