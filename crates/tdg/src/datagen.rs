//! Data generation according to rules (sec. 4.1.4).
//!
//! "A number of records has to be created that follow this rule set.
//! This is done by selecting values for each attribute according to
//! independent probability distributions and successively adjusting
//! these guesses by rules that are violated." Start values come from
//! univariate [`DistributionSpec`]s and/or multivariate Bayesian
//! networks (the paper's fix for "independent sampling of the initial
//! values does not lead to a satisfactory model"); the adjustment is an
//! iterative **repair loop** that makes violated rules' consequents
//! true (falling back to falsifying the premise via TDG-negation when
//! the consequent is unsatisfiable in place).
//!
//! Repair can oscillate between rule *instances* (natural rule sets
//! only exclude pairwise contradictions), so passes are bounded and
//! unresolved violations are reported rather than looped on forever.

use dq_bayes::BayesianNetwork;
use dq_exec::WorkerPool;
use dq_logic::{
    eval_formula, eval_rule, negate, Atom, CompiledFormula, CompiledRuleSet, Formula, RecordView,
    RuleSet, RuleStatus,
};
use dq_stats::DistributionSpec;
use dq_table::{AttrIdx, AttrType, BatchSource, Schema, Table, TableError, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Rows generated per independently seeded RNG stream.
///
/// Generation is sharded into fixed-size row chunks whose seeds are
/// all drawn from the caller's RNG *up front*; each chunk then runs
/// its own [`StdRng`] stream. The chunk layout depends only on
/// `n_rows`, never on the worker count, so the generated table is
/// byte-identical at any thread count — and identical to the serial
/// [`generate_reference`] path. 4096 rows balance per-chunk setup
/// (compiled scratch indexes) against scheduling granularity: a
/// million-row run still yields ~244 chunks to spread over workers.
pub const GEN_CHUNK_ROWS: usize = 4096;

/// Start-value sampling: one univariate spec per attribute, optionally
/// overridden by multivariate Bayesian-network groups.
#[derive(Debug, Clone)]
pub struct StartDistributions {
    /// Per-attribute univariate distributions (index-aligned with the
    /// schema).
    pub univariate: Vec<DistributionSpec>,
    /// Multivariate groups; each network covers a set of nominal
    /// attributes which are then sampled jointly instead of from their
    /// univariate spec.
    pub networks: Vec<BayesianNetwork>,
    /// Probability of starting any cell as NULL (before repair; the
    /// repair step may overwrite injected NULLs to satisfy rules).
    pub null_rate: f64,
}

impl StartDistributions {
    /// Uniform univariate start distributions for every attribute.
    pub fn uniform(schema: &Schema) -> Self {
        StartDistributions {
            univariate: vec![DistributionSpec::Uniform; schema.len()],
            networks: Vec::new(),
            null_rate: 0.0,
        }
    }

    /// Override one attribute's univariate spec (builder style).
    pub fn with_spec(mut self, attr: AttrIdx, spec: DistributionSpec) -> Self {
        self.univariate[attr] = spec;
        self
    }

    /// Add a multivariate group (builder style).
    pub fn with_network(mut self, network: BayesianNetwork) -> Self {
        self.networks.push(network);
        self
    }

    /// Set the NULL injection rate (builder style).
    pub fn with_null_rate(mut self, rate: f64) -> Self {
        self.null_rate = rate;
        self
    }
}

/// Parameters of the data generation step.
#[derive(Debug, Clone)]
pub struct DataGenConfig {
    /// Number of records to generate.
    pub n_rows: usize,
    /// Start-value sampling.
    pub start: StartDistributions,
    /// Maximum repair passes over the rule set per record.
    pub max_repair_passes: usize,
    /// Worker threads for chunk generation — the shared
    /// [`Parallelism`](dq_exec::Parallelism) knob.
    /// [`AUTO`](dq_exec::Parallelism::AUTO) resolves via
    /// `DQ_THREADS`/available parallelism,
    /// [`serial`](dq_exec::Parallelism::serial) runs inline on the
    /// caller's thread. Output is byte-identical at any setting.
    pub threads: dq_exec::Parallelism,
}

impl DataGenConfig {
    /// Uniform start values, 24 repair passes, automatic threads.
    pub fn new(schema: &Schema, n_rows: usize) -> Self {
        DataGenConfig {
            n_rows,
            start: StartDistributions::uniform(schema),
            max_repair_passes: 24,
            threads: dq_exec::Parallelism::AUTO,
        }
    }
}

/// What happened during data generation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GenReport {
    /// Records generated.
    pub rows: usize,
    /// Individual repair actions applied.
    pub repairs: u64,
    /// Records that still violated some rule after the pass budget.
    pub unresolved_rows: usize,
    /// Rule violations remaining across those records.
    pub unresolved_violations: u64,
}

/// Generate `config.n_rows` records over `schema` that (after repair)
/// follow `rules` — the fast path: rules are compiled once into a
/// [`CompiledRuleSet`], the repair loop re-evaluates only rules whose
/// attributes a repair touched (dirty-attribute inverted index), and
/// the fixed-size chunks are sharded across a [`WorkerPool`]. Output
/// is byte-identical to [`generate_reference`] at any thread count.
pub fn generate_table<R: Rng + ?Sized>(
    schema: &Arc<Schema>,
    rules: &RuleSet,
    config: &DataGenConfig,
    rng: &mut R,
) -> (Table, GenReport) {
    assert_eq!(config.start.univariate.len(), schema.len(), "one univariate spec per attribute");
    let plans = chunk_plans(config.n_rows, rng);
    let covered = covered_attrs(schema, config);
    let compiled = CompiledRuleSet::compile(rules, schema.len());
    // Per rule, the two formulae a repair can enforce — the consequent
    // and the TDG-negated premise — pre-compiled into repair trees
    // (per-node programs + isnull flags) once per rule set instead of
    // re-derived per repair action.
    let repair_trees: Vec<(RepairTree, RepairTree)> = rules
        .iter()
        .map(|r| (RepairTree::compile(&r.consequent), RepairTree::compile(&negate(&r.premise))))
        .collect();
    let index = RepairIndex::new(schema, rules, &compiled);
    let pool = WorkerPool::from_config(config.threads);
    let parts = pool.map_indexed(&plans, |_, &(n, seed)| {
        generate_chunk_compiled(
            schema,
            rules,
            config,
            &covered,
            &compiled,
            &repair_trees,
            &index,
            n,
            seed,
        )
    });
    merge_chunks(schema, config.n_rows, parts)
}

/// Generate one chunk through the compiled fast path — the unit of
/// work [`generate_table`] shards across its pool and
/// [`GenerateStream`] produces on demand. One `(n, seed)` plan in,
/// one `n`-row table plus its report out; everything the chunk does is
/// a pure function of the plan, which is what makes the in-memory and
/// streamed paths byte-identical.
#[allow(clippy::too_many_arguments)] // a worker-closure body, not an API
fn generate_chunk_compiled(
    schema: &Arc<Schema>,
    rules: &RuleSet,
    config: &DataGenConfig,
    covered: &[bool],
    compiled: &CompiledRuleSet,
    repair_trees: &[(RepairTree, RepairTree)],
    index: &RepairIndex,
    n: usize,
    seed: u64,
) -> (Table, GenReport) {
    let mut chunk_rng = StdRng::seed_from_u64(seed);
    let mut table = Table::with_capacity(schema.clone(), n);
    let mut report = GenReport::default();
    let mut record: Vec<Value> = vec![Value::Null; schema.len()];
    let mut joint: Vec<(AttrIdx, u32)> = Vec::new();
    let mut scratch = RepairScratch::new(schema, rules);
    for _ in 0..n {
        sample_start(schema, config, covered, &mut record, &mut joint, &mut chunk_rng);
        let unresolved = repair_record_compiled(
            schema,
            compiled,
            repair_trees,
            index,
            &mut record,
            config.max_repair_passes,
            &mut chunk_rng,
            &mut report.repairs,
            &mut scratch,
        );
        if unresolved > 0 {
            report.unresolved_rows += 1;
            report.unresolved_violations += unresolved as u64;
        }
        // Kind-checked append: repairs only write kind-correct
        // domain values, and the retained reference path keeps the
        // fully validating `push_row` on the same records.
        table.push_row_lenient(&record).expect("generated record matches schema");
        report.rows += 1;
    }
    (table, report)
}

/// The retained serial row-at-a-time generator: interpreted rule
/// evaluation ([`eval_rule`]), per-repair [`negate()`], full rule-set
/// re-scan every pass. Ground truth for the compiled path and the
/// "before" side of the `tdg/data` benches. Chunk seeding is shared
/// with [`generate_table`], so the two paths must emit *byte-identical*
/// tables and equal reports (pinned by the equivalence suite).
pub fn generate_reference<R: Rng + ?Sized>(
    schema: &Arc<Schema>,
    rules: &RuleSet,
    config: &DataGenConfig,
    rng: &mut R,
) -> (Table, GenReport) {
    assert_eq!(config.start.univariate.len(), schema.len(), "one univariate spec per attribute");
    let plans = chunk_plans(config.n_rows, rng);
    let covered = covered_attrs(schema, config);
    let mut parts = Vec::with_capacity(plans.len());
    for &(n, seed) in &plans {
        let mut chunk_rng = StdRng::seed_from_u64(seed);
        let mut table = Table::with_capacity(schema.clone(), n);
        let mut report = GenReport::default();
        let mut record: Vec<Value> = vec![Value::Null; schema.len()];
        let mut joint: Vec<(AttrIdx, u32)> = Vec::new();
        for _ in 0..n {
            sample_start(schema, config, &covered, &mut record, &mut joint, &mut chunk_rng);
            let unresolved = repair_record(
                schema,
                rules,
                &mut record,
                config.max_repair_passes,
                &mut chunk_rng,
                &mut report.repairs,
            );
            if unresolved > 0 {
                report.unresolved_rows += 1;
                report.unresolved_violations += unresolved as u64;
            }
            table.push_row(&record).expect("generated record matches schema");
            report.rows += 1;
        }
        parts.push((table, report));
    }
    merge_chunks(schema, config.n_rows, parts)
}

/// A [`BatchSource`] that **generates** its batches: chunk-seeded,
/// rule-following records produced on demand at O(chunk) memory —
/// the streaming twin of [`generate_table`].
///
/// Construction draws the same up-front chunk plans from the
/// caller's RNG that `generate_table` would, so (1) the concatenated
/// batches are **byte-identical** to `generate_table`'s table at every
/// batch size and thread count, and (2) the caller's RNG lands in the
/// same state after construction as after an in-memory generate —
/// downstream seeded steps (pollution) see an identical stream.
///
/// Generation granularity stays [`GEN_CHUNK_ROWS`] internally
/// (refilled up to one chunk per worker per call); the emitted batch
/// size is re-sliced to [`GenerateStream::with_batch_rows`] without
/// affecting the bytes. Peak memory is
/// `O(batch_rows + threads × GEN_CHUNK_ROWS)` rows.
///
/// The accumulated [`GenReport`] (equal to `generate_table`'s once the
/// stream is drained) is available through
/// [`GenerateStream::report`].
pub struct GenerateStream {
    schema: Arc<Schema>,
    rules: RuleSet,
    config: DataGenConfig,
    covered: Vec<bool>,
    compiled: CompiledRuleSet,
    repair_trees: Vec<(RepairTree, RepairTree)>,
    index: RepairIndex,
    plans: Vec<(usize, u64)>,
    next_plan: usize,
    batch_rows: usize,
    pool: WorkerPool,
    /// Generated-but-not-yet-emitted rows.
    pending: Table,
    report: GenReport,
    rows_emitted: usize,
}

impl std::fmt::Debug for GenerateStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GenerateStream")
            .field("n_rows", &self.config.n_rows)
            .field("rows_emitted", &self.rows_emitted)
            .field("batch_rows", &self.batch_rows)
            .field("chunks", &format_args!("{}/{}", self.next_plan, self.plans.len()))
            .finish_non_exhaustive()
    }
}

impl GenerateStream {
    /// Set up streamed generation: compiles the rule set once and
    /// draws the chunk seeds from `rng` exactly like
    /// [`generate_table`] (the RNG is not used again afterwards).
    pub fn new<R: Rng + ?Sized>(
        schema: Arc<Schema>,
        rules: RuleSet,
        config: DataGenConfig,
        rng: &mut R,
    ) -> Self {
        assert_eq!(
            config.start.univariate.len(),
            schema.len(),
            "one univariate spec per attribute"
        );
        let plans = chunk_plans(config.n_rows, rng);
        let covered = covered_attrs(&schema, &config);
        let compiled = CompiledRuleSet::compile(&rules, schema.len());
        let repair_trees: Vec<(RepairTree, RepairTree)> = rules
            .iter()
            .map(|r| (RepairTree::compile(&r.consequent), RepairTree::compile(&negate(&r.premise))))
            .collect();
        let index = RepairIndex::new(&schema, &rules, &compiled);
        let pool = config.threads.pool();
        let pending = Table::new(schema.clone());
        GenerateStream {
            schema,
            rules,
            config,
            covered,
            compiled,
            repair_trees,
            index,
            plans,
            next_plan: 0,
            batch_rows: GEN_CHUNK_ROWS,
            pool,
            pending,
            report: GenReport::default(),
            rows_emitted: 0,
        }
    }

    /// Set the emitted batch size in rows (builder style; clamped to
    /// ≥ 1). Purely a memory/latency knob — the concatenated bytes are
    /// identical at every setting.
    pub fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows.max(1);
        self
    }

    /// The generation report accumulated so far; equal to
    /// [`generate_table`]'s report once the stream is drained.
    pub fn report(&self) -> &GenReport {
        &self.report
    }

    /// Fast-forward the stream so the next emitted row is global row
    /// `offset` — the seek a resumed job uses to skip rows a previous
    /// incarnation already committed. Every chunk is a pure function
    /// of its up-front `(len, seed)` plan, so draining after a seek
    /// yields exactly the bytes an uninterrupted stream produces from
    /// that offset on. Skipped rows count as emitted; the
    /// accumulated [`GenReport`] covers only rows generated by *this*
    /// incarnation (the report is no persisted output's source, so
    /// resume byte-identity does not depend on it).
    pub fn seek_to_row(&mut self, offset: usize) -> Result<(), TableError> {
        if offset > self.config.n_rows {
            return Err(TableError::RowOutOfRange(offset));
        }
        self.pending = Table::new(self.schema.clone());
        self.report = GenReport::default();
        self.rows_emitted = offset;
        if offset == self.config.n_rows {
            self.next_plan = self.plans.len();
            return Ok(());
        }
        let chunk = offset / GEN_CHUNK_ROWS;
        let within = offset % GEN_CHUNK_ROWS;
        self.next_plan = chunk;
        if within > 0 {
            // The offset lands mid-chunk: regenerate the containing
            // chunk (pure per-plan) and keep only its tail.
            let (n, seed) = self.plans[chunk];
            let (part, _) = generate_chunk_compiled(
                &self.schema,
                &self.rules,
                &self.config,
                &self.covered,
                &self.compiled,
                &self.repair_trees,
                &self.index,
                n,
                seed,
            );
            self.pending.append_rows(&part.slice_rows(within, n)?)?;
            self.next_plan = chunk + 1;
        }
        Ok(())
    }

    /// Generate the next round of chunks (one per worker) into the
    /// pending buffer.
    fn refill(&mut self) -> Result<(), TableError> {
        let end = (self.next_plan + self.pool.threads().max(1)).min(self.plans.len());
        let plans = &self.plans[self.next_plan..end];
        let (schema, rules, config) = (&self.schema, &self.rules, &self.config);
        let (covered, compiled) = (&self.covered, &self.compiled);
        let (repair_trees, index) = (&self.repair_trees, &self.index);
        let parts = self.pool.map_indexed(plans, |_, &(n, seed)| {
            generate_chunk_compiled(
                schema,
                rules,
                config,
                covered,
                compiled,
                repair_trees,
                index,
                n,
                seed,
            )
        });
        self.next_plan = end;
        for (part, part_report) in parts {
            self.pending.append_rows(&part)?;
            self.report.rows += part_report.rows;
            self.report.repairs += part_report.repairs;
            self.report.unresolved_rows += part_report.unresolved_rows;
            self.report.unresolved_violations += part_report.unresolved_violations;
        }
        Ok(())
    }
}

impl BatchSource for GenerateStream {
    fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    fn next_batch(&mut self) -> Result<Option<Table>, TableError> {
        while self.pending.n_rows() < self.batch_rows && self.next_plan < self.plans.len() {
            self.refill()?;
        }
        if self.pending.is_empty() {
            return Ok(None);
        }
        let take = self.batch_rows.min(self.pending.n_rows());
        let batch = self.pending.slice_rows(0, take)?;
        self.pending = self.pending.slice_rows(take, self.pending.n_rows())?;
        self.rows_emitted += batch.n_rows();
        Ok(Some(batch))
    }

    fn rows_emitted(&self) -> usize {
        self.rows_emitted
    }

    fn row_count_hint(&self) -> Option<usize> {
        Some(self.config.n_rows)
    }
}

/// The deterministic chunk layout: `(len, seed)` per chunk, seeds drawn
/// from the caller's RNG in chunk order before any generation starts.
fn chunk_plans<R: Rng + ?Sized>(n_rows: usize, rng: &mut R) -> Vec<(usize, u64)> {
    let n_chunks = n_rows.div_ceil(GEN_CHUNK_ROWS);
    (0..n_chunks)
        .map(|i| {
            let len = GEN_CHUNK_ROWS.min(n_rows - i * GEN_CHUNK_ROWS);
            (len, rng.gen::<u64>())
        })
        .collect()
}

/// Attributes covered by a multivariate group skip univariate sampling.
fn covered_attrs(schema: &Schema, config: &DataGenConfig) -> Vec<bool> {
    let mut covered = vec![false; schema.len()];
    for net in &config.start.networks {
        for a in net.attrs() {
            covered[a] = true;
        }
    }
    covered
}

/// Stitch per-chunk tables and reports back together, in chunk order.
fn merge_chunks(
    schema: &Arc<Schema>,
    n_rows: usize,
    parts: Vec<(Table, GenReport)>,
) -> (Table, GenReport) {
    let mut table = Table::with_capacity(schema.clone(), n_rows);
    let mut report = GenReport::default();
    for (part, part_report) in parts {
        table.append_rows(&part).expect("chunk tables share the schema");
        report.rows += part_report.rows;
        report.repairs += part_report.repairs;
        report.unresolved_rows += part_report.unresolved_rows;
        report.unresolved_violations += part_report.unresolved_violations;
    }
    (table, report)
}

fn sample_start<R: Rng + ?Sized>(
    schema: &Schema,
    config: &DataGenConfig,
    covered: &[bool],
    record: &mut [Value],
    joint: &mut Vec<(AttrIdx, u32)>,
    rng: &mut R,
) {
    for (a, cell) in record.iter_mut().enumerate() {
        *cell = if covered[a] {
            Value::Null // filled by the network below
        } else {
            config.start.univariate[a].sample(&schema.attr(a).ty, rng)
        };
    }
    for net in &config.start.networks {
        net.sample_into(rng, joint);
        for &(attr, code) in joint.iter() {
            record[attr] = Value::Nominal(code);
        }
    }
    if config.start.null_rate > 0.0 {
        for cell in record.iter_mut() {
            if rng.gen::<f64>() < config.start.null_rate {
                *cell = Value::Null;
            }
        }
    }
}

/// Repair a record against the rule set; returns the number of rules
/// still violated after the pass budget.
///
/// Three escalating phases share the pass budget. Natural rule sets
/// exclude pairwise contradictions, but rules with *overlapping*
/// premises may still prescribe incompatible consequents for
/// individual records, and dense rule sets (the paper's baseline has
/// 100 rules over 8 attributes) form a constraint system that local
/// enforcement alone cannot always satisfy:
///
/// 1. **enforce** — make violated consequents true (builds the wanted
///    dependencies);
/// 2. **falsify** — make violated premises false via their
///    TDG-negation (true exactly when the premise is false),
///    preferring NULL-free disjuncts;
/// 3. **escape** — falsify preferring the `isnull` disjuncts: a NULL
///    premise attribute falsifies every propositional and relational
///    atom on it, which is the guaranteed way out of conflict cycles
///    (at the price of a missing value).
///
/// Rules are visited in a fresh random order each pass so that cyclic
/// conflicts do not replay deterministically.
fn repair_record<R: Rng + ?Sized>(
    schema: &Schema,
    rules: &RuleSet,
    record: &mut [Value],
    max_passes: usize,
    rng: &mut R,
    repairs: &mut u64,
) -> usize {
    let enforce_end = (max_passes / 2).max(1);
    let falsify_end = enforce_end + (max_passes / 4);
    let mut order: Vec<usize> = (0..rules.len()).collect();
    for pass in 0..max_passes {
        shuffle(&mut order, rng);
        let (enforce, prefer_null) = (pass < enforce_end, pass >= falsify_end);
        let mut violated = false;
        for &i in &order {
            let rule = &rules.rules[i];
            if eval_rule(rule, record) == RuleStatus::Violated {
                violated = true;
                *repairs += 1;
                let repaired =
                    enforce && make_true(schema, &rule.consequent, record, rng, prefer_null);
                if !repaired {
                    make_true(schema, &negate(&rule.premise), record, rng, prefer_null);
                }
            }
        }
        if !violated {
            return 0;
        }
    }
    rules.iter().filter(|r| eval_rule(r, record) == RuleStatus::Violated).count()
}

fn shuffle<R: Rng + ?Sized, T>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        items.swap(i, rng.gen_range(0..=i));
    }
}

/// Precomputed exact-remainder magic for one divisor (Lemire's
/// fastmod): `m = ⌈2⁶⁴ / s⌉` and `p = 2³² mod s`.
#[derive(Clone, Copy)]
struct ModMagic {
    s: u64,
    m: u64,
    p: u64,
}

impl ModMagic {
    fn new(s: u64) -> ModMagic {
        debug_assert!((1..=1 << 16).contains(&s));
        ModMagic { s, m: (u64::MAX / s).wrapping_add(1), p: (1u64 << 32) % s }
    }

    /// `y mod s` for `y < 2³²` without a hardware division
    /// (Lemire's fastmod; exact for 32-bit dividends).
    #[inline]
    fn rem32(&self, y: u64) -> u64 {
        if self.s == 1 {
            return 0;
        }
        ((self.m.wrapping_mul(y) as u128 * self.s as u128) >> 64) as u64
    }

    /// `x mod s` for any `x`, by splitting into 32-bit halves:
    /// `x = hi·2³² + lo ⇒ x mod s = (hi mod s · (2³² mod s) + lo mod s)
    /// mod s`. With `s ≤ 2¹⁶` the recombined dividend stays below
    /// 2³², so every step uses the exact 32-bit fastmod. Produces the
    /// same value as `x % s` bit for bit (the shuffle replays the
    /// reference RNG stream through this).
    #[inline]
    fn rem64(&self, x: u64) -> u64 {
        let hi = self.rem32(x >> 32);
        let lo = self.rem32(x & 0xFFFF_FFFF);
        self.rem32(hi * self.p + lo)
    }
}

/// The compiled repair loop's shuffle: identical swaps to [`shuffle`]
/// (one `next_u64` draw per step, same index), with the modulo done by
/// precomputed magics instead of a hardware division per draw.
fn shuffle_fast<R: Rng + ?Sized, T>(items: &mut [T], rng: &mut R, magics: &[ModMagic]) {
    for i in (1..items.len()).rev() {
        let j = magics[i + 1].rem64(rng.next_u64());
        items.swap(i, j as usize);
    }
}

/// Immutable scheduling indexes of one compiled rule set — built
/// once per generation call and shared by every chunk worker.
struct RepairIndex {
    /// The identity permutation, memcpy'd into the visit order per
    /// record.
    identity: Vec<u32>,
    /// Attribute list per rule (premise ∪ consequent), precomputed so
    /// repairs do not re-derive it.
    rule_attrs: Vec<Vec<usize>>,
    /// `guard_buckets[attr][code]` lists the rules whose nominal guard
    /// is `attr = code` — the per-record initial scan only evaluates
    /// the buckets the record's cells select.
    guard_buckets: Vec<Vec<Vec<u32>>>,
    /// Rules with a numeric-threshold guard, swept type-major by the
    /// initial scan: `(attr, threshold, rule)` per comparison kind.
    less_guards: Vec<(u32, f64, u32)>,
    eq_num_guards: Vec<(u32, f64, u32)>,
    greater_guards: Vec<(u32, f64, u32)>,
    /// Rules with no indexable guard, always evaluated by the initial
    /// scan.
    always_check: Vec<u32>,
    /// Per-span modulus magics for the shuffle (`None` when the rule
    /// count exceeds the exact-fastmod range).
    magics: Option<Vec<ModMagic>>,
    /// Per attribute: the rules whose *guard* reads that attribute.
    guards_on_attr: Vec<Vec<u32>>,
    /// Split inverted index for invalidation: per attribute, the
    /// touching rules whose nominal guard sits on that very attribute
    /// (stored with their guard code) and the rest. After a cell
    /// change only matching-guard and unguarded-on-this-attribute
    /// rules can *become* violated.
    by_attr_nom: Vec<Vec<(u32, u32)>>,
    by_attr_rest: Vec<Vec<u32>>,
}

impl RepairIndex {
    fn new(schema: &Schema, rules: &RuleSet, compiled: &CompiledRuleSet) -> RepairIndex {
        let identity: Vec<u32> = (0..rules.len() as u32).collect();
        let mut guard_buckets: Vec<Vec<Vec<u32>>> = schema
            .attributes()
            .iter()
            .map(|a| match &a.ty {
                AttrType::Nominal { labels } => vec![Vec::new(); labels.len()],
                _ => Vec::new(),
            })
            .collect();
        let mut always_check = Vec::new();
        let (mut less_guards, mut eq_num_guards, mut greater_guards) =
            (Vec::new(), Vec::new(), Vec::new());
        let mut guard_attr = vec![u32::MAX; rules.len()];
        let mut guard_code = vec![u32::MAX; rules.len()];
        for i in 0..rules.len() {
            match compiled.guard_nominal(i) {
                Some((attr, code))
                    if attr < guard_buckets.len()
                        && (code as usize) < guard_buckets[attr].len() =>
                {
                    guard_buckets[attr][code as usize].push(i as u32);
                    guard_attr[i] = attr as u32;
                    guard_code[i] = code;
                }
                _ => match compiled.guard_numeric(i) {
                    Some((attr, x, -1)) => less_guards.push((attr as u32, x, i as u32)),
                    Some((attr, x, 0)) => eq_num_guards.push((attr as u32, x, i as u32)),
                    Some((attr, x, _)) => greater_guards.push((attr as u32, x, i as u32)),
                    None => always_check.push(i as u32),
                },
            }
        }
        let mut by_attr_nom: Vec<Vec<(u32, u32)>> = vec![Vec::new(); schema.len()];
        let mut by_attr_rest: Vec<Vec<u32>> = vec![Vec::new(); schema.len()];
        for a in 0..schema.len() {
            for &j in compiled.rules_on_attr(a) {
                if guard_attr[j as usize] == a as u32 {
                    by_attr_nom[a].push((guard_code[j as usize], j));
                } else {
                    by_attr_rest[a].push(j);
                }
            }
        }
        let mut guards_on_attr: Vec<Vec<u32>> = vec![Vec::new(); schema.len()];
        for i in 0..rules.len() {
            for a in compiled.guard_attrs(i) {
                if a < guards_on_attr.len() {
                    guards_on_attr[a].push(i as u32);
                }
            }
        }
        RepairIndex {
            identity,
            rule_attrs: rules.iter().map(|r| r.attrs()).collect(),
            guard_buckets,
            less_guards,
            eq_num_guards,
            greater_guards,
            always_check,
            by_attr_nom,
            by_attr_rest,
            guards_on_attr,
            magics: if rules.len() < (1 << 16) {
                Some((0..=rules.len().max(1)).map(|s| ModMagic::new(s.max(1) as u64)).collect())
            } else {
                None
            },
        }
    }
}

/// Mutable per-worker buffers of the compiled repair loop.
struct RepairScratch {
    /// Shuffled visit order (reset to identity per record — the
    /// reference path starts every record from the identity order).
    order: Vec<u32>,
    /// Inverse of `order`: `pos[rule] = turn`, rebuilt per repairing
    /// pass.
    pos: Vec<u32>,
    /// `violated[i]`: rule `i`'s current verdict. Kept current at all
    /// times by sequential batch re-evaluation (never lazily stale).
    violated: Vec<bool>,
    /// Indices of the rules with `violated[i] == true` (kept in sync).
    violated_set: Vec<u32>,
    /// Rules whose verdict the current repair may have changed,
    /// awaiting batch re-evaluation.
    dirty: Vec<u32>,
    /// Dedup stamps for `dirty` (`dirty_stamp[i] == stamp` ⇔ rule `i`
    /// is already queued for this repair).
    dirty_stamp: Vec<u32>,
    /// The current repair's stamp.
    stamp: u32,
    /// Snapshot of the repaired rule's cells, for change detection.
    before: Vec<Value>,
    /// Which snapshot slots actually changed during the repair.
    changed: Vec<bool>,
    /// Typed mirror of the current record (kept cell-exact in sync).
    view: RecordView,
    /// `guard_pass_stamp[i] == record_stamp` ⇔ rule `i`'s guard holds
    /// on the current record (kept current: guards are re-checked when
    /// one of their attributes changes). A failing guard lets the
    /// invalidation skip the rule without evaluating its program.
    guard_pass_stamp: Vec<u32>,
    record_stamp: u32,
}

impl RepairScratch {
    fn new(schema: &Schema, rules: &RuleSet) -> RepairScratch {
        let identity: Vec<u32> = (0..rules.len() as u32).collect();
        RepairScratch {
            order: identity.clone(),
            pos: identity,
            violated: vec![false; rules.len()],
            violated_set: Vec::new(),
            dirty: Vec::new(),
            dirty_stamp: vec![0; rules.len()],
            stamp: 0,
            before: Vec::new(),
            changed: Vec::new(),
            view: RecordView::new(schema.len()),
            guard_pass_stamp: vec![0; rules.len()],
            record_stamp: 0,
        }
    }
}

/// The compiled twin of [`repair_record`]: same escalation phases, same
/// shuffles, same repair actions — and therefore the same RNG stream.
///
/// The reference scans the whole rule set in shuffled order every
/// pass, which is dominated by branch-mispredicted scattered
/// evaluations. This loop keeps every rule's verdict *current*
/// instead: one guarded initial scan per record (dispatched through
/// the nominal guard buckets, so most rules are ruled out by a table
/// lookup), then after each repair a sequential batch re-evaluation of
/// exactly the rules reading a changed cell (the dirty-attribute
/// inverted index). A pass then just replays the violated rules in
/// shuffled-turn order — the verdict a rule would get at its turn
/// equals its current verdict, because verdicts only change when the
/// record changes, and every record change immediately refreshes the
/// affected verdicts.
#[allow(clippy::too_many_arguments)]
fn repair_record_compiled<R: Rng + ?Sized>(
    schema: &Schema,
    compiled: &CompiledRuleSet,
    repair_trees: &[(RepairTree, RepairTree)],
    index: &RepairIndex,
    record: &mut [Value],
    max_passes: usize,
    rng: &mut R,
    repairs: &mut u64,
    scratch: &mut RepairScratch,
) -> usize {
    let enforce_end = (max_passes / 2).max(1);
    let falsify_end = enforce_end + (max_passes / 4);
    let RepairIndex {
        identity,
        rule_attrs,
        guard_buckets,
        less_guards,
        eq_num_guards,
        greater_guards,
        always_check,
        by_attr_nom,
        by_attr_rest,
        guards_on_attr,
        magics,
    } = index;
    let RepairScratch {
        order,
        pos,
        violated,
        violated_set,
        dirty,
        dirty_stamp,
        stamp,
        before,
        changed,
        view,
        guard_pass_stamp,
        record_stamp,
    } = scratch;
    *record_stamp = record_stamp.wrapping_add(1);
    let rs = *record_stamp;
    order.copy_from_slice(identity);
    view.sync_all(record);

    // Initial scan: compute every rule's verdict for the fresh record.
    // A rule whose nominal guard does not match its cell cannot be
    // violated, so only the matching buckets and the unguarded rules
    // are evaluated.
    violated.fill(false);
    violated_set.clear();
    for (a, buckets) in guard_buckets.iter().enumerate() {
        if let Value::Nominal(c) = record[a] {
            if let Some(bucket) = buckets.get(c as usize) {
                for &i in bucket {
                    // The bucket lookup *is* the guard check.
                    guard_pass_stamp[i as usize] = rs;
                    if compiled.violates_rule_view_postguard(i as usize, view) {
                        violated[i as usize] = true;
                        violated_set.push(i);
                    }
                }
            }
        }
    }
    {
        // Type-major threshold-guard sweeps: one predictable compare
        // per rule; only survivors run their violation program.
        let nums = view.nums();
        for &(a, x, i) in less_guards.iter() {
            if nums[a as usize] < x {
                guard_pass_stamp[i as usize] = rs;
                if compiled.violates_rule_view_postguard(i as usize, view) {
                    violated[i as usize] = true;
                    violated_set.push(i);
                }
            }
        }
        for &(a, x, i) in eq_num_guards.iter() {
            if nums[a as usize] == x {
                guard_pass_stamp[i as usize] = rs;
                if compiled.violates_rule_view_postguard(i as usize, view) {
                    violated[i as usize] = true;
                    violated_set.push(i);
                }
            }
        }
        for &(a, x, i) in greater_guards.iter() {
            if nums[a as usize] > x {
                guard_pass_stamp[i as usize] = rs;
                if compiled.violates_rule_view_postguard(i as usize, view) {
                    violated[i as usize] = true;
                    violated_set.push(i);
                }
            }
        }
    }
    for &i in always_check.iter() {
        if compiled.guard_passes_view(i as usize, view) {
            guard_pass_stamp[i as usize] = rs;
            if compiled.violates_rule_view_postguard(i as usize, view) {
                violated[i as usize] = true;
                violated_set.push(i);
            }
        }
    }

    for pass in 0..max_passes {
        if violated_set.is_empty() {
            // The reference's clean confirm pass: shuffle, observe no
            // violation, exit. The permutation is never read again
            // (every record resets it), so only the shuffle's RNG
            // draws need consuming — one `next_u64` per step.
            for _ in 1..order.len() {
                rng.next_u64();
            }
            return 0;
        }
        match magics {
            Some(m) => shuffle_fast(order, rng, m),
            None => shuffle(order, rng),
        }
        for (turn, &iu) in order.iter().enumerate() {
            pos[iu as usize] = turn as u32;
        }
        let (enforce, prefer_null) = (pass < enforce_end, pass >= falsify_end);
        let mut cursor = 0u32;
        // Replay the violated rules in turn order. A rule fixed by an
        // earlier-turn repair is skipped exactly like the reference
        // (which would re-evaluate it at its turn and see it clean);
        // a rule that *becomes* violated mid-pass after its turn waits
        // for the next pass, again like the reference.
        loop {
            let mut best: Option<(u32, u32)> = None; // (turn, rule)
            for &j in violated_set.iter() {
                let p = pos[j as usize];
                if p >= cursor && best.is_none_or(|(bp, _)| p < bp) {
                    best = Some((p, j));
                }
            }
            let Some((turn, iu)) = best else {
                break;
            };
            cursor = turn + 1;
            let i = iu as usize;
            *repairs += 1;
            let (consequent_tree, neg_premise_tree) = &repair_trees[i];
            let attrs = &rule_attrs[i];
            // Snapshot the rule's cells: `make_true` only ever writes
            // attributes of the formula it enforces, and both the
            // consequent and the TDG-negated premise mention only this
            // rule's attributes.
            before.clear();
            before.extend(attrs.iter().map(|&a| record[a]));
            // The rule is violated on the *current* record (verdicts
            // are kept current), so the consequent is known false —
            // and so is the negated premise as long as nothing has
            // been adjusted yet.
            let repaired = enforce
                && make_true_compiled_known_false(
                    schema,
                    consequent_tree,
                    record,
                    rng,
                    prefer_null,
                );
            if !repaired {
                if enforce {
                    make_true_compiled(schema, neg_premise_tree, record, rng, prefer_null);
                } else {
                    make_true_compiled_known_false(
                        schema,
                        neg_premise_tree,
                        record,
                        rng,
                        prefer_null,
                    );
                }
            }
            // Refresh the verdicts of every rule reading a cell whose
            // value actually changed, in one sequential batch. The
            // split index keeps the candidate list small: a clean rule
            // whose nominal guard sits on the changed attribute can
            // only flip when the new cell matches its guard code.
            // Currently-violated rules are swept separately below so
            // their removal is never missed.
            dirty.clear();
            *stamp = stamp.wrapping_add(1);
            let mut any_changed = false;
            // First sweep: mirror the changed cells and refresh the
            // guard verdicts that read them.
            changed.clear();
            for (k, &a) in attrs.iter().enumerate() {
                let cell_changed = record[a] != before[k];
                changed.push(cell_changed);
                if cell_changed {
                    any_changed = true;
                    view.sync_attr(a, &record[a]);
                    for &j in guards_on_attr[a].iter() {
                        guard_pass_stamp[j as usize] =
                            if compiled.guard_passes_view(j as usize, view) { rs } else { 0 };
                    }
                }
            }
            // Second sweep: collect the re-evaluation candidates. A
            // clean rule whose guard (now up to date) fails cannot
            // have become violated.
            for (k, &a) in attrs.iter().enumerate() {
                if changed[k] {
                    let new_code = match record[a] {
                        Value::Nominal(c) => c,
                        _ => u32::MAX,
                    };
                    for &j in by_attr_rest[a].iter() {
                        let ju = j as usize;
                        if !violated[ju] && guard_pass_stamp[ju] != rs {
                            continue;
                        }
                        if dirty_stamp[ju] != *stamp {
                            dirty_stamp[ju] = *stamp;
                            dirty.push(j);
                        }
                    }
                    for &(code, j) in by_attr_nom[a].iter() {
                        if code == new_code && dirty_stamp[j as usize] != *stamp {
                            dirty_stamp[j as usize] = *stamp;
                            dirty.push(j);
                        }
                    }
                }
            }
            if any_changed {
                // A violated rule touching any changed attribute must
                // be re-evaluated even when its guard now rejects it —
                // that is exactly how it leaves the violated set.
                for &j in violated_set.iter() {
                    let ju = j as usize;
                    if dirty_stamp[ju] == *stamp {
                        continue;
                    }
                    let touched = attrs
                        .iter()
                        .enumerate()
                        .any(|(k, &a)| changed[k] && rule_attrs[ju].contains(&a));
                    if touched {
                        dirty_stamp[ju] = *stamp;
                        dirty.push(j);
                    }
                }
            }
            for &j in dirty.iter() {
                let was = violated[j as usize];
                // The stamp invariant says whether the guard holds, so
                // stamped rules enter past their guard op.
                let now = guard_pass_stamp[j as usize] == rs
                    && compiled.violates_rule_view_postguard(j as usize, view);
                if was != now {
                    violated[j as usize] = now;
                    if now {
                        violated_set.push(j);
                    } else {
                        let at = violated_set
                            .iter()
                            .position(|&x| x == j)
                            .expect("violated rule is in the set");
                        violated_set.swap_remove(at);
                    }
                }
            }
        }
    }
    violated_set.len()
}

/// Adjust the record so `formula` holds; returns `false` when no
/// adjustment was found (rare: empty domains or exhausted retries).
fn make_true<R: Rng + ?Sized>(
    schema: &Schema,
    formula: &Formula,
    record: &mut [Value],
    rng: &mut R,
    prefer_null: bool,
) -> bool {
    if eval_formula(formula, record) {
        return true;
    }
    make_true_known_false(schema, formula, record, rng, prefer_null)
}

/// A formula pre-compiled for the repair step: the tree shape
/// [`make_true`] walks, with a flat evaluation program and the
/// `contains_isnull` flag cached at every node. The compiled walker
/// below mirrors `make_true` decision for decision (and therefore RNG
/// draw for RNG draw); only the satisfaction checks and isnull tests
/// run on precomputed data instead of re-walking `Formula` trees.
struct RepairTree {
    program: CompiledFormula,
    has_isnull: bool,
    kind: RepairKind,
}

enum RepairKind {
    Atom(Atom),
    And(Vec<RepairTree>),
    Or(Vec<RepairTree>),
}

impl RepairTree {
    fn compile(formula: &Formula) -> RepairTree {
        let kind = match formula {
            Formula::Atom(a) => RepairKind::Atom(*a),
            Formula::And(fs) => RepairKind::And(fs.iter().map(RepairTree::compile).collect()),
            Formula::Or(fs) => RepairKind::Or(fs.iter().map(RepairTree::compile).collect()),
        };
        RepairTree {
            program: CompiledFormula::compile(formula),
            has_isnull: contains_isnull(formula),
            kind,
        }
    }
}

/// [`make_true`] over a [`RepairTree`] — identical adjustments and RNG
/// stream, compiled checks.
fn make_true_compiled<R: Rng + ?Sized>(
    schema: &Schema,
    tree: &RepairTree,
    record: &mut [Value],
    rng: &mut R,
    prefer_null: bool,
) -> bool {
    if tree.program.eval(record) {
        return true;
    }
    make_true_compiled_known_false(schema, tree, record, rng, prefer_null)
}

/// [`make_true_known_false`] over a [`RepairTree`].
fn make_true_compiled_known_false<R: Rng + ?Sized>(
    schema: &Schema,
    tree: &RepairTree,
    record: &mut [Value],
    rng: &mut R,
    prefer_null: bool,
) -> bool {
    match &tree.kind {
        RepairKind::Atom(a) => make_atom_true(schema, a, record, rng),
        RepairKind::And(children) => {
            let mut ok = true;
            for child in children {
                ok &= make_true_compiled(schema, child, record, rng, prefer_null);
            }
            // Later conjuncts may have disturbed earlier ones; report
            // success only if the whole conjunction now holds.
            ok && tree.program.eval(record)
        }
        RepairKind::Or(children) => {
            // Same two-tier disjunct walk as `make_true`, with the
            // per-disjunct isnull test precomputed.
            let start = rng.gen_range(0..children.len());
            for null_tier in [prefer_null, !prefer_null] {
                for i in 0..children.len() {
                    let child = &children[(start + i) % children.len()];
                    if child.has_isnull == null_tier
                        && make_true_compiled(schema, child, record, rng, prefer_null)
                    {
                        return true;
                    }
                }
            }
            false
        }
    }
}

/// [`make_true`] minus the entry satisfaction check, for callers that
/// already know `formula` is false on the record (a violated rule's
/// consequent, or — before any other adjustment — the TDG-negation of
/// its premise).
fn make_true_known_false<R: Rng + ?Sized>(
    schema: &Schema,
    formula: &Formula,
    record: &mut [Value],
    rng: &mut R,
    prefer_null: bool,
) -> bool {
    match formula {
        Formula::Atom(a) => make_atom_true(schema, a, record, rng),
        Formula::And(fs) => {
            let mut ok = true;
            for f in fs {
                ok &= make_true(schema, f, record, rng, prefer_null);
            }
            // Later conjuncts may have disturbed earlier ones; report
            // success only if the whole conjunction now holds.
            ok && eval_formula(formula, record)
        }
        Formula::Or(fs) => {
            // Try disjuncts in two tiers: by default first (in random
            // order) the ones that do not force a NULL, then the
            // NULL-introducing ones — TDG-negations are full of
            // `… ∨ A isnull` disjuncts (Table 1), and picking them
            // blindly would riddle the "clean" data with NULLs. The
            // escape phase of the repair loop reverses the order.
            let start = rng.gen_range(0..fs.len());
            for null_tier in [prefer_null, !prefer_null] {
                for i in 0..fs.len() {
                    let f = &fs[(start + i) % fs.len()];
                    if contains_isnull(f) == null_tier
                        && make_true(schema, f, record, rng, prefer_null)
                    {
                        return true;
                    }
                }
            }
            false
        }
    }
}

fn make_atom_true<R: Rng + ?Sized>(
    schema: &Schema,
    atom: &Atom,
    record: &mut [Value],
    rng: &mut R,
) -> bool {
    match atom {
        Atom::EqConst { attr, value } => {
            // Constants may be written in widened coordinates (the
            // TDG-negation of `d < 11112.5` contains `d = 11112.5`);
            // coerce to the column's kind, failing when no value of
            // that kind can be equal (fractional "dates").
            match coerce_constant(&schema.attr(*attr).ty, value) {
                Some(v) => {
                    record[*attr] = v;
                    true
                }
                None => false,
            }
        }
        Atom::NeqConst { attr, value } => {
            for _ in 0..16 {
                let v = crate::atomgen::random_domain_value(schema, *attr, rng);
                if v.sql_eq(value) == Some(false) {
                    record[*attr] = v;
                    return true;
                }
            }
            false
        }
        Atom::LessConst { attr, value } => {
            match sample_range(&schema.attr(*attr).ty, f64::NEG_INFINITY, *value, true, rng) {
                Some(v) => {
                    record[*attr] = v;
                    true
                }
                None => false,
            }
        }
        Atom::GreaterConst { attr, value } => {
            match sample_range(&schema.attr(*attr).ty, *value, f64::INFINITY, true, rng) {
                Some(v) => {
                    record[*attr] = v;
                    true
                }
                None => false,
            }
        }
        Atom::IsNull { attr } => {
            record[*attr] = Value::Null;
            true
        }
        Atom::IsNotNull { attr } => {
            if record[*attr].is_null() {
                record[*attr] = crate::atomgen::random_domain_value(schema, *attr, rng);
            }
            true
        }
        Atom::EqAttr { left, right } => make_attrs_equal(schema, *left, *right, record, rng),
        Atom::NeqAttr { left, right } => {
            for _ in 0..16 {
                let side = if rng.gen::<bool>() { *left } else { *right };
                let v = crate::atomgen::random_domain_value(schema, side, rng);
                record[side] = v;
                if record[*left].sql_eq(&record[*right]) == Some(false) {
                    return true;
                }
            }
            false
        }
        Atom::LessAttr { left, right } => make_attrs_ordered(schema, *left, *right, record, rng),
        Atom::GreaterAttr { left, right } => make_attrs_ordered(schema, *right, *left, record, rng),
    }
}

/// Make `record[left] = record[right]` hold, sampling a common value
/// from the domain overlap.
fn make_attrs_equal<R: Rng + ?Sized>(
    schema: &Schema,
    left: AttrIdx,
    right: AttrIdx,
    record: &mut [Value],
    rng: &mut R,
) -> bool {
    let (lt, rt) = (&schema.attr(left).ty, &schema.attr(right).ty);
    match (lt, rt) {
        (AttrType::Nominal { .. }, AttrType::Nominal { .. }) => {
            // Compatible nominal attributes share their label list;
            // copy one side's code (sample if both NULL).
            let code = record[left]
                .as_nominal()
                .or_else(|| record[right].as_nominal())
                .unwrap_or_else(|| {
                    crate::atomgen::random_domain_value(schema, left, rng)
                        .as_nominal()
                        .expect("nominal domain value")
                });
            record[left] = Value::Nominal(code);
            record[right] = Value::Nominal(code);
            true
        }
        _ => {
            // Ordered pair: sample a common widened value from the
            // domain overlap, snapped to the coarser grid.
            let (llo, lhi) = ordered_bounds(lt);
            let (rlo, rhi) = ordered_bounds(rt);
            let (lo, hi) = (llo.max(rlo), lhi.min(rhi));
            if lo > hi {
                return false;
            }
            // If either side needs an integer grid, sample integers.
            let needs_grid = ordered_is_grid(lt) || ordered_is_grid(rt);
            let x = if needs_grid {
                let (lo_i, hi_i) = (lo.ceil() as i64, hi.floor() as i64);
                if lo_i > hi_i {
                    return false;
                }
                rng.gen_range(lo_i..=hi_i) as f64
            } else {
                rng.gen_range(lo..=hi)
            };
            record[left] = materialize(lt, x);
            record[right] = materialize(rt, x);
            true
        }
    }
}

/// Make `record[small] < record[big]` hold.
fn make_attrs_ordered<R: Rng + ?Sized>(
    schema: &Schema,
    small: AttrIdx,
    big: AttrIdx,
    record: &mut [Value],
    rng: &mut R,
) -> bool {
    let st = &schema.attr(small).ty;
    let bt = &schema.attr(big).ty;
    // Keep the big side if a smaller value fits below it; else keep the
    // small side and raise the big one; else resample both.
    if let Some(y) = record[big].as_numeric() {
        if let Some(v) = sample_range(st, f64::NEG_INFINITY, y, true, rng) {
            record[small] = v;
            return true;
        }
    }
    if let Some(x) = record[small].as_numeric() {
        if let Some(v) = sample_range(bt, x, f64::INFINITY, true, rng) {
            record[big] = v;
            return true;
        }
    }
    let (slo, _) = ordered_bounds(st);
    let (_, bhi) = ordered_bounds(bt);
    if slo >= bhi {
        return false;
    }
    // Sample the small side low in the feasible band, then the big side
    // above it.
    let mid = slo + (bhi - slo) / 2.0;
    let Some(small_v) = sample_range(st, f64::NEG_INFINITY, mid, false, rng) else {
        return false;
    };
    record[small] = small_v;
    let x = small_v.as_numeric().expect("ordered value");
    match sample_range(bt, x, f64::INFINITY, true, rng) {
        Some(v) => {
            record[big] = v;
            true
        }
        None => false,
    }
}

/// Does the formula contain an `isnull` atom (so satisfying it may
/// introduce a NULL)?
fn contains_isnull(formula: &Formula) -> bool {
    let mut found = false;
    formula.visit_atoms(&mut |a| {
        if matches!(a, Atom::IsNull { .. }) {
            found = true;
        }
    });
    found
}

/// Coerce a constant (possibly in widened numeric coordinates) to a
/// cell value of the attribute's kind; `None` when no value of that
/// kind equals the constant under the NULL-aware `=` semantics.
fn coerce_constant(ty: &AttrType, value: &Value) -> Option<Value> {
    match (ty, value) {
        (AttrType::Nominal { .. }, Value::Nominal(_)) => Some(*value),
        (AttrType::Numeric { .. }, _) => value.as_numeric().map(Value::Number),
        (AttrType::Date { .. }, Value::Date(_)) => Some(*value),
        (AttrType::Date { .. }, Value::Number(x)) if x.fract() == 0.0 => {
            Some(Value::Date(*x as i64))
        }
        _ => None,
    }
}

/// Widened `[min, max]` bounds of an ordered attribute type.
fn ordered_bounds(ty: &AttrType) -> (f64, f64) {
    match ty {
        AttrType::Numeric { min, max, .. } => (*min, *max),
        AttrType::Date { min, max } => (*min as f64, *max as f64),
        AttrType::Nominal { .. } => unreachable!("ordering over nominal attribute"),
    }
}

fn ordered_is_grid(ty: &AttrType) -> bool {
    matches!(ty, AttrType::Numeric { integer: true, .. } | AttrType::Date { .. })
}

/// Materialize a widened numeric value as a cell of the given type.
fn materialize(ty: &AttrType, x: f64) -> Value {
    match ty {
        AttrType::Numeric { .. } => Value::Number(x),
        AttrType::Date { .. } => Value::Date(x as i64),
        AttrType::Nominal { .. } => unreachable!("ordering over nominal attribute"),
    }
}

/// Sample a domain value of type `ty` in the widened interval
/// `(lo, hi)` / `[lo, hi]` (`strict` controls both ends: strict means
/// open interval). Returns `None` when the intersection with the
/// domain is empty.
fn sample_range<R: Rng + ?Sized>(
    ty: &AttrType,
    lo: f64,
    hi: f64,
    strict: bool,
    rng: &mut R,
) -> Option<Value> {
    let (dlo, dhi) = ordered_bounds(ty);
    let lo = lo.max(dlo);
    let hi = hi.min(dhi);
    if ordered_is_grid(ty) {
        let mut lo_i = lo.ceil() as i64;
        let mut hi_i = hi.floor() as i64;
        if strict {
            if lo_i as f64 <= lo {
                lo_i += 1;
            }
            if hi_i as f64 >= hi {
                hi_i -= 1;
            }
        }
        // Clamp back into the domain (strictness applies to the query
        // interval, not the domain bounds).
        let lo_i = lo_i.max(dlo.ceil() as i64);
        let hi_i = hi_i.min(dhi.floor() as i64);
        if lo_i > hi_i {
            return None;
        }
        Some(materialize(ty, rng.gen_range(lo_i..=hi_i) as f64))
    } else {
        if lo > hi || (strict && lo >= hi) {
            return None;
        }
        if lo == hi {
            return Some(Value::Number(lo));
        }
        // A uniform draw hits the open endpoints with probability 0;
        // nudge away from `lo` when strict.
        let mut u = rng.gen::<f64>();
        if strict && u == 0.0 {
            u = 0.5;
        }
        Some(Value::Number(lo + u * (hi - lo)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_logic::eval::violations;
    use dq_logic::Rule;
    use dq_table::SchemaBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Arc<Schema> {
        SchemaBuilder::new()
            .nominal("a", ["v1", "v2", "v3"])
            .nominal("b", ["v1", "v2", "v3"])
            .numeric("n", 0.0, 100.0)
            .date_ymd("d", (2000, 1, 1), (2009, 12, 31))
            .integer("k", 0.0, 20.0)
            .build()
            .unwrap()
    }

    fn eq(attr: usize, code: u32) -> Formula {
        Formula::Atom(Atom::EqConst { attr, value: Value::Nominal(code) })
    }

    #[test]
    fn generated_data_follows_simple_rules() {
        let s = schema();
        let rules = RuleSet::from_rules(vec![
            Rule::new(eq(0, 0), eq(1, 1)),
            Rule::new(eq(1, 2), Formula::Atom(Atom::LessConst { attr: 2, value: 50.0 })),
        ]);
        let cfg = DataGenConfig::new(&s, 500);
        let mut rng = StdRng::seed_from_u64(1);
        let (table, report) = generate_table(&s, &rules, &cfg, &mut rng);
        assert_eq!(table.n_rows(), 500);
        assert_eq!(report.unresolved_rows, 0, "{report:?}");
        for rule in &rules {
            assert!(violations(rule, &table).is_empty(), "rule {rule} violated");
        }
        // The rules were actually exercised, not vacuously satisfied.
        assert!(report.repairs > 0);
    }

    #[test]
    fn relational_rules_are_repaired() {
        let s = schema();
        let rules = RuleSet::from_rules(vec![
            // a = v2 → a = b (same nominal domain).
            Rule::new(eq(0, 1), Formula::Atom(Atom::EqAttr { left: 0, right: 1 })),
            // k > 10 → n > k (ordered pair).
            Rule::new(
                Formula::Atom(Atom::GreaterConst { attr: 4, value: 10.0 }),
                Formula::Atom(Atom::GreaterAttr { left: 2, right: 4 }),
            ),
        ]);
        let cfg = DataGenConfig::new(&s, 400);
        let mut rng = StdRng::seed_from_u64(2);
        let (table, report) = generate_table(&s, &rules, &cfg, &mut rng);
        assert_eq!(report.unresolved_rows, 0, "{report:?}");
        for rule in &rules {
            assert!(violations(rule, &table).is_empty(), "rule {rule} violated");
        }
        // All values stayed in-domain despite repair.
        assert!(table.domain_violations().is_empty());
    }

    #[test]
    fn null_atoms_are_repaired() {
        let s = schema();
        let rules = RuleSet::from_rules(vec![
            Rule::new(eq(0, 2), Formula::Atom(Atom::IsNull { attr: 1 })),
            Rule::new(eq(1, 0), Formula::Atom(Atom::IsNotNull { attr: 3 })),
        ]);
        let cfg = DataGenConfig::new(&s, 300);
        let mut rng = StdRng::seed_from_u64(3);
        let (table, report) = generate_table(&s, &rules, &cfg, &mut rng);
        assert_eq!(report.unresolved_rows, 0);
        for rule in &rules {
            assert!(violations(rule, &table).is_empty());
        }
        // The isnull consequent actually produced NULLs.
        assert!(table.count_where(1, |v| v.is_null()) > 0);
    }

    #[test]
    fn disjunctive_consequents_pick_a_branch() {
        let s = schema();
        let rules =
            RuleSet::from_rules(vec![Rule::new(eq(0, 0), Formula::Or(vec![eq(1, 0), eq(1, 2)]))]);
        let cfg = DataGenConfig::new(&s, 400);
        let mut rng = StdRng::seed_from_u64(4);
        let (table, report) = generate_table(&s, &rules, &cfg, &mut rng);
        assert_eq!(report.unresolved_rows, 0);
        let mut saw = [false; 2];
        let mut buf = Vec::new();
        for r in 0..table.n_rows() {
            table.row_into(r, &mut buf);
            if buf[0] == Value::Nominal(0) {
                match buf[1] {
                    Value::Nominal(0) => saw[0] = true,
                    Value::Nominal(2) => saw[1] = true,
                    other => panic!("rule violated with b = {other:?}"),
                }
            }
        }
        assert!(saw[0] && saw[1], "both disjuncts should be exercised");
    }

    #[test]
    fn bayesian_network_drives_start_values() {
        let s = schema();
        // A network forcing a = v1 always, b = v3 whenever a = v1.
        let net = dq_bayes::BayesNetBuilder::new()
            .node(0, 3, vec![], vec![vec![1.0, 0.0, 0.0]])
            .node(
                1,
                3,
                vec![0],
                vec![vec![0.0, 0.0, 1.0], vec![1.0, 0.0, 0.0], vec![1.0, 0.0, 0.0]],
            )
            .build()
            .unwrap();
        let mut cfg = DataGenConfig::new(&s, 100);
        cfg.start = StartDistributions::uniform(&s).with_network(net);
        let mut rng = StdRng::seed_from_u64(5);
        let (table, _) = generate_table(&s, &RuleSet::new(), &cfg, &mut rng);
        assert_eq!(table.count_where(0, |v| v == Value::Nominal(0)), 100);
        assert_eq!(table.count_where(1, |v| v == Value::Nominal(2)), 100);
    }

    #[test]
    fn null_rate_injects_nulls() {
        let s = schema();
        let mut cfg = DataGenConfig::new(&s, 500);
        cfg.start = StartDistributions::uniform(&s).with_null_rate(0.3);
        let mut rng = StdRng::seed_from_u64(6);
        let (table, _) = generate_table(&s, &RuleSet::new(), &cfg, &mut rng);
        let nulls: usize = (0..s.len()).map(|a| table.count_where(a, |v| v.is_null())).sum();
        let total = 500 * s.len();
        let rate = nulls as f64 / total as f64;
        assert!((rate - 0.3).abs() < 0.05, "observed null rate {rate}");
    }

    #[test]
    fn conflicting_rule_instances_resolve_by_premise_falsification() {
        // Def. 6 only excludes contradictions between premises where
        // one implies the other; rules with *overlapping* premises may
        // still clash on individual records: a = v1 → n < 10 and
        // b = v1 → n > 90 cannot both hold on a record with
        // a = v1 ∧ b = v1. Enforcing consequents oscillates; the
        // generator must fall back to falsifying a premise and emit a
        // consistent table.
        let s = schema();
        let rules = RuleSet::from_rules(vec![
            Rule::new(eq(0, 0), Formula::Atom(Atom::LessConst { attr: 2, value: 10.0 })),
            Rule::new(eq(1, 0), Formula::Atom(Atom::GreaterConst { attr: 2, value: 90.0 })),
        ]);
        let cfg = DataGenConfig::new(&s, 300);
        let mut rng = StdRng::seed_from_u64(7);
        let (table, report) = generate_table(&s, &rules, &cfg, &mut rng);
        assert_eq!(report.unresolved_rows, 0, "{report:?}");
        for rule in &rules {
            assert!(violations(rule, &table).is_empty(), "rule {rule} violated");
        }
        // The conflicting combination must have been removed from (or
        // never emitted into) the table.
        let mut buf = Vec::new();
        for r in 0..table.n_rows() {
            table.row_into(r, &mut buf);
            assert!(
                !(buf[0] == Value::Nominal(0) && buf[1] == Value::Nominal(0)),
                "row {r} keeps the impossible premise combination"
            );
        }
    }

    #[test]
    fn fastmod_matches_hardware_remainder_exactly() {
        let mut rng = StdRng::seed_from_u64(99);
        for s in 1..=300u64 {
            let magic = ModMagic::new(s);
            for x in [0u64, 1, s, s + 1, u64::MAX, u64::MAX - 1, 1 << 32, (1 << 32) - 1] {
                assert_eq!(magic.rem64(x), x % s, "x={x} s={s}");
            }
            for _ in 0..200 {
                let x: u64 = rng.gen();
                assert_eq!(magic.rem64(x), x % s, "x={x} s={s}");
            }
        }
        // The largest supported span.
        let magic = ModMagic::new(1 << 16);
        for _ in 0..1000 {
            let x: u64 = rng.gen();
            assert_eq!(magic.rem64(x), x % (1 << 16));
        }
    }

    #[test]
    fn shuffle_fast_replays_shuffle_exactly() {
        let magics: Vec<ModMagic> = (0..=128u64).map(|s| ModMagic::new(s.max(1))).collect();
        for n in [2usize, 3, 17, 100, 128] {
            for seed in 0..20 {
                let mut a: Vec<u32> = (0..n as u32).collect();
                let mut b = a.clone();
                shuffle(&mut a, &mut StdRng::seed_from_u64(seed));
                shuffle_fast(&mut b, &mut StdRng::seed_from_u64(seed), &magics);
                assert_eq!(a, b, "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn generate_stream_is_byte_identical_and_preserves_rng_state() {
        let s = schema();
        let rules = RuleSet::from_rules(vec![
            Rule::new(eq(0, 0), eq(1, 1)),
            Rule::new(eq(1, 2), Formula::Atom(Atom::LessConst { attr: 2, value: 50.0 })),
        ]);
        // Cross a chunk boundary so the stream refills more than once.
        let n_rows = GEN_CHUNK_ROWS + 777;
        let mut cfg = DataGenConfig::new(&s, n_rows);
        cfg.threads = dq_exec::Parallelism::explicit(2);
        let mut rng = StdRng::seed_from_u64(7);
        let (reference, reference_report) = generate_table(&s, &rules, &cfg, &mut rng);
        let sentinel: u64 = rng.gen();

        for batch_rows in [1usize, 613, GEN_CHUNK_ROWS, n_rows + 5] {
            let mut rng = StdRng::seed_from_u64(7);
            let mut stream = GenerateStream::new(s.clone(), rules.clone(), cfg.clone(), &mut rng)
                .with_batch_rows(batch_rows);
            // The caller RNG must sit exactly where generate_table left
            // it, so downstream seeded steps line up.
            assert_eq!(rng.gen::<u64>(), sentinel, "batch_rows={batch_rows}");
            assert_eq!(stream.row_count_hint(), Some(n_rows));
            let mut got = Table::new(s.clone());
            while let Some(batch) = stream.next_batch().unwrap() {
                assert!(!batch.is_empty());
                assert!(batch.n_rows() <= batch_rows);
                got.append_rows(&batch).unwrap();
                assert_eq!(stream.rows_emitted(), got.n_rows());
            }
            assert!(matches!(stream.next_batch(), Ok(None)), "must stay fused");
            assert_eq!(got.n_rows(), reference.n_rows(), "batch_rows={batch_rows}");
            let csv = |t: &Table| {
                let mut buf = Vec::new();
                dq_table::write_csv(t, &mut buf).unwrap();
                buf
            };
            assert_eq!(csv(&got), csv(&reference), "batch_rows={batch_rows}");
            assert_eq!(stream.report(), &reference_report, "batch_rows={batch_rows}");
        }
    }

    #[test]
    fn seek_to_row_resumes_the_exact_stream_from_any_offset() {
        let s = schema();
        let rules = RuleSet::from_rules(vec![Rule::new(eq(0, 0), eq(1, 1))]);
        let n_rows = GEN_CHUNK_ROWS + 777;
        let mut cfg = DataGenConfig::new(&s, n_rows);
        cfg.threads = dq_exec::Parallelism::explicit(2);
        let mut rng = StdRng::seed_from_u64(31);
        let (reference, _) = generate_table(&s, &rules, &cfg, &mut rng);

        // Chunk-aligned, mid-chunk, mid-last-chunk, and terminal seeks.
        for offset in [0usize, 1, 613, GEN_CHUNK_ROWS, GEN_CHUNK_ROWS + 1, n_rows - 1, n_rows] {
            let mut rng = StdRng::seed_from_u64(31);
            let mut stream = GenerateStream::new(s.clone(), rules.clone(), cfg.clone(), &mut rng)
                .with_batch_rows(100);
            stream.seek_to_row(offset).unwrap();
            assert_eq!(stream.rows_emitted(), offset);
            let mut row = offset;
            while let Some(batch) = stream.next_batch().unwrap() {
                for r in 0..batch.n_rows() {
                    assert_eq!(batch.row(r), reference.row(row), "offset={offset}, row {row}");
                    row += 1;
                }
            }
            assert_eq!(row, n_rows, "offset={offset}");
        }

        let mut rng = StdRng::seed_from_u64(31);
        let mut stream = GenerateStream::new(s, rules, cfg, &mut rng);
        assert!(stream.seek_to_row(n_rows + 1).is_err(), "seek past the budget is typed");
    }

    #[test]
    fn sample_range_respects_grids_and_strictness() {
        let mut rng = StdRng::seed_from_u64(8);
        let int_ty = AttrType::Numeric { min: 0.0, max: 10.0, integer: true };
        for _ in 0..100 {
            let v = sample_range(&int_ty, 3.0, 5.0, true, &mut rng).unwrap();
            assert_eq!(v, Value::Number(4.0)); // only integer strictly between
        }
        assert_eq!(sample_range(&int_ty, 3.0, 4.0, true, &mut rng), None);
        let date_ty = AttrType::Date { min: 0, max: 100 };
        let v = sample_range(&date_ty, 49.5, 50.5, true, &mut rng).unwrap();
        assert_eq!(v, Value::Date(50));
        let real_ty = AttrType::Numeric { min: 0.0, max: 1.0, integer: false };
        for _ in 0..100 {
            let v = sample_range(&real_ty, 0.4, 0.6, true, &mut rng).unwrap();
            let x = v.as_numeric().unwrap();
            assert!(x > 0.4 && x < 0.6);
        }
        assert_eq!(sample_range(&real_ty, 2.0, 3.0, false, &mut rng), None);
    }
}
