//! Data generation according to rules (sec. 4.1.4).
//!
//! "A number of records has to be created that follow this rule set.
//! This is done by selecting values for each attribute according to
//! independent probability distributions and successively adjusting
//! these guesses by rules that are violated." Start values come from
//! univariate [`DistributionSpec`]s and/or multivariate Bayesian
//! networks (the paper's fix for "independent sampling of the initial
//! values does not lead to a satisfactory model"); the adjustment is an
//! iterative **repair loop** that makes violated rules' consequents
//! true (falling back to falsifying the premise via TDG-negation when
//! the consequent is unsatisfiable in place).
//!
//! Repair can oscillate between rule *instances* (natural rule sets
//! only exclude pairwise contradictions), so passes are bounded and
//! unresolved violations are reported rather than looped on forever.

use dq_bayes::BayesianNetwork;
use dq_logic::{eval_formula, eval_rule, negate, Atom, Formula, RuleSet, RuleStatus};
use dq_stats::DistributionSpec;
use dq_table::{AttrIdx, AttrType, Schema, Table, Value};
use rand::Rng;
use std::sync::Arc;

/// Start-value sampling: one univariate spec per attribute, optionally
/// overridden by multivariate Bayesian-network groups.
#[derive(Debug, Clone)]
pub struct StartDistributions {
    /// Per-attribute univariate distributions (index-aligned with the
    /// schema).
    pub univariate: Vec<DistributionSpec>,
    /// Multivariate groups; each network covers a set of nominal
    /// attributes which are then sampled jointly instead of from their
    /// univariate spec.
    pub networks: Vec<BayesianNetwork>,
    /// Probability of starting any cell as NULL (before repair; the
    /// repair step may overwrite injected NULLs to satisfy rules).
    pub null_rate: f64,
}

impl StartDistributions {
    /// Uniform univariate start distributions for every attribute.
    pub fn uniform(schema: &Schema) -> Self {
        StartDistributions {
            univariate: vec![DistributionSpec::Uniform; schema.len()],
            networks: Vec::new(),
            null_rate: 0.0,
        }
    }

    /// Override one attribute's univariate spec (builder style).
    pub fn with_spec(mut self, attr: AttrIdx, spec: DistributionSpec) -> Self {
        self.univariate[attr] = spec;
        self
    }

    /// Add a multivariate group (builder style).
    pub fn with_network(mut self, network: BayesianNetwork) -> Self {
        self.networks.push(network);
        self
    }

    /// Set the NULL injection rate (builder style).
    pub fn with_null_rate(mut self, rate: f64) -> Self {
        self.null_rate = rate;
        self
    }
}

/// Parameters of the data generation step.
#[derive(Debug, Clone)]
pub struct DataGenConfig {
    /// Number of records to generate.
    pub n_rows: usize,
    /// Start-value sampling.
    pub start: StartDistributions,
    /// Maximum repair passes over the rule set per record.
    pub max_repair_passes: usize,
}

impl DataGenConfig {
    /// Uniform start values, 24 repair passes.
    pub fn new(schema: &Schema, n_rows: usize) -> Self {
        DataGenConfig { n_rows, start: StartDistributions::uniform(schema), max_repair_passes: 24 }
    }
}

/// What happened during data generation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GenReport {
    /// Records generated.
    pub rows: usize,
    /// Individual repair actions applied.
    pub repairs: u64,
    /// Records that still violated some rule after the pass budget.
    pub unresolved_rows: usize,
    /// Rule violations remaining across those records.
    pub unresolved_violations: u64,
}

/// Generate `config.n_rows` records over `schema` that (after repair)
/// follow `rules`.
pub fn generate_table<R: Rng + ?Sized>(
    schema: &Arc<Schema>,
    rules: &RuleSet,
    config: &DataGenConfig,
    rng: &mut R,
) -> (Table, GenReport) {
    assert_eq!(config.start.univariate.len(), schema.len(), "one univariate spec per attribute");
    let mut table = Table::with_capacity(schema.clone(), config.n_rows);
    let mut report = GenReport::default();
    // Attributes covered by a multivariate group skip univariate
    // sampling.
    let mut covered = vec![false; schema.len()];
    for net in &config.start.networks {
        for a in net.attrs() {
            covered[a] = true;
        }
    }
    let mut record: Vec<Value> = vec![Value::Null; schema.len()];
    for _ in 0..config.n_rows {
        sample_start(schema, config, &covered, &mut record, rng);
        let unresolved = repair_record(
            schema,
            rules,
            &mut record,
            config.max_repair_passes,
            rng,
            &mut report.repairs,
        );
        if unresolved > 0 {
            report.unresolved_rows += 1;
            report.unresolved_violations += unresolved as u64;
        }
        table.push_row(&record).expect("generated record matches schema");
        report.rows += 1;
    }
    (table, report)
}

fn sample_start<R: Rng + ?Sized>(
    schema: &Schema,
    config: &DataGenConfig,
    covered: &[bool],
    record: &mut [Value],
    rng: &mut R,
) {
    for (a, cell) in record.iter_mut().enumerate() {
        *cell = if covered[a] {
            Value::Null // filled by the network below
        } else {
            config.start.univariate[a].sample(&schema.attr(a).ty, rng)
        };
    }
    for net in &config.start.networks {
        for (attr, code) in net.sample(rng) {
            record[attr] = Value::Nominal(code);
        }
    }
    if config.start.null_rate > 0.0 {
        for cell in record.iter_mut() {
            if rng.gen::<f64>() < config.start.null_rate {
                *cell = Value::Null;
            }
        }
    }
}

/// Repair a record against the rule set; returns the number of rules
/// still violated after the pass budget.
///
/// Three escalating phases share the pass budget. Natural rule sets
/// exclude pairwise contradictions, but rules with *overlapping*
/// premises may still prescribe incompatible consequents for
/// individual records, and dense rule sets (the paper's baseline has
/// 100 rules over 8 attributes) form a constraint system that local
/// enforcement alone cannot always satisfy:
///
/// 1. **enforce** — make violated consequents true (builds the wanted
///    dependencies);
/// 2. **falsify** — make violated premises false via their
///    TDG-negation (true exactly when the premise is false),
///    preferring NULL-free disjuncts;
/// 3. **escape** — falsify preferring the `isnull` disjuncts: a NULL
///    premise attribute falsifies every propositional and relational
///    atom on it, which is the guaranteed way out of conflict cycles
///    (at the price of a missing value).
///
/// Rules are visited in a fresh random order each pass so that cyclic
/// conflicts do not replay deterministically.
fn repair_record<R: Rng + ?Sized>(
    schema: &Schema,
    rules: &RuleSet,
    record: &mut [Value],
    max_passes: usize,
    rng: &mut R,
    repairs: &mut u64,
) -> usize {
    let enforce_end = (max_passes / 2).max(1);
    let falsify_end = enforce_end + (max_passes / 4);
    let mut order: Vec<usize> = (0..rules.len()).collect();
    for pass in 0..max_passes {
        shuffle(&mut order, rng);
        let (enforce, prefer_null) = (pass < enforce_end, pass >= falsify_end);
        let mut violated = false;
        for &i in &order {
            let rule = &rules.rules[i];
            if eval_rule(rule, record) == RuleStatus::Violated {
                violated = true;
                *repairs += 1;
                let repaired =
                    enforce && make_true(schema, &rule.consequent, record, rng, prefer_null);
                if !repaired {
                    make_true(schema, &negate(&rule.premise), record, rng, prefer_null);
                }
            }
        }
        if !violated {
            return 0;
        }
    }
    rules.iter().filter(|r| eval_rule(r, record) == RuleStatus::Violated).count()
}

fn shuffle<R: Rng + ?Sized, T>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        items.swap(i, rng.gen_range(0..=i));
    }
}

/// Adjust the record so `formula` holds; returns `false` when no
/// adjustment was found (rare: empty domains or exhausted retries).
fn make_true<R: Rng + ?Sized>(
    schema: &Schema,
    formula: &Formula,
    record: &mut [Value],
    rng: &mut R,
    prefer_null: bool,
) -> bool {
    if eval_formula(formula, record) {
        return true;
    }
    match formula {
        Formula::Atom(a) => make_atom_true(schema, a, record, rng),
        Formula::And(fs) => {
            let mut ok = true;
            for f in fs {
                ok &= make_true(schema, f, record, rng, prefer_null);
            }
            // Later conjuncts may have disturbed earlier ones; report
            // success only if the whole conjunction now holds.
            ok && eval_formula(formula, record)
        }
        Formula::Or(fs) => {
            // Try disjuncts in two tiers: by default first (in random
            // order) the ones that do not force a NULL, then the
            // NULL-introducing ones — TDG-negations are full of
            // `… ∨ A isnull` disjuncts (Table 1), and picking them
            // blindly would riddle the "clean" data with NULLs. The
            // escape phase of the repair loop reverses the order.
            let start = rng.gen_range(0..fs.len());
            for null_tier in [prefer_null, !prefer_null] {
                for i in 0..fs.len() {
                    let f = &fs[(start + i) % fs.len()];
                    if contains_isnull(f) == null_tier
                        && make_true(schema, f, record, rng, prefer_null)
                    {
                        return true;
                    }
                }
            }
            false
        }
    }
}

fn make_atom_true<R: Rng + ?Sized>(
    schema: &Schema,
    atom: &Atom,
    record: &mut [Value],
    rng: &mut R,
) -> bool {
    match atom {
        Atom::EqConst { attr, value } => {
            // Constants may be written in widened coordinates (the
            // TDG-negation of `d < 11112.5` contains `d = 11112.5`);
            // coerce to the column's kind, failing when no value of
            // that kind can be equal (fractional "dates").
            match coerce_constant(&schema.attr(*attr).ty, value) {
                Some(v) => {
                    record[*attr] = v;
                    true
                }
                None => false,
            }
        }
        Atom::NeqConst { attr, value } => {
            for _ in 0..16 {
                let v = crate::atomgen::random_domain_value(schema, *attr, rng);
                if v.sql_eq(value) == Some(false) {
                    record[*attr] = v;
                    return true;
                }
            }
            false
        }
        Atom::LessConst { attr, value } => {
            match sample_range(&schema.attr(*attr).ty, f64::NEG_INFINITY, *value, true, rng) {
                Some(v) => {
                    record[*attr] = v;
                    true
                }
                None => false,
            }
        }
        Atom::GreaterConst { attr, value } => {
            match sample_range(&schema.attr(*attr).ty, *value, f64::INFINITY, true, rng) {
                Some(v) => {
                    record[*attr] = v;
                    true
                }
                None => false,
            }
        }
        Atom::IsNull { attr } => {
            record[*attr] = Value::Null;
            true
        }
        Atom::IsNotNull { attr } => {
            if record[*attr].is_null() {
                record[*attr] = crate::atomgen::random_domain_value(schema, *attr, rng);
            }
            true
        }
        Atom::EqAttr { left, right } => make_attrs_equal(schema, *left, *right, record, rng),
        Atom::NeqAttr { left, right } => {
            for _ in 0..16 {
                let side = if rng.gen::<bool>() { *left } else { *right };
                let v = crate::atomgen::random_domain_value(schema, side, rng);
                record[side] = v;
                if record[*left].sql_eq(&record[*right]) == Some(false) {
                    return true;
                }
            }
            false
        }
        Atom::LessAttr { left, right } => make_attrs_ordered(schema, *left, *right, record, rng),
        Atom::GreaterAttr { left, right } => make_attrs_ordered(schema, *right, *left, record, rng),
    }
}

/// Make `record[left] = record[right]` hold, sampling a common value
/// from the domain overlap.
fn make_attrs_equal<R: Rng + ?Sized>(
    schema: &Schema,
    left: AttrIdx,
    right: AttrIdx,
    record: &mut [Value],
    rng: &mut R,
) -> bool {
    let (lt, rt) = (&schema.attr(left).ty, &schema.attr(right).ty);
    match (lt, rt) {
        (AttrType::Nominal { .. }, AttrType::Nominal { .. }) => {
            // Compatible nominal attributes share their label list;
            // copy one side's code (sample if both NULL).
            let code = record[left]
                .as_nominal()
                .or_else(|| record[right].as_nominal())
                .unwrap_or_else(|| {
                    crate::atomgen::random_domain_value(schema, left, rng)
                        .as_nominal()
                        .expect("nominal domain value")
                });
            record[left] = Value::Nominal(code);
            record[right] = Value::Nominal(code);
            true
        }
        _ => {
            // Ordered pair: sample a common widened value from the
            // domain overlap, snapped to the coarser grid.
            let (llo, lhi) = ordered_bounds(lt);
            let (rlo, rhi) = ordered_bounds(rt);
            let (lo, hi) = (llo.max(rlo), lhi.min(rhi));
            if lo > hi {
                return false;
            }
            // If either side needs an integer grid, sample integers.
            let needs_grid = ordered_is_grid(lt) || ordered_is_grid(rt);
            let x = if needs_grid {
                let (lo_i, hi_i) = (lo.ceil() as i64, hi.floor() as i64);
                if lo_i > hi_i {
                    return false;
                }
                rng.gen_range(lo_i..=hi_i) as f64
            } else {
                rng.gen_range(lo..=hi)
            };
            record[left] = materialize(lt, x);
            record[right] = materialize(rt, x);
            true
        }
    }
}

/// Make `record[small] < record[big]` hold.
fn make_attrs_ordered<R: Rng + ?Sized>(
    schema: &Schema,
    small: AttrIdx,
    big: AttrIdx,
    record: &mut [Value],
    rng: &mut R,
) -> bool {
    let st = &schema.attr(small).ty;
    let bt = &schema.attr(big).ty;
    // Keep the big side if a smaller value fits below it; else keep the
    // small side and raise the big one; else resample both.
    if let Some(y) = record[big].as_numeric() {
        if let Some(v) = sample_range(st, f64::NEG_INFINITY, y, true, rng) {
            record[small] = v;
            return true;
        }
    }
    if let Some(x) = record[small].as_numeric() {
        if let Some(v) = sample_range(bt, x, f64::INFINITY, true, rng) {
            record[big] = v;
            return true;
        }
    }
    let (slo, _) = ordered_bounds(st);
    let (_, bhi) = ordered_bounds(bt);
    if slo >= bhi {
        return false;
    }
    // Sample the small side low in the feasible band, then the big side
    // above it.
    let mid = slo + (bhi - slo) / 2.0;
    let Some(small_v) = sample_range(st, f64::NEG_INFINITY, mid, false, rng) else {
        return false;
    };
    record[small] = small_v;
    let x = small_v.as_numeric().expect("ordered value");
    match sample_range(bt, x, f64::INFINITY, true, rng) {
        Some(v) => {
            record[big] = v;
            true
        }
        None => false,
    }
}

/// Does the formula contain an `isnull` atom (so satisfying it may
/// introduce a NULL)?
fn contains_isnull(formula: &Formula) -> bool {
    let mut found = false;
    formula.visit_atoms(&mut |a| {
        if matches!(a, Atom::IsNull { .. }) {
            found = true;
        }
    });
    found
}

/// Coerce a constant (possibly in widened numeric coordinates) to a
/// cell value of the attribute's kind; `None` when no value of that
/// kind equals the constant under the NULL-aware `=` semantics.
fn coerce_constant(ty: &AttrType, value: &Value) -> Option<Value> {
    match (ty, value) {
        (AttrType::Nominal { .. }, Value::Nominal(_)) => Some(*value),
        (AttrType::Numeric { .. }, _) => value.as_numeric().map(Value::Number),
        (AttrType::Date { .. }, Value::Date(_)) => Some(*value),
        (AttrType::Date { .. }, Value::Number(x)) if x.fract() == 0.0 => {
            Some(Value::Date(*x as i64))
        }
        _ => None,
    }
}

/// Widened `[min, max]` bounds of an ordered attribute type.
fn ordered_bounds(ty: &AttrType) -> (f64, f64) {
    match ty {
        AttrType::Numeric { min, max, .. } => (*min, *max),
        AttrType::Date { min, max } => (*min as f64, *max as f64),
        AttrType::Nominal { .. } => unreachable!("ordering over nominal attribute"),
    }
}

fn ordered_is_grid(ty: &AttrType) -> bool {
    matches!(ty, AttrType::Numeric { integer: true, .. } | AttrType::Date { .. })
}

/// Materialize a widened numeric value as a cell of the given type.
fn materialize(ty: &AttrType, x: f64) -> Value {
    match ty {
        AttrType::Numeric { .. } => Value::Number(x),
        AttrType::Date { .. } => Value::Date(x as i64),
        AttrType::Nominal { .. } => unreachable!("ordering over nominal attribute"),
    }
}

/// Sample a domain value of type `ty` in the widened interval
/// `(lo, hi)` / `[lo, hi]` (`strict` controls both ends: strict means
/// open interval). Returns `None` when the intersection with the
/// domain is empty.
fn sample_range<R: Rng + ?Sized>(
    ty: &AttrType,
    lo: f64,
    hi: f64,
    strict: bool,
    rng: &mut R,
) -> Option<Value> {
    let (dlo, dhi) = ordered_bounds(ty);
    let lo = lo.max(dlo);
    let hi = hi.min(dhi);
    if ordered_is_grid(ty) {
        let mut lo_i = lo.ceil() as i64;
        let mut hi_i = hi.floor() as i64;
        if strict {
            if lo_i as f64 <= lo {
                lo_i += 1;
            }
            if hi_i as f64 >= hi {
                hi_i -= 1;
            }
        }
        // Clamp back into the domain (strictness applies to the query
        // interval, not the domain bounds).
        let lo_i = lo_i.max(dlo.ceil() as i64);
        let hi_i = hi_i.min(dhi.floor() as i64);
        if lo_i > hi_i {
            return None;
        }
        Some(materialize(ty, rng.gen_range(lo_i..=hi_i) as f64))
    } else {
        if lo > hi || (strict && lo >= hi) {
            return None;
        }
        if lo == hi {
            return Some(Value::Number(lo));
        }
        // A uniform draw hits the open endpoints with probability 0;
        // nudge away from `lo` when strict.
        let mut u = rng.gen::<f64>();
        if strict && u == 0.0 {
            u = 0.5;
        }
        Some(Value::Number(lo + u * (hi - lo)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_logic::eval::violations;
    use dq_logic::Rule;
    use dq_table::SchemaBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Arc<Schema> {
        SchemaBuilder::new()
            .nominal("a", ["v1", "v2", "v3"])
            .nominal("b", ["v1", "v2", "v3"])
            .numeric("n", 0.0, 100.0)
            .date_ymd("d", (2000, 1, 1), (2009, 12, 31))
            .integer("k", 0.0, 20.0)
            .build()
            .unwrap()
    }

    fn eq(attr: usize, code: u32) -> Formula {
        Formula::Atom(Atom::EqConst { attr, value: Value::Nominal(code) })
    }

    #[test]
    fn generated_data_follows_simple_rules() {
        let s = schema();
        let rules = RuleSet::from_rules(vec![
            Rule::new(eq(0, 0), eq(1, 1)),
            Rule::new(eq(1, 2), Formula::Atom(Atom::LessConst { attr: 2, value: 50.0 })),
        ]);
        let cfg = DataGenConfig::new(&s, 500);
        let mut rng = StdRng::seed_from_u64(1);
        let (table, report) = generate_table(&s, &rules, &cfg, &mut rng);
        assert_eq!(table.n_rows(), 500);
        assert_eq!(report.unresolved_rows, 0, "{report:?}");
        for rule in &rules {
            assert!(violations(rule, &table).is_empty(), "rule {rule} violated");
        }
        // The rules were actually exercised, not vacuously satisfied.
        assert!(report.repairs > 0);
    }

    #[test]
    fn relational_rules_are_repaired() {
        let s = schema();
        let rules = RuleSet::from_rules(vec![
            // a = v2 → a = b (same nominal domain).
            Rule::new(eq(0, 1), Formula::Atom(Atom::EqAttr { left: 0, right: 1 })),
            // k > 10 → n > k (ordered pair).
            Rule::new(
                Formula::Atom(Atom::GreaterConst { attr: 4, value: 10.0 }),
                Formula::Atom(Atom::GreaterAttr { left: 2, right: 4 }),
            ),
        ]);
        let cfg = DataGenConfig::new(&s, 400);
        let mut rng = StdRng::seed_from_u64(2);
        let (table, report) = generate_table(&s, &rules, &cfg, &mut rng);
        assert_eq!(report.unresolved_rows, 0, "{report:?}");
        for rule in &rules {
            assert!(violations(rule, &table).is_empty(), "rule {rule} violated");
        }
        // All values stayed in-domain despite repair.
        assert!(table.domain_violations().is_empty());
    }

    #[test]
    fn null_atoms_are_repaired() {
        let s = schema();
        let rules = RuleSet::from_rules(vec![
            Rule::new(eq(0, 2), Formula::Atom(Atom::IsNull { attr: 1 })),
            Rule::new(eq(1, 0), Formula::Atom(Atom::IsNotNull { attr: 3 })),
        ]);
        let cfg = DataGenConfig::new(&s, 300);
        let mut rng = StdRng::seed_from_u64(3);
        let (table, report) = generate_table(&s, &rules, &cfg, &mut rng);
        assert_eq!(report.unresolved_rows, 0);
        for rule in &rules {
            assert!(violations(rule, &table).is_empty());
        }
        // The isnull consequent actually produced NULLs.
        assert!(table.count_where(1, |v| v.is_null()) > 0);
    }

    #[test]
    fn disjunctive_consequents_pick_a_branch() {
        let s = schema();
        let rules =
            RuleSet::from_rules(vec![Rule::new(eq(0, 0), Formula::Or(vec![eq(1, 0), eq(1, 2)]))]);
        let cfg = DataGenConfig::new(&s, 400);
        let mut rng = StdRng::seed_from_u64(4);
        let (table, report) = generate_table(&s, &rules, &cfg, &mut rng);
        assert_eq!(report.unresolved_rows, 0);
        let mut saw = [false; 2];
        let mut buf = Vec::new();
        for r in 0..table.n_rows() {
            table.row_into(r, &mut buf);
            if buf[0] == Value::Nominal(0) {
                match buf[1] {
                    Value::Nominal(0) => saw[0] = true,
                    Value::Nominal(2) => saw[1] = true,
                    other => panic!("rule violated with b = {other:?}"),
                }
            }
        }
        assert!(saw[0] && saw[1], "both disjuncts should be exercised");
    }

    #[test]
    fn bayesian_network_drives_start_values() {
        let s = schema();
        // A network forcing a = v1 always, b = v3 whenever a = v1.
        let net = dq_bayes::BayesNetBuilder::new()
            .node(0, 3, vec![], vec![vec![1.0, 0.0, 0.0]])
            .node(
                1,
                3,
                vec![0],
                vec![vec![0.0, 0.0, 1.0], vec![1.0, 0.0, 0.0], vec![1.0, 0.0, 0.0]],
            )
            .build()
            .unwrap();
        let mut cfg = DataGenConfig::new(&s, 100);
        cfg.start = StartDistributions::uniform(&s).with_network(net);
        let mut rng = StdRng::seed_from_u64(5);
        let (table, _) = generate_table(&s, &RuleSet::new(), &cfg, &mut rng);
        assert_eq!(table.count_where(0, |v| v == Value::Nominal(0)), 100);
        assert_eq!(table.count_where(1, |v| v == Value::Nominal(2)), 100);
    }

    #[test]
    fn null_rate_injects_nulls() {
        let s = schema();
        let mut cfg = DataGenConfig::new(&s, 500);
        cfg.start = StartDistributions::uniform(&s).with_null_rate(0.3);
        let mut rng = StdRng::seed_from_u64(6);
        let (table, _) = generate_table(&s, &RuleSet::new(), &cfg, &mut rng);
        let nulls: usize = (0..s.len()).map(|a| table.count_where(a, |v| v.is_null())).sum();
        let total = 500 * s.len();
        let rate = nulls as f64 / total as f64;
        assert!((rate - 0.3).abs() < 0.05, "observed null rate {rate}");
    }

    #[test]
    fn conflicting_rule_instances_resolve_by_premise_falsification() {
        // Def. 6 only excludes contradictions between premises where
        // one implies the other; rules with *overlapping* premises may
        // still clash on individual records: a = v1 → n < 10 and
        // b = v1 → n > 90 cannot both hold on a record with
        // a = v1 ∧ b = v1. Enforcing consequents oscillates; the
        // generator must fall back to falsifying a premise and emit a
        // consistent table.
        let s = schema();
        let rules = RuleSet::from_rules(vec![
            Rule::new(eq(0, 0), Formula::Atom(Atom::LessConst { attr: 2, value: 10.0 })),
            Rule::new(eq(1, 0), Formula::Atom(Atom::GreaterConst { attr: 2, value: 90.0 })),
        ]);
        let cfg = DataGenConfig::new(&s, 300);
        let mut rng = StdRng::seed_from_u64(7);
        let (table, report) = generate_table(&s, &rules, &cfg, &mut rng);
        assert_eq!(report.unresolved_rows, 0, "{report:?}");
        for rule in &rules {
            assert!(violations(rule, &table).is_empty(), "rule {rule} violated");
        }
        // The conflicting combination must have been removed from (or
        // never emitted into) the table.
        let mut buf = Vec::new();
        for r in 0..table.n_rows() {
            table.row_into(r, &mut buf);
            assert!(
                !(buf[0] == Value::Nominal(0) && buf[1] == Value::Nominal(0)),
                "row {r} keeps the impossible premise combination"
            );
        }
    }

    #[test]
    fn sample_range_respects_grids_and_strictness() {
        let mut rng = StdRng::seed_from_u64(8);
        let int_ty = AttrType::Numeric { min: 0.0, max: 10.0, integer: true };
        for _ in 0..100 {
            let v = sample_range(&int_ty, 3.0, 5.0, true, &mut rng).unwrap();
            assert_eq!(v, Value::Number(4.0)); // only integer strictly between
        }
        assert_eq!(sample_range(&int_ty, 3.0, 4.0, true, &mut rng), None);
        let date_ty = AttrType::Date { min: 0, max: 100 };
        let v = sample_range(&date_ty, 49.5, 50.5, true, &mut rng).unwrap();
        assert_eq!(v, Value::Date(50));
        let real_ty = AttrType::Numeric { min: 0.0, max: 1.0, integer: false };
        for _ in 0..100 {
            let v = sample_range(&real_ty, 0.4, 0.6, true, &mut rng).unwrap();
            let x = v.as_numeric().unwrap();
            assert!(x > 0.4 && x < 0.6);
        }
        assert_eq!(sample_range(&real_ty, 2.0, 3.0, false, &mut rng), None);
    }
}
