//! # dq-tdg — the rule-pattern-based artificial test data generator
//!
//! The main contribution of sec. 4 of *Systematic Development of Data
//! Mining-Based Data Quality Tools* (Luebbers, Grimmer, Jarke;
//! VLDB 2003): a "highly parameterizable artificial test data
//! generator" that "simulates structural characteristics of the
//! application database" so that data-auditing tools can be calibrated
//! against data whose errors are *known*.
//!
//! Pipeline (all steps seeded and reproducible):
//!
//! 1. [`atomgen`] — random well-formed atoms/formulae over a schema,
//!    weighted by atom kind;
//! 2. [`rulegen`] — random **natural rule sets** (Defs. 4-6 of the
//!    paper): candidates are rejected until the set is non-tautological,
//!    non-redundant and pairwise contradiction-free;
//! 3. [`datagen`] — records sampled from univariate start distributions
//!    and/or multivariate Bayesian networks, then iteratively
//!    **repaired** until they follow the rules.
//!
//! The [`TestDataGenerator`] facade bundles the three steps; the
//! polluters of `dq-pollute` corrupt its output afterwards.

pub mod atomgen;
pub mod datagen;
pub mod rulegen;

pub use atomgen::{random_domain_value, AtomSampler, AtomWeights, FormulaShape};
pub use datagen::{
    generate_reference, generate_table, DataGenConfig, GenReport, GenerateStream,
    StartDistributions, GEN_CHUNK_ROWS,
};
pub use rulegen::{generate_rule_set, generate_rule_set_reference, RuleGenConfig, RuleGenReport};

use dq_logic::RuleSet;
use dq_table::{Schema, Table};
use rand::Rng;
use std::sync::Arc;

/// The full generator: schema + rule generation + data generation.
#[derive(Debug, Clone)]
pub struct TestDataGenerator {
    /// Target-relation schema ("a schema for the target relation with
    /// domain ranges for each attribute").
    pub schema: Arc<Schema>,
    /// Rule-generation parameters.
    pub rules: RuleGenConfig,
    /// Data-generation parameters.
    pub data: DataGenConfig,
}

/// The output of one generator run: the clean benchmark database plus
/// the ground-truth structure it follows.
#[derive(Debug, Clone)]
pub struct GeneratedBenchmark {
    /// The schema (shared with `clean`).
    pub schema: Arc<Schema>,
    /// The generated natural rule set — the ground-truth structure.
    pub rules: RuleSet,
    /// The clean database following `rules`.
    pub clean: Table,
    /// Rule-generation diagnostics.
    pub rule_report: RuleGenReport,
    /// Data-generation diagnostics.
    pub gen_report: GenReport,
}

impl TestDataGenerator {
    /// A generator with default rule/data parameters.
    pub fn new(schema: Arc<Schema>, n_rules: usize, n_rows: usize) -> Self {
        let data = DataGenConfig::new(&schema, n_rows);
        TestDataGenerator {
            schema,
            rules: RuleGenConfig { n_rules, ..RuleGenConfig::default() },
            data,
        }
    }

    /// Run rule generation followed by data generation.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> GeneratedBenchmark {
        let (rules, rule_report) = generate_rule_set(&self.schema, &self.rules, rng);
        let (clean, gen_report) = generate_table(&self.schema, &rules, &self.data, rng);
        GeneratedBenchmark { schema: self.schema.clone(), rules, clean, rule_report, gen_report }
    }

    /// Generate data for an externally supplied rule set (e.g. a
    /// hand-written domain model). Borrows the rule set — generation
    /// compiles the rules once and never needs ownership; the returned
    /// benchmark carries its own copy.
    pub fn generate_with_rules<R: Rng + ?Sized>(
        &self,
        rules: &RuleSet,
        rng: &mut R,
    ) -> GeneratedBenchmark {
        let (clean, gen_report) = generate_table(&self.schema, rules, &self.data, rng);
        GeneratedBenchmark {
            schema: self.schema.clone(),
            rules: rules.clone(),
            clean,
            rule_report: RuleGenReport::default(),
            gen_report,
        }
    }

    /// [`TestDataGenerator::generate_with_rules`] on the retained
    /// serial interpreted path ([`generate_reference`]) — ground truth
    /// for equivalence tests and the "before" side of the benches.
    pub fn generate_with_rules_reference<R: Rng + ?Sized>(
        &self,
        rules: &RuleSet,
        rng: &mut R,
    ) -> GeneratedBenchmark {
        let (clean, gen_report) = generate_reference(&self.schema, rules, &self.data, rng);
        GeneratedBenchmark {
            schema: self.schema.clone(),
            rules: rules.clone(),
            clean,
            rule_report: RuleGenReport::default(),
            gen_report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_logic::eval::violations;
    use dq_table::SchemaBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Arc<Schema> {
        SchemaBuilder::new()
            .nominal("a", ["v1", "v2", "v3", "v4"])
            .nominal("b", ["v1", "v2", "v3", "v4"])
            .nominal("c", ["w1", "w2", "w3"])
            .numeric("n", 0.0, 100.0)
            .build()
            .unwrap()
    }

    #[test]
    fn end_to_end_generation() {
        let gen = TestDataGenerator::new(schema(), 12, 800);
        let mut rng = StdRng::seed_from_u64(99);
        let b = gen.generate(&mut rng);
        assert_eq!(b.clean.n_rows(), 800);
        assert_eq!(b.rules.len(), 12);
        // Whatever the repair loop could not fix is reported; everything
        // else must hold in the emitted table.
        let total_violations: usize = b.rules.iter().map(|r| violations(r, &b.clean).len()).sum();
        assert_eq!(total_violations as u64, b.gen_report.unresolved_violations);
        // The overwhelming majority of rows must comply (the generator
        // exists to create *structured* data).
        assert!(b.gen_report.unresolved_rows < 40, "{:?}", b.gen_report);
    }

    #[test]
    fn generation_is_reproducible() {
        let gen = TestDataGenerator::new(schema(), 8, 200);
        let a = gen.generate(&mut StdRng::seed_from_u64(5));
        let b = gen.generate(&mut StdRng::seed_from_u64(5));
        assert_eq!(a.rules, b.rules);
        assert_eq!(a.clean.n_rows(), b.clean.n_rows());
        for r in 0..a.clean.n_rows() {
            assert_eq!(a.clean.row(r), b.clean.row(r), "row {r}");
        }
    }

    #[test]
    fn external_rule_sets_are_honoured() {
        use dq_logic::{parse_rule, RuleSet};
        let s = schema();
        let rule = parse_rule(&s, "a = v1 -> b = v2").unwrap();
        let gen = TestDataGenerator::new(s.clone(), 0, 300);
        let mut rng = StdRng::seed_from_u64(6);
        let b = gen.generate_with_rules(&RuleSet::from_rules(vec![rule.clone()]), &mut rng);
        assert!(violations(&rule, &b.clean).is_empty());
    }
}
