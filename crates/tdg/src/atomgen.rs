//! Random sampling of well-formed atoms and formulae over a schema.
//!
//! "The test data generator creates instances of rule patterns randomly
//! according to some user-defined parameters" (sec. 4.1). The
//! user-defined parameters here are the [`AtomWeights`] (relative
//! frequency of each atom kind) and the formula-shape parameters of
//! [`FormulaShape`]; the sampler guarantees every produced atom passes
//! [`dq_logic::Atom::validate`].

use dq_logic::{Atom, Formula};
use dq_stats::weighted_choice;
use dq_table::{AttrIdx, AttrType, Schema, Value};
use rand::Rng;

/// Relative weights of the atom kinds of Def. 1. Kinds the schema
/// cannot express (e.g. ordering atoms on an all-nominal schema) are
/// skipped regardless of their weight.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomWeights {
    /// `A = a`.
    pub eq_const: f64,
    /// `A ≠ a`.
    pub neq_const: f64,
    /// `N < n`.
    pub less_const: f64,
    /// `N > n`.
    pub greater_const: f64,
    /// `A isnull`.
    pub is_null: f64,
    /// `A isnotnull`.
    pub is_not_null: f64,
    /// `A = B`.
    pub eq_attr: f64,
    /// `A ≠ B`.
    pub neq_attr: f64,
    /// `N < M`.
    pub less_attr: f64,
    /// `N > M`.
    pub greater_attr: f64,
}

impl Default for AtomWeights {
    /// Equality-heavy defaults mirroring the QUIS dependencies the
    /// paper quotes (`BRV = 404 → GBM = 901`): mostly propositional
    /// equalities, some ordering and null tests, a little relational
    /// seasoning.
    fn default() -> Self {
        AtomWeights {
            eq_const: 10.0,
            neq_const: 2.0,
            less_const: 2.0,
            greater_const: 2.0,
            is_null: 0.5,
            is_not_null: 0.5,
            eq_attr: 1.0,
            neq_attr: 0.5,
            less_attr: 1.0,
            greater_attr: 1.0,
        }
    }
}

/// Shape parameters for random formulae.
#[derive(Debug, Clone, PartialEq)]
pub struct FormulaShape {
    /// Minimum number of atoms in the formula (at least 1).
    pub min_atoms: usize,
    /// Maximum number of atoms in the formula.
    pub max_atoms: usize,
    /// Probability that a multi-atom connective is a disjunction
    /// (otherwise a conjunction).
    pub p_disjunction: f64,
}

impl Default for FormulaShape {
    fn default() -> Self {
        FormulaShape { min_atoms: 1, max_atoms: 2, p_disjunction: 0.15 }
    }
}

/// A sampler of random atoms/formulae over one schema. Precomputes the
/// attribute pools each atom kind draws from.
#[derive(Debug, Clone)]
pub struct AtomSampler {
    weights: AtomWeights,
    /// All attributes.
    all: Vec<AttrIdx>,
    /// Ordered (numeric/date) attributes.
    ordered: Vec<AttrIdx>,
    /// Pairs comparable by `=`/`≠` (same nominal domain, or both
    /// ordered).
    eq_pairs: Vec<(AttrIdx, AttrIdx)>,
    /// Pairs comparable by `<`/`>` (both ordered).
    ord_pairs: Vec<(AttrIdx, AttrIdx)>,
}

/// Internal kind tags, ordered to match the weight vector.
const KINDS: usize = 10;

impl AtomSampler {
    /// Build a sampler for `schema`.
    pub fn new(schema: &Schema, weights: AtomWeights) -> Self {
        let all: Vec<AttrIdx> = (0..schema.len()).collect();
        let ordered: Vec<AttrIdx> =
            all.iter().copied().filter(|&a| schema.attr(a).ty.is_ordered()).collect();
        let mut eq_pairs = Vec::new();
        let mut ord_pairs = Vec::new();
        for &a in &all {
            for &b in &all {
                if a >= b {
                    continue;
                }
                if dq_logic::atom::compatible(schema, a, b) {
                    eq_pairs.push((a, b));
                }
                if schema.attr(a).ty.is_ordered() && schema.attr(b).ty.is_ordered() {
                    ord_pairs.push((a, b));
                }
            }
        }
        AtomSampler { weights, all, ordered, eq_pairs, ord_pairs }
    }

    fn kind_weights(&self) -> [f64; KINDS] {
        let w = &self.weights;
        let mut ws = [
            w.eq_const,
            w.neq_const,
            w.less_const,
            w.greater_const,
            w.is_null,
            w.is_not_null,
            w.eq_attr,
            w.neq_attr,
            w.less_attr,
            w.greater_attr,
        ];
        // Zero out kinds the schema cannot express.
        if self.ordered.is_empty() {
            ws[2] = 0.0;
            ws[3] = 0.0;
        }
        if self.eq_pairs.is_empty() {
            ws[6] = 0.0;
            ws[7] = 0.0;
        }
        if self.ord_pairs.is_empty() {
            ws[8] = 0.0;
            ws[9] = 0.0;
        }
        ws
    }

    /// Sample one random well-formed atom.
    pub fn sample_atom<R: Rng + ?Sized>(&self, schema: &Schema, rng: &mut R) -> Atom {
        let ws = self.kind_weights();
        debug_assert!(ws.iter().sum::<f64>() > 0.0, "no expressible atom kind");
        let pick = |v: &[AttrIdx], rng: &mut R| v[rng.gen_range(0..v.len())];
        let pick_pair = |v: &[(AttrIdx, AttrIdx)], rng: &mut R| {
            let (a, b) = v[rng.gen_range(0..v.len())];
            if rng.gen::<bool>() {
                (a, b)
            } else {
                (b, a)
            }
        };
        match weighted_choice(rng, &ws) {
            0 => {
                let attr = pick(&self.all, rng);
                Atom::EqConst { attr, value: random_domain_value(schema, attr, rng) }
            }
            1 => {
                let attr = pick(&self.all, rng);
                Atom::NeqConst { attr, value: random_domain_value(schema, attr, rng) }
            }
            2 => {
                let attr = pick(&self.ordered, rng);
                Atom::LessConst { attr, value: random_threshold(schema, attr, rng) }
            }
            3 => {
                let attr = pick(&self.ordered, rng);
                Atom::GreaterConst { attr, value: random_threshold(schema, attr, rng) }
            }
            4 => Atom::IsNull { attr: pick(&self.all, rng) },
            5 => Atom::IsNotNull { attr: pick(&self.all, rng) },
            6 => {
                let (left, right) = pick_pair(&self.eq_pairs, rng);
                Atom::EqAttr { left, right }
            }
            7 => {
                let (left, right) = pick_pair(&self.eq_pairs, rng);
                Atom::NeqAttr { left, right }
            }
            8 => {
                let (left, right) = pick_pair(&self.ord_pairs, rng);
                Atom::LessAttr { left, right }
            }
            _ => {
                let (left, right) = pick_pair(&self.ord_pairs, rng);
                Atom::GreaterAttr { left, right }
            }
        }
    }

    /// Sample a random formula with the given shape: a single atom, or
    /// a flat conjunction/disjunction of 2..=`max_atoms` atoms.
    pub fn sample_formula<R: Rng + ?Sized>(
        &self,
        schema: &Schema,
        shape: &FormulaShape,
        rng: &mut R,
    ) -> Formula {
        let lo = shape.min_atoms.max(1);
        let n = rng.gen_range(lo..=shape.max_atoms.max(lo));
        if n == 1 {
            return Formula::Atom(self.sample_atom(schema, rng));
        }
        let atoms: Vec<Formula> =
            (0..n).map(|_| Formula::Atom(self.sample_atom(schema, rng))).collect();
        if rng.gen::<f64>() < shape.p_disjunction {
            Formula::Or(atoms)
        } else {
            Formula::And(atoms)
        }
    }
}

/// A uniformly random in-domain (non-NULL) value for an attribute.
pub fn random_domain_value<R: Rng + ?Sized>(schema: &Schema, attr: AttrIdx, rng: &mut R) -> Value {
    match &schema.attr(attr).ty {
        AttrType::Nominal { labels } => Value::Nominal(rng.gen_range(0..labels.len()) as u32),
        AttrType::Numeric { min, max, integer } => {
            let x = rng.gen_range(*min..=*max);
            Value::Number(if *integer { x.round() } else { x })
        }
        AttrType::Date { min, max } => Value::Date(rng.gen_range(*min..=*max)),
    }
}

/// A threshold strictly inside the attribute's domain (so `N < n` and
/// `N > n` are both satisfiable — a precondition for natural atoms).
fn random_threshold<R: Rng + ?Sized>(schema: &Schema, attr: AttrIdx, rng: &mut R) -> f64 {
    match &schema.attr(attr).ty {
        AttrType::Numeric { min, max, .. } => {
            if max > min {
                let frac = rng.gen_range(0.05..0.95);
                min + frac * (max - min)
            } else {
                *min
            }
        }
        AttrType::Date { min, max } => {
            if max > min {
                rng.gen_range(*min..*max) as f64 + 0.5
            } else {
                *min as f64
            }
        }
        AttrType::Nominal { .. } => unreachable!("threshold on nominal attribute"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_table::SchemaBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mixed_schema() -> std::sync::Arc<Schema> {
        SchemaBuilder::new()
            .nominal("a", ["x", "y", "z"])
            .nominal("b", ["x", "y", "z"])
            .numeric("n", 0.0, 100.0)
            .date_ymd("d", (2000, 1, 1), (2010, 1, 1))
            .build()
            .unwrap()
    }

    #[test]
    fn sampled_atoms_always_validate() {
        let s = mixed_schema();
        let sampler = AtomSampler::new(&s, AtomWeights::default());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let atom = sampler.sample_atom(&s, &mut rng);
            assert_eq!(atom.validate(&s), Ok(()), "atom {atom:?}");
        }
    }

    #[test]
    fn sampled_formulae_always_validate() {
        let s = mixed_schema();
        let sampler = AtomSampler::new(&s, AtomWeights::default());
        let shape = FormulaShape { min_atoms: 1, max_atoms: 4, p_disjunction: 0.3 };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let f = sampler.sample_formula(&s, &shape, &mut rng);
            assert!(f.validate(&s).is_ok(), "formula {f:?}");
            assert!(f.atom_count() <= 4);
        }
    }

    #[test]
    fn all_nominal_schema_skips_ordering_kinds() {
        let s = SchemaBuilder::new()
            .nominal("a", ["x", "y"])
            .nominal("b", ["p", "q"]) // different labels: no eq pairs
            .build()
            .unwrap();
        let sampler = AtomSampler::new(&s, AtomWeights::default());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..300 {
            let atom = sampler.sample_atom(&s, &mut rng);
            assert!(
                !matches!(
                    atom,
                    Atom::LessConst { .. }
                        | Atom::GreaterConst { .. }
                        | Atom::LessAttr { .. }
                        | Atom::GreaterAttr { .. }
                        | Atom::EqAttr { .. }
                        | Atom::NeqAttr { .. }
                ),
                "inexpressible kind sampled: {atom:?}"
            );
        }
    }

    #[test]
    fn nominal_pairs_require_identical_domains() {
        let s = SchemaBuilder::new()
            .nominal("a", ["x", "y"])
            .nominal("b", ["x", "y"])
            .nominal("c", ["p", "q"])
            .build()
            .unwrap();
        let sampler = AtomSampler::new(&s, AtomWeights::default());
        assert_eq!(sampler.eq_pairs, vec![(0, 1)]);
        assert!(sampler.ord_pairs.is_empty());
    }

    #[test]
    fn thresholds_stay_inside_domains() {
        let s = mixed_schema();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let t = random_threshold(&s, 2, &mut rng);
            assert!(t > 0.0 && t < 100.0);
            let d = random_threshold(&s, 3, &mut rng);
            let (min, max) = match s.attr(3).ty {
                AttrType::Date { min, max } => (min as f64, max as f64),
                _ => unreachable!(),
            };
            assert!(d > min && d < max);
        }
    }

    #[test]
    fn domain_values_are_in_domain() {
        let s = mixed_schema();
        let mut rng = StdRng::seed_from_u64(5);
        for attr in 0..s.len() {
            for _ in 0..100 {
                let v = random_domain_value(&s, attr, &mut rng);
                assert!(s.attr(attr).ty.contains(&v), "{v:?} outside attr {attr}");
            }
        }
    }
}
