//! Random generation of natural rule sets (sec. 4.1.2).
//!
//! Rules are drawn from the [`crate::atomgen::AtomSampler`]
//! and admitted only if they are natural (Def. 5) and keep the set
//! natural under the pairwise condition of Def. 6. The generator
//! reports how many candidates each filter rejected — the "number of
//! generated rules is intended to reflect the structural strength of
//! the data", so silent rejection would distort every experiment
//! parameterized by rule count.

use crate::atomgen::{AtomSampler, AtomWeights, FormulaShape};
use dq_logic::pairs::{instance_conflict, pair_conflict, CachedRule};
use dq_logic::{is_natural_rule, rule_pair_conflict, satisfiable, Formula, Rule, RuleSet};
use dq_table::Schema;
use rand::Rng;

/// Parameters of the rule generator.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleGenConfig {
    /// Number of rules to generate.
    pub n_rules: usize,
    /// Atom-kind weights for premises. The default zeroes the
    /// `isnull`/`isnotnull` kinds: premises that test for NULL defeat
    /// the data generator's NULL escape (falsifying one rule's premise
    /// by nulling an attribute would *activate* another's), making
    /// dense rule sets unsatisfiable in practice. Callers that want
    /// null-test premises can opt back in.
    pub premise_weights: AtomWeights,
    /// Atom-kind weights for consequents (null tests allowed: rules
    /// like `a = v1 → b isnull` are meaningful structure).
    pub consequent_weights: AtomWeights,
    /// Shape of rule premises (conjunctions of up to `max_atoms`).
    pub premise: FormulaShape,
    /// Shape of rule consequents (usually single atoms, like the QUIS
    /// dependencies in the paper).
    pub consequent: FormulaShape,
    /// Candidate attempts per accepted rule before the generator gives
    /// up on the remaining quota.
    pub max_tries_per_rule: usize,
    /// Also reject candidates whose premise *overlaps* an accepted
    /// rule's premise while their consequents cannot hold together —
    /// Def. 6 only rejects this for nested premises (`αⱼ ⇒ αᵢ`), so
    /// overlapping-but-incomparable premises can still demand
    /// contradictory consequents on individual records, which makes
    /// dense rule sets unsatisfiable in practice. The paper
    /// acknowledges the ideal (global entailment) check "is expensive";
    /// this pairwise instance-compatibility check is the affordable
    /// middle ground and is on by default. Disable to get literal
    /// Def. 6 sets.
    pub strict_compatibility: bool,
}

impl Default for RuleGenConfig {
    fn default() -> Self {
        RuleGenConfig {
            n_rules: 20,
            premise_weights: AtomWeights {
                is_null: 0.0,
                is_not_null: 0.0,
                ..AtomWeights::default()
            },
            consequent_weights: AtomWeights::default(),
            premise: FormulaShape { min_atoms: 1, max_atoms: 2, p_disjunction: 0.1 },
            consequent: FormulaShape { min_atoms: 1, max_atoms: 1, p_disjunction: 0.0 },
            max_tries_per_rule: 200,
            strict_compatibility: true,
        }
    }
}

/// What happened while generating a rule set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleGenReport {
    /// Rules accepted into the set.
    pub accepted: usize,
    /// Candidates rejected for violating Def. 5 (unnatural rule).
    pub rejected_unnatural: usize,
    /// Candidates rejected for conflicting with an accepted rule
    /// (Def. 6 pairwise condition).
    pub rejected_conflict: usize,
    /// `true` if the quota could not be filled within the try budget.
    pub exhausted: bool,
}

/// Generate a natural rule set of (up to) `config.n_rules` rules.
///
/// The result is always a natural rule set; when the schema is too
/// small to host the requested number of mutually compatible rules the
/// report's `exhausted` flag is set and fewer rules are returned.
pub fn generate_rule_set<R: Rng + ?Sized>(
    schema: &Schema,
    config: &RuleGenConfig,
    rng: &mut R,
) -> (RuleSet, RuleGenReport) {
    let premise_sampler = AtomSampler::new(schema, config.premise_weights.clone());
    let consequent_sampler = AtomSampler::new(schema, config.consequent_weights.clone());
    // The quadratic hygiene pass compares every candidate against every
    // accepted rule; `CachedRule` memoizes each rule's DNFs, attribute
    // masks and premise validity once, and the cached checks prefilter
    // attribute-disjoint pairs — same accept/reject decisions as the
    // uncached `rule_pair_conflict` path, only cheaper.
    let mut accepted: Vec<CachedRule> = Vec::with_capacity(config.n_rules);
    let mut report = RuleGenReport::default();
    'quota: while accepted.len() < config.n_rules {
        let mut tries = 0;
        loop {
            if tries >= config.max_tries_per_rule {
                report.exhausted = true;
                break 'quota;
            }
            tries += 1;
            let premise = premise_sampler.sample_formula(schema, &config.premise, rng);
            let consequent = consequent_sampler.sample_formula(schema, &config.consequent, rng);
            let rule = Rule::new(premise, consequent);
            if !is_natural_rule(schema, &rule) {
                report.rejected_unnatural += 1;
                continue;
            }
            let cached = CachedRule::new(schema, rule);
            if accepted.iter().any(|a| {
                pair_conflict(schema, a, &cached)
                    || (config.strict_compatibility && instance_conflict(schema, a, &cached))
            }) {
                report.rejected_conflict += 1;
                continue;
            }
            accepted.push(cached);
            report.accepted += 1;
            break;
        }
    }
    (RuleSet::from_rules(accepted.into_iter().map(|c| c.rule).collect()), report)
}

/// The retained uncached generator — ground truth for the memoized
/// fast path: same RNG consumption, same accept/reject decisions, so
/// [`generate_rule_set`] must reproduce its output *byte for byte*
/// (the equivalence suite pins this).
pub fn generate_rule_set_reference<R: Rng + ?Sized>(
    schema: &Schema,
    config: &RuleGenConfig,
    rng: &mut R,
) -> (RuleSet, RuleGenReport) {
    let premise_sampler = AtomSampler::new(schema, config.premise_weights.clone());
    let consequent_sampler = AtomSampler::new(schema, config.consequent_weights.clone());
    let mut accepted: Vec<Rule> = Vec::with_capacity(config.n_rules);
    let mut report = RuleGenReport::default();
    'quota: while accepted.len() < config.n_rules {
        let mut tries = 0;
        loop {
            if tries >= config.max_tries_per_rule {
                report.exhausted = true;
                break 'quota;
            }
            tries += 1;
            let premise = premise_sampler.sample_formula(schema, &config.premise, rng);
            let consequent = consequent_sampler.sample_formula(schema, &config.consequent, rng);
            let rule = Rule::new(premise, consequent);
            if !is_natural_rule(schema, &rule) {
                report.rejected_unnatural += 1;
                continue;
            }
            if accepted.iter().any(|a| {
                rule_pair_conflict(schema, a, &rule)
                    || (config.strict_compatibility && instance_conflict_plain(schema, a, &rule))
            }) {
                report.rejected_conflict += 1;
                continue;
            }
            accepted.push(rule);
            report.accepted += 1;
            break;
        }
    }
    (RuleSet::from_rules(accepted), report)
}

/// Can the two rules clash on a single record? True when the premises
/// can hold together but the consequents cannot be satisfied alongside
/// them. (Uncached form, used by the reference generator;
/// [`dq_logic::pairs::instance_conflict`] is the memoized equivalent.)
fn instance_conflict_plain(schema: &Schema, a: &Rule, b: &Rule) -> bool {
    let premises = Formula::And(vec![a.premise.clone(), b.premise.clone()]);
    if !satisfiable(schema, &premises) {
        return false; // premises disjoint: no record triggers both
    }
    let all = Formula::And(vec![
        a.premise.clone(),
        b.premise.clone(),
        a.consequent.clone(),
        b.consequent.clone(),
    ]);
    !satisfiable(schema, &all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_logic::is_natural_rule_set;
    use dq_table::SchemaBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> std::sync::Arc<Schema> {
        SchemaBuilder::new()
            .nominal("a", ["v1", "v2", "v3", "v4"])
            .nominal("b", ["v1", "v2", "v3", "v4"])
            .nominal("c", ["w1", "w2", "w3", "w4", "w5", "w6"])
            .numeric("n", 0.0, 1000.0)
            .date_ymd("d", (1995, 1, 1), (2005, 12, 31))
            .build()
            .unwrap()
    }

    #[test]
    fn generated_sets_are_natural() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = RuleGenConfig { n_rules: 15, ..RuleGenConfig::default() };
        let (rules, report) = generate_rule_set(&s, &cfg, &mut rng);
        assert_eq!(rules.len(), 15);
        assert_eq!(report.accepted, 15);
        assert!(is_natural_rule_set(&s, &rules.rules), "generator must emit natural sets");
    }

    #[test]
    fn rules_validate_against_schema() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(8);
        let (rules, _) = generate_rule_set(&s, &RuleGenConfig::default(), &mut rng);
        for r in &rules {
            assert!(r.validate(&s).is_ok(), "rule {r}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let s = schema();
        let cfg = RuleGenConfig { n_rules: 10, ..RuleGenConfig::default() };
        let (a, _) = generate_rule_set(&s, &cfg, &mut StdRng::seed_from_u64(42));
        let (b, _) = generate_rule_set(&s, &cfg, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_schema_exhausts_gracefully() {
        // One binary attribute cannot host many mutually natural rules.
        let s =
            SchemaBuilder::new().nominal("a", ["x", "y"]).nominal("z", ["x", "y"]).build().unwrap();
        let cfg =
            RuleGenConfig { n_rules: 500, max_tries_per_rule: 50, ..RuleGenConfig::default() };
        let mut rng = StdRng::seed_from_u64(9);
        let (rules, report) = generate_rule_set(&s, &cfg, &mut rng);
        assert!(report.exhausted);
        assert!(rules.len() < 500);
        assert!(is_natural_rule_set(&s, &rules.rules));
    }

    #[test]
    fn zero_rules_is_a_valid_request() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(10);
        let cfg = RuleGenConfig { n_rules: 0, ..RuleGenConfig::default() };
        let (rules, report) = generate_rule_set(&s, &cfg, &mut rng);
        assert!(rules.is_empty());
        assert_eq!(report, RuleGenReport::default());
    }

    #[test]
    fn memoized_generator_is_byte_identical_to_reference() {
        let s = schema();
        for seed in [3u64, 21, 99] {
            let cfg = RuleGenConfig { n_rules: 25, ..RuleGenConfig::default() };
            let (fast, fast_report) = generate_rule_set(&s, &cfg, &mut StdRng::seed_from_u64(seed));
            let (reference, ref_report) =
                generate_rule_set_reference(&s, &cfg, &mut StdRng::seed_from_u64(seed));
            assert_eq!(fast, reference, "seed {seed}");
            assert_eq!(fast_report, ref_report, "seed {seed}");
        }
        // Def. 6-only mode (no strict compatibility) too.
        let cfg =
            RuleGenConfig { n_rules: 20, strict_compatibility: false, ..RuleGenConfig::default() };
        let (fast, _) = generate_rule_set(&s, &cfg, &mut StdRng::seed_from_u64(5));
        let (reference, _) = generate_rule_set_reference(&s, &cfg, &mut StdRng::seed_from_u64(5));
        assert_eq!(fast, reference);
    }

    #[test]
    fn report_counts_rejections() {
        let s = schema();
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = RuleGenConfig { n_rules: 40, ..RuleGenConfig::default() };
        let (_, report) = generate_rule_set(&s, &cfg, &mut rng);
        // With 40 rules over a 5-attribute schema some collisions are
        // statistically certain.
        assert!(report.rejected_unnatural + report.rejected_conflict > 0);
    }
}
