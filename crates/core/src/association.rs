//! The Hipp-style association-rule auditor — the related-work
//! comparator (sec. 7).
//!
//! "Hipp et al. use scalable algorithms for association rule induction
//! and define a scoring that rates deviations from these rules based
//! on the confidence of the violated rules." Their score *adds* the
//! confidences of all violated rules; the paper argues this addition
//! is "strictly speaking only valid if all rules predict values for
//! the same attributes" and takes the maximum instead. Both scorings
//! are available here so the comparison experiment can quantify the
//! difference.

use crate::error::AuditError;
use crate::report::{AuditReport, Finding};
use dq_exec::WorkerPool;
use dq_logic::{Atom, CompiledRuleSet, Formula, RecordView, Rule, RuleSet, NONE_CODE};
use dq_mining::apriori::item_parts;
use dq_mining::{Apriori, AprioriConfig, AssociationRule};
use dq_table::{RowSlice, Table, Value};

/// How violated-rule confidences combine into a record score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssociationScoring {
    /// Hipp et al.: sum of violated confidences (clamped to 1 for the
    /// report's confidence scale).
    #[default]
    Sum,
    /// The paper's combination: maximum violated confidence.
    Max,
}

/// Configuration of the association auditor.
#[derive(Debug, Clone, Default)]
pub struct AssociationAuditConfig {
    /// Apriori mining parameters.
    pub apriori: AprioriConfig,
    /// Scoring mode.
    pub scoring: AssociationScoring,
    /// Records scoring at or above this are flagged.
    pub min_confidence: f64,
    /// Worker threads for the detection scan (the record loop shards
    /// into row chunks, like [`crate::Auditor::detect`]) — the shared
    /// [`Parallelism`](dq_exec::Parallelism) knob. The default
    /// [`AUTO`](dq_exec::Parallelism::AUTO) resolves to the available
    /// hardware parallelism (overridable via `DQ_THREADS`);
    /// [`serial`](dq_exec::Parallelism::serial) is the exact serial
    /// path. Results are identical at every thread count.
    pub threads: dq_exec::Parallelism,
}

/// The association-rule data auditor.
#[derive(Debug, Clone)]
pub struct AssociationAuditor {
    config: AssociationAuditConfig,
}

impl AssociationAuditor {
    /// An auditor with the given configuration (a zero `min_confidence`
    /// is promoted to the paper's 0.8 default).
    pub fn new(mut config: AssociationAuditConfig) -> Self {
        if config.min_confidence <= 0.0 {
            config.min_confidence = 0.8;
        }
        AssociationAuditor { config }
    }

    /// Mine rules from `table` and score every record against them.
    pub fn run(&self, table: &Table) -> Result<(Apriori, AuditReport), AuditError> {
        if table.is_empty() {
            return Err(AuditError::EmptyTable);
        }
        let miner = Apriori::mine(table, self.config.apriori.clone())
            .map_err(|source| AuditError::Induction { class_attr: 0, source })?;
        let report = self.detect(&miner, table);
        Ok((miner, report))
    }

    /// Score `table` against an already mined rule base.
    ///
    /// This is the **compiled** scan: the mined rules are lowered once
    /// into [`CompiledRuleSet`] violation programs over the miner's
    /// coded item space (see [`association_rule_set`]) and every record
    /// is checked through a [`RecordView`] of its coded cells — flat
    /// guard-first branch programs instead of the per-rule
    /// `contains_all` item walk. The scan shards into one row chunk per
    /// worker ([`AssociationAuditConfig::threads`]); rules are
    /// evaluated in mined (confidence-descending) order within each
    /// record, so scores accumulate in exactly the reference order and
    /// the report is byte-identical to [`AssociationAuditor::detect_reference`]
    /// at every thread count.
    pub fn detect(&self, miner: &Apriori, table: &Table) -> AuditReport {
        let rules = association_rule_set(miner);
        let compiled = CompiledRuleSet::compile(&rules, table.n_cols());
        let index = GuardIndex::build(&compiled, table.n_cols());
        let pool = WorkerPool::from_config(self.config.threads);
        let chunks = table.chunks(pool.threads());
        let partials =
            pool.map_indexed(&chunks, |_, chunk| self.scan_chunk(miner, &compiled, &index, chunk));
        let mut findings = Vec::new();
        let mut record_confidence = Vec::with_capacity(table.n_rows());
        for (chunk_findings, chunk_confidence) in partials {
            findings.extend(chunk_findings);
            record_confidence.extend(chunk_confidence);
        }
        AuditReport::new(findings, record_confidence, self.config.min_confidence)
    }

    /// Reference detection: the pre-compilation record-at-a-time loop,
    /// walking every mined rule through [`Apriori::violated`]'s
    /// interpreted item matching. Kept — serial and unoptimized on
    /// purpose — as the ground truth the audit-program equivalence
    /// suite pins [`AssociationAuditor::detect`] against, and as the
    /// "before" side of the `detection/association` benchmarks.
    pub fn detect_reference(&self, miner: &Apriori, table: &Table) -> AuditReport {
        let mut findings = Vec::new();
        let mut record_confidence = vec![0.0f64; table.n_rows()];
        let mut record: Vec<Value> = Vec::with_capacity(table.n_cols());
        let mut coded = Vec::with_capacity(table.n_cols());
        #[allow(clippy::needless_range_loop)] // row indexes the table, not just the vec
        for row in 0..table.n_rows() {
            table.row_into(row, &mut record);
            miner.code_record_into(&record, &mut coded);
            let mut score = 0.0f64;
            let mut best: Option<&AssociationRule> = None;
            for rule in miner.violated(&coded) {
                match self.config.scoring {
                    AssociationScoring::Sum => score += rule.confidence,
                    AssociationScoring::Max => score = score.max(rule.confidence),
                }
                if best.is_none_or(|b| rule.confidence > b.confidence) {
                    best = Some(rule);
                }
            }
            let score = score.min(1.0);
            record_confidence[row] = score;
            if score >= self.config.min_confidence {
                if let Some(rule) = best {
                    findings.push(Finding {
                        row,
                        attr: rule.attr,
                        observed: record[rule.attr],
                        // Only nominal consequents map back to concrete
                        // cell values; binned consequents keep the
                        // observed value as a placeholder proposal.
                        proposed: proposed_value(table, rule.attr, rule.code, record[rule.attr]),
                        confidence: score,
                        support: rule.support,
                    });
                }
            }
        }
        AuditReport::new(findings, record_confidence, self.config.min_confidence)
    }

    /// Scan one row chunk through the compiled violation programs.
    ///
    /// Dispatch is guard-first: a record only walks the rules in the
    /// [`GuardIndex`] buckets its own codes select (entering each fused
    /// program one op past the already-verified guard), so the per-row
    /// cost is proportional to the matching rules, not the whole rule
    /// base. The violated indices are then re-sorted into mined order,
    /// so the Sum accumulation and the strict-greater best-rule
    /// selection replay the reference loop exactly (the rules are
    /// confidence-sorted, so the first violated rule is the best one
    /// in both).
    fn scan_chunk(
        &self,
        miner: &Apriori,
        compiled: &CompiledRuleSet,
        index: &GuardIndex,
        chunk: &RowSlice<'_>,
    ) -> (Vec<Finding>, Vec<f64>) {
        let table = chunk.table();
        let rules = miner.rules();
        let mut findings = Vec::new();
        let mut confidences = Vec::with_capacity(chunk.len());
        let mut record: Vec<Value> = Vec::with_capacity(table.n_cols());
        let mut coded = Vec::with_capacity(table.n_cols());
        let mut view = RecordView::new(table.n_cols());
        let mut violated: Vec<u32> = Vec::new();
        for row in chunk.rows() {
            table.row_into(row, &mut record);
            miner.code_record_into(&record, &mut coded);
            for (a, c) in coded.iter().enumerate() {
                view.sync_nominal(a, c.map(|it| item_parts(it).1));
            }
            violated.clear();
            for (a, &code) in view.codes().iter().enumerate() {
                if code == NONE_CODE {
                    continue;
                }
                if let Some(bucket) = index.bucket(a, code) {
                    for &i in bucket {
                        if compiled.violates_rule_view_postguard(i as usize, &view) {
                            violated.push(i);
                        }
                    }
                }
            }
            for &i in &index.unguarded {
                if compiled.violates_rule_view(i as usize, &view) {
                    violated.push(i);
                }
            }
            // Buckets surface rules attribute-major; mined order is what
            // the f64 Sum fold (and the reference) accumulate in.
            violated.sort_unstable();
            let mut score = 0.0f64;
            let mut best: Option<&AssociationRule> = None;
            for &i in &violated {
                let rule = &rules[i as usize];
                match self.config.scoring {
                    AssociationScoring::Sum => score += rule.confidence,
                    AssociationScoring::Max => score = score.max(rule.confidence),
                }
                if best.is_none_or(|b| rule.confidence > b.confidence) {
                    best = Some(rule);
                }
            }
            let score = score.min(1.0);
            confidences.push(score);
            if score >= self.config.min_confidence {
                if let Some(rule) = best {
                    findings.push(Finding {
                        row,
                        attr: rule.attr,
                        observed: record[rule.attr],
                        proposed: proposed_value(table, rule.attr, rule.code, record[rule.attr]),
                        confidence: score,
                        support: rule.support,
                    });
                }
            }
        }
        (findings, confidences)
    }
}

/// Rules bucketed by their nominal guard — the `(attr, code)` equality
/// every mined antecedent opens with ([`CompiledRuleSet::guard_nominal`]).
/// A record can only violate a rule whose guard cell it actually
/// carries, so the scan looks up one bucket per non-NULL code instead
/// of testing the guard of every rule in the base.
struct GuardIndex {
    /// `buckets[attr]`: guard codes (ascending) paired with the
    /// ascending indices of the rules they select.
    buckets: Vec<Vec<(u32, Vec<u32>)>>,
    /// Rules without a nominal guard (degenerate premises) — walked on
    /// every record through the full violation program.
    unguarded: Vec<u32>,
}

impl GuardIndex {
    fn build(compiled: &CompiledRuleSet, n_attrs: usize) -> GuardIndex {
        let mut buckets: Vec<Vec<(u32, Vec<u32>)>> = vec![Vec::new(); n_attrs];
        let mut unguarded = Vec::new();
        for i in 0..compiled.len() {
            match compiled.guard_nominal(i) {
                Some((attr, code)) if attr < n_attrs => {
                    let bucket = &mut buckets[attr];
                    match bucket.binary_search_by_key(&code, |&(c, _)| c) {
                        Ok(pos) => bucket[pos].1.push(i as u32),
                        Err(pos) => bucket.insert(pos, (code, vec![i as u32])),
                    }
                }
                _ => unguarded.push(i as u32),
            }
        }
        GuardIndex { buckets, unguarded }
    }

    /// The rules guarded by `attr = code`, if any.
    #[inline]
    fn bucket(&self, attr: usize, code: u32) -> Option<&[u32]> {
        let bucket = &self.buckets[attr];
        bucket.binary_search_by_key(&code, |&(c, _)| c).ok().map(|pos| bucket[pos].1.as_slice())
    }
}

/// Lower the mined rule base into a [`dq_logic`] rule set over the
/// miner's **coded item space**: each [`AssociationRule`] becomes
/// `∧ᵢ (attrᵢ = codeᵢ) → (attr = code ∨ attr isnull)`, whose violation
/// (premise holds, consequent fails) is exactly [`Apriori::violated`]'s
/// predicate — antecedent matched, consequent attribute non-NULL and
/// carrying a different code. Rule order is preserved (mined,
/// confidence-descending), which scoring relies on.
///
/// The formulae read a record whose cells are the miner's codes
/// (`Value::Nominal(code)` / NULL) — e.g. a [`RecordView`] synced
/// through [`RecordView::sync_nominal`] — *not* the raw table values:
/// binned ordered attributes live here as their bin codes.
pub fn association_rule_set(miner: &Apriori) -> RuleSet {
    let rules = miner
        .rules()
        .iter()
        .map(|r| {
            let premise = Formula::And(
                r.antecedent
                    .iter()
                    .map(|&it| {
                        let (attr, code) = item_parts(it);
                        Formula::Atom(Atom::EqConst { attr, value: Value::Nominal(code) })
                    })
                    .collect(),
            );
            let consequent = Formula::Or(vec![
                Formula::Atom(Atom::EqConst { attr: r.attr, value: Value::Nominal(r.code) }),
                Formula::Atom(Atom::IsNull { attr: r.attr }),
            ]);
            Rule::new(premise, consequent)
        })
        .collect();
    RuleSet::from_rules(rules)
}

fn proposed_value(table: &Table, attr: usize, code: u32, observed: Value) -> Value {
    match &table.schema().attr(attr).ty {
        dq_table::AttrType::Nominal { .. } => Value::Nominal(code),
        _ => observed,
    }
}

/// Sanity helper for tests and docs: does this miner know a rule whose
/// consequent sets `attr` to `code`?
pub fn has_rule_for(miner: &Apriori, attr: usize, code: u32) -> bool {
    miner.rules().iter().any(|r| r.attr == attr && r.code == code)
        || miner
            .rules()
            .iter()
            .any(|r| r.antecedent.iter().any(|&it| item_parts(it) == (attr, code)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_table::SchemaBuilder;

    /// Two deterministic dependencies plus one deviation each.
    fn table() -> Table {
        let schema = SchemaBuilder::new()
            .nominal("brv", ["404", "501"])
            .nominal("gbm", ["901", "911"])
            .nominal("kbm", ["01", "02"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..400 {
            let b = (i % 2) as u32;
            t.push_row(&[Value::Nominal(b), Value::Nominal(b), Value::Nominal(b)]).unwrap();
        }
        // Deviation: brv=404 with gbm=911 *and* kbm=02 — violates two
        // rules at once (sum > max).
        t.push_row(&[Value::Nominal(0), Value::Nominal(1), Value::Nominal(1)]).unwrap();
        t
    }

    #[test]
    fn flags_violations() {
        let t = table();
        let auditor = AssociationAuditor::new(AssociationAuditConfig::default());
        let (miner, report) = auditor.run(&t).unwrap();
        assert!(has_rule_for(&miner, 1, 0));
        let deviant = t.n_rows() - 1;
        assert!(report.is_flagged(deviant));
        assert!(!report.is_flagged(0));
        assert_eq!(report.findings[0].row, deviant);
    }

    #[test]
    fn sum_scoring_saturates_max_does_not() {
        let t = table();
        let sum = AssociationAuditor::new(AssociationAuditConfig {
            scoring: AssociationScoring::Sum,
            ..AssociationAuditConfig::default()
        });
        let max = AssociationAuditor::new(AssociationAuditConfig {
            scoring: AssociationScoring::Max,
            ..AssociationAuditConfig::default()
        });
        let deviant = t.n_rows() - 1;
        let (_, sum_report) = sum.run(&t).unwrap();
        let (_, max_report) = max.run(&t).unwrap();
        // Multiple violated rules: the sum clamps to 1, the max stays
        // at the strongest single rule (< 1 on finite evidence… both
        // are ~1 here, but sum ≥ max always).
        assert!(sum_report.record_confidence[deviant] >= max_report.record_confidence[deviant]);
        assert!(max_report.is_flagged(deviant));
    }

    #[test]
    fn detect_reuses_mined_rules_on_fresh_data() {
        let t = table();
        let auditor = AssociationAuditor::new(AssociationAuditConfig::default());
        let (miner, _) = auditor.run(&t).unwrap();
        let mut fresh = Table::new(t.schema().clone());
        fresh.push_row(&[Value::Nominal(1), Value::Nominal(1), Value::Nominal(1)]).unwrap();
        fresh.push_row(&[Value::Nominal(1), Value::Nominal(0), Value::Nominal(1)]).unwrap();
        let report = auditor.detect(&miner, &fresh);
        assert!(!report.is_flagged(0));
        assert!(report.is_flagged(1));
        let f = report.best_finding_for(1).unwrap();
        assert_eq!(f.attr, 1);
        assert_eq!(f.proposed, Value::Nominal(1));
    }

    #[test]
    fn empty_table_errors() {
        let t = table();
        let empty = Table::new(t.schema().clone());
        let auditor = AssociationAuditor::new(AssociationAuditConfig::default());
        assert_eq!(auditor.run(&empty).unwrap_err(), AuditError::EmptyTable);
    }

    /// The table with NULLs and an out-of-label code mixed in.
    fn messy_table() -> Table {
        let mut t = table();
        t.push_row(&[Value::Nominal(0), Value::Null, Value::Nominal(1)]).unwrap();
        t.push_row(&[Value::Null, Value::Nominal(1), Value::Null]).unwrap();
        t.set(3, 1, Value::Nominal(77)).unwrap(); // out-of-label code
        t
    }

    #[test]
    fn compiled_detect_is_byte_identical_to_reference() {
        let t = messy_table();
        for scoring in [AssociationScoring::Sum, AssociationScoring::Max] {
            let auditor = AssociationAuditor::new(AssociationAuditConfig {
                scoring,
                ..AssociationAuditConfig::default()
            });
            let (miner, _) = auditor.run(&t).unwrap();
            let reference = auditor.detect_reference(&miner, &t);
            for threads in [1, 2, 4] {
                let par = AssociationAuditor::new(AssociationAuditConfig {
                    scoring,
                    threads: threads.into(),
                    ..AssociationAuditConfig::default()
                });
                let report = par.detect(&miner, &t);
                assert_eq!(report.findings, reference.findings, "threads={threads}");
                for (a, b) in report.record_confidence.iter().zip(&reference.record_confidence) {
                    assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn lowered_rule_set_matches_the_miner_order() {
        let t = table();
        let auditor = AssociationAuditor::new(AssociationAuditConfig::default());
        let (miner, _) = auditor.run(&t).unwrap();
        let rules = association_rule_set(&miner);
        assert_eq!(rules.len(), miner.rules().len());
    }
}
