//! The Hipp-style association-rule auditor — the related-work
//! comparator (sec. 7).
//!
//! "Hipp et al. use scalable algorithms for association rule induction
//! and define a scoring that rates deviations from these rules based
//! on the confidence of the violated rules." Their score *adds* the
//! confidences of all violated rules; the paper argues this addition
//! is "strictly speaking only valid if all rules predict values for
//! the same attributes" and takes the maximum instead. Both scorings
//! are available here so the comparison experiment can quantify the
//! difference.

use crate::error::AuditError;
use crate::report::{AuditReport, Finding};
use dq_mining::apriori::item_parts;
use dq_mining::{Apriori, AprioriConfig};
use dq_table::{Table, Value};

/// How violated-rule confidences combine into a record score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssociationScoring {
    /// Hipp et al.: sum of violated confidences (clamped to 1 for the
    /// report's confidence scale).
    #[default]
    Sum,
    /// The paper's combination: maximum violated confidence.
    Max,
}

/// Configuration of the association auditor.
#[derive(Debug, Clone, Default)]
pub struct AssociationAuditConfig {
    /// Apriori mining parameters.
    pub apriori: AprioriConfig,
    /// Scoring mode.
    pub scoring: AssociationScoring,
    /// Records scoring at or above this are flagged.
    pub min_confidence: f64,
}

/// The association-rule data auditor.
#[derive(Debug, Clone)]
pub struct AssociationAuditor {
    config: AssociationAuditConfig,
}

impl AssociationAuditor {
    /// An auditor with the given configuration (a zero `min_confidence`
    /// is promoted to the paper's 0.8 default).
    pub fn new(mut config: AssociationAuditConfig) -> Self {
        if config.min_confidence <= 0.0 {
            config.min_confidence = 0.8;
        }
        AssociationAuditor { config }
    }

    /// Mine rules from `table` and score every record against them.
    pub fn run(&self, table: &Table) -> Result<(Apriori, AuditReport), AuditError> {
        if table.is_empty() {
            return Err(AuditError::EmptyTable);
        }
        let miner = Apriori::mine(table, self.config.apriori.clone())
            .map_err(|source| AuditError::Induction { class_attr: 0, source })?;
        let report = self.detect(&miner, table);
        Ok((miner, report))
    }

    /// Score `table` against an already mined rule base.
    pub fn detect(&self, miner: &Apriori, table: &Table) -> AuditReport {
        let mut findings = Vec::new();
        let mut record_confidence = vec![0.0f64; table.n_rows()];
        let mut record: Vec<Value> = Vec::with_capacity(table.n_cols());
        let mut coded = Vec::with_capacity(table.n_cols());
        #[allow(clippy::needless_range_loop)] // row indexes the table, not just the vec
        for row in 0..table.n_rows() {
            table.row_into(row, &mut record);
            miner.code_record_into(&record, &mut coded);
            let mut score = 0.0f64;
            let mut best: Option<&dq_mining::AssociationRule> = None;
            for rule in miner.violated(&coded) {
                match self.config.scoring {
                    AssociationScoring::Sum => score += rule.confidence,
                    AssociationScoring::Max => score = score.max(rule.confidence),
                }
                if best.is_none_or(|b| rule.confidence > b.confidence) {
                    best = Some(rule);
                }
            }
            let score = score.min(1.0);
            record_confidence[row] = score;
            if score >= self.config.min_confidence {
                if let Some(rule) = best {
                    let (_, code) = (rule.attr, rule.code);
                    findings.push(Finding {
                        row,
                        attr: rule.attr,
                        observed: record[rule.attr],
                        // Only nominal consequents map back to concrete
                        // cell values; binned consequents keep the
                        // observed value as a placeholder proposal.
                        proposed: proposed_value(table, rule.attr, code, record[rule.attr]),
                        confidence: score,
                        support: rule.support,
                    });
                }
            }
        }
        AuditReport::new(findings, record_confidence, self.config.min_confidence)
    }
}

fn proposed_value(table: &Table, attr: usize, code: u32, observed: Value) -> Value {
    match &table.schema().attr(attr).ty {
        dq_table::AttrType::Nominal { .. } => Value::Nominal(code),
        _ => observed,
    }
}

/// Sanity helper for tests and docs: does this miner know a rule whose
/// consequent sets `attr` to `code`?
pub fn has_rule_for(miner: &Apriori, attr: usize, code: u32) -> bool {
    miner.rules().iter().any(|r| r.attr == attr && r.code == code)
        || miner
            .rules()
            .iter()
            .any(|r| r.antecedent.iter().any(|&it| item_parts(it) == (attr, code)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_table::SchemaBuilder;

    /// Two deterministic dependencies plus one deviation each.
    fn table() -> Table {
        let schema = SchemaBuilder::new()
            .nominal("brv", ["404", "501"])
            .nominal("gbm", ["901", "911"])
            .nominal("kbm", ["01", "02"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..400 {
            let b = (i % 2) as u32;
            t.push_row(&[Value::Nominal(b), Value::Nominal(b), Value::Nominal(b)]).unwrap();
        }
        // Deviation: brv=404 with gbm=911 *and* kbm=02 — violates two
        // rules at once (sum > max).
        t.push_row(&[Value::Nominal(0), Value::Nominal(1), Value::Nominal(1)]).unwrap();
        t
    }

    #[test]
    fn flags_violations() {
        let t = table();
        let auditor = AssociationAuditor::new(AssociationAuditConfig::default());
        let (miner, report) = auditor.run(&t).unwrap();
        assert!(has_rule_for(&miner, 1, 0));
        let deviant = t.n_rows() - 1;
        assert!(report.is_flagged(deviant));
        assert!(!report.is_flagged(0));
        assert_eq!(report.findings[0].row, deviant);
    }

    #[test]
    fn sum_scoring_saturates_max_does_not() {
        let t = table();
        let sum = AssociationAuditor::new(AssociationAuditConfig {
            scoring: AssociationScoring::Sum,
            ..AssociationAuditConfig::default()
        });
        let max = AssociationAuditor::new(AssociationAuditConfig {
            scoring: AssociationScoring::Max,
            ..AssociationAuditConfig::default()
        });
        let deviant = t.n_rows() - 1;
        let (_, sum_report) = sum.run(&t).unwrap();
        let (_, max_report) = max.run(&t).unwrap();
        // Multiple violated rules: the sum clamps to 1, the max stays
        // at the strongest single rule (< 1 on finite evidence… both
        // are ~1 here, but sum ≥ max always).
        assert!(sum_report.record_confidence[deviant] >= max_report.record_confidence[deviant]);
        assert!(max_report.is_flagged(deviant));
    }

    #[test]
    fn detect_reuses_mined_rules_on_fresh_data() {
        let t = table();
        let auditor = AssociationAuditor::new(AssociationAuditConfig::default());
        let (miner, _) = auditor.run(&t).unwrap();
        let mut fresh = Table::new(t.schema().clone());
        fresh.push_row(&[Value::Nominal(1), Value::Nominal(1), Value::Nominal(1)]).unwrap();
        fresh.push_row(&[Value::Nominal(1), Value::Nominal(0), Value::Nominal(1)]).unwrap();
        let report = auditor.detect(&miner, &fresh);
        assert!(!report.is_flagged(0));
        assert!(report.is_flagged(1));
        let f = report.best_finding_for(1).unwrap();
        assert_eq!(f.attr, 1);
        assert_eq!(f.proposed, Value::Nominal(1));
    }

    #[test]
    fn empty_table_errors() {
        let t = table();
        let empty = Table::new(t.schema().clone());
        let auditor = AssociationAuditor::new(AssociationAuditConfig::default());
        assert_eq!(auditor.run(&empty).unwrap_err(), AuditError::EmptyTable);
    }
}
