//! The multiple classification / regression auditor (sec. 5).
//!
//! "For each attribute in the relation to be audited, a classifier is
//! induced that describes the dependency of this class attribute from
//! the other attributes (called base attributes in this context). A
//! record can be checked for deviations by comparing its observed
//! class value with the predicted value for each classifier."
//!
//! Structure induction ([`Auditor::induce`]) and deviation detection
//! ([`Auditor::detect`]) are separate phases: "both tasks can run
//! asynchronously … the time-consuming structure induction can be
//! prepared off-line, new data can be checked for deviations and
//! loaded quickly". [`Auditor::run`] is the single-database mode where
//! one table serves "both for training and data audit".

use crate::confidence::min_instances_for_confidence;
use crate::engine;
use crate::error::AuditError;
use crate::report::AuditReport;
use dq_exec::{Parallelism, WorkerPool};
use dq_mining::{
    C45Inducer, ClassSpec, Classifier, FlatTree, InducerKind, TableCache, TrainingSet, TreeRule,
};
use dq_table::{AttrIdx, AttrType, Schema, Table, Value};

/// Configuration of the auditing tool.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// The classifier family inducing the per-attribute dependency
    /// models. Defaults to C4.5 with the paper's adjustments.
    pub inducer: InducerKind,
    /// "Minimal confidence for detected errors" — findings below it are
    /// dropped, and minInst is derived from it. The paper's experiments
    /// fix 80%.
    pub min_confidence: f64,
    /// Two-sided confidence level of all interval bounds.
    pub level: f64,
    /// Equal-frequency bins for numeric/date class attributes.
    pub bins: usize,
    /// Derive the minInst pre-pruning bound from `min_confidence`
    /// (sec. 5.4). Only affects the C4.5 inducer.
    pub derive_min_inst: bool,
    /// Delete structure-model rules that cannot reach `min_confidence`
    /// (sec. 5.4: rules that "cannot contribute to an error
    /// detection"). Only affects the C4.5 inducer.
    pub delete_undetecting_rules: bool,
    /// Flag NULL class values whose prediction is strong (the
    /// completeness dimension).
    pub flag_nulls: bool,
    /// Attributes to audit; `None` audits every attribute.
    pub audited_attrs: Option<Vec<AttrIdx>>,
    /// Domain-knowledge overrides of the base attribute set per class
    /// attribute ("if it is known that an attribute does not influence
    /// the value of a class attribute, it can be removed").
    pub base_attr_overrides: Vec<(AttrIdx, Vec<AttrIdx>)>,
    /// Worker threads for structure induction (one classifier per
    /// attribute fans out across the pool) and deviation detection
    /// (the record scan is sharded into row chunks) — the shared
    /// [`Parallelism`] knob: explicit count > `DQ_THREADS` >
    /// available cores. The default ([`Parallelism::AUTO`]) defers to
    /// the environment. Results are identical at every thread count —
    /// parallelism only changes wall-clock time.
    pub threads: Parallelism,
    /// SPRINT-style intra-attribute workers for C4.5 split search:
    /// within a single tree node, the numeric boundary-cut scan and
    /// the nominal count-matrix accumulation are sharded across this
    /// many threads. The default is [`Parallelism::serial`] — a
    /// serial split search; per-attribute fan-out via
    /// [`AuditConfig::threads`] is usually enough. Set it when the
    /// table is wide in rows but narrow in attributes, where
    /// per-attribute fan-out alone caps the speedup at the attribute
    /// count. Byte-identical results at every thread count.
    pub split_threads: Parallelism,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            inducer: InducerKind::default(),
            min_confidence: 0.8,
            level: 0.95,
            bins: 8,
            derive_min_inst: true,
            delete_undetecting_rules: true,
            flag_nulls: true,
            audited_attrs: None,
            base_attr_overrides: Vec::new(),
            threads: Parallelism::AUTO,
            split_threads: Parallelism::serial(),
        }
    }
}

impl AuditConfig {
    fn validate(&self) -> Result<(), AuditError> {
        if !(0.0..=1.0).contains(&self.min_confidence) {
            return Err(AuditError::BadConfig(format!(
                "min_confidence must be in [0, 1], got {}",
                self.min_confidence
            )));
        }
        if !(self.level > 0.0 && self.level < 1.0) {
            return Err(AuditError::BadConfig(format!(
                "confidence level must be in (0, 1), got {}",
                self.level
            )));
        }
        if self.bins < 2 {
            return Err(AuditError::BadConfig("bins must be at least 2".into()));
        }
        Ok(())
    }
}

/// The dependency model of one class attribute.
pub struct AttrModel {
    /// The class attribute this model predicts.
    pub class_attr: AttrIdx,
    /// Class-code mapping (nominal codes or equal-frequency bins).
    pub spec: ClassSpec,
    /// The induced classifier.
    pub classifier: Box<dyn Classifier>,
    /// The rule set extracted from a C4.5 tree (empty for other
    /// inducers) — the structure model of sec. 5.4.
    pub rules: Vec<TreeRule>,
    /// Leaves removed by the rule-deletion step.
    pub deleted_rules: usize,
    /// The flattened evaluator compiled from a C4.5 tree at
    /// construction time (`None` for other classifier families) —
    /// what [`Auditor::detect`] classifies through.
    flat: Option<FlatTree>,
}

impl AttrModel {
    /// Assemble a dependency model, compiling the classifier into its
    /// flat detection form when it is a C4.5 tree. Every model — from
    /// [`Auditor::induce`] or from a persisted file — is built through
    /// here, so detection always has the flat evaluator available.
    pub fn new(
        class_attr: AttrIdx,
        spec: ClassSpec,
        classifier: Box<dyn Classifier>,
        rules: Vec<TreeRule>,
        deleted_rules: usize,
    ) -> Self {
        let flat = classifier.as_c45().map(FlatTree::from_tree);
        AttrModel { class_attr, spec, classifier, rules, deleted_rules, flat }
    }

    /// The flattened tree evaluator, when the classifier is a C4.5
    /// tree.
    pub fn flat_tree(&self) -> Option<&FlatTree> {
        self.flat.as_ref()
    }
}

impl std::fmt::Debug for AttrModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttrModel")
            .field("class_attr", &self.class_attr)
            .field("classifier", &self.classifier.describe())
            .field("rules", &self.rules.len())
            .field("deleted_rules", &self.deleted_rules)
            .finish()
    }
}

/// The induced structure model for a whole table: one dependency model
/// per audited attribute. "The rule sets generated by all classifiers
/// in the multiple classification / regression approach build the
/// structure model of the data … a set of integrity constraints that
/// must hold with a given probability."
#[derive(Debug)]
pub struct StructureModel {
    /// Per-attribute models, in audited-attribute order.
    pub models: Vec<AttrModel>,
    /// The derived minInst bound (0 when disabled).
    pub min_inst: f64,
    /// The configuration used for induction (reused by detection,
    /// persisted as provenance by `model_io`).
    pub(crate) config: AuditConfig,
}

impl StructureModel {
    /// Total number of structure-model rules across attributes.
    pub fn n_rules(&self) -> usize {
        self.models.iter().map(|m| m.rules.len()).sum()
    }

    /// The configuration the model was induced with (provenance; the
    /// persisted file records it in its header).
    pub fn config(&self) -> &AuditConfig {
        &self.config
    }

    /// Render the probabilistic integrity constraints with schema
    /// names, one per line, most-supported first per attribute.
    pub fn render(&self, schema: &Schema) -> String {
        let mut out = Vec::new();
        for m in &self.models {
            let mut rules: Vec<&TreeRule> = m.rules.iter().collect();
            rules.sort_by(|a, b| b.support.total_cmp(&a.support));
            for r in rules {
                let label = m.spec.label_of(schema, m.class_attr, r.predicted);
                out.push(r.render(schema, m.class_attr, &label));
            }
        }
        out.join("\n")
    }
}

/// The data auditing tool.
#[derive(Debug, Clone, Default)]
pub struct Auditor {
    /// The configuration.
    pub config: AuditConfig,
}

impl Auditor {
    /// An auditor with the given configuration.
    pub fn new(config: AuditConfig) -> Self {
        Auditor { config }
    }

    /// **Structure induction**: induce one dependency model per audited
    /// attribute from `table`.
    ///
    /// The per-attribute inductions are independent, so they fan out
    /// across [`AuditConfig::threads`] workers; results come back in
    /// audited-attribute order and are identical to a serial run.
    pub fn induce(&self, table: &Table) -> Result<StructureModel, AuditError> {
        self.induce_impl(table, false)
    }

    /// Reference structure induction: identical to [`Auditor::induce`]
    /// but running the pre-columnar row-at-a-time C4.5 recursion
    /// ([`C45Inducer::induce_tree_reference`]). Kept as the ground
    /// truth of the columnar-equivalence property suite and as the
    /// "before" side of the `induction/presort` benchmarks; the
    /// returned model is byte-identical to [`Auditor::induce`]'s.
    pub fn induce_reference(&self, table: &Table) -> Result<StructureModel, AuditError> {
        self.induce_impl(table, true)
    }

    fn induce_impl(&self, table: &Table, reference: bool) -> Result<StructureModel, AuditError> {
        self.config.validate()?;
        if table.is_empty() {
            return Err(AuditError::EmptyTable);
        }
        if table.n_cols() < 2 {
            return Err(AuditError::SingleColumn);
        }
        let min_inst = if self.config.derive_min_inst {
            min_instances_for_confidence(self.config.min_confidence, self.config.level) as f64
        } else {
            0.0
        };
        let audited: Vec<AttrIdx> = match &self.config.audited_attrs {
            Some(list) => list.clone(),
            None => (0..table.n_cols()).collect(),
        };
        // One table-level column cache (widened payloads + presorts)
        // shared by every per-attribute induction.
        let cache = match &self.config.inducer {
            InducerKind::C45(_) if !reference => Some(TableCache::build(table)),
            _ => None,
        };
        let pool = WorkerPool::from_config(self.config.threads);
        // Optional second-level pool for intra-node split search; the
        // scoped-thread design makes nesting safe. One resolved worker
        // means "no nested pool" — the serial split path.
        let split = self.config.split_threads.resolve();
        let split_pool = (split > 1).then(|| WorkerPool::new(split));
        let models = pool
            .map_indexed(&audited, |_, &class_attr| {
                let train = self.training_set(table, class_attr)?;
                self.induce_one(
                    &train,
                    class_attr,
                    min_inst,
                    reference,
                    cache.as_ref(),
                    split_pool.as_ref(),
                )
            })
            .into_iter()
            .collect::<Result<Vec<AttrModel>, AuditError>>()?;
        Ok(StructureModel { models, min_inst, config: self.config.clone() })
    }

    fn training_set<'a>(
        &self,
        table: &'a Table,
        class_attr: AttrIdx,
    ) -> Result<TrainingSet<'a>, AuditError> {
        let override_bases = self
            .config
            .base_attr_overrides
            .iter()
            .find(|(a, _)| *a == class_attr)
            .map(|(_, bases)| bases.clone());
        let result = match override_bases {
            Some(bases) => TrainingSet::new(table, class_attr, bases, self.config.bins),
            None => TrainingSet::full(table, class_attr, self.config.bins),
        };
        result.map_err(|source| AuditError::Induction { class_attr, source })
    }

    fn induce_one(
        &self,
        train: &TrainingSet<'_>,
        class_attr: AttrIdx,
        min_inst: f64,
        reference: bool,
        cache: Option<&TableCache>,
        split_pool: Option<&WorkerPool>,
    ) -> Result<AttrModel, AuditError> {
        let wrap = |source| AuditError::Induction { class_attr, source };
        match &self.config.inducer {
            InducerKind::C45(cfg) => {
                let mut cfg = cfg.clone();
                cfg.level = self.config.level;
                if self.config.derive_min_inst {
                    cfg.min_inst = min_inst;
                }
                let inducer = C45Inducer::new(cfg);
                let mut tree = if reference {
                    inducer.induce_tree_reference(train).map_err(wrap)?
                } else if let Some(pool) = split_pool {
                    inducer.induce_tree_parallel(train, cache, pool).map_err(wrap)?
                } else if let Some(cache) = cache {
                    inducer.induce_tree_cached(train, cache).map_err(wrap)?
                } else {
                    inducer.induce_tree(train).map_err(wrap)?
                };
                let deleted = if self.config.delete_undetecting_rules {
                    tree.disable_undetecting_leaves(self.config.min_confidence)
                } else {
                    0
                };
                let rules = tree.to_rules();
                Ok(AttrModel::new(class_attr, train.spec.clone(), Box::new(tree), rules, deleted))
            }
            other => {
                let classifier = other.build().induce(train).map_err(wrap)?;
                Ok(AttrModel::new(class_attr, train.spec.clone(), classifier, Vec::new(), 0))
            }
        }
    }

    /// **Deviation detection**: check every record of `table` against
    /// the structure model. `table` may be the training table (single-
    /// database mode) or fresh data (warehouse-loading mode).
    ///
    /// The scan shards into one row chunk per worker (see
    /// [`Table::chunks`]); per-chunk partial reports merge back in row
    /// order, so the result is identical at every thread count. An
    /// empty table yields an empty, well-formed report.
    pub fn detect(&self, model: &StructureModel, table: &Table) -> AuditReport {
        engine::detect_table(model, table, self.config.threads, engine::scan_chunk)
    }

    /// Reference deviation detection: identical to [`Auditor::detect`]
    /// but scanning row-at-a-time through materialized `Vec<Value>`
    /// records and the boxed [`Node`](dq_mining::Node) trees. Kept as
    /// the ground truth of the columnar-equivalence property suite and
    /// as the "before" side of the `detection/flat` benchmarks; the
    /// returned report is byte-identical to [`Auditor::detect`]'s.
    pub fn detect_reference(&self, model: &StructureModel, table: &Table) -> AuditReport {
        engine::detect_table(model, table, self.config.threads, engine::scan_chunk_reference)
    }

    /// **Streaming deviation detection**: check a sequence of row
    /// batches (e.g. [`dq_table::CsvChunkReader`] over a CSV file
    /// larger than RAM) against the structure model, at O(batch)
    /// memory for the data.
    ///
    /// Each batch is sharded across the worker pool exactly like
    /// [`Auditor::detect`] shards a full table, and the partial
    /// reports merge back in global row order. Because every row's
    /// arithmetic is independent and the final ranking sort is stable
    /// with a row-order tiebreak, the result is **byte-identical** to
    /// an in-memory [`Auditor::detect`] over the concatenated batches,
    /// for every batch size ≥ 1 and every thread count.
    ///
    /// Row indices in the returned report are global (0-based over the
    /// whole stream). The first failing batch aborts the scan with its
    /// error; the [`BatchSource`](dq_table::BatchSource) contract
    /// guarantees every batch shares the source's schema.
    pub fn detect_stream(
        &self,
        model: &StructureModel,
        batches: impl dq_table::BatchSource,
    ) -> Result<AuditReport, AuditError> {
        let (report, error) = engine::detect_batches(model, self.config.threads, batches);
        match error {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    /// Streaming detection that keeps the partial report when a batch
    /// fails mid-stream: the report covers every complete batch before
    /// the failure. See [`crate::AuditEngine::detect_stream_partial`].
    pub fn detect_stream_partial(
        &self,
        model: &StructureModel,
        batches: impl dq_table::BatchSource,
    ) -> (AuditReport, Option<AuditError>) {
        engine::detect_batches(model, self.config.threads, batches)
    }

    /// Single-database mode: induce and detect on the same table.
    pub fn run(&self, table: &Table) -> Result<(StructureModel, AuditReport), AuditError> {
        let model = self.induce(table)?;
        let report = self.detect(&model, table);
        Ok((model, report))
    }
}

/// Materialize a predicted class code as a concrete cell value for the
/// class attribute: nominal codes become nominal values, bin codes
/// become the bin's representative point (day-rounded for dates).
pub(crate) fn materialize_class(
    schema: &Schema,
    attr: AttrIdx,
    spec: &ClassSpec,
    code: u32,
) -> Value {
    match spec {
        ClassSpec::Nominal { .. } => Value::Nominal(code),
        ClassSpec::Binned { binning } => {
            let x = binning.representative(code);
            match schema.attr(attr).ty {
                AttrType::Date { .. } => Value::Date(x.round() as i64),
                _ => Value::Number(x),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_table::SchemaBuilder;

    /// The QUIS anecdote shape, scaled: BRV=404 ⇒ GBM=901 (`n1` clean
    /// instances + 1 deviation appended last), BRV=501 ⇒ GBM=911 (`n2`).
    fn anecdote(n1: usize, n2: usize) -> Table {
        let schema = SchemaBuilder::new()
            .nominal("brv", ["404", "501"])
            .nominal("gbm", ["901", "911"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for _ in 0..n1 {
            t.push_row(&[Value::Nominal(0), Value::Nominal(0)]).unwrap();
        }
        for _ in 0..n2 {
            t.push_row(&[Value::Nominal(1), Value::Nominal(1)]).unwrap();
        }
        t.push_row(&[Value::Nominal(0), Value::Nominal(1)]).unwrap(); // the error
        t
    }

    /// The paper's exact sizes (16118 supporting instances).
    fn quis_anecdote() -> Table {
        anecdote(16_117, 2000)
    }

    #[test]
    fn flags_the_quis_deviation_with_paper_confidence() {
        let t = quis_anecdote();
        let auditor = Auditor::default();
        let (model, report) = auditor.run(&t).unwrap();
        assert!(model.n_rules() > 0);
        let deviant = t.n_rows() - 1;
        assert!(report.is_flagged(deviant), "the deviation must be flagged");
        // "The data auditing tool assigns an error confidence of 99,95%
        // to this instance and ranks it first."
        assert!(report.record_confidence[deviant] > 0.999);
        assert_eq!(report.findings[0].row, deviant);
        // The suggestion restores the rule.
        let f = report.best_finding_for(deviant).unwrap();
        assert_eq!(f.proposed, Value::Nominal(0));
        // Clean records stay unflagged.
        assert!(!report.is_flagged(0));
        assert!(!report.is_flagged(16_117 + 100));
    }

    #[test]
    fn induction_and_detection_run_asynchronously() {
        let train = anecdote(2000, 400);
        let auditor = Auditor::default();
        let model = auditor.induce(&train).unwrap();
        // Fresh data, checked against the prepared structure.
        let schema = train.schema().clone();
        let mut fresh = Table::new(schema);
        fresh.push_row(&[Value::Nominal(0), Value::Nominal(0)]).unwrap(); // fine
        fresh.push_row(&[Value::Nominal(0), Value::Nominal(1)]).unwrap(); // violates
        let report = auditor.detect(&model, &fresh);
        assert!(!report.is_flagged(0));
        assert!(report.is_flagged(1));
    }

    #[test]
    fn nulls_are_flagged_for_completeness() {
        let train = anecdote(2000, 400);
        let auditor = Auditor::default();
        let model = auditor.induce(&train).unwrap();
        let mut fresh = Table::new(train.schema().clone());
        fresh.push_row(&[Value::Nominal(0), Value::Null]).unwrap();
        let report = auditor.detect(&model, &fresh);
        assert!(report.is_flagged(0), "strongly predicted NULL must be flagged");
        let f = report.best_finding_for(0).unwrap();
        assert_eq!(f.observed, Value::Null);
        assert_eq!(f.proposed, Value::Nominal(0));
        // With flag_nulls off the record passes.
        let quiet = Auditor::new(AuditConfig { flag_nulls: false, ..AuditConfig::default() });
        let model = quiet.induce(&train).unwrap();
        let report = quiet.detect(&model, &fresh);
        assert!(!report.is_flagged(0));
    }

    #[test]
    fn numeric_class_attributes_are_binned_and_flagged() {
        // x (nominal) determines n (numeric): x = lo ⇒ n ≈ 10,
        // x = hi ⇒ n ≈ 90.
        let schema = SchemaBuilder::new()
            .nominal("x", ["lo", "hi"])
            .numeric("n", 0.0, 100.0)
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..2000 {
            let (x, n) =
                if i % 2 == 0 { (0, 10.0 + (i % 10) as f64) } else { (1, 90.0 + (i % 10) as f64) };
            t.push_row(&[Value::Nominal(x), Value::Number(n)]).unwrap();
        }
        t.push_row(&[Value::Nominal(0), Value::Number(95.0)]).unwrap(); // deviates
        let auditor = Auditor::new(AuditConfig { bins: 4, ..AuditConfig::default() });
        let (_, report) = auditor.run(&t).unwrap();
        let deviant = t.n_rows() - 1;
        assert!(report.is_flagged(deviant));
        // Both directions flag the record (x-from-n and n-from-x); the
        // numeric classifier's finding must propose a concrete value
        // from the low bins.
        let f = report
            .findings
            .iter()
            .find(|f| f.row == deviant && f.attr == 1)
            .expect("numeric classifier must flag the deviation");
        match f.proposed {
            Value::Number(x) => assert!(x < 50.0, "proposed {x}"),
            ref other => panic!("expected numeric proposal, got {other:?}"),
        }
    }

    #[test]
    fn audited_attrs_subset_is_respected() {
        let t = anecdote(2000, 400);
        let auditor =
            Auditor::new(AuditConfig { audited_attrs: Some(vec![0]), ..AuditConfig::default() });
        let (model, report) = auditor.run(&t).unwrap();
        assert_eq!(model.models.len(), 1);
        assert!(report.findings.iter().all(|f| f.attr == 0));
    }

    #[test]
    fn base_attr_overrides_remove_influence() {
        let t = anecdote(2000, 400);
        // GBM's classifier may not look at BRV — no dependency left.
        let auditor = Auditor::new(AuditConfig {
            audited_attrs: Some(vec![1]),
            base_attr_overrides: vec![(1, vec![])],
            ..AuditConfig::default()
        });
        let err = auditor.run(&t);
        // An empty base set cannot split anything: the classifier
        // degenerates to the class prior; the deviation drowns.
        match err {
            Ok((_, report)) => {
                let deviant = t.n_rows() - 1;
                assert!(!report.is_flagged(deviant));
            }
            Err(e) => panic!("empty base set should degrade, not fail: {e}"),
        }
    }

    #[test]
    fn structure_model_renders_constraints() {
        let t = anecdote(2000, 400);
        let (model, _) = Auditor::default().run(&t).unwrap();
        let text = model.render(t.schema());
        assert!(text.contains("→ gbm = 901") || text.contains("→ brv = 404"), "got:\n{text}");
    }

    #[test]
    fn config_validation() {
        let bad = [
            AuditConfig { min_confidence: 1.5, ..AuditConfig::default() },
            AuditConfig { level: 0.0, ..AuditConfig::default() },
            AuditConfig { bins: 1, ..AuditConfig::default() },
        ];
        let t = anecdote(2000, 400);
        for cfg in bad {
            assert!(Auditor::new(cfg).induce(&t).is_err());
        }
        let empty = Table::new(t.schema().clone());
        assert_eq!(Auditor::default().induce(&empty).unwrap_err(), AuditError::EmptyTable);
    }

    #[test]
    fn detect_on_empty_table_yields_clean_empty_report() {
        let train = anecdote(2000, 400);
        let auditor = Auditor::default();
        let model = auditor.induce(&train).unwrap();
        let empty = Table::new(train.schema().clone());
        for threads in [Some(1), Some(4), None] {
            let auditor =
                Auditor::new(AuditConfig { threads: threads.into(), ..AuditConfig::default() });
            let report = auditor.detect(&model, &empty);
            assert_eq!(report.n_rows(), 0);
            assert!(report.findings.is_empty());
            assert_eq!(report.n_suspicious(), 0);
        }
    }

    #[test]
    fn induce_on_single_column_schema_is_a_clean_error() {
        let schema = SchemaBuilder::new().nominal("only", ["a", "b"]).build().unwrap();
        let mut t = Table::new(schema);
        for i in 0..100 {
            t.push_row(&[Value::Nominal(i % 2)]).unwrap();
        }
        for threads in [1, 4] {
            let auditor =
                Auditor::new(AuditConfig { threads: threads.into(), ..AuditConfig::default() });
            assert_eq!(auditor.induce(&t).unwrap_err(), AuditError::SingleColumn);
            assert_eq!(auditor.run(&t).unwrap_err(), AuditError::SingleColumn);
        }
    }

    #[test]
    fn thread_counts_do_not_change_results() {
        let t = quis_anecdote();
        let serial =
            Auditor::new(AuditConfig { threads: Parallelism::serial(), ..AuditConfig::default() });
        let (model_s, report_s) = serial.run(&t).unwrap();
        for threads in [2, 4, 7] {
            let par =
                Auditor::new(AuditConfig { threads: threads.into(), ..AuditConfig::default() });
            let (model_p, report_p) = par.run(&t).unwrap();
            assert_eq!(model_p.render(t.schema()), model_s.render(t.schema()));
            assert_eq!(report_p.findings, report_s.findings, "threads={threads}");
            assert_eq!(report_p.record_confidence, report_s.record_confidence);
        }
    }

    #[test]
    fn split_threads_do_not_change_the_model() {
        // Mixed types and enough rows that the intra-node SPRINT
        // sharding actually engages at the root (numeric cut scan +
        // nominal matrix accumulation).
        let schema = SchemaBuilder::new()
            .nominal("a", ["p", "q", "r"])
            .numeric("x", 0.0, 100.0)
            .nominal("y", ["lo", "hi"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..6000u32 {
            let a = i % 3;
            let x = if i % 7 == 0 { Value::Null } else { Value::Number(f64::from(i % 13)) };
            t.push_row(&[Value::Nominal(a), x, Value::Nominal(u32::from(i % 13 >= 6))]).unwrap();
        }
        let base =
            Auditor::new(AuditConfig { threads: Parallelism::serial(), ..AuditConfig::default() });
        let (model_b, report_b) = base.run(&t).unwrap();
        for split_threads in [1, 2, 4] {
            let par = Auditor::new(AuditConfig {
                threads: Parallelism::serial(),
                split_threads: split_threads.into(),
                ..AuditConfig::default()
            });
            let (model_p, report_p) = par.run(&t).unwrap();
            assert_eq!(model_p.render(t.schema()), model_b.render(t.schema()));
            assert_eq!(report_p.findings, report_b.findings, "split_threads={split_threads}");
            let bits = |v: &[f64]| v.iter().map(|c| c.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&report_p.record_confidence), bits(&report_b.record_confidence));
        }
    }

    #[test]
    fn induction_errors_surface_identically_in_parallel() {
        // An out-of-range audited attribute fails induction; the
        // parallel fan-out must return the same first-by-index error
        // as the legacy serial loop.
        let t = anecdote(200, 40);
        for threads in [1, 4] {
            let auditor = Auditor::new(AuditConfig {
                audited_attrs: Some(vec![0, 9, 7]),
                threads: threads.into(),
                ..AuditConfig::default()
            });
            match auditor.induce(&t) {
                Err(AuditError::Induction { class_attr, .. }) => assert_eq!(class_attr, 9),
                other => panic!("expected induction error for attribute 9, got {other:?}"),
            }
        }
    }

    #[test]
    fn columnar_paths_are_byte_identical_to_reference_paths() {
        // Mixed-type table: nominal dependency + numeric class + NULLs.
        let schema = SchemaBuilder::new()
            .nominal("x", ["lo", "hi"])
            .numeric("n", 0.0, 100.0)
            .nominal("z", ["a", "b", "c"])
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        for i in 0..1500 {
            let (x, n) =
                if i % 2 == 0 { (0, 10.0 + (i % 9) as f64) } else { (1, 80.0 + (i % 9) as f64) };
            let z = if i % 13 == 0 { Value::Null } else { Value::Nominal((i % 3) as u32) };
            t.push_row(&[Value::Nominal(x), Value::Number(n), z]).unwrap();
        }
        t.push_row(&[Value::Nominal(0), Value::Number(95.0), Value::Nominal(0)]).unwrap();
        let auditor = Auditor::default();
        let model = auditor.induce(&t).unwrap();
        let reference_model = auditor.induce_reference(&t).unwrap();
        assert_eq!(
            crate::model_io::render_model(&model, t.schema()).unwrap(),
            crate::model_io::render_model(&reference_model, t.schema()).unwrap(),
            "presorted induction must serialize identically to the reference"
        );
        let report = auditor.detect(&model, &t);
        let reference_report = auditor.detect_reference(&reference_model, &t);
        assert_eq!(report.findings, reference_report.findings);
        for (a, b) in report.record_confidence.iter().zip(&reference_report.record_confidence) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn non_c45_models_detect_without_flat_trees() {
        // The columnar scan must fall back to whole-record prediction
        // for classifier families without a flat compilation.
        let t = anecdote(2000, 400);
        let auditor = Auditor::new(AuditConfig {
            inducer: InducerKind::NaiveBayes,
            ..AuditConfig::default()
        });
        let model = auditor.induce(&t).unwrap();
        assert!(model.models.iter().all(|m| m.flat_tree().is_none()));
        let report = auditor.detect(&model, &t);
        let reference = auditor.detect_reference(&model, &t);
        assert_eq!(report.findings, reference.findings);
        assert_eq!(report.record_confidence, reference.record_confidence);
    }

    #[test]
    fn alternative_inducers_plug_in() {
        let t = anecdote(2000, 400);
        for kind in [
            InducerKind::NaiveBayes,
            InducerKind::Knn { k: 5 },
            InducerKind::OneR,
            InducerKind::ZeroR,
        ] {
            let auditor = Auditor::new(AuditConfig { inducer: kind, ..AuditConfig::default() });
            let (model, report) = auditor.run(&t).unwrap();
            assert_eq!(model.n_rules(), 0, "only C4.5 yields structure rules");
            assert_eq!(report.n_rows(), t.n_rows());
        }
    }
}
